"""Malformed ``.brx`` containers must fail typed, never with raw
``struct.error``/``IndexError`` leaks or silently wrong arrays.

Every case builds a deliberately broken file and asserts the load path
(:func:`read_header` / :func:`read_manifest` / :func:`load_container`)
raises :class:`~repro.errors.SerializationError`.
"""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.formats.conversion import convert
from repro.serialize import (
    MAGIC,
    SCHEMA_VERSION,
    SerializationError,
    load_container,
    read_header,
    read_manifest,
    save_container,
)
from tests.conftest import random_coo


def write_raw(tmp_path, body: bytes):
    path = tmp_path / "broken.brx"
    path.write_bytes(body)
    return path


def brx_bytes(doc, payload=b"", version=SCHEMA_VERSION, magic=MAGIC):
    header = json.dumps(doc).encode("utf-8")
    return (
        magic
        + version.to_bytes(4, "little")
        + len(header).to_bytes(4, "little")
        + header
        + payload
    )


def minimal_doc(**overrides):
    """A syntactically complete csr header with one float64 array."""
    doc = {
        "format": "csr",
        "meta": {"shape": [2, 2]},
        "arrays": [
            {"name": "values", "dtype": "<f8", "shape": [2],
             "offset": 0, "nbytes": 16},
        ],
        "integrity": None,
    }
    doc.update(overrides)
    return doc


class TestPreamble:
    def test_empty_file(self, tmp_path):
        with pytest.raises(SerializationError, match="not a .brx"):
            read_header(write_raw(tmp_path, b""))

    def test_short_preamble(self, tmp_path):
        with pytest.raises(SerializationError, match="not a .brx"):
            read_header(write_raw(tmp_path, b"REPROBRX\x01"))

    def test_bad_magic(self, tmp_path):
        body = brx_bytes(minimal_doc(), magic=b"NOTABRX!")
        with pytest.raises(SerializationError, match="bad magic"):
            read_header(write_raw(tmp_path, body))

    def test_unknown_schema_version(self, tmp_path):
        body = brx_bytes(minimal_doc(), version=99)
        with pytest.raises(SerializationError, match="version 99"):
            read_header(write_raw(tmp_path, body))

    def test_header_length_past_end_of_file(self, tmp_path):
        body = (
            MAGIC
            + SCHEMA_VERSION.to_bytes(4, "little")
            + (1 << 20).to_bytes(4, "little")
            + b"{}"
        )
        with pytest.raises(SerializationError, match="truncated mid-header"):
            read_header(write_raw(tmp_path, body))


class TestHeaderJson:
    def test_garbage_json(self, tmp_path):
        garbage = b"\x00\xffnot json at all"
        body = (
            MAGIC
            + SCHEMA_VERSION.to_bytes(4, "little")
            + len(garbage).to_bytes(4, "little")
            + garbage
        )
        with pytest.raises(SerializationError, match="corrupt header"):
            read_header(write_raw(tmp_path, body))

    def test_header_not_an_object(self, tmp_path):
        body = brx_bytes([1, 2, 3])
        with pytest.raises(SerializationError, match="not a JSON object"):
            read_header(write_raw(tmp_path, body))

    @pytest.mark.parametrize("missing", ["format", "meta", "arrays"])
    def test_missing_required_key(self, tmp_path, missing):
        doc = minimal_doc()
        del doc[missing]
        with pytest.raises(SerializationError, match=missing):
            read_header(write_raw(tmp_path, brx_bytes(doc)))

    def test_non_string_format(self, tmp_path):
        body = brx_bytes(minimal_doc(format=7))
        with pytest.raises(SerializationError, match="format"):
            read_header(write_raw(tmp_path, body))

    def test_non_dict_meta(self, tmp_path):
        body = brx_bytes(minimal_doc(meta=[1]))
        with pytest.raises(SerializationError, match="metadata"):
            read_header(write_raw(tmp_path, body))

    def test_non_list_array_table(self, tmp_path):
        body = brx_bytes(minimal_doc(arrays={"values": 1}))
        with pytest.raises(SerializationError, match="array table"):
            read_header(write_raw(tmp_path, body))


class TestArrayTable:
    def _load(self, tmp_path, entry, payload=b"\x00" * 64):
        doc = minimal_doc(arrays=[entry])
        return load_container(write_raw(tmp_path, brx_bytes(doc, payload)))

    def test_entry_not_a_dict(self, tmp_path):
        with pytest.raises(SerializationError, match="array table entry"):
            self._load(tmp_path, "values")

    def test_entry_missing_keys(self, tmp_path):
        with pytest.raises(SerializationError, match="missing"):
            self._load(tmp_path, {"name": "values", "dtype": "<f8"})

    def test_unparseable_dtype(self, tmp_path):
        entry = {"name": "values", "dtype": "not-a-dtype", "shape": [2],
                 "offset": 0, "nbytes": 16}
        with pytest.raises(SerializationError, match="dtype"):
            self._load(tmp_path, entry)

    @pytest.mark.parametrize("shape", [3, [-1], ["x"], [2.5]])
    def test_malformed_shape(self, tmp_path, shape):
        entry = {"name": "values", "dtype": "<f8", "shape": shape,
                 "offset": 0, "nbytes": 16}
        with pytest.raises(SerializationError, match="shape"):
            self._load(tmp_path, entry)

    @pytest.mark.parametrize("field,value", [
        ("offset", -8), ("nbytes", -16), ("offset", "zero"), ("nbytes", None),
    ])
    def test_negative_or_nonint_extents(self, tmp_path, field, value):
        entry = {"name": "values", "dtype": "<f8", "shape": [2],
                 "offset": 0, "nbytes": 16}
        entry[field] = value
        with pytest.raises(SerializationError):
            self._load(tmp_path, entry)

    def test_nbytes_inconsistent_with_shape(self, tmp_path):
        entry = {"name": "values", "dtype": "<f8", "shape": [2],
                 "offset": 0, "nbytes": 8}  # 2 float64 need 16 bytes
        with pytest.raises(SerializationError, match="nbytes"):
            self._load(tmp_path, entry)

    def test_truncated_payload(self, tmp_path):
        entry = {"name": "values", "dtype": "<f8", "shape": [64],
                 "offset": 0, "nbytes": 512}
        with pytest.raises(SerializationError, match="truncated"):
            self._load(tmp_path, entry, payload=b"\x00" * 8)


class TestIntegritySealAndManifest:
    def test_malformed_integrity_seal(self, tmp_path):
        from repro.integrity.checksums import seal

        mat = seal(convert(random_coo(32, 32, density=0.1, seed=2), "csr"))
        path = tmp_path / "sealed.brx"
        save_container(mat, path)
        raw = path.read_bytes()
        hlen = int.from_bytes(raw[12:16], "little")
        doc = json.loads(raw[16:16 + hlen])
        doc["integrity"] = {"bogus": 1}
        body = brx_bytes(doc, payload=raw[16 + hlen:])
        with pytest.raises(SerializationError, match="integrity seal"):
            load_container(write_raw(tmp_path, body))

    def test_sharded_container_without_manifest(self, tmp_path):
        doc = minimal_doc(format="sharded", meta={})
        with pytest.raises(SerializationError, match="manifest"):
            read_manifest(write_raw(tmp_path, brx_bytes(doc)))

    def test_malformed_manifest_shape(self, tmp_path):
        doc = minimal_doc(format="sharded", meta={"manifest": {"shards": 3}})
        with pytest.raises(SerializationError, match="manifest"):
            read_manifest(write_raw(tmp_path, brx_bytes(doc)))

    def test_malformed_shard_row(self, tmp_path):
        doc = minimal_doc(
            format="sharded",
            meta={"manifest": {"shards": [{"index": "zero"}]}},
        )
        with pytest.raises(SerializationError, match="shard row"):
            read_manifest(write_raw(tmp_path, brx_bytes(doc)))

    def test_manifest_is_none_for_unsharded(self, tmp_path):
        mat = convert(random_coo(32, 32, density=0.1, seed=0), "csr")
        path = tmp_path / "ok.brx"
        save_container(mat, path)
        assert read_manifest(path) is None


class TestTruncationOfRealContainers:
    """Chop a genuine container at every region boundary: always typed."""

    @pytest.fixture()
    def real_container(self, tmp_path):
        mat = convert(random_coo(64, 64, density=0.1, seed=1), "bro_ell")
        path = tmp_path / "real.brx"
        save_container(mat, path)
        return path

    @pytest.mark.parametrize("keep", [4, 12, 15])
    def test_truncated_preamble(self, tmp_path, real_container, keep):
        body = real_container.read_bytes()[:keep]
        with pytest.raises(SerializationError):
            read_header(write_raw(tmp_path, body))

    def test_truncated_inside_header(self, tmp_path, real_container):
        body = real_container.read_bytes()
        with pytest.raises(SerializationError, match="truncated"):
            read_header(write_raw(tmp_path, body[:20]))

    def test_truncated_inside_payload(self, tmp_path, real_container):
        body = real_container.read_bytes()
        with pytest.raises(SerializationError, match="truncated"):
            load_container(write_raw(tmp_path, body[: len(body) - 64]))

    def test_every_error_is_a_repro_error(self, tmp_path, real_container):
        # The umbrella contract: callers can catch ReproError alone.
        body = real_container.read_bytes()
        for cut in (0, 7, 13, 40, len(body) - 16):
            try:
                load_container(write_raw(tmp_path, body[:cut]))
            except ReproError:
                pass
            else:  # pragma: no cover - contract violation
                pytest.fail(f"truncation at {cut} bytes loaded silently")

    def test_pristine_container_still_loads(self, real_container):
        mat = load_container(real_container)
        assert mat.format_name == "bro_ell"
        y = mat.spmv(np.ones(mat.shape[1]))
        assert y.shape == (64,)
