"""Round-trip property tests for the versioned ``.brx`` container files.

The acceptance bar for the serialization layer: for every Table 2 matrix
and every BRO format, ``load_container(save_container(m))`` returns a
container whose SpMV product is *bit-identical* (``np.array_equal``, not
allclose), whose kernel counters are equal, whose integrity seal is
intact, and whose content fingerprint warm-hits the plan cache.
"""

import numpy as np
import pytest

from repro import registry as _registry
from repro.errors import FormatError, IntegrityError
from repro.formats.conversion import convert
from repro.gpu.device import get_device
from repro.integrity.checksums import get_header, seal, verify_integrity
from repro.kernels.dispatch import run_spmv
from repro.kernels.plancache import PlanCache
from repro.matrices.suite import TABLE2, generate
from repro.serialize import (
    MAGIC,
    SCHEMA_VERSION,
    SerializationError,
    content_fingerprint,
    load_container,
    read_header,
    save_container,
)

#: Tiny generation scale so the full Table 2 sweep stays fast.
SUITE_SCALE = 0.004

BRO_FORMATS = ("bro_ell", "bro_coo", "bro_hyb")

#: The PR 9 format families: sorted-chunk ELLPACK, multi-row strips, and
#: the BROCodec-compressed composition of the former.
NEW_FAMILIES = ("sell_c_sigma", "cmrs", "bro_sell")


def _family_kwargs(fmt: str) -> dict:
    if fmt == "sell_c_sigma":
        return {"c": 16, "sigma": 64}
    if fmt == "cmrs":
        return {"height": 4}
    return {"c": 16, "sigma": 64, "sym_len": 32}  # bro_sell


def _suite_kwargs(fmt: str, h: int = 64, sym_len: int = 32) -> dict:
    spec = _registry.get_spec(fmt)
    kwargs = {}
    if spec.accepts("h"):
        kwargs["h"] = h
    if spec.accepts("sym_len"):
        kwargs["sym_len"] = sym_len
    if spec.accepts("threads_per_row"):
        kwargs["threads_per_row"] = 2
    return kwargs


def _roundtrip_and_check(mat, tmp_path, name, mmap_arrays=True):
    """Save, reload, and assert bit-identical SpMV + counters + seal."""
    path = tmp_path / f"{name}.brx"
    save_container(mat, path)
    loaded = load_container(path, mmap_arrays=mmap_arrays)

    assert loaded.format_name == mat.format_name
    assert loaded.shape == mat.shape
    assert loaded.nnz == mat.nnz

    x = np.random.default_rng(7).standard_normal(mat.shape[1])
    if mat.format_name in _registry.kernel_formats():
        r0 = run_spmv(mat, x, "k20")
        r1 = run_spmv(loaded, x, "k20")
        assert np.array_equal(r0.y, r1.y), "SpMV must be bit-identical"
        assert r0.counters == r1.counters, "kernel counters must be equal"
    else:  # kernel-less formats (the rowwise strawman) have reference spmv
        assert np.array_equal(mat.spmv(x), loaded.spmv(x))

    # The stored seal is reattached and must verify against loaded bytes.
    assert get_header(loaded) == get_header(mat)
    verify_integrity(loaded)
    assert content_fingerprint(loaded) == content_fingerprint(mat)
    return loaded


@pytest.mark.parametrize("name", sorted(TABLE2))
@pytest.mark.parametrize("fmt", BRO_FORMATS)
def test_table2_bro_roundtrip(name, fmt, tmp_path):
    coo = generate(name, scale=SUITE_SCALE)
    mat = seal(convert(coo, fmt, **_suite_kwargs(fmt)))
    _roundtrip_and_check(mat, tmp_path, f"{name}_{fmt}")


@pytest.mark.parametrize("name", sorted(TABLE2))
@pytest.mark.parametrize("fmt", NEW_FAMILIES)
def test_table2_new_families_roundtrip(name, fmt, tmp_path):
    coo = generate(name, scale=SUITE_SCALE)
    mat = seal(convert(coo, fmt, **_family_kwargs(fmt)))
    _roundtrip_and_check(mat, tmp_path, f"{name}_{fmt}")


@pytest.mark.parametrize("fmt", sorted(_registry.serializable_formats()))
@pytest.mark.parametrize("sym_len", [32, 64])
def test_every_format_roundtrips(fmt, sym_len, tmp_path):
    coo = generate("epb3", scale=0.01)
    if fmt == "sharded":
        # Sharded containers are built by partitioning, not from_coo().
        if sym_len != 32:
            pytest.skip("sharded inherits sym_len from its inner format")
        from repro.exec.partition import partition

        mat = seal(partition(convert(coo, "bro_ell"), 2))
    else:
        spec = _registry.get_spec(fmt)
        if not spec.accepts("sym_len") and sym_len != 32:
            pytest.skip(f"{fmt} has no sym_len knob")
        mat = seal(convert(coo, fmt, **_suite_kwargs(fmt, sym_len=sym_len)))
    _roundtrip_and_check(mat, tmp_path, f"{fmt}_{sym_len}")


def test_heap_load_matches_mmap(tmp_path):
    coo = generate("epb3", scale=0.01)
    mat = seal(convert(coo, "bro_ell", h=64))
    a = _roundtrip_and_check(mat, tmp_path, "mmap", mmap_arrays=True)
    b = _roundtrip_and_check(mat, tmp_path, "heap", mmap_arrays=False)
    x = np.random.default_rng(3).standard_normal(mat.shape[1])
    assert np.array_equal(run_spmv(a, x, "k20").y, run_spmv(b, x, "k20").y)


def test_unsealed_container_roundtrips_unsealed(tmp_path):
    coo = generate("epb3", scale=0.01)
    mat = convert(coo, "csr")
    path = tmp_path / "unsealed.brx"
    save_container(mat, path)
    loaded = load_container(path)
    assert get_header(loaded) is None
    assert content_fingerprint(loaded) is None
    x = np.random.default_rng(5).standard_normal(mat.shape[1])
    assert np.array_equal(run_spmv(mat, x, "k20").y,
                          run_spmv(loaded, x, "k20").y)


class TestPlanCacheWarmStart:
    def test_reloaded_container_content_hits(self, tmp_path):
        coo = generate("epb3", scale=0.01)
        mat = seal(convert(coo, "bro_ell", h=64))
        cache = PlanCache()
        device = get_device("k20")
        plan = cache.get_or_build(mat, device)
        assert cache.stats()["builds"] == 1

        path = tmp_path / "warm.brx"
        save_container(mat, path)
        loaded = load_container(path)
        plan2 = cache.get_or_build(loaded, device)
        stats = cache.stats()
        assert stats["builds"] == 1, "reload must not rebuild the plan"
        assert stats["content_hits"] >= 1
        x = np.random.default_rng(11).standard_normal(mat.shape[1])
        assert np.array_equal(plan.execute(x).y, plan2.execute(x).y)

    @pytest.mark.parametrize("fmt", NEW_FAMILIES)
    def test_new_family_reload_content_hits(self, fmt, tmp_path):
        coo = generate("epb3", scale=0.01)
        mat = seal(convert(coo, fmt, **_family_kwargs(fmt)))
        cache = PlanCache()
        device = get_device("k20")
        plan = cache.get_or_build(mat, device)
        assert cache.stats()["builds"] == 1

        path = tmp_path / f"warm_{fmt}.brx"
        save_container(mat, path)
        loaded = load_container(path)
        plan2 = cache.get_or_build(loaded, device)
        stats = cache.stats()
        assert stats["builds"] == 1, "reload must not rebuild the plan"
        assert stats["content_hits"] >= 1
        x = np.random.default_rng(13).standard_normal(mat.shape[1])
        assert np.array_equal(plan.execute(x).y, plan2.execute(x).y)

    def test_distinct_content_does_not_hit(self, tmp_path):
        cache = PlanCache()
        device = get_device("k20")
        a = seal(convert(generate("epb3", scale=0.01), "bro_ell", h=64))
        b = seal(convert(generate("dense2", scale=0.01), "bro_ell", h=64))
        cache.get_or_build(a, device)
        cache.get_or_build(b, device)
        assert cache.stats()["builds"] == 2


class TestMalformedFiles:
    def _sealed(self):
        coo = generate("epb3", scale=0.01)
        return seal(convert(coo, "bro_ell", h=64))

    def test_header_reads_back(self, tmp_path):
        path = tmp_path / "m.brx"
        save_container(self._sealed(), path)
        doc = read_header(path)
        assert doc["format"] == "bro_ell"
        assert doc["integrity"] is not None
        assert {e["name"] for e in doc["arrays"]} >= {"stream", "vals"}

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.brx"
        path.write_bytes(b"NOTABRXF" + b"\x00" * 32)
        with pytest.raises(SerializationError, match="magic"):
            load_container(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "vers.brx"
        save_container(self._sealed(), path)
        raw = bytearray(path.read_bytes())
        raw[8:12] = (SCHEMA_VERSION + 1).to_bytes(4, "little")
        path.write_bytes(bytes(raw))
        with pytest.raises(SerializationError, match="version"):
            load_container(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = tmp_path / "trunc.brx"
        save_container(self._sealed(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(SerializationError, match="truncated"):
            load_container(path)

    def test_flipped_payload_bit_fails_seal(self, tmp_path):
        path = tmp_path / "flip.brx"
        save_container(self._sealed(), path)
        raw = bytearray(path.read_bytes())
        assert raw[:8] == MAGIC
        raw[-1] ^= 0x40  # last payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(IntegrityError):
            load_container(path)
        # verify=False loads it anyway (for forensics).
        loaded = load_container(path, verify=False)
        assert loaded.format_name == "bro_ell"

    def test_unserializable_format_raises(self, tmp_path):
        mat = self._sealed()

        class Stub:
            format_name = "no_such_serializer"

        _registry.register_format(
            type("NoSerde", (), {"format_name": "no_such_serializer"})
        )
        try:
            with pytest.raises(FormatError, match="serializ"):
                save_container(Stub(), tmp_path / "x.brx")
        finally:
            _registry.unregister_format("no_such_serializer")
        # sanity: the real format still saves
        save_container(mat, tmp_path / "ok.brx")
