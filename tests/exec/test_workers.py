"""Process-backend sharded execution: the fault-tolerance acceptance bar.

With ``ExecutionPolicy(backend="process")`` and any single injected fault
per call, ``run_spmv`` must return ``y`` bit-identical to the
single-device reference with the recovery path visible
(``shard_reassignments >= 1``) — or raise a typed error. Never wrong
numbers.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ShardTimeoutError, ValidationError, WorkerFailureError
from repro.exec.chaos import PROCESS_FAULT_KINDS, ChaosPolicy
from repro.exec.engine import ShardedSpMVResult, shutdown_pools
from repro.exec.policy import ExecutionPolicy
from repro.exec.workers import worker_pool
from repro.exec.partition import partition
from repro.formats.conversion import convert
from repro.matrices.suite import generate
from repro.telemetry import metrics as M

FORMATS = ("bro_ell", "bro_coo", "bro_hyb", "csr")


@pytest.fixture(scope="module")
def coo():
    return generate("cant", scale=0.02, seed=0)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(17).standard_normal(coo.shape[1])


def _policy(**overrides):
    base = dict(
        devices=4, backend="process", shard_timeout_s=5.0, max_retries=3
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


class TestCleanProcessBackend:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_bit_identical_to_single_device(self, coo, x, fmt):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, fmt)
        try:
            base = run_spmv(mat, x, "k20")
            res = run_spmv(mat, x, "k20", policy=_policy())
            assert isinstance(res, ShardedSpMVResult)
            assert res.backend == "process"
            assert res.n_devices == 4
            assert np.array_equal(res.y, base.y)
            assert res.worker_deaths == 0
            assert res.shard_reassignments == 0
            assert res.retries == 0
        finally:
            assert shutdown_pools(mat) == 1

    def test_pool_is_reused_across_calls(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        pol = _policy(devices=2)
        try:
            first = run_spmv(mat, x, "k20", policy=pol)
            second = run_spmv(mat, x, "k20", policy=pol)
            assert np.array_equal(first.y, second.y)
        finally:
            # Both calls were served by ONE cached pool.
            assert shutdown_pools(mat) == 1

    def test_shutdown_is_idempotent(self, coo):
        mat = convert(coo, "csr")
        sharded = partition(mat, 2)
        pool = worker_pool(sharded, first_device(), _policy(devices=2))
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(ValidationError, match="shut down"):
            pool.execute(np.zeros(mat.shape[1]))
        assert shutdown_pools(sharded) == 0


def first_device():
    from repro.gpu.device import get_device

    return get_device("k20")


class TestFaultRecovery:
    """Acceptance: one injected fault per call, any kind × any format."""

    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("kind", PROCESS_FAULT_KINDS)
    def test_recovers_bit_identical(self, coo, x, fmt, kind):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, fmt)
        base = run_spmv(mat, x, "k20")
        chaos = ChaosPolicy(seed=3, kinds=(kind,), max_faults=1, stall_s=1.2)
        pol = _policy(shard_timeout_s=0.4, chaos=chaos)
        try:
            res = run_spmv(mat, x, "k20", policy=pol)
            assert np.array_equal(res.y, base.y), (fmt, kind)
            assert res.shard_reassignments >= 1
            assert res.retries >= 1
            if kind in ("kill-worker", "stall-worker"):
                assert res.worker_deaths >= 1
            else:  # transport corruption never kills the worker
                assert res.worker_deaths == 0
        finally:
            shutdown_pools(mat)

    def test_container_fault_kind_detected_and_retried(self, coo, x):
        """Integrity fault kinds corrupt the shard container copy; the
        checksum-verified worker run raises typed and the retry is clean."""
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "bro_ell")
        base = run_spmv(mat, x, "k20")
        chaos = ChaosPolicy(seed=5, kinds=("stream_bit_flip",), max_faults=1)
        try:
            res = run_spmv(mat, x, "k20", policy=_policy(chaos=chaos))
            assert np.array_equal(res.y, base.y)
            assert res.retries >= 1
        finally:
            shutdown_pools(mat)

    def test_recovery_events_name_the_failover(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        chaos = ChaosPolicy(seed=1, kinds=("kill-worker",), max_faults=1)
        try:
            res = run_spmv(mat, x, "k20", policy=_policy(chaos=chaos))
            events = [e["event"] for e in res.recovery_events]
            assert "worker_lost" in events
            assert "shard_reassigned" in events
            assert "worker_respawned" in events  # elastic default
        finally:
            shutdown_pools(mat)

    def test_exhausted_retries_raise_typed_worker_failure(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        # rate=1.0 with no budget: every call (and there is only one
        # attempt allowed) eats a kill — the shard can never finish.
        chaos = ChaosPolicy(seed=2, kinds=("kill-worker",), max_faults=1)
        try:
            with pytest.raises(WorkerFailureError, match="shard"):
                run_spmv(
                    mat, x, "k20", policy=_policy(max_retries=0, chaos=chaos)
                )
        finally:
            shutdown_pools(mat)

    def test_exhausted_stalls_raise_typed_timeout(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        chaos = ChaosPolicy(
            seed=4, kinds=("stall-worker",), max_faults=1, stall_s=2.0
        )
        try:
            with pytest.raises(ShardTimeoutError) as excinfo:
                run_spmv(
                    mat, x, "k20",
                    policy=_policy(
                        shard_timeout_s=0.3, max_retries=0, chaos=chaos
                    ),
                )
            assert excinfo.value.shard >= 0
            assert excinfo.value.timeout_s == pytest.approx(0.3)
        finally:
            shutdown_pools(mat)


class TestRecoveryAccounting:
    def test_metrics_expose_worker_events(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        chaos = ChaosPolicy(seed=3, kinds=("kill-worker",), max_faults=1)
        reg = M.MetricsRegistry()
        try:
            with telemetry.tracing(registry=reg):
                res = run_spmv(mat, x, "k20", policy=_policy(chaos=chaos))
            counters = reg.snapshot()["counters"]
            assert counters["exec.worker_deaths"] == res.worker_deaths >= 1
            assert (
                counters["exec.shard_reassignments"]
                == res.shard_reassignments >= 1
            )
            assert counters["exec.retries"] == res.retries >= 1
        finally:
            shutdown_pools(mat)

    def test_shard_counters_fold_into_kernel_metrics(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        reg = M.MetricsRegistry()
        try:
            with telemetry.tracing(registry=reg):
                res = run_spmv(mat, x, "k20", policy=_policy(devices=2))
            counters = reg.snapshot()["counters"]
            device_name = res.shard_results[0].device.name
            key = f'kernel.dram_bytes{{device="{device_name}",format="csr"}}'
            per_shard = sum(r.counters.dram_bytes for r in res.shard_results)
            assert counters[key] == per_shard
        finally:
            shutdown_pools(mat)


class TestElasticity:
    def test_inelastic_pool_survives_on_remaining_workers(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        chaos = ChaosPolicy(seed=6, kinds=("kill-worker",), max_faults=1)
        base = run_spmv(mat, x, "k20")
        try:
            res = run_spmv(
                mat, x, "k20", policy=_policy(elastic=False, chaos=chaos)
            )
            assert np.array_equal(res.y, base.y)
            assert res.worker_deaths == 1
            events = [e["event"] for e in res.recovery_events]
            assert "worker_respawned" not in events
        finally:
            shutdown_pools(mat)

    def test_elastic_pool_respawns_the_lost_slot(self, coo, x):
        from repro.kernels.dispatch import run_spmv

        mat = convert(coo, "csr")
        chaos = ChaosPolicy(seed=7, kinds=("kill-worker",), max_faults=1)
        pol = _policy(chaos=chaos)
        try:
            faulted = run_spmv(mat, x, "k20", policy=pol)
            assert faulted.worker_deaths == 1
            # The respawned slot serves the next (clean) call: all four
            # workers are live again and nothing needs recovery.
            clean = run_spmv(mat, x, "k20", policy=pol)
            assert np.array_equal(clean.y, faulted.y)
            assert clean.worker_deaths == 0
            assert clean.retries == 0
        finally:
            shutdown_pools(mat)
