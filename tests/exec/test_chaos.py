"""Chaos policy semantics and the zero-silent-corruption campaign."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.chaos import (
    DEFAULT_CAMPAIGN_KINDS,
    PROCESS_FAULT_KINDS,
    ChaosPolicy,
    ChaosState,
    run_chaos_campaign,
)


class TestChaosPolicyValidation:
    def test_defaults(self):
        pol = ChaosPolicy()
        assert pol.kinds == PROCESS_FAULT_KINDS
        assert pol.rate == 1.0
        assert pol.max_faults is None

    @pytest.mark.parametrize("kwargs", [
        {"kinds": ()},
        {"kinds": ("kill-worker", "")},
        {"rate": 0.0},
        {"rate": 1.5},
        {"max_faults": -1},
        {"stall_s": 0.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            ChaosPolicy(**kwargs)


class TestChaosState:
    def test_same_seed_replays_the_same_faults(self):
        a = ChaosState(ChaosPolicy(seed=9))
        b = ChaosState(ChaosPolicy(seed=9))
        plan_a = [a.plan_call(4) for _ in range(10)]
        plan_b = [b.plan_call(4) for _ in range(10)]
        assert plan_a == plan_b

    def test_max_faults_bounds_lifetime_injections(self):
        state = ChaosState(ChaosPolicy(seed=0, max_faults=2))
        events = [state.plan_call(4) for _ in range(20)]
        assert sum(e is not None for e in events) == 2
        # ... and the survivors are the first two calls (rate=1.0).
        assert events[0] is not None and events[1] is not None

    def test_event_call_index_tracks_engine_calls(self):
        state = ChaosState(ChaosPolicy(seed=0))
        events = [state.plan_call(4) for _ in range(3)]
        assert [e.call for e in events] == [0, 1, 2]

    def test_shard_pin_targets_one_shard(self):
        state = ChaosState(ChaosPolicy(seed=0, shard=2))
        assert all(state.plan_call(4).shard == 2 for _ in range(5))

    def test_rate_below_one_skips_calls(self):
        state = ChaosState(ChaosPolicy(seed=123, rate=0.2))
        events = [state.plan_call(4) for _ in range(50)]
        injected = sum(e is not None for e in events)
        assert 0 < injected < 50


class TestCampaign:
    def test_process_campaign_is_clean(self):
        report = run_chaos_campaign(
            formats=("csr",), kinds=PROCESS_FAULT_KINDS,
            workers=2, repeats=1, seed=0, shard_timeout_s=0.5,
        )
        assert report.injected == len(PROCESS_FAULT_KINDS)
        assert report.clean
        assert report.silent == 0 and report.untyped == 0
        # Every process fault on a 2-worker pool must exercise recovery.
        assert report.recovered == report.injected
        for trial in report.trials:
            assert trial.retries >= 1

    def test_container_faults_run_on_the_thread_backend(self):
        report = run_chaos_campaign(
            formats=("bro_ell",), kinds=("stream_bit_flip",),
            workers=2, backend="thread", seed=1,
        )
        assert report.clean
        assert report.injected == 1

    def test_thread_backend_rejects_process_only_kinds(self):
        with pytest.raises(ValidationError, match="process"):
            run_chaos_campaign(
                formats=("csr",), kinds=("kill-worker",), backend="thread"
            )

    def test_report_shape_round_trips_to_json(self):
        import json

        report = run_chaos_campaign(
            formats=("csr",), kinds=("corrupt-shard-result",), workers=2
        )
        doc = report.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["clean"] is True
        (row,) = doc["rows"]
        assert row["format"] == "csr"
        assert row["fault"] == "corrupt-shard-result"
        assert row["injected"] == 1

    def test_default_kind_matrix_includes_a_container_fault(self):
        assert set(PROCESS_FAULT_KINDS) < set(DEFAULT_CAMPAIGN_KINDS)
        assert "stream_bit_flip" in DEFAULT_CAMPAIGN_KINDS

    def test_campaign_is_deterministic_in_seed(self):
        kw = dict(
            formats=("csr",), kinds=("kill-worker",), workers=2, seed=42
        )
        a = run_chaos_campaign(**kw).to_dict()
        b = run_chaos_campaign(**kw).to_dict()
        assert a == b


class TestThreadBackendChaos:
    def test_process_only_kind_rejected_at_execution(self):
        from repro.exec.policy import ExecutionPolicy
        from repro.formats.conversion import convert
        from repro.kernels.dispatch import run_spmv
        from tests.conftest import random_coo

        coo = random_coo(128, 128, density=0.05, seed=0)
        mat = convert(coo, "csr")
        x = np.ones(128)
        chaos = ChaosPolicy(seed=0, kinds=("kill-worker",))
        pol = ExecutionPolicy(devices=2, backend="thread", chaos=chaos)
        with pytest.raises(ValidationError, match="process"):
            run_spmv(mat, x, "k20", policy=pol)
