"""Row partitioners and the ShardedMatrix container.

The greedy-nnz property tests cover the full TABLE2 suite: bounds are
always strictly increasing (no zero-row shard can exist), every row
lands in exactly one shard, and the concatenated shard products are
bit-identical to the unsharded product for every format the acceptance
matrix names ({bro_ell, bro_coo, bro_hyb, csr}).
"""

import numpy as np
import pytest

from repro.errors import FormatError, ValidationError
from repro.exec.partition import (
    ShardedMatrix,
    partition,
    partition_bounds,
    recover_conversion_kwargs,
)
from repro.formats.conversion import convert
from repro.matrices.suite import TABLE2, generate

from ..conftest import random_coo

FORMATS = ("bro_ell", "bro_coo", "bro_hyb", "csr")
PARTITIONERS = ("contiguous", "greedy-nnz", "slice-aligned")
SCALE = 0.02


@pytest.fixture(scope="module")
def suite():
    """All TABLE2 matrices generated once at a small scale."""
    return {name: generate(name, scale=SCALE, seed=0) for name in sorted(TABLE2)}


class TestBoundsProperties:
    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_every_table2_matrix_partitions_cleanly(self, suite, partitioner):
        for name, coo in suite.items():
            m = coo.shape[0]
            for devices in (1, 2, 4):
                bounds = partition_bounds(coo, devices, partitioner)
                assert bounds[0] == 0 and bounds[-1] == m, name
                # Strictly increasing bounds == no shard has zero rows.
                assert np.all(np.diff(bounds) > 0), (name, partitioner, devices)
                assert len(bounds) == devices + 1, name

    def test_every_row_in_exactly_one_shard(self, suite):
        for name, coo in suite.items():
            bounds = partition_bounds(coo, 4, "greedy-nnz")
            covered = np.concatenate([
                np.arange(b0, b1) for b0, b1 in zip(bounds[:-1], bounds[1:])
            ])
            assert np.array_equal(covered, np.arange(coo.shape[0])), name

    def test_greedy_nnz_balances_better_than_contiguous_on_skew(self):
        # Heavily skewed rows: first rows dense, rest nearly empty.
        rng = np.random.default_rng(7)
        rows, cols = [], []
        for r in range(64):
            k = 120 if r < 8 else 2
            rows.extend([r] * k)
            cols.extend(rng.integers(0, 512, size=k).tolist())
        from repro.formats.coo import COOMatrix

        coo = COOMatrix(np.array(rows), np.array(cols),
                        np.ones(len(rows)), (64, 512))
        nnz_per_row = np.bincount(coo.row_idx, minlength=64)

        def imbalance(bounds):
            loads = [nnz_per_row[b0:b1].sum()
                     for b0, b1 in zip(bounds[:-1], bounds[1:])]
            return max(loads) / (sum(loads) / len(loads))

        greedy = imbalance(partition_bounds(coo, 4, "greedy-nnz"))
        contig = imbalance(partition_bounds(coo, 4, "contiguous"))
        assert greedy < contig

    def test_slice_aligned_inner_bounds_are_h_multiples(self):
        coo = random_coo(2048, 512, density=0.02, seed=3)
        mat = convert(coo, "bro_ell", h=256)
        bounds = partition_bounds(mat, 4, "slice-aligned")
        for b in bounds[1:-1]:
            assert b % 256 == 0

    def test_more_devices_than_rows_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            partition_bounds(paper_matrix, 10, "greedy-nnz")

    def test_unknown_partitioner_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            partition_bounds(paper_matrix, 2, "round-robin")


class TestBitIdentity:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_all_table2_sharded_products_bit_identical(self, suite, fmt):
        for name, coo in suite.items():
            mat = convert(coo, fmt)
            x = np.random.default_rng(11).standard_normal(mat.shape[1])
            y = mat.spmv(x)
            for devices in (1, 2, 4):
                sharded = partition(mat, devices)
                assert np.array_equal(sharded.spmv(x), y), (name, fmt, devices)

    @pytest.mark.parametrize("partitioner", PARTITIONERS)
    def test_partitioner_choice_preserves_bits(self, partitioner):
        coo = generate("cant", scale=SCALE, seed=0)
        mat = convert(coo, "bro_ell")
        x = np.random.default_rng(5).standard_normal(mat.shape[1])
        sharded = partition(mat, 4, partitioner)
        assert np.array_equal(sharded.spmv(x), mat.spmv(x))


class TestShardedContainer:
    @pytest.fixture(scope="class")
    def sharded(self):
        coo = generate("cant", scale=SCALE, seed=0)
        return partition(convert(coo, "bro_ell"), 4)

    def test_shard_shapes_and_nnz(self, sharded):
        assert sharded.n_shards == 4
        assert sum(s.shape[0] for s in sharded.shards) == sharded.shape[0]
        assert sum(s.nnz for s in sharded.shards) == sharded.nnz

    def test_manifest_schema(self, sharded):
        man = sharded.manifest()
        assert man["devices"] == 4
        assert man["inner_format"] == "bro_ell"
        assert man["partitioner"] == "greedy-nnz"
        assert len(man["shards"]) == 4
        for i, row in enumerate(man["shards"]):
            assert row["index"] == i
            assert row["rows"] == row["row_end"] - row["row_start"] > 0
            assert row["nnz"] > 0

    def test_to_coo_round_trip(self, sharded):
        coo = sharded.to_coo()
        assert coo.shape == sharded.shape
        assert coo.nnz == sharded.nnz

    def test_from_coo_refused_with_hint(self, paper_matrix):
        with pytest.raises(FormatError, match="partition"):
            ShardedMatrix.from_coo(paper_matrix)

    def test_repartitioning_a_sharded_matrix(self, sharded):
        re2 = partition(sharded, 2)
        assert re2.n_shards == 2
        x = np.random.default_rng(9).standard_normal(sharded.shape[1])
        assert np.array_equal(re2.spmv(x), sharded.spmv(x))

    def test_partition_cache_on_engine_view(self):
        from repro.exec.engine import sharded_view

        coo = generate("dense2", scale=0.05, seed=0)
        mat = convert(coo, "bro_ell")
        a = sharded_view(mat, 2)
        b = sharded_view(mat, 2)
        assert a is b
        assert sharded_view(mat, 4) is not a


class TestConversionKwargRecovery:
    def test_bro_ell_kwargs(self):
        coo = random_coo(600, 300, density=0.03, seed=1)
        mat = convert(coo, "bro_ell", h=64, sym_len=64)
        kwargs = recover_conversion_kwargs(mat)
        assert kwargs["h"] == 64
        assert kwargs["sym_len"] == 64

    def test_bro_hyb_pins_global_split(self):
        coo = random_coo(600, 300, density=0.03, seed=2)
        mat = convert(coo, "bro_hyb")
        kwargs = recover_conversion_kwargs(mat)
        # k is pinned so shard-local Bell-Garland splits cannot diverge.
        assert kwargs["k"] == int(mat.ell.row_lengths.max())

    def test_sharded_brx_round_trip_with_manifest(self, tmp_path):
        from repro.serialize import load_container, read_manifest, save_container

        coo = generate("dense2", scale=0.05, seed=0)
        sharded = partition(convert(coo, "bro_ell"), 4)
        path = tmp_path / "sharded.brx"
        save_container(sharded, path)

        man = read_manifest(path)
        assert man is not None and man["devices"] == 4
        assert [s["nnz"] for s in man["shards"]] == \
            [s.nnz for s in sharded.shards]

        loaded = load_container(path)
        assert isinstance(loaded, ShardedMatrix)
        x = np.random.default_rng(3).standard_normal(sharded.shape[1])
        assert np.array_equal(loaded.spmv(x), sharded.spmv(x))

    def test_read_manifest_none_for_plain_container(self, tmp_path):
        from repro.serialize import read_manifest, save_container

        coo = generate("dense2", scale=0.05, seed=0)
        path = tmp_path / "plain.brx"
        save_container(convert(coo, "bro_ell"), path)
        assert read_manifest(path) is None
