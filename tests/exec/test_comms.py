"""Interconnect traffic model: broadcast vs halo at cacheline granularity."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.comms import model_comms
from repro.exec.partition import partition
from repro.formats.conversion import convert
from repro.formats.coo import COOMatrix
from repro.gpu.device import get_device

from ..conftest import random_coo

K20 = get_device("k20")
LINE = K20.interconnect_line_bytes


def banded_matrix(m=2048, band=4):
    """Tridiagonal-ish band: column reach stays local to the row block."""
    rows, cols = [], []
    for r in range(m):
        for c in range(max(0, r - band), min(m, r + band + 1)):
            rows.append(r)
            cols.append(c)
    vals = np.ones(len(rows))
    return COOMatrix(np.array(rows), np.array(cols), vals, (m, m))


class TestSingleDevice:
    def test_no_traffic(self):
        sharded = partition(convert(random_coo(256, 256, 0.05, seed=0), "csr"), 1)
        rep = model_comms(sharded, K20)
        assert rep.total_bytes == 0
        assert rep.messages == 0
        assert rep.x_bytes_per_device == (0,)


class TestBroadcast:
    def test_bytes_are_pattern_independent(self):
        dense_cols = random_coo(1024, 1024, 0.08, seed=1)
        sparse_cols = banded_matrix(1024)
        a = model_comms(partition(convert(dense_cols, "csr"), 4), K20, "broadcast")
        b = model_comms(partition(convert(sparse_cols, "csr"), 4), K20, "broadcast")
        assert a.broadcast_bytes == b.broadcast_bytes > 0

    def test_critical_path_messages(self):
        sharded = partition(convert(random_coo(1024, 1024, 0.05, seed=2), "csr"), 4)
        rep = model_comms(sharded, K20, "broadcast")
        # Each device receives the other three owners' chunks on its link.
        assert rep.messages == 3

    def test_cacheline_granularity(self):
        sharded = partition(convert(random_coo(500, 333, 0.05, seed=3), "csr"), 4)
        rep = model_comms(sharded, K20, "broadcast")
        assert rep.broadcast_bytes % LINE == 0
        for b in rep.x_bytes_per_device:
            assert b % LINE == 0


class TestHalo:
    def test_banded_matrix_needs_almost_no_halo(self):
        sharded = partition(convert(banded_matrix(), "csr"), 4)
        rep = model_comms(sharded, K20, "halo")
        # Only the lines straddling the four ownership boundaries move.
        assert 0 < rep.halo_bytes < rep.broadcast_bytes / 10

    def test_full_column_reach_floors_at_broadcast(self):
        # Every shard touches every column: halo degenerates to all
        # remote lines, which equals the broadcast volume.
        sharded = partition(convert(random_coo(512, 512, 0.5, seed=4), "csr"), 4)
        rep = model_comms(sharded, K20, "halo")
        assert rep.halo_bytes == rep.broadcast_bytes

    def test_messages_bounded_by_remote_owners(self):
        sharded = partition(convert(banded_matrix(), "csr"), 4)
        rep = model_comms(sharded, K20, "halo")
        # A band only straddles adjacent ownership boundaries.
        assert 1 <= rep.messages <= 2


class TestAutoSelection:
    def test_auto_picks_the_cheaper_strategy(self):
        for coo in (banded_matrix(), random_coo(512, 512, 0.5, seed=5)):
            sharded = partition(convert(coo, "csr"), 4)
            rep = model_comms(sharded, K20, "auto")
            assert rep.x_bytes == min(rep.broadcast_bytes, rep.halo_bytes)

    def test_banded_prefers_halo(self):
        rep = model_comms(partition(convert(banded_matrix(), "csr"), 4),
                          K20, "auto")
        assert rep.strategy == "halo"


class TestReportMechanics:
    def test_cached_per_matrix_and_strategy(self):
        sharded = partition(convert(random_coo(256, 256, 0.05, seed=6), "csr"), 2)
        a = model_comms(sharded, K20, "auto")
        assert model_comms(sharded, K20, "auto") is a
        assert model_comms(sharded, K20, "broadcast") is not a

    def test_gather_bytes_informational_not_charged(self):
        sharded = partition(convert(random_coo(512, 512, 0.05, seed=7), "csr"), 4)
        rep = model_comms(sharded, K20)
        assert rep.gather_bytes >= sharded.shape[0] * 8
        assert rep.total_bytes == rep.x_bytes  # y-gather not included

    def test_to_dict_round_trips_json(self):
        import json

        sharded = partition(convert(random_coo(256, 256, 0.05, seed=8), "csr"), 2)
        doc = model_comms(sharded, K20).to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["devices"] == 2

    def test_unknown_strategy_rejected(self):
        sharded = partition(convert(random_coo(64, 64, 0.1, seed=9), "csr"), 2)
        with pytest.raises(ValidationError):
            model_comms(sharded, K20, "multicast")
