"""ExecutionPolicy validation and the deprecated-keyword shims.

Satellite (a) of the execution-API redesign: every legacy keyword on
``run_spmv`` / ``run_spmm`` / ``Session`` / ``SimulatedOperator`` must
keep working for one release, emit a ``DeprecationWarning`` naming the
caller, and refuse to be mixed with an explicit ``policy=``.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.policy import UNSET, ExecutionPolicy, coerce_policy
from repro.formats.conversion import convert
from repro.kernels.dispatch import run_spmm, run_spmv
from repro.pipeline import Session
from repro.solvers.operators import SimulatedOperator

from ..conftest import random_coo


@pytest.fixture(scope="module")
def mat():
    return convert(random_coo(512, 512, density=0.02, seed=0), "bro_ell")


@pytest.fixture(scope="module")
def x(mat):
    return np.random.default_rng(1).standard_normal(mat.shape[1])


class TestPolicyValidation:
    def test_defaults(self):
        pol = ExecutionPolicy()
        assert pol.engine == "auto"
        assert pol.verify is False
        assert pol.devices == 1
        assert pol.partitioner == "greedy-nnz"
        assert pol.comms == "auto"
        assert not pol.sharded

    def test_verify_normalization(self):
        assert ExecutionPolicy(verify=True).verify == "checksum"
        assert ExecutionPolicy(verify=None).verify is False
        assert ExecutionPolicy(verify="full").verify == "full"

    @pytest.mark.parametrize("kwargs", [
        {"engine": "turbo"},
        {"verify": "paranoid"},
        {"devices": 0},
        {"devices": 2.5},
        {"partitioner": "round-robin"},
        {"comms": "carrier-pigeon"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            ExecutionPolicy(**kwargs)

    def test_explicit_plan_incompatible_with_sharding(self, mat):
        from repro.kernels.plan import prepare

        plan = prepare(mat, "k20")
        with pytest.raises(ValidationError, match="multi-device"):
            ExecutionPolicy(devices=2, plan=plan)

    def test_with_returns_validated_copy(self):
        pol = ExecutionPolicy()
        sharded = pol.with_(devices=4)
        assert sharded.devices == 4 and pol.devices == 1
        assert sharded.sharded
        with pytest.raises(ValidationError):
            pol.with_(engine="nope")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPolicy().engine = "fast"

    def test_describe_is_jsonable(self):
        import json

        doc = ExecutionPolicy(devices=2, verify="full").describe()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["devices"] == 2 and doc["verify"] == "full"


class TestCoercePolicy:
    def test_neither_gives_default(self):
        assert coerce_policy(None, caller="t") == ExecutionPolicy()

    def test_policy_passes_through_unchanged(self):
        pol = ExecutionPolicy(devices=2)
        assert coerce_policy(pol, caller="t") is pol

    def test_legacy_keywords_fold_with_warning(self):
        with pytest.warns(DeprecationWarning, match=r"t: .*verify.*deprecated"):
            pol = coerce_policy(None, caller="t", verify="checksum")
        assert pol.verify == "checksum"

    def test_mixing_raises(self):
        with pytest.raises(ValidationError, match="not both"):
            coerce_policy(ExecutionPolicy(), caller="t", engine="fast")

    def test_non_policy_object_rejected(self):
        with pytest.raises(ValidationError, match="ExecutionPolicy"):
            coerce_policy({"engine": "fast"}, caller="t")

    def test_unset_sentinel_means_not_passed(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pol = coerce_policy(None, caller="t", verify=UNSET, engine=UNSET)
        assert pol == ExecutionPolicy()


class TestDeprecatedEntryPointShims:
    def test_run_spmv_legacy_kwarg_warns(self, mat, x):
        with pytest.warns(DeprecationWarning, match="run_spmv"):
            res = run_spmv(mat, x, "k20", engine="reference")
        ref = run_spmv(mat, x, "k20",
                       policy=ExecutionPolicy(engine="reference"))
        assert np.array_equal(res.y, ref.y)

    def test_run_spmm_legacy_kwarg_warns(self, mat, x):
        X = np.stack([x, 2 * x], axis=1)
        with pytest.warns(DeprecationWarning, match="run_spmm"):
            res = run_spmm(mat, X, "k20", engine="reference")
        assert res.y.shape == (mat.shape[0], 2)

    def test_session_legacy_kwarg_warns(self, mat, x):
        with pytest.warns(DeprecationWarning, match="Session"):
            sess = Session("k20", verify="structure")
        assert sess.policy.verify == "structure"
        assert np.array_equal(
            sess.use(mat).execute(x).y,
            Session("k20").use(mat).execute(x).y,
        )

    def test_operator_legacy_kwarg_warns(self, mat):
        with pytest.warns(DeprecationWarning, match="SimulatedOperator"):
            op = SimulatedOperator(mat, "k20", engine="reference")
        assert op.engine == "reference"

    def test_run_spmv_mixing_policy_and_legacy_raises(self, mat, x):
        with pytest.raises(ValidationError, match="not both"):
            run_spmv(mat, x, "k20",
                     policy=ExecutionPolicy(), engine="reference")

    def test_session_mixing_policy_and_legacy_raises(self):
        with pytest.raises(ValidationError, match="not both"):
            Session("k20", policy=ExecutionPolicy(), verify="full")

    def test_policy_only_call_is_warning_free(self, mat, x):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spmv(mat, x, "k20", policy=ExecutionPolicy(engine="reference"))
            Session("k20", policy=ExecutionPolicy()).use(mat).execute(x)


class TestSessionPolicyView:
    def test_session_fills_plan_cache_for_fast_engines(self):
        sess = Session("k20", policy=ExecutionPolicy())
        assert sess.plan_cache is not None
        ref = Session("k20", policy=ExecutionPolicy(engine="reference"))
        assert ref.plan_cache is None

    def test_property_setters_update_policy(self):
        sess = Session("k20")
        sess.verify = "checksum"
        assert sess.policy.verify == "checksum"
        sess.fallback = None
        assert sess.policy.fallback is None

    def test_describe_reports_devices(self, mat):
        sess = Session("k20", policy=ExecutionPolicy(devices=4)).use(mat)
        assert sess.describe()["devices"] == 4
