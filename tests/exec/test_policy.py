"""ExecutionPolicy validation and the policy-only entry points.

The pre-policy loose keywords (``verify=``/``fallback=``/``engine=``/
``plan=``/``plan_cache=``) were deprecated shims for one release and are
now removed: every entry point accepts ``policy=`` only, and passing a
legacy keyword is a plain ``TypeError``. The new fault-tolerance fields
(``backend``/``shard_timeout_s``/``max_retries``/``elastic``/``chaos``)
validate like the rest of the frozen dataclass.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.chaos import ChaosPolicy
from repro.exec.policy import ExecutionPolicy
from repro.kernels.dispatch import run_spmm, run_spmv
from repro.pipeline import Session
from repro.solvers.operators import SimulatedOperator

from ..conftest import random_coo
from repro.formats.conversion import convert


@pytest.fixture(scope="module")
def mat():
    return convert(random_coo(512, 512, density=0.02, seed=0), "bro_ell")


@pytest.fixture(scope="module")
def x(mat):
    return np.random.default_rng(1).standard_normal(mat.shape[1])


class TestPolicyValidation:
    def test_defaults(self):
        pol = ExecutionPolicy()
        assert pol.engine == "auto"
        assert pol.verify is False
        assert pol.devices == 1
        assert pol.partitioner == "greedy-nnz"
        assert pol.comms == "auto"
        assert pol.backend == "thread"
        assert pol.shard_timeout_s is None
        assert pol.max_retries == 2
        assert pol.elastic is True
        assert pol.chaos is None
        assert not pol.sharded

    def test_verify_normalization(self):
        assert ExecutionPolicy(verify=True).verify == "checksum"
        assert ExecutionPolicy(verify=None).verify is False
        assert ExecutionPolicy(verify="full").verify == "full"

    @pytest.mark.parametrize("kwargs", [
        {"engine": "turbo"},
        {"verify": "paranoid"},
        {"devices": 0},
        {"devices": 2.5},
        {"partitioner": "round-robin"},
        {"comms": "carrier-pigeon"},
        {"backend": "mpi"},
        {"shard_timeout_s": 0.0},
        {"shard_timeout_s": -1.0},
        {"max_retries": -1},
        {"max_retries": 1.5},
        {"chaos": "kill-worker"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            ExecutionPolicy(**kwargs)

    def test_explicit_plan_incompatible_with_sharding(self, mat):
        from repro.kernels.plan import prepare

        plan = prepare(mat, "k20")
        with pytest.raises(ValidationError, match="multi-device"):
            ExecutionPolicy(devices=2, plan=plan)

    def test_with_returns_validated_copy(self):
        pol = ExecutionPolicy()
        sharded = pol.with_(devices=4)
        assert sharded.devices == 4 and pol.devices == 1
        assert sharded.sharded
        with pytest.raises(ValidationError):
            pol.with_(engine="nope")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionPolicy().engine = "fast"

    def test_describe_is_jsonable(self):
        import json

        doc = ExecutionPolicy(
            devices=2, verify="full", backend="process",
            shard_timeout_s=1.5, chaos=ChaosPolicy(seed=3),
        ).describe()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["devices"] == 2 and doc["verify"] == "full"
        assert doc["backend"] == "process"
        assert doc["shard_timeout_s"] == 1.5
        assert doc["chaos"] is True

    def test_chaos_accepts_policy_instance(self):
        chaos = ChaosPolicy(seed=1, kinds=("kill-worker",))
        pol = ExecutionPolicy(backend="process", chaos=chaos)
        assert pol.chaos is chaos


class TestLegacyKeywordsRemoved:
    """The deprecation window is over: legacy kwargs are TypeErrors now."""

    def test_run_spmv_rejects_legacy_kwargs(self, mat, x):
        with pytest.raises(TypeError):
            run_spmv(mat, x, "k20", engine="reference")
        with pytest.raises(TypeError):
            run_spmv(mat, x, "k20", verify="checksum")

    def test_run_spmm_rejects_legacy_kwargs(self, mat, x):
        X = np.stack([x, 2 * x], axis=1)
        with pytest.raises(TypeError):
            run_spmm(mat, X, "k20", engine="reference")

    def test_session_rejects_legacy_kwargs(self):
        with pytest.raises(TypeError):
            Session("k20", verify="structure")

    def test_operator_rejects_legacy_kwargs(self, mat):
        with pytest.raises(TypeError):
            SimulatedOperator(mat, "k20", engine="reference")

    def test_policy_module_no_longer_exports_shims(self):
        import repro.exec.policy as policy_mod

        assert not hasattr(policy_mod, "coerce_policy")
        assert not hasattr(policy_mod, "UNSET")

    def test_policy_only_call_is_warning_free(self, mat, x):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_spmv(mat, x, "k20", policy=ExecutionPolicy(engine="reference"))
            Session("k20", policy=ExecutionPolicy()).use(mat).run(x)


class TestSessionPolicyView:
    def test_session_fills_plan_cache_for_fast_engines(self):
        sess = Session("k20", policy=ExecutionPolicy())
        assert sess.plan_cache is not None
        ref = Session("k20", policy=ExecutionPolicy(engine="reference"))
        assert ref.plan_cache is None

    def test_property_setters_update_policy(self):
        sess = Session("k20")
        sess.verify = "checksum"
        assert sess.policy.verify == "checksum"
        sess.fallback = None
        assert sess.policy.fallback is None

    def test_describe_reports_devices(self, mat):
        sess = Session("k20", policy=ExecutionPolicy(devices=4)).use(mat)
        assert sess.describe()["devices"] == 4
