"""Distributed-telemetry acceptance: the ISSUE 7 tentpole, end to end.

A 4-device ``backend="process"`` run with telemetry enabled must produce

* a Chrome trace with one process lane per worker whose spans nest under
  the coordinator's ``spmv.dispatch`` span,
* a merged registry snapshot equal to the sum of the per-worker
  snapshots, with ``kernel.*`` counters bit-identical to the thread
  backend,
* per-worker latency histograms with working exact percentiles,

and with telemetry disabled the telemetry queue must carry no traffic.
"""

import queue as _queue
from types import SimpleNamespace

import numpy as np
import pytest

from repro import telemetry
from repro.exec.engine import execute_sharded, sharded_view, shutdown_pools
from repro.exec.policy import ExecutionPolicy
from repro.exec.workers import worker_pool
from repro.formats.conversion import convert
from repro.gpu.device import get_device
from repro.kernels.dispatch import run_spmv
from repro.matrices.suite import generate
from repro.telemetry import metrics as M
from repro.telemetry import remote
from repro.telemetry.exporters import chrome_trace_events
from repro.telemetry.metrics import (
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)

N_DEVICES = 4


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture(scope="module")
def mat():
    return convert(generate("cant", scale=0.02, seed=0), "csr")


@pytest.fixture(scope="module")
def x(mat):
    return np.random.default_rng(17).standard_normal(mat.shape[1])


@pytest.fixture(scope="module")
def traced(mat, x):
    """One traced 4-worker process run, shared by the lane/nesting tests."""
    telemetry.disable()
    policy = ExecutionPolicy(devices=N_DEVICES, backend="process")
    with telemetry.tracing() as tracer:
        result = run_spmv(mat, x, "k20", policy=policy)
        snapshot = telemetry.metrics.registry().snapshot()
    shutdown_pools(mat)
    return SimpleNamespace(tracer=tracer, result=result, snapshot=snapshot)


class TestChromeLanes:
    def test_one_lane_per_worker(self, traced):
        events = chrome_trace_events(traced.tracer)
        lanes = sorted({e["pid"] for e in events if e["ph"] == "X"})
        assert lanes == [1, 2, 3, 4, 5]  # coordinator + 4 workers

    def test_lane_metadata_events(self, traced):
        events = chrome_trace_events(traced.tracer)
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names[1] == "coordinator"
        for slot in range(N_DEVICES):
            assert names[2 + slot].startswith(f"worker {slot}")
        threads = [e for e in events
                   if e.get("ph") == "M" and e["name"] == "thread_name"]
        assert len(threads) == 1 + N_DEVICES

    def test_worker_spans_nest_under_dispatch(self, traced):
        tracer = traced.tracer
        by_id = {s.span_id: s for s in tracer.spans}
        roots = [s for s in tracer.spans if s.name == "worker.task"]
        assert len(roots) == N_DEVICES
        assert {s.attrs["worker"] for s in roots} == set(range(N_DEVICES))
        for s in roots:
            ancestors = []
            cur = s
            while cur.parent_id is not None:
                cur = by_id[cur.parent_id]
                ancestors.append(cur.name)
            assert "exec.sharded" in ancestors
            assert "spmv.dispatch" in ancestors

    def test_worker_spans_contain_kernel_work(self, traced):
        tracer = traced.tracer
        worker_spans = [s for s in tracer.spans
                        if s.attrs.get("worker") is not None]
        kernels = [s for s in worker_spans if s.name.startswith("kernel.")]
        assert len(kernels) >= N_DEVICES
        for s in kernels:
            assert s.attrs["trace_id"] == tracer.trace_id

    def test_trace_serializes_to_json(self, traced):
        import json

        text = telemetry.to_chrome_trace(traced.tracer)
        parsed = json.loads(text)
        assert any(e.get("ph") == "M" for e in parsed)


class TestMergedEqualsSum:
    def test_pool_batches_sum_to_the_merged_registry(self, mat, x):
        sharded = sharded_view(mat, N_DEVICES, "greedy-nnz")
        device = get_device("k20")
        policy = ExecutionPolicy(devices=N_DEVICES, backend="process")
        pool = worker_pool(sharded, device, policy)
        try:
            _, stats = pool.execute(x, telem=("trace-x", None))
        finally:
            shutdown_pools(mat)
        batches = stats.telemetry
        assert len(batches) == N_DEVICES
        assert {b["worker"] for b in batches} == set(range(N_DEVICES))

        merged_reg = MetricsRegistry()
        remote.merge_batches(merged_reg, batches)
        merged = merged_reg.snapshot()

        per_worker = []
        for b in batches:
            one = MetricsRegistry()
            one.merge(b["snapshot"], {"worker": str(b["worker"])})
            per_worker.append(one.snapshot())
        assert merge_snapshots(per_worker) == merged

    def test_kernel_counters_bit_identical_to_thread_backend(self, mat, x):
        device = get_device("k20")

        def run(backend):
            reg = MetricsRegistry()
            M.start_collecting(reg)
            try:
                result = execute_sharded(
                    mat, x, device,
                    ExecutionPolicy(devices=N_DEVICES, backend=backend),
                )
            finally:
                M.stop_collecting()
                if backend == "process":
                    shutdown_pools(mat)
            return result, reg.snapshot()

        r_thread, s_thread = run("thread")
        r_process, s_process = run("process")
        assert np.array_equal(r_thread.y, r_process.y)

        def kernel_series(snap):
            return {
                k: v for k, v in snap["counters"].items()
                if k.startswith("kernel.") and "worker=" not in k
            }

        assert kernel_series(s_thread) == kernel_series(s_process)

    def test_worker_labelled_series_present_when_collecting(self, traced):
        worker_keys = [k for k in traced.snapshot["counters"]
                       if "worker=" in k]
        assert worker_keys, "merged snapshot must carry worker= series"
        workers = set()
        for k in worker_keys:
            _, labels = M._parse_key(k)
            workers.add(labels["worker"])
        assert workers == {str(w) for w in range(N_DEVICES)}


class TestLatencyHistograms:
    def test_per_worker_p99_recorded_on_process_backend(self, traced):
        hists = {
            k: d for k, d in traced.snapshot["histograms"].items()
            if k.startswith("exec.shard_latency_seconds")
        }
        assert len(hists) == N_DEVICES
        for d in hists.values():
            h = Histogram(LATENCY_BUCKETS)
            h.merge_dict(d)
            assert h.count >= 1
            assert h.percentile(99) > 0.0
            assert (h.percentile(50) <= h.percentile(95)
                    <= h.percentile(99))

    def test_thread_backend_records_latency_too(self, mat, x):
        reg = MetricsRegistry()
        M.start_collecting(reg)
        try:
            execute_sharded(
                mat, x, "k20",
                ExecutionPolicy(devices=N_DEVICES, backend="thread"),
            )
        finally:
            M.stop_collecting()
        keys = [k for k in reg.snapshot()["histograms"]
                if k.startswith("exec.shard_latency_seconds")]
        assert len(keys) == N_DEVICES


class TestDisabledPath:
    def test_no_queue_traffic_when_disabled(self, mat, x):
        assert not telemetry.enabled() and not M.collecting()
        sharded = sharded_view(mat, N_DEVICES, "greedy-nnz")
        policy = ExecutionPolicy(devices=N_DEVICES, backend="process")
        pool = worker_pool(sharded, get_device("k20"), policy)
        try:
            _, stats = pool.execute(x)  # no trace context
            assert stats.telemetry == []
            # give any (erroneous) late writer a moment, then assert empty
            with pytest.raises(_queue.Empty):
                pool._telemetry.get(timeout=0.2)
        finally:
            shutdown_pools(mat)

    def test_result_still_bit_identical_without_telemetry(self, mat, x):
        base = run_spmv(mat, x, "k20")
        res = run_spmv(
            mat, x, "k20",
            policy=ExecutionPolicy(devices=N_DEVICES, backend="process"),
        )
        shutdown_pools(mat)
        assert np.array_equal(res.y, base.y)
