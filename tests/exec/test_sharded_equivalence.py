"""Dispatch-level acceptance: sharded execution through ``run_spmv``.

For every acceptance format × device count the sharded product must be
bit-identical to the single-device product, and the merged counters
must equal the per-shard sum in every field plus the modeled
interconnect bytes.
"""

import dataclasses

import numpy as np
import pytest

from repro.exec.engine import ShardedSpMVResult
from repro.exec.policy import ExecutionPolicy
from repro.exec.partition import ShardedMatrix, partition
from repro.formats.conversion import convert
from repro.gpu.timing import MultiDeviceBreakdown
from repro.integrity import seal
from repro.kernels.dispatch import run_spmm, run_spmv
from repro.matrices.suite import generate
from repro.pipeline import Session

FORMATS = ("bro_ell", "bro_coo", "bro_hyb", "csr")


@pytest.fixture(scope="module")
def coo():
    return generate("cant", scale=0.02, seed=0)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(17).standard_normal(coo.shape[1])


def assert_counters_merge(result):
    """Merged counters == per-shard aggregate, plus comms on interconnect.

    Every field sums across shards except ``threads``, which
    ``KernelCounters.__add__`` deliberately maxes (the occupancy model
    must see the largest concurrent grid, not a phantom combined one).
    """
    for f in dataclasses.fields(result.counters):
        per_shard = [getattr(r.counters, f.name) for r in result.shard_results]
        merged = getattr(result.counters, f.name)
        if f.name == "interconnect_bytes":
            assert merged == sum(per_shard) + result.comms.total_bytes, f.name
        elif f.name == "threads":
            assert merged == max(per_shard), f.name
        else:
            assert merged == sum(per_shard), f.name


class TestDispatchBitIdentity:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_y_and_counters_across_device_counts(self, coo, x, fmt):
        mat = convert(coo, fmt)
        base = run_spmv(mat, x, "k20")
        for devices in (1, 2, 4):
            pol = ExecutionPolicy(devices=devices)
            res = run_spmv(mat, x, "k20", policy=pol)
            assert np.array_equal(res.y, base.y), (fmt, devices)
            if devices == 1:
                assert not isinstance(res, ShardedSpMVResult)
            else:
                assert isinstance(res, ShardedSpMVResult)
                assert res.n_devices == devices
                assert_counters_merge(res)
                assert res.counters.interconnect_bytes > 0

    def test_fast_and_reference_engines_agree_sharded(self, coo, x):
        mat = convert(coo, "bro_ell")
        fast = run_spmv(mat, x, "k20",
                        policy=ExecutionPolicy(engine="fast", devices=4))
        ref = run_spmv(mat, x, "k20",
                       policy=ExecutionPolicy(engine="reference", devices=4))
        assert np.array_equal(fast.y, ref.y)


class TestShardedTiming:
    def test_timing_is_multi_device_breakdown(self, coo, x):
        mat = convert(coo, "csr")
        res = run_spmv(mat, x, "k20", policy=ExecutionPolicy(devices=4))
        t = res.timing
        assert isinstance(t, MultiDeviceBreakdown)
        assert t.t_comm > 0
        assert t.time >= t.t_comm
        assert t.messages == res.comms.messages

    def test_kernel_phase_is_slowest_shard(self, coo, x):
        mat = convert(coo, "csr")
        res = run_spmv(mat, x, "k20", policy=ExecutionPolicy(devices=4))
        slowest = max(r.timing.time for r in res.shard_results)
        assert res.timing.t_kernel == pytest.approx(slowest)


class TestShardedSpMM:
    def test_columns_match_spmv(self, coo):
        mat = convert(coo, "bro_ell")
        X = np.random.default_rng(3).standard_normal((mat.shape[1], 3))
        pol = ExecutionPolicy(devices=2)
        block = run_spmm(mat, X, "k20", policy=pol)
        for j in range(3):
            single = run_spmv(mat, X[:, j], "k20", policy=pol)
            assert np.array_equal(block.y[:, j], single.y)


class TestIntegrityComposition:
    def test_verify_runs_before_sharding(self, coo, x):
        mat = seal(convert(coo, "bro_ell"))
        res = run_spmv(mat, x, "k20",
                       policy=ExecutionPolicy(verify="checksum", devices=2))
        assert isinstance(res, ShardedSpMVResult)
        base = run_spmv(mat, x, "k20")
        assert np.array_equal(res.y, base.y)

    def test_fallback_serves_sharded_too(self, coo, x):
        mat = convert(coo, "bro_ell")
        fb = seal(convert(coo, "csr"))
        res = run_spmv(mat, x, "k20",
                       policy=ExecutionPolicy(fallback=fb, devices=2))
        assert np.array_equal(res.y, run_spmv(mat, x, "k20").y)


class TestPreShardedContainers:
    def test_sharded_matrix_routes_through_engine(self, coo, x):
        sharded = partition(convert(coo, "bro_ell"), 4)
        res = run_spmv(sharded, x, "k20")
        assert isinstance(res, ShardedSpMVResult)
        assert res.n_devices == 4
        base = run_spmv(convert(coo, "bro_ell"), x, "k20")
        assert np.array_equal(res.y, base.y)

    def test_device_count_mismatch_rejected(self, coo, x):
        from repro.errors import ValidationError

        sharded = partition(convert(coo, "bro_ell"), 4)
        with pytest.raises(ValidationError, match="already sharded"):
            run_spmv(sharded, x, "k20", policy=ExecutionPolicy(devices=2))

    def test_loaded_sharded_container_executes(self, coo, x, tmp_path):
        from repro.serialize import load_container, save_container

        sharded = partition(convert(coo, "bro_ell"), 2)
        path = tmp_path / "m.brx"
        save_container(sharded, path)
        loaded = load_container(path)
        assert isinstance(loaded, ShardedMatrix)
        res = run_spmv(loaded, x, "k20")
        assert np.array_equal(res.y, run_spmv(sharded, x, "k20").y)


class TestSessionSharding:
    def test_session_executes_sharded_policy(self, coo, x):
        mat = convert(coo, "bro_ell")
        sess = Session("k20", policy=ExecutionPolicy(devices=4)).use(mat)
        res = sess.run(x)
        assert isinstance(res, ShardedSpMVResult)
        base = Session("k20").use(mat).run(x)
        assert np.array_equal(res.y, base.y)
