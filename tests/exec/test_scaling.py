"""Strong-scaling sweep: modeled speedup over 1..N simulated devices."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.scaling import strong_scaling
from repro.formats.conversion import convert
from repro.matrices.suite import generate

ROW_KEYS = {
    "devices", "partitioner", "comms", "backend", "t_total", "t_kernel",
    "t_comm", "gflops", "interconnect_bytes", "messages", "speedup",
    "efficiency", "bound",
}


@pytest.fixture(scope="module")
def cant_csr():
    return convert(generate("cant", scale=0.05, seed=0), "csr")


class TestSweepShape:
    def test_row_schema_and_ordering(self, cant_csr):
        rows = strong_scaling(cant_csr, "k20", (4, 1, 2))
        assert [r["devices"] for r in rows] == [1, 2, 4]
        for row in rows:
            assert set(row) == ROW_KEYS

    def test_duplicate_counts_deduplicated(self, cant_csr):
        rows = strong_scaling(cant_csr, "k20", (2, 2, 1))
        assert [r["devices"] for r in rows] == [1, 2]

    def test_single_device_row_is_the_baseline(self, cant_csr):
        row = strong_scaling(cant_csr, "k20", (1,))[0]
        assert row["speedup"] == 1.0
        assert row["efficiency"] == 1.0
        assert row["t_comm"] == 0.0
        assert row["interconnect_bytes"] == 0

    def test_rejects_non_positive_counts(self, cant_csr):
        with pytest.raises(ValidationError):
            strong_scaling(cant_csr, "k20", (0, 2))
        with pytest.raises(ValidationError):
            strong_scaling(cant_csr, "k20", ())


class TestModeledScaling:
    def test_speedup_above_one_at_four_devices(self, cant_csr):
        # Acceptance: matrices with >= 4*256 rows show modeled speedup.
        assert cant_csr.shape[0] >= 4 * 256
        rows = strong_scaling(cant_csr, "k20", (1, 4))
        by_n = {r["devices"]: r for r in rows}
        assert by_n[4]["speedup"] > 1.0
        assert by_n[4]["interconnect_bytes"] > 0
        assert by_n[4]["efficiency"] == pytest.approx(
            by_n[4]["speedup"] / 4
        )

    def test_bro_ell_scales_when_slices_saturate(self):
        mat = convert(generate("dense2", scale=0.05, seed=0), "bro_ell")
        rows = strong_scaling(mat, "k20", (1, 4))
        assert rows[1]["speedup"] > 1.0

    def test_comm_grows_with_device_count(self, cant_csr):
        rows = strong_scaling(cant_csr, "k20", (2, 4, 8))
        bytes_by_n = [r["interconnect_bytes"] for r in rows]
        assert bytes_by_n == sorted(bytes_by_n)
        assert all(b > 0 for b in bytes_by_n)

    def test_explicit_x_is_used(self, cant_csr):
        x = np.zeros(cant_csr.shape[1])
        rows = strong_scaling(cant_csr, "k20", (1, 2), x=x)
        assert len(rows) == 2  # zero vector still bit-identical

    def test_partitioner_and_comms_are_reported(self, cant_csr):
        rows = strong_scaling(
            cant_csr, "k20", (2,), partitioner="contiguous", comms="broadcast"
        )
        assert rows[0]["partitioner"] == "contiguous"
        assert rows[0]["comms"] == "broadcast"
