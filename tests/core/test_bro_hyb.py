"""Unit tests for the BRO-HYB format."""

import numpy as np
import pytest

from repro.core.bro_hyb import BROHYBMatrix
from repro.formats.coo import COOMatrix
from repro.formats.hyb import HYBMatrix
from tests.conftest import PAPER_A, random_coo


def skewed_matrix(seed=0, m=200, n=200):
    """Rows mostly short, a few very long — the HYB sweet spot."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 6, size=m)
    lengths[rng.choice(m, size=m // 20, replace=False)] = rng.integers(
        40, 80, size=m // 20
    )
    lengths = np.minimum(lengths, n)
    rows = np.repeat(np.arange(m), lengths)
    cols = np.concatenate(
        [np.sort(rng.choice(n, size=int(k), replace=False)) for k in lengths]
    )
    return COOMatrix(rows, cols, rng.standard_normal(rows.size), (m, n))


class TestConstruction:
    def test_same_partition_as_hyb(self):
        coo = skewed_matrix(1)
        hyb = HYBMatrix.from_coo(coo)
        bro = BROHYBMatrix.from_coo(coo, h=32)
        assert bro.ell.nnz == hyb.ell.nnz
        assert bro.coo.nnz == hyb.coo.nnz
        assert bro.ell_fraction == pytest.approx(hyb.ell_fraction)

    def test_paper_example(self, paper_matrix):
        bro = BROHYBMatrix.from_coo(paper_matrix, h=2, interval_size=8, warp_size=4)
        # Same split as HYB: k=3 -> ELL part 10 entries, COO part 2.
        assert bro.ell.nnz == 10
        assert bro.coo.nnz == 2

    def test_explicit_k(self, paper_matrix):
        bro = BROHYBMatrix.from_coo(
            paper_matrix, k=1, h=2, interval_size=8, warp_size=4
        )
        assert bro.ell.nnz == 4
        assert bro.coo.nnz == 8

    def test_pure_ell_matrix(self):
        # Uniform row lengths -> empty COO part.
        coo = random_coo(64, 64, density=0.05, seed=2)

        k = int(coo.row_lengths().max())
        bro = BROHYBMatrix.from_coo(coo, k=k, h=16)
        assert bro.coo.nnz == 0
        np.testing.assert_allclose(bro.to_dense(), coo.to_dense())


class TestRoundTripAndSpMV:
    def test_round_trip(self, paper_matrix):
        bro = BROHYBMatrix.from_coo(paper_matrix, h=2, interval_size=8, warp_size=4)
        np.testing.assert_array_equal(bro.to_dense(), PAPER_A)

    def test_spmv_paper(self, paper_matrix):
        bro = BROHYBMatrix.from_coo(paper_matrix, h=2, interval_size=8, warp_size=4)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(bro.spmv(x), PAPER_A @ x)

    def test_spmv_matches_hyb(self):
        coo = skewed_matrix(3)
        hyb = HYBMatrix.from_coo(coo)
        bro = BROHYBMatrix.from_coo(coo, h=32)
        x = np.random.default_rng(4).standard_normal(200)
        np.testing.assert_allclose(bro.spmv(x), hyb.spmv(x), rtol=1e-12)

    def test_round_trip_random(self):
        for seed in range(3):
            coo = skewed_matrix(seed + 10)
            bro = BROHYBMatrix.from_coo(coo, h=32)
            np.testing.assert_allclose(bro.to_dense(), coo.to_dense())


class TestAccounting:
    def test_device_bytes_sum_of_parts(self, paper_matrix):
        bro = BROHYBMatrix.from_coo(paper_matrix, h=2, interval_size=8, warp_size=4)
        db = bro.device_bytes()
        ell_db = bro.ell.device_bytes()
        coo_db = bro.coo.device_bytes()
        for key in db:
            assert db[key] == ell_db.get(key, 0) + coo_db.get(key, 0)

    def test_index_compresses_vs_hyb(self):
        from repro.core.compression import index_compression_report

        coo = skewed_matrix(5)
        bro = BROHYBMatrix.from_coo(coo, h=32)
        report = index_compression_report(bro, "skewed")
        assert 0.0 < report.eta < 1.0
