"""Unit tests for the BRO-ELL format."""

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.core.slices import column_bit_alloc
from repro.errors import CompressionError, ValidationError
from repro.formats.ellpack import ELLPACKMatrix
from repro.formats.sliced_ellpack import SlicedELLPACKMatrix
from tests.conftest import PAPER_A, random_coo


class TestConstruction:
    def test_paper_example_h2(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        assert bro.num_slices == 2
        np.testing.assert_array_equal(bro.num_col, [5, 3])
        # Slice 0 deltas (1-based): row0 [1,2,0,0,0], row1 [1,1,1,1,1]
        # -> widths [1, 2, 1, 1, 1].
        np.testing.assert_array_equal(bro.bit_allocs[0], [1, 2, 1, 1, 1])
        # Slice 1 deltas: row2 (cols 1,2,4 -> 1-based 2,3,5) = [2,1,2];
        # row3 (cols 3,4 -> 4,5) = [4,1,0] -> widths [3, 1, 2].
        np.testing.assert_array_equal(bro.bit_allocs[1], [3, 1, 2])

    def test_row_lengths_preserved(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        np.testing.assert_array_equal(bro.row_lengths, [2, 5, 3, 2])
        assert bro.nnz == 12

    def test_from_sliced_equivalent(self, paper_matrix):
        sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=2)
        bro = BROELLMatrix.from_sliced(sl)
        np.testing.assert_array_equal(bro.to_dense(), PAPER_A)

    def test_bad_bit_alloc_count(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        with pytest.raises(ValidationError):
            BROELLMatrix(
                bro.stream, bro.bit_allocs[:1], bro._vals, bro.row_lengths, 2, (4, 5)
            )


class TestRoundTrip:
    def test_paper_example(self, paper_matrix):
        for h in (1, 2, 3, 4, 8):
            bro = BROELLMatrix.from_coo(paper_matrix, h=h)
            np.testing.assert_array_equal(bro.to_dense(), PAPER_A)

    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_random_matrices(self, sym_len):
        for seed in range(4):
            coo = random_coo(100, 90, density=0.05, seed=seed)
            bro = BROELLMatrix.from_coo(coo, h=16, sym_len=sym_len)
            np.testing.assert_allclose(bro.to_dense(), coo.to_dense())

    def test_to_sliced_round_trip(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        sl = bro.to_sliced()
        np.testing.assert_array_equal(sl.to_dense(), PAPER_A)

    def test_decode_slice_cols(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        cols, valid = bro.decode_slice_cols(1)
        np.testing.assert_array_equal(valid, [[True, True, True], [True, True, False]])
        np.testing.assert_array_equal(cols[0], [1, 2, 4])
        np.testing.assert_array_equal(cols[1, :2], [3, 4])


class TestSpMV:
    def test_paper_example(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(bro.spmv(x), PAPER_A @ x)

    def test_matches_ellpack(self):
        coo = random_coo(120, 100, density=0.04, seed=17)
        ell = ELLPACKMatrix.from_coo(coo)
        bro = BROELLMatrix.from_coo(coo, h=32)
        x = np.random.default_rng(18).standard_normal(100)
        np.testing.assert_allclose(bro.spmv(x), ell.spmv(x), rtol=1e-12)

    def test_matrix_with_empty_rows(self):
        from repro.formats.coo import COOMatrix

        coo = COOMatrix([0, 5], [3, 9], [2.0, 4.0], (8, 10))
        bro = BROELLMatrix.from_coo(coo, h=4)
        y = bro.spmv(np.ones(10))
        np.testing.assert_array_equal(y, [2, 0, 0, 0, 0, 4, 0, 0])


class TestCompression:
    def test_index_smaller_than_ellpack(self):
        # A banded matrix: small deltas, highly compressible.
        from repro.formats.coo import COOMatrix

        m = 128
        rows = np.repeat(np.arange(m), 5)
        cols = (rows + np.tile(np.arange(5), m)) % m
        coo = COOMatrix(rows, np.sort(cols.reshape(m, 5), axis=1).reshape(-1),
                        np.ones(m * 5), (m, m))
        ell = ELLPACKMatrix.from_coo(coo)
        bro = BROELLMatrix.from_coo(coo, h=32)
        assert bro.device_bytes()["index"] < ell.device_bytes()["index"] / 3

    def test_device_bytes_components(self, paper_matrix):
        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        db = bro.device_bytes()
        assert db["values"] == (2 * 5 + 2 * 3) * 8
        assert db["index"] == bro.stream.nbytes
        assert db["aux"] > 0

    def test_stream_bits_match_bit_alloc(self, paper_matrix):
        from repro.bitstream.packing import row_stream_symbols

        bro = BROELLMatrix.from_coo(paper_matrix, h=2)
        for i in range(bro.num_slices):
            n_sym = row_stream_symbols(bro.bit_allocs[i], bro.sym_len)
            h_i = int(bro.slice_edges[i + 1] - bro.slice_edges[i])
            assert bro.stream.slice_view(i).shape[0] == n_sym * h_i


class TestColumnBitAlloc:
    def test_widths(self):
        deltas = np.array([[1, 4, 0], [3, 1, 7]])
        np.testing.assert_array_equal(column_bit_alloc(deltas), [2, 3, 3])

    def test_width_limit(self):
        with pytest.raises(CompressionError, match="exceeding"):
            column_bit_alloc(np.array([[2**40]]), max_bits=32)

    def test_empty_slice_rejected(self):
        with pytest.raises(CompressionError):
            column_bit_alloc(np.zeros((0, 3), np.int64))

    def test_zero_columns(self):
        assert column_bit_alloc(np.zeros((2, 0), np.int64)).shape == (0,)
