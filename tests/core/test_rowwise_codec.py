"""Unit tests for the per-row-width strawman codec and its divergence
profile (the Section 3 design-choice ablation)."""

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.core.rowwise_codec import RowwiseBROELL
from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from tests.conftest import PAPER_A, random_coo


class TestRoundTrip:
    def test_paper_example(self, paper_matrix):
        rw = RowwiseBROELL.from_coo(paper_matrix, h=2)
        np.testing.assert_array_equal(rw.to_dense(), PAPER_A)
        assert rw.nnz == 12

    @pytest.mark.parametrize("h", [1, 4, 16])
    def test_random(self, h):
        coo = random_coo(60, 60, density=0.08, seed=1)
        rw = RowwiseBROELL.from_coo(coo, h=h)
        np.testing.assert_allclose(rw.to_dense(), coo.to_dense())

    def test_spmv(self, paper_matrix):
        rw = RowwiseBROELL.from_coo(paper_matrix, h=2)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(rw.spmv(x), PAPER_A @ x)

    def test_empty_rows(self):
        coo = COOMatrix([0], [3], [2.0], (6, 6))
        rw = RowwiseBROELL.from_coo(coo, h=2)
        np.testing.assert_allclose(rw.to_dense(), coo.to_dense())


class TestRowBits:
    def test_row_width_is_row_max(self, paper_matrix):
        rw = RowwiseBROELL.from_coo(paper_matrix, h=2)
        # Row 3 (1-based deltas [4, 1]): max Gamma = 3 bits.
        assert rw.row_bits[3] == 3
        # Row 1 (all deltas 1): 1 bit.
        assert rw.row_bits[1] == 1

    def test_first_delta_poisons_row(self):
        # A row whose first column sits far right needs wide codes for
        # every delta — the compression weakness of per-row widths.
        coo = COOMatrix(
            [0, 0, 0, 0], [1000, 1001, 1002, 1003], np.ones(4), (1, 2000)
        )
        rw = RowwiseBROELL.from_coo(coo, h=1)
        assert rw.row_bits[0] >= 10  # Gamma(1001)
        per_col = BROELLMatrix.from_coo(coo, h=1)
        # Per-column coding pays the wide width once, not four times.
        assert (
            int(per_col.bit_allocs[0].sum())
            < int(rw.row_bits[0]) * 4
        )


class TestDivergenceProfile:
    def test_uniform_widths_do_not_diverge(self):
        # All rows identical structure -> same widths -> lockstep branches.
        m, k = 64, 4
        cols = np.tile(np.arange(k), m) + np.repeat(np.arange(m), k) % 2
        coo = COOMatrix(np.repeat(np.arange(m), k), cols, np.ones(m * k),
                        (m, m))
        rw = RowwiseBROELL.from_coo(coo, h=32)
        if len(set(rw.row_bits.tolist())) == 1:
            profile = rw.divergence_profile(warp_size=32)
            assert profile["divergent_fraction"] == 0.0

    def test_mixed_widths_diverge(self):
        # Alternate 1-bit-delta rows with wide-delta rows inside a warp.
        rows, cols = [], []
        for i in range(64):
            if i % 2 == 0:
                c = np.arange(6)
            else:
                c = np.arange(6) * 300
            rows.extend([i] * 6)
            cols.extend(c.tolist())
        coo = COOMatrix(rows, cols, np.ones(len(rows)), (64, 2048))
        rw = RowwiseBROELL.from_coo(coo, h=64)
        profile = rw.divergence_profile(warp_size=32)
        assert profile["divergent_fraction"] > 0.1
        assert profile["mean_distinct_offsets"] > 2.0

    def test_profile_keys(self, paper_matrix):
        rw = RowwiseBROELL.from_coo(paper_matrix, h=4)
        profile = rw.divergence_profile(warp_size=2)
        assert set(profile) == {"divergent_fraction", "mean_distinct_offsets"}
        assert 0.0 <= profile["divergent_fraction"] <= 1.0


class TestValidation:
    def test_bad_row_ptr(self, paper_matrix):
        rw = RowwiseBROELL.from_coo(paper_matrix, h=2)
        with pytest.raises(ValidationError):
            RowwiseBROELL(
                rw._stream, rw._row_ptr[:-1], rw.row_bits, rw._vals,
                rw._row_lengths, rw.num_col, 2, 32, paper_matrix.shape,
            )
