"""Unit tests for space-savings / compression-ratio accounting."""

import pytest

from repro.core.bro_coo import BROCOOMatrix
from repro.core.bro_ell import BROELLMatrix
from repro.core.compression import (
    CompressionReport,
    compression_ratio,
    index_compression_report,
    space_savings,
    space_savings_from_ratio,
)
from repro.errors import ValidationError
from tests.conftest import random_coo


class TestFormulas:
    def test_space_savings(self):
        assert space_savings(100, 25) == pytest.approx(0.75)
        assert space_savings(100, 100) == 0.0
        assert space_savings(100, 150) == pytest.approx(-0.5)

    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == pytest.approx(4.0)

    def test_paper_relationship_eta_kappa(self):
        # kappa = 1 / (1 - eta), Section 4.2.1.
        for o, c in [(100, 25), (80, 60), (64, 8)]:
            eta = space_savings(o, c)
            kappa = compression_ratio(o, c)
            assert kappa == pytest.approx(1.0 / (1.0 - eta))
            assert space_savings_from_ratio(kappa) == pytest.approx(eta)

    def test_validation(self):
        with pytest.raises(ValidationError):
            space_savings(0, 10)
        with pytest.raises(ValidationError):
            space_savings(10, -1)
        with pytest.raises(ValidationError):
            compression_ratio(10, 0)
        with pytest.raises(ValidationError):
            space_savings_from_ratio(0.0)


class TestReport:
    def test_properties(self):
        rep = CompressionReport("m", "bro_ell", 100, 20)
        assert rep.eta == pytest.approx(0.8)
        assert rep.kappa == pytest.approx(5.0)

    def test_bro_ell_report(self):
        coo = random_coo(128, 128, density=0.05, seed=1)
        bro = BROELLMatrix.from_coo(coo, h=32)
        rep = index_compression_report(bro, "rand")
        assert rep.scheme == "bro_ell"
        assert rep.matrix_name == "rand"
        assert rep.compressed_index_bytes > 0
        # Random 128-col indices need ~8 bits/delta at most; 32-bit original.
        assert rep.eta > 0.3

    def test_bro_coo_report(self):
        coo = random_coo(256, 64, density=0.05, seed=2)
        bro = BROCOOMatrix.from_coo(coo, interval_size=128, warp_size=32)
        rep = index_compression_report(bro, "rand")
        assert rep.scheme == "bro_coo"
        assert rep.original_index_bytes == 4 * bro.padded_nnz
        assert rep.eta > 0.0

    def test_classical_format_rejected(self):
        with pytest.raises(ValidationError):
            index_compression_report(random_coo(4, 4, seed=3))
