"""Unit tests for the BRO-COO format."""

import numpy as np
import pytest

from repro.core.bro_coo import BROCOOMatrix
from repro.core.slices import interval_bit_alloc
from repro.errors import CompressionError, ValidationError
from repro.formats.coo import COOMatrix
from tests.conftest import PAPER_A, random_coo


class TestConstruction:
    def test_paper_example(self, paper_matrix):
        bro = BROCOOMatrix.from_coo(paper_matrix, interval_size=8, warp_size=4)
        assert bro.nnz == 12
        assert bro.num_intervals == 2
        # Interval 0 holds entries 0..7, interval 1 entries 8..11.
        assert bro.interval_entry_bounds(0) == (0, 8)
        assert bro.interval_entry_bounds(1) == (8, 12)

    def test_padding_to_lane_multiple(self):
        coo = random_coo(20, 20, density=0.05, seed=3)  # nnz not multiple of 4
        bro = BROCOOMatrix.from_coo(coo, interval_size=8, warp_size=4)
        assert bro.padded_nnz % 4 == 0
        assert bro.padded_nnz >= bro.nnz
        # Phantom values are zero.
        np.testing.assert_array_equal(bro.vals[bro.nnz :], 0.0)

    def test_interval_size_must_divide(self):
        with pytest.raises(ValidationError, match="multiple of warp_size"):
            BROCOOMatrix.from_coo(
                COOMatrix([0], [0], [1.0], (2, 2)), interval_size=10, warp_size=4
            )

    def test_empty_matrix(self):
        bro = BROCOOMatrix.from_coo(COOMatrix([], [], [], (4, 4)))
        assert bro.num_intervals == 0
        np.testing.assert_array_equal(bro.spmv(np.ones(4)), np.zeros(4))


class TestDecode:
    def test_decode_rows_paper_example(self, paper_matrix):
        bro = BROCOOMatrix.from_coo(paper_matrix, interval_size=8, warp_size=4)
        np.testing.assert_array_equal(
            bro.decode_rows()[:12], paper_matrix.row_idx
        )

    def test_round_trip(self, paper_matrix):
        for interval, w in [(4, 4), (8, 4), (16, 8), (1024, 32)]:
            bro = BROCOOMatrix.from_coo(
                paper_matrix, interval_size=interval, warp_size=w
            )
            np.testing.assert_array_equal(bro.to_dense(), PAPER_A)

    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_round_trip_random(self, sym_len):
        for seed in range(3):
            coo = random_coo(200, 150, density=0.03, seed=seed)
            bro = BROCOOMatrix.from_coo(
                coo, interval_size=64, warp_size=8, sym_len=sym_len
            )
            np.testing.assert_allclose(bro.to_dense(), coo.to_dense())

    def test_interval_lanes(self, paper_matrix):
        bro = BROCOOMatrix.from_coo(paper_matrix, interval_size=8, warp_size=4)
        assert bro.interval_lanes(0) == 2
        assert bro.interval_lanes(1) == 1


class TestSpMV:
    def test_paper_example(self, paper_matrix):
        bro = BROCOOMatrix.from_coo(paper_matrix, interval_size=8, warp_size=4)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(bro.spmv(x), PAPER_A @ x)

    def test_matches_coo(self):
        coo = random_coo(150, 120, density=0.04, seed=7)
        bro = BROCOOMatrix.from_coo(coo, interval_size=96, warp_size=16)
        x = np.random.default_rng(8).standard_normal(120)
        np.testing.assert_allclose(bro.spmv(x), coo.spmv(x), rtol=1e-12)

    def test_long_row_spanning_intervals(self):
        # One dense row: every delta inside an interval is 0.
        coo = COOMatrix([0] * 64, np.arange(64), np.ones(64), (4, 64))
        bro = BROCOOMatrix.from_coo(coo, interval_size=16, warp_size=4)
        assert int(bro.bit_alloc.max()) == 1
        np.testing.assert_allclose(bro.spmv(np.ones(64)), [64, 0, 0, 0])


class TestCompression:
    def test_row_stream_compresses(self):
        coo = random_coo(300, 300, density=0.02, seed=10)
        bro = BROCOOMatrix.from_coo(coo)
        # The packed row stream must beat 4 bytes/entry.
        assert bro.stream.nbytes < 4 * bro.padded_nnz

    def test_device_bytes(self, paper_matrix):
        bro = BROCOOMatrix.from_coo(paper_matrix, interval_size=8, warp_size=4)
        db = bro.device_bytes()
        assert db["values"] == bro.padded_nnz * 8
        assert db["index"] == bro.stream.nbytes + bro.padded_nnz * 4


class TestIntervalBitAlloc:
    def test_single_width(self):
        assert interval_bit_alloc(np.array([[1, 5, 0]])) == 3

    def test_zero_deltas(self):
        assert interval_bit_alloc(np.zeros((2, 2), np.int64)) == 1

    def test_limit(self):
        with pytest.raises(CompressionError):
            interval_bit_alloc(np.array([[2**40]]), max_bits=32)

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            interval_bit_alloc(np.zeros((0, 2), np.int64))
