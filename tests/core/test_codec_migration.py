"""Codec-extraction equivalence: the containers built through
:class:`repro.bitstream.codec.BROCodec` must be indistinguishable from the
pre-refactor inline pipelines — byte-identical ``.brx`` payloads,
bit-identical ``y`` vectors, and equal ``KernelCounters``.

The legacy pipelines are re-implemented verbatim here (the exact primitive
call sequences the formats used before the codec layer existed) so that any
drift in the codec's composition shows up as a byte diff.
"""

import numpy as np
import pytest

from repro.bitstream.codec import BROCodec
from repro.bitstream.multiplex import concat_slices
from repro.bitstream.packing import pack_slice
from repro.core.bro_coo import BROCOOMatrix, adaptive_interval_size
from repro.core.bro_ell import BROELLMatrix
from repro.core.bro_hyb import BROHYBMatrix
from repro.core.delta import delta_encode_columns, delta_encode_lanes
from repro.core.slices import column_bit_alloc, interval_bit_alloc
from repro.errors import ValidationError
from repro.formats.sliced_ellpack import SlicedELLPACKMatrix
from repro.kernels import prepare, run_spmv
from repro.types import INDEX_DTYPE, VALUE_DTYPE
from repro.utils.bits import ceil_div
from tests.conftest import random_coo


def _legacy_bro_ell(coo, h, sym_len):
    """The inline encode pipeline bro_ell used before the codec layer."""
    sl = SlicedELLPACKMatrix.from_coo(coo, h=h)
    streams, bit_allocs, val_blocks = [], [], []
    lengths = sl.row_lengths
    for r0, r1, col_block, val_block in sl.iter_slices():
        l_i = col_block.shape[1]
        lens = lengths[r0:r1]
        valid = np.arange(l_i)[np.newaxis, :] < lens[:, np.newaxis]
        deltas = delta_encode_columns(col_block, valid)
        widths = column_bit_alloc(deltas, max_bits=sym_len)
        streams.append(pack_slice(deltas, widths, sym_len=sym_len))
        bit_allocs.append(widths)
        val_blocks.append(val_block.reshape(-1))
    stream = concat_slices(streams, sym_len=sym_len)
    vals = (
        np.concatenate(val_blocks) if val_blocks else np.zeros(0, dtype=VALUE_DTYPE)
    )
    return BROELLMatrix(stream, bit_allocs, vals, lengths, sl.h, sl.shape)


def _legacy_bro_coo(coo, sym_len, warp_size=32):
    """The inline encode pipeline bro_coo used before the codec layer."""
    interval_size = adaptive_interval_size(coo.nnz, warp_size)
    nnz = coo.nnz
    n_int = ceil_div(nnz, interval_size) if nnz else 0
    padded = 0
    if n_int:
        tail = nnz - (n_int - 1) * interval_size
        padded = (n_int - 1) * interval_size + ceil_div(tail, warp_size) * warp_size
    col_idx = np.zeros(padded, dtype=INDEX_DTYPE)
    vals = np.zeros(padded, dtype=VALUE_DTYPE)
    row_idx = np.zeros(padded, dtype=np.int64)
    if nnz:
        col_idx[:nnz] = coo.col_idx
        vals[:nnz] = coo.vals
        row_idx[:nnz] = coo.row_idx
        row_idx[nnz:] = int(coo.row_idx[-1])
    streams, widths = [], []
    for i in range(n_int):
        lo = i * interval_size
        hi = min(lo + interval_size, padded)
        L = ceil_div(hi - lo, warp_size)
        block = row_idx[lo:hi].reshape(L, warp_size).T
        deltas = delta_encode_lanes(block)
        b = interval_bit_alloc(deltas, max_bits=sym_len)
        widths.append(b)
        streams.append(pack_slice(deltas, np.full(L, b, dtype=np.int64),
                                  sym_len=sym_len))
    stream = concat_slices(streams, sym_len=sym_len)
    return BROCOOMatrix(
        stream, np.array(widths, dtype=np.int64), col_idx, vals, nnz,
        warp_size, interval_size, coo.shape,
    )


def _assert_state_bytes_equal(a, b):
    meta_a, arrays_a = a.to_state()
    meta_b, arrays_b = b.to_state()
    assert meta_a == meta_b
    assert sorted(arrays_a) == sorted(arrays_b)
    for key in arrays_a:
        assert arrays_a[key].dtype == arrays_b[key].dtype, key
        assert arrays_a[key].tobytes() == arrays_b[key].tobytes(), key


def _assert_runs_equal(mat_new, mat_old, seed=11):
    x = np.random.default_rng(seed).standard_normal(mat_new.shape[1])
    res_new = run_spmv(mat_new, x)
    res_old = run_spmv(mat_old, x)
    assert res_new.y.tobytes() == res_old.y.tobytes()
    assert res_new.counters == res_old.counters
    plan = prepare(mat_new)
    assert plan.execute(x).y.tobytes() == res_old.y.tobytes()


@pytest.mark.parametrize("sym_len", [32, 64])
class TestBROELLMigration:
    def test_state_byte_identical(self, sym_len):
        coo = random_coo(300, 220, density=0.05, seed=3)
        new = BROELLMatrix.from_coo(coo, h=64, sym_len=sym_len)
        old = _legacy_bro_ell(coo, h=64, sym_len=sym_len)
        _assert_state_bytes_equal(new, old)

    def test_y_and_counters_equal(self, sym_len):
        coo = random_coo(300, 220, density=0.05, seed=3)
        new = BROELLMatrix.from_coo(coo, h=64, sym_len=sym_len)
        old = _legacy_bro_ell(coo, h=64, sym_len=sym_len)
        _assert_runs_equal(new, old)


@pytest.mark.parametrize("sym_len", [32, 64])
class TestBROCOOMigration:
    def test_state_byte_identical(self, sym_len):
        coo = random_coo(400, 180, density=0.04, seed=5)
        new = BROCOOMatrix.from_coo(coo, sym_len=sym_len)
        old = _legacy_bro_coo(coo, sym_len=sym_len)
        _assert_state_bytes_equal(new, old)

    def test_y_and_counters_equal(self, sym_len):
        coo = random_coo(400, 180, density=0.04, seed=5)
        new = BROCOOMatrix.from_coo(coo, sym_len=sym_len)
        old = _legacy_bro_coo(coo, sym_len=sym_len)
        _assert_runs_equal(new, old)


class TestBROHYBMigration:
    def test_state_byte_identical(self):
        # bro_hyb composes the two pipelines with the Bell–Garland split;
        # rebuild both parts through the legacy pipelines and compare.
        from repro.formats.coo import COOMatrix
        from repro.formats.hyb import hyb_split_column, split_coo

        coo = random_coo(350, 260, density=0.06, seed=9)
        new = BROHYBMatrix.from_coo(coo, h=64)
        k = hyb_split_column(coo.row_lengths())
        ell_coo, tail_coo = split_coo(coo, k)
        empty = COOMatrix(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0), coo.shape
        )
        old = BROHYBMatrix(
            _legacy_bro_ell(ell_coo if ell_coo is not None else empty,
                            h=64, sym_len=32),
            _legacy_bro_coo(tail_coo if tail_coo is not None else empty,
                            sym_len=32),
            coo.shape,
        )
        _assert_state_bytes_equal(new, old)
        _assert_runs_equal(new, old)

    def test_round_trip_decode(self):
        coo = random_coo(350, 260, density=0.06, seed=9)
        new = BROHYBMatrix.from_coo(coo, h=64)
        back = new.to_coo()
        assert back.to_dense().tobytes() == coo.to_dense().tobytes()


class TestCodecUnit:
    def test_rejects_bad_sym_len(self):
        with pytest.raises(ValidationError):
            BROCodec(48)

    def test_column_round_trip(self):
        rng = np.random.default_rng(0)
        codec = BROCodec(32)
        cols = np.sort(rng.integers(0, 500, size=(16, 9)), axis=1)
        lens = rng.integers(1, 10, size=16)
        valid = codec.valid_mask(lens, 9)
        syms, widths = codec.encode_columns(cols, valid)
        dec_cols, dec_valid = codec.decode_columns(syms.reshape(-1), widths, 16)
        np.testing.assert_array_equal(dec_valid, valid)
        np.testing.assert_array_equal(dec_cols[valid], cols[valid])

    def test_lane_round_trip(self):
        rng = np.random.default_rng(1)
        codec = BROCodec(64)
        rows = np.sort(rng.integers(0, 900, size=(32 * 6,))).reshape(6, 32).T
        syms, width = codec.encode_lanes(rows)
        dec = codec.decode_lanes(syms.reshape(-1), width, 32, 6)
        np.testing.assert_array_equal(dec, rows)
