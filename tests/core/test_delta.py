"""Unit tests for delta encoding (Section 3.1 / 3.2 conventions)."""

import numpy as np
import pytest

from repro.core.delta import (
    delta_decode_columns,
    delta_decode_lanes,
    delta_encode_columns,
    delta_encode_lanes,
)
from repro.errors import CompressionError


class TestColumnDeltas:
    def test_paper_figure1_first_slice(self):
        # Rows 0-1 of the example matrix, l = 5, 0-based cols with padding.
        col_idx = np.array([[0, 2, 0, 0, 0], [0, 1, 2, 3, 4]])
        valid = np.array(
            [[True, True, False, False, False], [True, True, True, True, True]]
        )
        deltas = delta_encode_columns(col_idx, valid)
        # 1-based: row0 = [1, 3] -> deltas [1, 2]; row1 = [1..5] -> all 1s.
        np.testing.assert_array_equal(deltas, [[1, 2, 0, 0, 0], [1, 1, 1, 1, 1]])

    def test_valid_deltas_always_positive(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            L = int(rng.integers(1, 12))
            cols = np.sort(rng.choice(50, size=L, replace=False))
            deltas = delta_encode_columns(
                cols[np.newaxis, :], np.ones((1, L), dtype=bool)
            )
            assert (deltas > 0).all()

    def test_zero_marks_padding_only(self):
        col_idx = np.array([[4, 7, 0]])
        valid = np.array([[True, True, False]])
        deltas = delta_encode_columns(col_idx, valid)
        np.testing.assert_array_equal(deltas, [[5, 3, 0]])

    def test_round_trip(self):
        col_idx = np.array([[0, 2, 0], [1, 3, 6], [5, 0, 0]])
        valid = np.array([[True, True, False], [True, True, True], [True, False, False]])
        deltas = delta_encode_columns(col_idx, valid)
        decoded, out_valid = delta_decode_columns(deltas)
        np.testing.assert_array_equal(out_valid, valid)
        np.testing.assert_array_equal(decoded[valid], col_idx[valid])

    def test_non_increasing_rejected(self):
        with pytest.raises(CompressionError, match="strictly increase"):
            delta_encode_columns(np.array([[3, 3]]), np.ones((1, 2), bool))
        with pytest.raises(CompressionError, match="strictly increase"):
            delta_encode_columns(np.array([[5, 2]]), np.ones((1, 2), bool))

    def test_not_left_packed_rejected(self):
        valid = np.array([[False, True]])
        with pytest.raises(CompressionError, match="left-packed"):
            delta_encode_columns(np.array([[0, 1]]), valid)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CompressionError):
            delta_encode_columns(np.zeros((2, 3)), np.ones((2, 2), bool))

    def test_all_padding_row(self):
        deltas = delta_encode_columns(
            np.zeros((1, 3), np.int64), np.zeros((1, 3), bool)
        )
        np.testing.assert_array_equal(deltas, np.zeros((1, 3)))

    def test_empty_block(self):
        deltas = delta_encode_columns(
            np.zeros((2, 0), np.int64), np.zeros((2, 0), bool)
        )
        assert deltas.shape == (2, 0)


class TestLaneDeltas:
    def test_basic(self):
        rows = np.array([[0, 0, 2], [1, 1, 1]])
        deltas = delta_encode_lanes(rows)
        # 1-based with r_{i,-1} = 0: first delta is the absolute index + 1.
        np.testing.assert_array_equal(deltas, [[1, 0, 2], [2, 0, 0]])

    def test_zero_delta_is_valid(self):
        # Repeated rows (a long matrix row spanning several entries).
        rows = np.array([[5, 5, 5, 5]])
        deltas = delta_encode_lanes(rows)
        np.testing.assert_array_equal(deltas, [[6, 0, 0, 0]])

    def test_round_trip(self):
        rng = np.random.default_rng(1)
        rows = np.sort(rng.integers(0, 100, size=(4, 10)), axis=1)
        decoded = delta_decode_lanes(delta_encode_lanes(rows))
        np.testing.assert_array_equal(decoded, rows)

    def test_decreasing_rejected(self):
        with pytest.raises(CompressionError, match="non-decreasing"):
            delta_encode_lanes(np.array([[3, 1]]))
