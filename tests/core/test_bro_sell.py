"""BRO-SELL: BROCodec column-delta compression over SELL-C-σ chunks.

The composition contract: the packed stream decodes back to exactly the
column structure of the underlying SELL-C-σ skeleton, and the container's
SpMV is bit-identical to decoding first and multiplying second.
"""

import numpy as np
import pytest

from repro.core.bro_sell import BROSELLMatrix
from repro.errors import ValidationError
from repro.formats.sell_c_sigma import SELLCSigmaMatrix
from tests.conftest import random_coo


class TestComposition:
    def test_from_sell_round_trips_exactly(self):
        coo = random_coo(90, 70, density=0.08, seed=0)
        sell = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=32)
        bro = BROSELLMatrix.from_sell(sell, sym_len=32)
        back = bro.to_sell()
        assert np.array_equal(back._col_idx, sell._col_idx)
        assert np.array_equal(back._vals, sell._vals)
        assert np.array_equal(back.row_ids, sell.row_ids)

    def test_from_coo_composes_the_sell_skeleton(self):
        coo = random_coo(90, 70, density=0.08, seed=1)
        bro = BROSELLMatrix.from_coo(coo, c=8, sigma=32, sym_len=32)
        sell = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=32)
        assert np.array_equal(bro.row_ids, sell.row_ids)
        assert np.array_equal(bro.num_col, sell.num_col)
        back = bro.to_coo()
        assert np.array_equal(back.col_idx, coo.col_idx)
        assert np.array_equal(back.vals, coo.vals)

    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_decoded_chunks_match_skeleton(self, sym_len):
        coo = random_coo(100, 80, density=0.07, seed=2)
        sell = SELLCSigmaMatrix.from_coo(coo, c=16, sigma=64)
        bro = BROSELLMatrix.from_sell(sell, sym_len=sym_len)
        perm_lengths = sell.row_lengths[sell.row_ids]
        for i in range(bro.num_chunks):
            cols, valid = bro.decode_chunk_cols(i)
            skel_cols, _ = sell.chunk_block(i)
            lo, hi = sell.chunk_edges[i], sell.chunk_edges[i + 1]
            lens = perm_lengths[lo:hi]
            expect_valid = (
                np.arange(cols.shape[1])[np.newaxis, :] < lens[:, np.newaxis]
            )
            assert np.array_equal(valid, expect_valid)
            assert np.array_equal(cols[valid], skel_cols[expect_valid])

    def test_spmv_matches_skeleton_bitwise(self):
        coo = random_coo(90, 70, density=0.08, seed=3)
        sell = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=32)
        bro = BROSELLMatrix.from_sell(sell, sym_len=32)
        x = np.random.default_rng(4).standard_normal(70)
        np.testing.assert_allclose(bro.spmv(x), sell.spmv(x))

    def test_index_stream_is_smaller_than_skeleton(self):
        # Banded structure: small deltas, narrow widths, real compression.
        from repro.matrices.generators import banded_random

        coo = banded_random(512, 10.0, 2.0, bandwidth=40, seed=5)
        sell = SELLCSigmaMatrix.from_coo(coo, c=32, sigma=128)
        bro = BROSELLMatrix.from_sell(sell, sym_len=32)
        assert (
            bro.device_bytes()["index"] < sell.device_bytes()["index"]
        )

    def test_state_round_trip(self):
        coo = random_coo(60, 50, density=0.1, seed=6)
        bro = BROSELLMatrix.from_coo(coo, c=8, sigma=16, sym_len=64)
        meta, arrays = bro.to_state()
        again = BROSELLMatrix.from_state(meta, arrays)
        assert np.array_equal(again.stream.data, bro.stream.data)
        x = np.random.default_rng(7).standard_normal(50)
        assert np.array_equal(again.spmv(x), bro.spmv(x))

    def test_row_ids_must_be_permutation(self):
        coo = random_coo(20, 20, density=0.2, seed=8)
        bro = BROSELLMatrix.from_coo(coo, c=4, sigma=8)
        meta, arrays = bro.to_state()
        bad = dict(arrays)
        bad["row_ids"] = np.zeros_like(arrays["row_ids"])
        with pytest.raises(ValidationError, match="permutation"):
            BROSELLMatrix.from_state(meta, bad)
