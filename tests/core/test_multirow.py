"""Unit tests for the multi-thread-per-row BRO-ELL extension."""

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.core.multirow import MultiRowBROELL, split_rows
from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.kernels import run_spmv
from tests.conftest import PAPER_A, random_coo


class TestSplitRows:
    def test_paper_example_t2(self, paper_matrix):
        out = split_rows(paper_matrix, 2)
        assert out.shape == (8, 5)
        assert out.nnz == 12
        # Row 1 (5 entries, cols 0-4) deals into sub-rows 2 and 3.
        sub2 = out.col_idx[out.row_idx == 2]
        sub3 = out.col_idx[out.row_idx == 3]
        np.testing.assert_array_equal(sub2, [0, 2, 4])
        np.testing.assert_array_equal(sub3, [1, 3])

    def test_columns_stay_increasing(self):
        coo = random_coo(50, 60, density=0.1, seed=1)
        out = split_rows(coo, 3)
        # Within every sub-row, columns strictly increase (required by
        # the BRO delta encoding).
        for r in range(out.shape[0]):
            cols = out.col_idx[out.row_idx == r]
            assert (np.diff(cols) > 0).all()

    def test_t1_is_identity_layout(self, paper_matrix):
        out = split_rows(paper_matrix, 1)
        np.testing.assert_array_equal(out.to_dense(), PAPER_A)

    def test_empty_matrix(self):
        out = split_rows(COOMatrix([], [], [], (3, 4)), 2)
        assert out.shape == (6, 4)
        assert out.nnz == 0

    def test_sum_of_subrows_recovers_product(self):
        coo = random_coo(40, 40, density=0.08, seed=2)
        x = np.random.default_rng(3).standard_normal(40)
        out = split_rows(coo, 4)
        partial = out.spmv(x)
        np.testing.assert_allclose(
            partial.reshape(40, 4).sum(axis=1), coo.spmv(x), rtol=1e-12
        )


class TestMultiRowBROELL:
    @pytest.mark.parametrize("t", [1, 2, 3, 4])
    def test_spmv_correct(self, t, paper_matrix):
        mt = MultiRowBROELL.from_coo(paper_matrix, threads_per_row=t, h=4)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(mt.spmv(x), PAPER_A @ x)

    def test_kernel_correct(self):
        coo = random_coo(128, 128, density=0.05, seed=4)
        x = np.random.default_rng(5).standard_normal(128)
        mt = MultiRowBROELL.from_coo(coo, threads_per_row=4, h=32)
        res = run_spmv(mt, x, "gtx680")
        np.testing.assert_allclose(res.y, coo.spmv(x), rtol=1e-10)

    def test_round_trip(self, paper_matrix):
        mt = MultiRowBROELL.from_coo(paper_matrix, threads_per_row=2, h=4)
        np.testing.assert_array_equal(mt.to_dense(), PAPER_A)
        assert mt.nnz == 12
        assert mt.shape == (4, 5)

    def test_occupancy_gain_on_small_matrix(self):
        # The paper's future-work motivation: too few rows to fill the GPU.
        coo = random_coo(1500, 1500, density=0.02, seed=6)
        x = np.random.default_rng(7).standard_normal(1500)
        base = run_spmv(BROELLMatrix.from_coo(coo, h=256), x, "k20")
        mt = run_spmv(
            MultiRowBROELL.from_coo(coo, threads_per_row=4, h=256), x, "k20"
        )
        assert mt.timing.occupancy > base.timing.occupancy
        assert mt.gflops > base.gflops

    def test_compression_cost_of_splitting(self):
        # Sub-row deltas are sums of T original deltas: never narrower.
        coo = random_coo(512, 512, density=0.03, seed=8)
        base = BROELLMatrix.from_coo(coo, h=64)
        mt = MultiRowBROELL.from_coo(coo, threads_per_row=4, h=64)
        assert mt.device_bytes()["index"] >= base.device_bytes()["index"] * 0.8

    def test_fold_validation(self, paper_matrix):
        mt = MultiRowBROELL.from_coo(paper_matrix, threads_per_row=2, h=4)
        with pytest.raises(ValidationError):
            mt.fold(np.zeros(5))

    def test_inner_shape_validated(self, paper_matrix):
        inner = BROELLMatrix.from_coo(paper_matrix, h=4)
        with pytest.raises(ValidationError):
            MultiRowBROELL(inner, 2, paper_matrix.shape)
