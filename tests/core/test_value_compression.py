"""Unit tests for value compression (BRO-ELL-VC, the paper's future work)."""

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.core.value_compression import (
    BROELLVCMatrix,
    compress_value_block,
    decompress_value_block,
)
from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from tests.conftest import PAPER_A, random_coo


def few_valued_matrix(levels=4, m=200, seed=0):
    rng = np.random.default_rng(seed)
    base = random_coo(m, m, density=0.05, seed=seed)
    palette = rng.standard_normal(levels)
    vals = palette[rng.integers(0, levels, size=base.nnz)]
    return COOMatrix(base.row_idx, base.col_idx, vals, base.shape)


class TestBlockCompression:
    def test_round_trip_small_dictionary(self):
        rng = np.random.default_rng(1)
        palette = np.array([1.0, -2.5, 3.25])
        block = palette[rng.integers(0, 3, size=(16, 10))]
        cs = compress_value_block(block)
        assert cs.raw is None
        assert cs.dictionary.shape[0] == 3
        assert cs.code_bits == 2
        out = decompress_value_block(cs, 16, 10)
        np.testing.assert_array_equal(out, block)

    def test_single_value_block(self):
        block = np.full((8, 4), 7.5)
        cs = compress_value_block(block)
        assert cs.raw is None
        assert cs.code_bits == 1  # Gamma(0) == 1: one bit per code
        np.testing.assert_array_equal(decompress_value_block(cs, 8, 4), block)

    def test_too_many_values_falls_back(self):
        rng = np.random.default_rng(2)
        block = rng.standard_normal((8, 8))
        cs = compress_value_block(block, max_bits=4)
        assert cs.raw is not None
        assert cs.nbytes == block.nbytes

    def test_unprofitable_dictionary_falls_back(self):
        # Tiny block: the float64 dictionary outweighs the packed codes.
        block = np.array([[1.0, 2.0]])
        cs = compress_value_block(block)
        assert cs.raw is not None

    def test_savings_accounted(self):
        palette = np.array([0.5, 1.5])
        block = palette[np.random.default_rng(3).integers(0, 2, (64, 32))]
        cs = compress_value_block(block)
        assert cs.nbytes < block.nbytes / 8

    def test_bad_shape(self):
        with pytest.raises(ValidationError):
            compress_value_block(np.zeros(4))


class TestBROELLVC:
    def test_round_trip(self, paper_matrix):
        vc = BROELLVCMatrix.from_coo(paper_matrix, h=2)
        np.testing.assert_array_equal(vc.to_dense(), PAPER_A)

    def test_decoded_val_block_matches_plain(self):
        coo = few_valued_matrix()
        vc = BROELLVCMatrix.from_coo(coo, h=32)
        bro = BROELLMatrix.from_coo(coo, h=32)
        for i in range(vc.num_slices):
            np.testing.assert_array_equal(
                vc.decoded_val_block(i), bro.val_block(i)
            )

    def test_value_savings_on_few_valued_matrix(self):
        vc = BROELLVCMatrix.from_coo(few_valued_matrix(levels=3), h=32)
        assert vc.value_space_savings() > 0.7
        assert vc.compressed_slices == vc.num_slices

    def test_no_meaningful_savings_on_random_floats(self):
        # Distinct random values: only degenerate slices (padding zeros
        # shrinking the distinct count) may squeak under the threshold.
        vc = BROELLVCMatrix.from_coo(random_coo(200, 200, 0.05, seed=9), h=32)
        assert vc.value_space_savings() < 0.05
        assert vc.compressed_slices <= vc.num_slices // 4

    def test_mixed_slices(self):
        # First half of rows few-valued, second half random floats.
        rng = np.random.default_rng(4)
        m = 128
        rows = np.repeat(np.arange(m), 6)
        cols = np.concatenate(
            [np.sort(rng.choice(m, 6, replace=False)) for _ in range(m)]
        )
        vals = np.where(
            rows < m // 2,
            np.array([1.0, -1.0])[rng.integers(0, 2, rows.size)],
            rng.standard_normal(rows.size),
        )
        coo = COOMatrix(rows, cols, vals, (m, m))
        vc = BROELLVCMatrix.from_coo(coo, h=32)
        assert 0 < vc.compressed_slices < vc.num_slices

    def test_device_bytes_reflect_compression(self):
        coo = few_valued_matrix(levels=2)
        vc = BROELLVCMatrix.from_coo(coo, h=32)
        bro = BROELLMatrix.from_coo(coo, h=32)
        assert vc.device_bytes()["values"] < bro.device_bytes()["values"] / 4
        assert vc.device_bytes()["index"] == bro.device_bytes()["index"]

    def test_kernel_correct_and_faster(self):
        from repro.kernels import run_spmv

        coo = few_valued_matrix(levels=3, m=2048, seed=6)
        x = np.random.default_rng(7).standard_normal(coo.shape[1])
        vc = BROELLVCMatrix.from_coo(coo, h=128)
        res = run_spmv(vc, x, "k20")
        np.testing.assert_allclose(res.y, coo.spmv(x), rtol=1e-12)
        base = run_spmv(BROELLMatrix.from_coo(coo, h=128), x, "k20")
        assert res.gflops > base.gflops

    def test_wrong_slice_count_rejected(self, paper_matrix):
        vc = BROELLVCMatrix.from_coo(paper_matrix, h=2)
        with pytest.raises(ValidationError):
            BROELLVCMatrix(
                vc.stream, vc.bit_allocs, vc._vals, vc.row_lengths, 2,
                paper_matrix.shape, value_slices=vc.value_slices[:1],
            )
