"""Shared fixtures: the paper's running example and random matrix helpers."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix


#: The 4x5 example matrix of paper Section 2.1 (0-based indices here).
PAPER_A = np.array(
    [
        [3.0, 0.0, 2.0, 0.0, 0.0],
        [2.0, 6.0, 5.0, 4.0, 1.0],
        [0.0, 1.0, 9.0, 0.0, 7.0],
        [0.0, 0.0, 0.0, 8.0, 3.0],
    ]
)


@pytest.fixture
def paper_matrix() -> COOMatrix:
    """The example matrix A from Section 2 of the paper."""
    return COOMatrix.from_dense(PAPER_A)


def random_coo(
    m: int,
    n: int,
    density: float = 0.1,
    seed: int = 0,
    dtype=np.float64,
) -> COOMatrix:
    """A random sparse matrix with roughly ``density * m * n`` entries."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(density * m * n))
    row = rng.integers(0, m, size=nnz)
    col = rng.integers(0, n, size=nnz)
    vals = rng.standard_normal(nnz).astype(dtype)
    # Duplicates are summed by COOMatrix; that is fine for these tests.
    return COOMatrix(row, col, vals, (m, n))


@pytest.fixture
def random_matrix() -> COOMatrix:
    """A deterministic random 60x47 matrix for cross-format checks."""
    return random_coo(60, 47, density=0.08, seed=123)
