"""Exporter formats: JSONL schema, Chrome trace events, Prometheus text."""

import json

import pytest

from repro.telemetry.exporters import (
    chrome_trace_events,
    prometheus_text,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001  # 1 ms per read -> deterministic ts/dur
        return self.t


@pytest.fixture
def traced():
    """A small deterministic trace: root > (child with event, leaf)."""
    t = Tracer(clock=FakeClock())
    root = t.start("pipeline", "repro")
    child = t.start("kernel", "gpu", attrs={"format": "bro_ell"})
    child.event("integrity.detected", code=2)
    t.finish(child)
    leaf = t.start("reduce", "gpu")
    t.finish(leaf)
    t.finish(root)
    return t


class TestJsonl:
    def test_one_valid_object_per_span(self, traced):
        lines = to_jsonl(traced).splitlines()
        assert len(lines) == 3
        records = [json.loads(ln) for ln in lines]
        assert all(r["type"] == "span" for r in records)
        assert [r["name"] for r in records] == ["pipeline", "kernel", "reduce"]

    def test_parent_links_and_relative_times(self, traced):
        records = [json.loads(ln) for ln in to_jsonl(traced).splitlines()]
        root, child, leaf = records
        assert child["parent_id"] == root["span_id"]
        assert leaf["parent_id"] == root["span_id"]
        # FakeClock ticks 1 ms per read: t0 is the first tick, the root
        # span starts one tick later and outlives both children.
        assert root["ts_us"] == pytest.approx(1000.0)
        assert root["dur_us"] > child["dur_us"] > 0

    def test_empty_tracer_yields_empty_string(self):
        assert to_jsonl(Tracer(clock=FakeClock())) == ""

    def test_write_jsonl(self, traced, tmp_path):
        path = tmp_path / "out" / "trace.jsonl"
        write_jsonl(traced, str(path))
        assert len(path.read_text().splitlines()) == 3


class TestChromeTrace:
    def test_complete_events_schema(self, traced):
        events = chrome_trace_events(traced)
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["pipeline", "kernel", "reduce"]
        for e in complete:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert e["ts"] >= 0
            assert e["dur"] > 0

    def test_instant_event_for_span_event(self, traced):
        instants = [e for e in chrome_trace_events(traced) if e["ph"] == "i"]
        assert len(instants) == 1
        (inst,) = instants
        assert inst["name"] == "kernel:integrity.detected"
        assert inst["s"] == "t"
        assert inst["args"]["code"] == 2

    def test_nesting_is_containment(self, traced):
        events = {e["name"]: e for e in chrome_trace_events(traced) if e["ph"] == "X"}
        root, child = events["pipeline"], events["kernel"]
        assert root["ts"] <= child["ts"]
        assert root["ts"] + root["dur"] >= child["ts"] + child["dur"]

    def test_to_chrome_trace_is_valid_json_array(self, traced):
        parsed = json.loads(to_chrome_trace(traced))
        assert isinstance(parsed, list)
        assert len(parsed) == 4  # 3 spans + 1 instant

    def test_deterministic_with_injected_clock(self):
        def make():
            t = Tracer(clock=FakeClock())
            s = t.start("a")
            t.finish(s)
            return to_chrome_trace(t)

        assert make() == make()

    def test_write_chrome_trace(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced, str(path))
        assert json.loads(path.read_text())


class TestPrometheus:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("kernel.dram_bytes", {"format": "bro_ell"}).inc(640)
        reg.gauge("integrity.detections").set(3)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_kernel_dram_bytes counter" in text
        assert 'repro_kernel_dram_bytes{format="bro_ell"} 640' in text
        assert "# TYPE repro_integrity_detections gauge" in text
        assert "repro_integrity_detections 3" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[1, 10])
        for v in (0.5, 5, 50):
            h.observe(v)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="10"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 55.5" in text
        assert "repro_lat_count 3" in text

    def test_labelled_histogram_keeps_labels_before_le(self):
        reg = MetricsRegistry()
        reg.histogram("lat", {"fmt": "coo"}, buckets=[1]).observe(0.5)
        text = prometheus_text(reg.snapshot())
        assert 'repro_lat_bucket{fmt="coo",le="1"} 1' in text
        assert 'repro_lat_sum{fmt="coo"} 0.5' in text

    def test_empty_snapshot_is_empty_string(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_write_prometheus_unified(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(MetricsRegistry(), str(path))
        text = path.read_text()
        assert "repro_integrity_verifications" in text
