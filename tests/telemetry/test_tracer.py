"""Span lifecycle: nesting, ordering, annotation and the disabled path."""

import pytest

from repro import telemetry
from repro.telemetry.tracer import (
    NULL_SPAN,
    NullSpan,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
)


class FakeClock:
    """Deterministic clock: advances 1 ms per read."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.001
        return self.t


@pytest.fixture(autouse=True)
def clean_state():
    disable_tracing()
    yield
    disable_tracing()


class TestDisabled:
    def test_span_returns_the_singleton(self):
        assert span("anything", "cat", k=1) is NULL_SPAN
        assert get_tracer() is None

    def test_null_span_is_a_noop_context_manager(self):
        with span("x") as s:
            assert s is NULL_SPAN
            assert s.set(a=1) is s
            assert s.event("e", b=2) is s
            assert s.attach_counters(None) is s
            assert s.attach_timing(None) is s

    def test_null_span_has_no_instance_dict(self):
        # __slots__ = () guarantees no per-instance allocation is possible.
        assert not hasattr(NullSpan(), "__dict__")


class TestNesting:
    def test_parent_child_depth(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with span("outer") as a:
            with span("inner") as b:
                assert b.parent_id == a.span_id
                assert b.depth == 1
        assert a.parent_id is None
        assert a.depth == 0
        assert t.open_spans == 0

    def test_start_order_preserved(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with span("a"):
            with span("b"):
                pass
            with span("c"):
                pass
        assert [s.name for s in t.spans] == ["a", "b", "c"]
        assert [s.span_id for s in t.spans] == [0, 1, 2]

    def test_children_of(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with span("root") as r:
            with span("kid1"):
                pass
            with span("kid2"):
                with span("grandkid"):
                    pass
        kids = t.children_of(r)
        assert [s.name for s in kids] == ["kid1", "kid2"]

    def test_durations_monotone(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with span("outer") as a:
            with span("inner") as b:
                pass
        assert a.duration > b.duration > 0
        assert a.t_start <= b.t_start
        assert a.t_end >= b.t_end
        assert t.find("inner") == [b]

    def test_exception_annotates_and_closes(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        s = t.find("failing")[0]
        assert s.t_end is not None
        assert "RuntimeError" in s.attrs["error"]
        assert t.open_spans == 0


class TestAnnotation:
    def test_attrs_and_events(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with span("s", "cat", fmt="bro_ell") as s:
            s.set(extra=7)
            s.event("detected", code=3)
        d = s.to_dict()
        assert d["attrs"] == {"fmt": "bro_ell", "extra": 7}
        assert d["events"][0]["name"] == "detected"
        assert d["events"][0]["code"] == 3
        assert "ts_us" in d["events"][0]
        assert "ts" not in d["events"][0]
        assert t.spans[0] is s

    def test_timing_attachment_from_mapping(self):
        enable_tracing(Tracer(clock=FakeClock()))
        with span("k") as s:
            s.attach_timing({"t_mem": 1e-6, "t_flop": 2e-6})
        assert s.to_dict()["timing"] == {"t_mem": 1e-6, "t_flop": 2e-6}

    def test_clear_resets(self):
        t = enable_tracing(Tracer(clock=FakeClock()))
        with span("x"):
            pass
        t.clear()
        assert t.spans == []
        with span("y") as s:
            pass
        assert s.span_id == 0


class TestScopedTracing:
    def test_context_manager_restores_disabled(self):
        with telemetry.tracing() as t:
            assert get_tracer() is t
            with span("inside"):
                pass
        assert get_tracer() is None
        assert len(t.spans) == 1

    def test_context_manager_restores_prior_tracer(self):
        outer = enable_tracing(Tracer(clock=FakeClock()))
        with telemetry.tracing() as inner:
            assert get_tracer() is inner
        assert get_tracer() is outer
