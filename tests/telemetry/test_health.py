"""Health monitor: SLO grading of a live sharded process run."""

import json

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.telemetry import metrics as M
from repro.telemetry.health import (
    HealthReport,
    HealthThresholds,
    run_health_check,
)

PROBE = dict(matrix="cant", scale=0.02, devices=2, calls=1)


class TestThresholdLogic:
    def test_report_healthy_iff_all_rows_ok(self):
        r = HealthReport(matrix="m", devices=2, device="d", calls=1)
        r.rows = [{"check": "a", "ok": True}, {"check": "b", "ok": True}]
        assert r.healthy
        r.rows.append({"check": "c", "ok": False})
        assert not r.healthy

    def test_to_dict_schema(self):
        r = HealthReport(matrix="m", devices=2, device="d", calls=3)
        d = r.to_dict()
        assert set(d) == {"matrix", "devices", "device", "calls",
                          "healthy", "rows"}
        assert d["healthy"] is True and d["rows"] == []

    def test_none_threshold_disables_check(self):
        t = HealthThresholds(max_p99_ms=None, max_heartbeat_age_s=None,
                             max_worker_deaths=None, max_retries=None,
                             min_bw_utilization=None)
        report = run_health_check(**PROBE, thresholds=t)
        assert report.healthy
        assert all(r["threshold"] is None for r in report.rows)


class TestProbe:
    def test_default_thresholds_pass_on_a_quiet_run(self):
        report = run_health_check(**PROBE)
        assert report.healthy
        checks = [r["check"] for r in report.rows]
        # 2 workers -> 2 p99 rows + 2 heartbeat rows, then the global rows
        assert checks.count("worker_p99_ms") == 2
        assert checks.count("heartbeat_age_s") == 2
        assert checks.count("worker_deaths") == 1
        assert checks.count("retries") == 1
        assert checks.count("bandwidth_utilization") == 1

    def test_impossible_bandwidth_slo_breaches(self):
        report = run_health_check(
            **PROBE, thresholds=HealthThresholds(min_bw_utilization=0.999)
        )
        assert not report.healthy
        bw = [r for r in report.rows
              if r["check"] == "bandwidth_utilization"][0]
        assert bw["ok"] is False
        assert bw["roofline_bw_gbps"] > 0
        assert bw["bound"] in ("memory", "flop", "launch")

    def test_zero_p99_budget_breaches_per_worker(self):
        report = run_health_check(
            **PROBE, thresholds=HealthThresholds(max_p99_ms=0.0)
        )
        bad = [r for r in report.rows if r["check"] == "worker_p99_ms"]
        assert len(bad) == 2 and not any(r["ok"] for r in bad)
        assert {r["worker"] for r in bad} == {"0", "1"}

    def test_probe_restores_global_telemetry_state(self):
        assert not M.collecting()
        run_health_check(**PROBE)
        assert not M.collecting()

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_health_check(devices=1)
        with pytest.raises(ValidationError):
            run_health_check(devices=2, calls=0)


class TestHealthCLI:
    ARGS = ["health", "cant", "--scale", "0.02", "--devices", "2",
            "--calls", "1"]

    def test_healthy_run_exits_zero_with_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "worker_p99_ms" in out
        assert "heartbeat_age_s" in out
        assert "healthy: 7/7 checks ok" in out

    def test_breach_exits_nonzero(self, capsys):
        assert main(self.ARGS + ["--min-bw-util", "0.999"]) == 1
        assert "unhealthy" in capsys.readouterr().out.lower()

    def test_json_schema_and_exit_code(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["healthy"] is True
        assert payload["devices"] == 2
        for row in payload["rows"]:
            assert {"check", "value", "threshold", "ok"} <= set(row)
