"""Cross-process telemetry units: capture, batches, grafting, merging.

These test :mod:`repro.telemetry.remote` in-process (the worker and
coordinator halves both run here, with distinct Tracer/registry objects
standing in for the process boundary); the true multi-process acceptance
test lives in ``tests/exec/test_distributed_telemetry.py``.
"""

import threading

import pytest

from repro import telemetry
from repro.gpu.counters import KernelCounters
from repro.telemetry import metrics as M
from repro.telemetry import remote
from repro.telemetry.metrics import MetricsRegistry, merge_snapshots
from repro.telemetry.tracer import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


def _worker_batch(worker=0, shard=0, attempt=0, parent=7, trace_id="t1"):
    """One realistic batch: a capture with nested spans + metrics."""
    with remote.capture(trace_id) as cap:
        cap.root.set(shard=shard, attempt=attempt)
        with cap.tracer.start("kernel.csr", "kernel") as s:
            s.attach_counters(KernelCounters(index_bytes=64, launches=1))
            M.record_kernel("csr", "Tesla K20",
                            KernelCounters(index_bytes=64, launches=1))
        M.record_bitstream_decode(10)
    return remote.build_batch(
        cap, worker=worker, shard=shard, attempt=attempt,
        parent_span_id=parent, elapsed_s=0.01,
    )


class TestCapture:
    def test_capture_installs_and_restores_scoped_state(self):
        assert get_tracer() is None
        with remote.capture("abc") as cap:
            assert get_tracer() is cap.tracer
            assert M.collecting()
            assert M.registry() is cap.registry
        assert get_tracer() is None
        assert not M.collecting()

    def test_capture_root_span_wraps_the_task(self):
        with remote.capture("abc") as cap:
            with cap.tracer.start("inner"):
                pass
        names = [s.name for s in cap.tracer.spans]
        assert names == ["worker.task", "inner"]
        inner = cap.tracer.spans[1]
        assert inner.parent_id == cap.tracer.spans[0].span_id
        assert cap.tracer.trace_id == "abc"

    def test_batch_wire_format(self):
        batch = _worker_batch(worker=3, shard=2, attempt=1, parent=9)
        assert batch["worker"] == 3
        assert batch["shard"] == 2
        assert batch["attempt"] == 1
        assert batch["parent_span_id"] == 9
        assert batch["trace_id"] == "t1"
        assert batch["elapsed_s"] == pytest.approx(0.01)
        assert [s["name"] for s in batch["spans"]] == [
            "worker.task", "kernel.csr",
        ]
        assert batch["snapshot"]["counters"][
            "bitstream.slices_decoded"] == 1.0


class TestGraft:
    def test_graft_nests_under_parent_and_remaps_ids(self):
        coord = Tracer()
        with coord.start("spmv.dispatch"):
            with coord.start("exec.sharded") as parent:
                batch = _worker_batch(parent=parent.span_id)
                grafted = remote.graft_spans(coord, batch, parent=parent)
        assert [s.name for s in grafted] == ["worker.task", "kernel.csr"]
        root, kernel = grafted
        assert root.parent_id == parent.span_id
        assert kernel.parent_id == root.span_id
        assert root.depth == parent.depth + 1
        # ids are remapped into the coordinator's space: all unique
        ids = [s.span_id for s in coord.spans]
        assert len(ids) == len(set(ids))

    def test_graft_resolves_parent_from_batch_field(self):
        coord = Tracer()
        with coord.start("spmv.dispatch") as dispatch:
            pass
        batch = _worker_batch(parent=dispatch.span_id)
        grafted = remote.graft_spans(coord, batch)
        assert grafted[0].parent_id == dispatch.span_id

    def test_graft_attaches_worker_attrs_and_counters(self):
        coord = Tracer()
        batch = _worker_batch(worker=2)
        grafted = remote.graft_spans(coord, batch)
        for s in grafted:
            assert s.attrs["worker"] == 2
            assert s.attrs["worker_pid"] == batch["pid"]
            assert s.attrs["trace_id"] == "t1"
        kernel = grafted[1]
        assert isinstance(kernel.counters, KernelCounters)
        assert kernel.counters.index_bytes == 64

    def test_graft_rebases_timestamps_via_wall_clock_anchor(self):
        coord = Tracer()
        batch = _worker_batch()
        # Pretend the worker tracer started 1s after the coordinator.
        batch["t0_wall"] = coord.t0_wall + 1.0
        grafted = remote.graft_spans(coord, batch)
        d = grafted[0].to_dict()
        src = batch["spans"][0]
        assert d["ts_us"] == pytest.approx(src["ts_us"] + 1e6, abs=1.0)
        assert d["dur_us"] == pytest.approx(src["dur_us"], abs=1e-6)


class TestMerge:
    def test_merge_batches_labels_by_worker(self):
        reg = MetricsRegistry()
        remote.merge_batches(
            reg, [_worker_batch(worker=0), _worker_batch(worker=1)]
        )
        snap = reg.snapshot()
        assert snap["counters"][
            'bitstream.slices_decoded{worker="0"}'] == 1.0
        assert snap["counters"][
            'bitstream.slices_decoded{worker="1"}'] == 1.0
        # existing labels survive alongside the injected one
        key = ('kernel.launches{device="Tesla K20",format="csr",'
               'worker="1"}')
        assert snap["counters"][key] == 1.0

    def test_merge_batches_device_label_from_shard(self):
        reg = MetricsRegistry()
        remote.merge_batches(
            reg, [_worker_batch(worker=0, shard=0)], device_names=["devA"]
        )
        snap = reg.snapshot()
        assert snap["counters"][
            'bitstream.slices_decoded{device="devA",worker="0"}'] == 1.0

    def test_merged_equals_sum_of_per_worker_snapshots(self):
        """The tentpole invariant, stated on the pure helper."""
        batches = [_worker_batch(worker=w, shard=w) for w in range(4)]
        reg = MetricsRegistry()
        remote.merge_batches(reg, batches)
        merged = reg.snapshot()

        # Sum the per-worker snapshots independently, with the same
        # labelling, and demand bit-identical equality.
        labelled = []
        for b in batches:
            one = MetricsRegistry()
            one.merge(b["snapshot"], {"worker": str(b["worker"])})
            labelled.append(one.snapshot())
        assert merge_snapshots(labelled) == merged


class TestIdempotentEnableDisable:
    def test_double_enable_keeps_tracer_and_spans(self):
        t1 = telemetry.enable()
        with telemetry.span("alpha"):
            pass
        t2 = telemetry.enable()  # regression: must not install a new tracer
        assert t2 is t1
        assert [s.name for s in t1.spans] == ["alpha"]
        assert M.collecting()

    def test_double_enable_keeps_private_registry(self):
        reg = MetricsRegistry()
        telemetry.enable(registry=reg)
        M.record_bitstream_decode(5)
        telemetry.enable()
        assert M.registry() is reg
        M.record_bitstream_decode(5)
        assert reg.snapshot()["counters"]["bitstream.slices_decoded"] == 2.0

    def test_explicit_arguments_still_swap_targets(self):
        t1 = telemetry.enable()
        fresh = Tracer()
        assert telemetry.enable(fresh) is fresh
        assert telemetry.enable() is fresh is not t1

    def test_double_disable_is_safe(self):
        telemetry.enable()
        telemetry.disable()
        telemetry.disable()
        assert get_tracer() is None
        assert not M.collecting()

    def test_concurrent_enable_lands_on_one_tracer(self):
        tracers = []
        barrier = threading.Barrier(8)

        def hit():
            barrier.wait()
            tracers.append(telemetry.enable())

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(id(t) for t in tracers)) == 1
        assert get_tracer() is tracers[0]


class TestTracerContext:
    def test_trace_id_autogenerated_and_injectable(self):
        assert Tracer().trace_id != Tracer().trace_id
        assert Tracer(trace_id="fixed").trace_id == "fixed"

    def test_current_span_tracks_stack(self):
        t = Tracer()
        assert t.current_span() is None
        with t.start("a") as a:
            assert t.current_span() is a
            with t.start("b") as b:
                assert t.current_span() is b
            assert t.current_span() is a
        assert t.current_span() is None

    def test_enable_tracing_still_installs(self):
        t = Tracer()
        enable_tracing(t)
        assert get_tracer() is t
        disable_tracing()
