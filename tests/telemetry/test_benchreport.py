"""Benchmark report round-trip and the regression comparator."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.telemetry.benchreport import (
    SCHEMA_VERSION,
    compare_reports,
    default_report_path,
    load_report,
    make_report,
    metric_direction,
    write_report,
)


def rows(gflops, dram):
    return [
        {"matrix": "dense2", "device": "k20", "gflops": gflops,
         "dram_bytes": dram},
        {"matrix": "cant", "device": "k20", "gflops": 10.0,
         "dram_bytes": 1000},
    ]


class TestReportIO:
    def test_round_trip(self, tmp_path):
        report = make_report("fig4", rows(20.0, 500), scale=0.05,
                             meta={"host": "ci"})
        path = tmp_path / "BENCH_fig4.json"
        write_report(report, str(path))
        loaded = load_report(str(path))
        assert loaded == report
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["scale"] == 0.05
        assert loaded["meta"] == {"host": "ci"}

    def test_numpy_scalars_serialize(self, tmp_path):
        report = make_report(
            "np", [{"matrix": "m", "gflops": np.float64(1.5),
                    "nnz": np.int64(7)}]
        )
        path = tmp_path / "BENCH_np.json"
        write_report(report, str(path))
        row = load_report(str(path))["rows"][0]
        assert row == {"matrix": "m", "gflops": 1.5, "nnz": 7}

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_report(str(tmp_path / "nope.json"))

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        report = make_report("x", [])
        report["schema_version"] = 99
        path = tmp_path / "bad.json"
        write_report(report, str(path))
        with pytest.raises(ValidationError, match="schema_version"):
            load_report(str(path))

    def test_load_rejects_non_report_json(self, tmp_path):
        path = tmp_path / "notareport.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValidationError, match="rows"):
            load_report(str(path))

    def test_default_report_path(self):
        assert default_report_path("fig4") == "./BENCH_fig4.json"
        assert default_report_path("fig4", "/tmp/out").endswith(
            "/tmp/out/BENCH_fig4.json"
        )


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name", ["gflops", "speedup_vs_hyb", "eta", "bw_util", "savings_pct"]
    )
    def test_higher_better(self, name):
        assert metric_direction(name) == 1

    @pytest.mark.parametrize(
        "name", ["dram_bytes", "time_s", "decode_ops", "silent", "dur_us",
                 "t_mem"]
    )
    def test_lower_better(self, name):
        assert metric_direction(name) == -1

    def test_unknown_is_informational(self):
        assert metric_direction("rows") == 0


class TestComparator:
    def test_identical_reports_are_clean(self):
        base = make_report("fig4", rows(20.0, 500))
        comp = compare_reports(base, base)
        assert comp.clean
        assert comp.deltas == []
        assert comp.compared_metrics == 4

    def test_throughput_drop_is_a_regression(self):
        base = make_report("fig4", rows(20.0, 500))
        cur = make_report("fig4", rows(15.0, 500))  # -25% gflops
        comp = compare_reports(base, cur, threshold=0.05)
        assert not comp.clean
        (reg,) = comp.regressions
        assert reg.metric == "gflops"
        assert "dense2" in reg.row_key
        assert reg.rel_delta == pytest.approx(-0.25)
        assert reg.row()["status"] == "REGRESSION"

    def test_throughput_gain_is_not_a_regression(self):
        base = make_report("fig4", rows(20.0, 500))
        cur = make_report("fig4", rows(30.0, 500))  # +50% gflops
        comp = compare_reports(base, cur, threshold=0.05)
        assert comp.clean
        (delta,) = comp.deltas  # reported as changed, not regressed
        assert not delta.regression
        assert delta.row()["status"] == "changed"

    def test_cost_rise_is_a_regression(self):
        base = make_report("fig4", rows(20.0, 500))
        cur = make_report("fig4", rows(20.0, 800))  # +60% dram_bytes
        comp = compare_reports(base, cur)
        (reg,) = comp.regressions
        assert reg.metric == "dram_bytes"

    def test_within_threshold_is_silent(self):
        base = make_report("fig4", rows(20.0, 500))
        cur = make_report("fig4", rows(19.5, 510))  # -2.5%, +2%
        comp = compare_reports(base, cur, threshold=0.05)
        assert comp.clean
        assert comp.deltas == []

    def test_missing_row_fails_comparison(self):
        base = make_report("fig4", rows(20.0, 500))
        cur = make_report("fig4", rows(20.0, 500)[:1])
        comp = compare_reports(base, cur)
        assert not comp.clean
        assert len(comp.missing_rows) == 1
        assert "cant" in comp.missing_rows[0]
        assert "missing" in comp.summary()

    def test_extra_row_is_tolerated(self):
        base = make_report("fig4", rows(20.0, 500)[:1])
        cur = make_report("fig4", rows(20.0, 500))
        comp = compare_reports(base, cur)
        assert comp.clean
        assert len(comp.extra_rows) == 1

    def test_informational_metric_never_regresses(self):
        base = make_report("r", [{"matrix": "m", "padding": 1.0}])
        cur = make_report("r", [{"matrix": "m", "padding": 99.0}])
        comp = compare_reports(base, cur)
        assert comp.clean
        (delta,) = comp.deltas
        assert delta.direction == 0

    def test_zero_baseline_uses_absolute_delta(self):
        base = make_report("r", [{"matrix": "m", "time_s": 0.0}])
        cur = make_report("r", [{"matrix": "m", "time_s": 0.04}])
        assert compare_reports(base, cur, threshold=0.05).clean
        cur = make_report("r", [{"matrix": "m", "time_s": 0.5}])
        assert not compare_reports(base, cur, threshold=0.05).clean

    def test_negative_threshold_rejected(self):
        base = make_report("r", [])
        with pytest.raises(ValidationError):
            compare_reports(base, base, threshold=-0.1)

    def test_summary_mentions_counts(self):
        base = make_report("fig4", rows(20.0, 500))
        cur = make_report("fig4", rows(15.0, 500))
        s = compare_reports(base, cur).summary()
        assert "4 metrics compared" in s
        assert "1 regression(s)" in s
