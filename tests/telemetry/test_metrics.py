"""MetricsRegistry semantics and the hot-path record_* helpers."""

import pytest

from repro.errors import ValidationError
from repro.gpu.counters import KernelCounters
from repro.telemetry import metrics as M
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _label_key,
)


@pytest.fixture(autouse=True)
def collection_off():
    M.stop_collecting()
    yield
    M.stop_collecting()


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_gauge_goes_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8.0

    def test_histogram_cumulative_buckets(self):
        h = Histogram(buckets=[1, 10, 100])
        for v in (0.5, 5, 5, 50, 500):
            h.observe(v)
        d = h.to_dict()
        assert d["buckets"] == [1.0, 10.0, 100.0]
        assert d["cumulative"] == [1, 3, 4]  # <=1, <=10, <=100
        assert d["count"] == 5
        assert d["sum"] == pytest.approx(560.5)

    def test_histogram_rejects_empty_buckets(self):
        with pytest.raises(ValidationError):
            Histogram(buckets=[])

    def test_label_key_is_sorted_and_canonical(self):
        assert _label_key("m", None) == "m"
        assert _label_key("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", {"x": "1"}) is not reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=[1]).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_unified_snapshot_includes_integrity_gauges(self):
        snap = MetricsRegistry().unified_snapshot()
        for key in (
            "integrity.verifications",
            "integrity.detections",
            "integrity.fallbacks",
            "integrity.raised",
        ):
            assert key in snap["gauges"]

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestCollectionSwitch:
    def test_off_by_default_and_routes_to_default_registry(self):
        assert not M.collecting()
        assert M.registry() is M.REGISTRY

    def test_start_collecting_into_private_registry(self):
        private = MetricsRegistry()
        assert M.start_collecting(private) is private
        assert M.collecting()
        assert M.registry() is private
        M.stop_collecting()
        assert not M.collecting()

    def test_record_helpers_are_noops_when_off(self):
        reg = MetricsRegistry()
        M.record_kernel("bro_ell", "k20", KernelCounters())
        M.record_texcache(10, 4, 32)
        M.record_bitstream_encode(100, 800)
        M.record_bitstream_decode(100)
        assert reg.snapshot()["counters"] == {}
        assert M.REGISTRY is M.registry()


class TestRecordHelpers:
    def test_record_kernel_labels_and_totals(self):
        reg = M.start_collecting(MetricsRegistry())
        counters = KernelCounters(
            index_bytes=100,
            value_bytes=200,
            x_bytes=50,
            y_bytes=25,
            useful_flops=400,
            issued_flops=500,
            decode_ops=60,
            launches=2,
        )
        M.record_kernel("bro_ell", "k20", counters)
        snap = reg.snapshot()
        key = 'kernel.dram_bytes{device="k20",format="bro_ell"}'
        assert snap["counters"][key] == counters.dram_bytes
        assert (
            snap["counters"]['kernel.launches{device="k20",format="bro_ell"}']
            == 2
        )
        hist = snap["histograms"][
            'kernel.dram_bytes_per_launch{device="k20",format="bro_ell"}'
        ]
        assert hist["count"] == 1

    def test_record_kernel_zero_launches_counts_one(self):
        reg = M.start_collecting(MetricsRegistry())
        M.record_kernel("coo", "k20", KernelCounters(launches=0))
        key = 'kernel.launches{device="k20",format="coo"}'
        assert reg.snapshot()["counters"][key] == 1

    def test_record_texcache_derives_hits(self):
        reg = M.start_collecting(MetricsRegistry())
        M.record_texcache(requests=32, fetches=5, line_bytes=32)
        snap = reg.snapshot()["counters"]
        assert snap["texcache.requests"] == 32
        assert snap["texcache.fetches"] == 5
        assert snap["texcache.hits"] == 27
        assert snap["texcache.bytes"] == 160

    def test_record_bitstream_round_trip(self):
        reg = M.start_collecting(MetricsRegistry())
        M.record_bitstream_encode(symbols=256, payload_bits=1024)
        M.record_bitstream_decode(symbols=256)
        snap = reg.snapshot()["counters"]
        assert snap["bitstream.slices_encoded"] == 1
        assert snap["bitstream.symbols_written"] == 256
        assert snap["bitstream.payload_bits"] == 1024
        assert snap["bitstream.slices_decoded"] == 1
        assert snap["bitstream.symbols_read"] == 256
