"""Histogram sliding-window percentiles: exactness against numpy."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.telemetry.metrics import (
    DEFAULT_WINDOW,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)

QS = (0, 50, 95, 99, 100)


class TestPercentileExactness:
    @pytest.mark.parametrize("q", QS)
    def test_matches_numpy_on_uniform_samples(self, q):
        rng = np.random.default_rng(41)
        samples = rng.uniform(1e-5, 1.0, size=500)
        h = Histogram(LATENCY_BUCKETS)
        for v in samples:
            h.observe(v)
        assert h.percentile(q) == float(np.percentile(samples, q))

    @pytest.mark.parametrize("seed", range(10))
    def test_property_random_distributions(self, seed):
        """Property test: arbitrary sizes/distributions, every target q."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        kind = seed % 3
        if kind == 0:
            samples = rng.exponential(0.01, size=n)
        elif kind == 1:
            samples = rng.lognormal(-5, 2, size=n)
        else:
            samples = rng.choice([0.001, 0.002, 0.5], size=n)
        h = Histogram(LATENCY_BUCKETS)
        for v in samples:
            h.observe(v)
        for q in QS:
            assert h.percentile(q) == float(np.percentile(samples, q)), (
                f"q={q} n={n} kind={kind}"
            )

    def test_single_sample_all_quantiles(self):
        h = Histogram()
        h.observe(42.0)
        for q in QS:
            assert h.percentile(q) == 42.0

    def test_interpolation_between_ranks(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        # numpy's default linear interpolation
        assert h.percentile(50) == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0


class TestPercentileValidation:
    def test_q_out_of_range_raises(self):
        h = Histogram()
        h.observe(1.0)
        for q in (-0.1, 100.1, 500):
            with pytest.raises(ValidationError):
                h.percentile(q)

    def test_empty_histogram_raises(self):
        with pytest.raises(ValidationError):
            Histogram().percentile(50)

    def test_bad_window_rejected(self):
        with pytest.raises(ValidationError):
            Histogram(window=0)


class TestSlidingWindow:
    def test_window_keeps_most_recent_samples(self):
        h = Histogram(window=4)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            h.observe(v)
        assert list(h.samples) == [3.0, 4.0, 5.0, 6.0]
        # bucket counts and totals still see everything
        assert h.count == 6
        assert h.sum == 21.0
        assert h.percentile(100) == 6.0
        assert h.percentile(0) == 3.0

    def test_default_window_bound(self):
        h = Histogram()
        for v in range(3 * DEFAULT_WINDOW):
            h.observe(float(v))
        assert len(h.samples) == DEFAULT_WINDOW
        assert h.count == 3 * DEFAULT_WINDOW

    def test_to_dict_carries_samples(self):
        h = Histogram(window=8)
        for v in (0.5, 1.5):
            h.observe(v)
        d = h.to_dict()
        assert d["samples"] == [0.5, 1.5]


class TestMergeDict:
    def test_merge_preserves_buckets_sum_count_and_samples(self):
        a, b = Histogram(window=16), Histogram(window=16)
        for v in (1.0, 10.0, 100.0):
            a.observe(v)
        for v in (2.0, 20.0):
            b.observe(v)
        a.merge_dict(b.to_dict())
        assert a.count == 5
        assert a.sum == 133.0
        assert sorted(a.samples) == [1.0, 2.0, 10.0, 20.0, 100.0]
        both = Histogram(window=16)
        for v in (1.0, 10.0, 100.0, 2.0, 20.0):
            both.observe(v)
        assert a.counts == both.counts

    def test_merge_rejects_bucket_mismatch(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 4.0))
        with pytest.raises(ValidationError):
            a.merge_dict(b.to_dict())

    def test_merge_handles_overflow_bucket(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(1.0,))
        b.observe(5.0)  # lands past the last bound
        a.merge_dict(b.to_dict())
        assert a.counts[-1] == 1

    def test_registry_merge_percentiles_equal_pooled_samples(self):
        """Merging registry snapshots pools the windows, so percentiles
        over the merged histogram equal numpy on the concatenation."""
        workers = []
        rng = np.random.default_rng(3)
        merged = MetricsRegistry()
        pooled = []
        for w in range(4):
            reg = MetricsRegistry()
            samples = rng.exponential(0.01, size=50)
            hist = reg.histogram("exec.shard_latency_seconds",
                                 {"worker": str(w)},
                                 buckets=LATENCY_BUCKETS)
            for v in samples:
                hist.observe(v)
            workers.append(samples)
            pooled.extend(samples)
            merged.merge(reg.snapshot())
        total = Histogram(LATENCY_BUCKETS)
        for key, d in merged.snapshot()["histograms"].items():
            total.merge_dict(d)
        assert total.count == len(pooled)
        for q in QS:
            # same multiset of samples; order differs, so sort both sides
            assert total.percentile(q) == pytest.approx(
                float(np.percentile(pooled, q)), rel=1e-12
            )
