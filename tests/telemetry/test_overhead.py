"""Telemetry must cost nothing when disabled and change nothing when on.

The acceptance bar from the issue: with telemetry off, ``run_spmv`` is
bit-identical to a run that never imported telemetry, and the disabled
``span()`` fast path performs no allocation per call.
"""

import sys

import numpy as np
import pytest

from repro import telemetry
from repro.formats.conversion import convert
from repro.formats.coo import COOMatrix
from repro.kernels.dispatch import run_spmv
from repro.telemetry import metrics as M
from repro.telemetry.tracer import NULL_SPAN, disable_tracing, span


def banded_matrix(m=512, k=8):
    cols = np.minimum(
        np.arange(k) + np.maximum(0, np.arange(m)[:, None] - k // 2), m - 1
    )
    rows = np.repeat(np.arange(m), k)
    return COOMatrix(rows, cols.reshape(-1), np.ones(m * k), (m, m))


@pytest.fixture(autouse=True)
def telemetry_off():
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture(scope="module")
def workload():
    coo = banded_matrix()
    mat = convert(coo, "bro_ell", h=64)
    x = np.random.default_rng(3).standard_normal(coo.shape[1])
    return mat, x


class TestDisabledCost:
    def test_disabled_span_is_the_shared_singleton(self):
        assert span("kernel.bro_ell", "gpu", fmt="bro_ell") is NULL_SPAN

    def test_disabled_span_allocates_nothing(self):
        """Net allocated blocks stay flat across many disabled spans."""
        disable_tracing()
        # Warm up: let any lazy caches (bound methods, etc.) settle.
        for _ in range(64):
            with span("warmup"):
                pass
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            with span("hot", "gpu"):
                pass
        after = sys.getallocatedblocks()
        # Interpreter noise is possible but must not scale with the loop.
        assert after - before < 16

    def test_disabled_metrics_helpers_allocate_nothing(self):
        M.stop_collecting()
        for _ in range(64):
            M.record_texcache(1, 1, 32)
        before = sys.getallocatedblocks()
        for _ in range(10_000):
            M.record_texcache(32, 4, 32)
            M.record_bitstream_decode(256)
        after = sys.getallocatedblocks()
        assert after - before < 16

    def test_no_spans_recorded_while_disabled(self, workload):
        mat, x = workload
        run_spmv(mat, x, "k20")
        with telemetry.tracing() as t:
            pass  # enabled and immediately closed: nothing traced
        assert t.spans == []


class TestBitIdentical:
    def test_run_spmv_identical_with_and_without_telemetry(self, workload):
        mat, x = workload
        plain = run_spmv(mat, x, "k20")
        with telemetry.tracing():
            traced = run_spmv(mat, x, "k20")
        rerun = run_spmv(mat, x, "k20")

        assert np.array_equal(plain.y, traced.y)  # bit-identical, no tolerance
        assert np.array_equal(plain.y, rerun.y)
        assert plain.counters == traced.counters

    def test_verified_path_identical_with_and_without_telemetry(self, workload):
        from repro.integrity.checksums import seal

        from repro.exec.policy import ExecutionPolicy

        mat, x = workload
        sealed = seal(mat)
        checked = ExecutionPolicy(verify="checksum")
        plain = run_spmv(sealed, x, "k20", policy=checked)
        with telemetry.tracing() as t:
            traced = run_spmv(sealed, x, "k20", policy=checked)
        assert np.array_equal(plain.y, traced.y)
        assert plain.counters == traced.counters
        # ... and the traced run actually produced the dispatch span tree.
        names = [s.name for s in t.spans]
        assert "spmv.dispatch" in names
        assert any(n.startswith("kernel.") for n in names)

    def test_tracing_captures_kernel_counters(self, workload):
        mat, x = workload
        with telemetry.tracing() as t:
            result = run_spmv(mat, x, "k20")
        (kspan,) = t.find("kernel.bro_ell")
        assert kspan.counters is not None
        assert kspan.counters.dram_bytes == result.counters.dram_bytes
        assert kspan.timing is not None
        assert kspan.timing["time"] == pytest.approx(result.timing.time)

    def test_metrics_collected_match_kernel_counters(self, workload):
        mat, x = workload
        reg = M.MetricsRegistry()
        with telemetry.tracing(registry=reg):
            result = run_spmv(mat, x, "k20")
        snap = reg.snapshot()
        key = f'kernel.dram_bytes{{device="{result.device.name}",format="bro_ell"}}'
        assert snap["counters"][key] == result.counters.dram_bytes
