"""Prometheus exporter hardening: label escaping + metric-name sanitizing."""

import pytest

from repro.errors import ValidationError
from repro.telemetry.exporters import (
    _prom_name,
    _sanitize_metric_name,
    prometheus_text,
)
from repro.telemetry.metrics import (
    MetricsRegistry,
    _label_key,
    _parse_key,
)


class TestLabelEscaping:
    @pytest.mark.parametrize("value", [
        'he said "hi"',
        "back\\slash",
        "line\nbreak",
        '"quoted" \\ and\nnewline',
        "plain",
        "",
        'trailing backslash\\',
    ])
    def test_label_key_round_trips(self, value):
        key = _label_key("m", {"matrix": value})
        name, labels = _parse_key(key)
        assert name == "m"
        assert labels == {"matrix": value}

    def test_escaped_key_has_no_raw_specials(self):
        key = _label_key("m", {"a": 'x"y\nz'})
        inner = key[key.index("{") + 1:-1]
        # the only unescaped quotes are the value delimiters
        assert inner.count('"') - inner.count('\\"') == 2
        assert "\n" not in key

    def test_multiple_labels_sorted_and_parseable(self):
        labels = {"worker": "3", "matrix": 'we"ird\\name'}
        key = _label_key("kernel.launches", labels)
        assert key.index('matrix=') < key.index('worker=')
        assert _parse_key(key) == ("kernel.launches", labels)

    def test_parse_rejects_malformed_keys(self):
        for bad in ("m{a=1}", "m{a=\"x\"", 'm{a="x'):
            with pytest.raises(ValidationError):
                _parse_key(bad)

    def test_registry_series_with_hostile_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("runs", {"matrix": 'a"b'}).inc()
        reg.counter("runs", {"matrix": "a\\b"}).inc()
        reg.counter("runs", {"matrix": "a\nb"}).inc()
        snap = reg.snapshot()
        assert len(snap["counters"]) == 3
        assert all(v == 1.0 for v in snap["counters"].values())

    def test_prometheus_text_emits_escaped_values(self):
        reg = MetricsRegistry()
        reg.counter("runs", {"matrix": 'we"ird\n\\name'}).inc(2)
        text = prometheus_text(reg.snapshot())
        assert 'repro_runs{matrix="we\\"ird\\n\\\\name"} 2' in text
        assert "\n\\\\name" not in text.splitlines()[1][:0]  # no raw newline
        # every line is a comment or `series value`
        for line in text.strip().splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


class TestMetricNameSanitization:
    @pytest.mark.parametrize("raw,clean", [
        ("kernel.dram_bytes", "kernel_dram_bytes"),
        ("exec.shard_latency_seconds", "exec_shard_latency_seconds"),
        ("weird metric-name!", "weird_metric_name_"),
        ("ns:ok_name", "ns:ok_name"),
        ("1starts_with_digit", "_1starts_with_digit"),
        ("uni·code", "uni_code"),
    ])
    def test_sanitize(self, raw, clean):
        assert _sanitize_metric_name(raw) == clean

    def test_sanitize_is_stable(self):
        for name in ("a.b", "x y", "1.z"):
            once = _sanitize_metric_name(name)
            assert _sanitize_metric_name(once) == once

    def test_prom_name_only_touches_the_metric_part(self):
        key = _label_key("exec.runs", {"matrix": "dots.in.value"})
        out = _prom_name(key)
        assert out.startswith("exec_runs{")
        assert 'matrix="dots.in.value"' in out

    def test_prometheus_text_sanitizes_hostile_metric_names(self):
        reg = MetricsRegistry()
        reg.counter("weird metric!", {"w": "0"}).inc()
        text = prometheus_text(reg.snapshot())
        assert "repro_weird_metric_" in text
        assert "weird metric!" not in text

    def test_histogram_exposition_with_hostile_labels(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat.s", {"worker": 'w"0'}, buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE repro_lat_s histogram" in text
        assert 'worker="w\\"0",le="1"' in text
        assert 'repro_lat_s_count{worker="w\\"0"} 2' in text
