"""Unit tests for the format advisor and row sampling."""

import numpy as np
import pytest

from repro import registry as _registry
from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.matrices.generators import block_band, hub_mixture
from repro.tuner.advisor import default_candidates, rank_formats, recommend_format
from repro.tuner.sampling import sample_rows
from tests.conftest import random_coo


class TestSampling:
    def test_small_matrix_returned_verbatim(self):
        coo = random_coo(100, 80, seed=1)
        sampled, factor = sample_rows(coo, 200)
        assert sampled is coo
        assert factor == 1.0

    def test_stripe_shape_and_factor(self):
        coo = random_coo(1000, 300, density=0.02, seed=2)
        sampled, factor = sample_rows(coo, 100, seed=3)
        assert sampled.shape == (100, 300)
        assert factor == pytest.approx(10.0)

    def test_stripe_preserves_density_roughly(self):
        coo = random_coo(2000, 500, density=0.02, seed=4)
        sampled, _ = sample_rows(coo, 500, seed=5)
        full_density = coo.nnz / coo.shape[0]
        samp_density = sampled.nnz / sampled.shape[0]
        assert abs(samp_density - full_density) / full_density < 0.25

    def test_deterministic(self):
        coo = random_coo(500, 100, seed=6)
        a, _ = sample_rows(coo, 50, seed=7)
        b, _ = sample_rows(coo, 50, seed=7)
        np.testing.assert_array_equal(a.col_idx, b.col_idx)

    def test_validation(self):
        with pytest.raises(ValidationError):
            sample_rows(random_coo(10, 10, seed=0), 0)


class TestCandidateDerivation:
    """The candidate pool is *derived* from registry TunerProfile
    declarations, never a hand-maintained list — registering a new format
    with ``TunerProfile(candidate=True)`` must surface it automatically."""

    def test_candidates_mirror_registry_declarations(self):
        expected = tuple(sorted(
            spec.name
            for spec in _registry.iter_specs()
            if spec.tuner is not None and spec.tuner.candidate
        ))
        assert default_candidates() == expected

    def test_new_format_families_are_candidates(self):
        pool = default_candidates()
        for fmt in ("sell_c_sigma", "cmrs", "bro_sell"):
            assert fmt in pool, fmt

    def test_specialty_variants_stay_excluded(self):
        pool = default_candidates()
        for fmt in ("bro_ell_mt", "bro_ell_vc", "sharded"):
            assert fmt not in pool, fmt

    def test_new_formats_are_rankable(self):
        coo = block_band(1024, 16.0, 3.0, run=3, bandwidth=160, seed=11)
        ranking = rank_formats(coo, "k20",
                               formats=("sell_c_sigma", "cmrs", "bro_sell"))
        assert {r.format_name for r in ranking} == {
            "sell_c_sigma", "cmrs", "bro_sell"
        }
        for rec in ranking:
            assert rec.predicted_time > 0.0


class TestAdvisor:
    def test_returns_full_ranking(self):
        coo = block_band(1024, 20.0, 4.0, run=3, bandwidth=200, seed=1)
        ranking = rank_formats(coo, "k20")
        assert len(ranking) >= 6
        times = [r.time_per_nnz for r in ranking]
        assert times == sorted(times)

    def test_bro_wins_on_compressible_fem(self):
        # Uniform FEM block band: the paper's BRO-ELL sweet spot.
        coo = block_band(4096, 40.0, 6.0, run=3, bandwidth=400, seed=2)
        best = recommend_format(coo, "k20")
        assert best.format_name in ("bro_ell", "bro_hyb", "bro_ell_vc")

    def test_ell_family_skipped_on_extreme_skew(self):
        # One enormous row: dense ELLPACK arrays are excluded outright.
        rows = np.concatenate([np.zeros(3000), np.arange(1, 3000)])
        cols = np.concatenate([np.arange(3000), np.zeros(2999)])
        coo = COOMatrix(rows, cols, np.ones(rows.size), (3000, 3000))
        names = [r.format_name for r in rank_formats(coo, "k20")]
        assert "ellpack" not in names
        assert "hyb" in names or "bro_hyb" in names

    def test_hyb_family_wins_on_bimodal_matrix(self):
        # Formats that tolerate row-length skew: the HYB/COO family plus the
        # strip-based CMRS, which packs irregular rows without ELL padding.
        coo = hub_mixture(4096, base_mu=6.0, tail_fraction=0.01,
                          tail_mu=800.0, seed=3)
        best = recommend_format(coo, "k20")
        assert best.format_name in ("hyb", "bro_hyb", "bro_coo", "coo", "cmrs")

    def test_h_sweep_adds_candidates(self):
        coo = block_band(1024, 20.0, 4.0, run=3, bandwidth=200, seed=4)
        base = rank_formats(coo, "k20", formats=("bro_ell",))
        swept = rank_formats(coo, "k20", formats=("bro_ell",),
                             h_candidates=(64, 128, 256))
        assert len(swept) == 3 * len(base)
        assert {r.params["h"] for r in swept} == {64, 128, 256}

    def test_prediction_matches_direct_model(self):
        from repro.bench.harness import spmv_once
        from repro.formats import convert

        coo = block_band(512, 16.0, 3.0, run=3, bandwidth=100, seed=5)
        ranking = rank_formats(coo, "c2070", formats=("ellpack",),
                               sample_rows_limit=10**6, seed=9)
        direct = spmv_once(convert(coo, "ellpack"), "c2070",
                           np.random.default_rng(9).standard_normal(512))
        assert ranking[0].predicted_time == pytest.approx(
            direct.timing.time, rel=1e-9
        )

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValidationError):
            rank_formats(COOMatrix([], [], [], (4, 4)), "k20")

    def test_describe_line(self):
        coo = block_band(256, 8.0, 2.0, run=2, bandwidth=64, seed=6)
        line = recommend_format(coo, "k20").describe()
        assert "GFlop/s" in line and "ps/nnz" in line
