"""Online autotuning (:mod:`repro.tuner.online`): deterministic retuning.

The simulator's timing model is deterministic, so the retune loop is
too — a session started on a deliberately poor format converges to the
advisor's measured-best candidate at the first window boundary, keeps it
thereafter, and every decision leaves an ``exec.retune.*`` counter and a
history entry behind. These tests pin that trajectory plus the knobs:
hysteresis skip, retune budget, window interval, config validation and
seal preservation across a retune.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.policy import ExecutionPolicy
from repro.kernels.plancache import PlanCache
from repro.pipeline import Session
from repro.telemetry import metrics as M
from repro.tuner import OnlineTuner, RetuneConfig

#: Small but structured enough that the advisor's ranking is stable.
MATRIX, SCALE = "qcd5_4", 0.05

#: A candidate pool whose best is never plain COO (the deliberately poor
#: start), so the first evaluation always has a better candidate.
FORMATS = ("bro_ell", "bro_coo", "csr")


def make_session(interval=4, hysteresis=1.05, max_retunes=2, **kw):
    sess = Session(
        "k20", policy=ExecutionPolicy(plan_cache=PlanCache())
    ).load(MATRIX, scale=SCALE).convert("coo")
    sess.autotune(RetuneConfig(
        interval=interval, hysteresis=hysteresis, max_retunes=max_retunes,
        formats=FORMATS, **kw,
    ))
    return sess


def x_for(sess, seed=5):
    return np.random.default_rng(seed).standard_normal(sess.matrix.shape[1])


class TestRetuneConfig:
    def test_defaults(self):
        cfg = RetuneConfig()
        assert cfg.interval == 16
        assert cfg.hysteresis == 1.1
        assert cfg.max_retunes == 3
        assert cfg.sym_len_candidates == (32, 64)

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_interval_validated(self, bad):
        with pytest.raises(ValidationError, match="interval"):
            RetuneConfig(interval=bad)

    def test_hysteresis_validated(self):
        with pytest.raises(ValidationError, match="hysteresis"):
            RetuneConfig(hysteresis=0.9)

    @pytest.mark.parametrize("bad", [-1, 1.5])
    def test_max_retunes_validated(self, bad):
        with pytest.raises(ValidationError, match="max_retunes"):
            RetuneConfig(max_retunes=bad)


class TestConvergence:
    def test_poor_format_converges_at_first_window(self):
        """The acceptance case: COO start, deterministic convergence to
        the advisor's best within one window, then stable."""
        sess = make_session(interval=4)
        x = x_for(sess)
        for call in range(1, 13):
            sess.run(x)
            if call < 4:
                assert sess.format_name == "coo"
        tuner = sess.tuner
        assert sess.format_name != "coo"
        assert tuner.retunes == 1
        first, rest = tuner.history[0], tuner.history[1:]
        assert first["decision"] == "triggered"
        assert first["call"] == 4
        assert sess.format_name == first["best_format"]
        # Subsequent windows re-score and keep the converged choice.
        assert rest and all(e["decision"] == "kept" for e in rest)
        # Convergence is deterministic: a fresh identical run lands on
        # the same format at the same call.
        twin = make_session(interval=4)
        for _ in range(4):
            twin.run(x)
        assert twin.format_name == sess.tuner.history[0]["best_format"]

    def test_retuned_session_still_correct(self):
        sess = make_session(interval=2)
        x = x_for(sess)
        expected = sess.source.spmv(x)
        for _ in range(4):
            res = sess.run(x)
        assert sess.format_name != "coo"
        np.testing.assert_allclose(res.y, expected, rtol=1e-12)

    def test_counters_and_span_emitted(self):
        from repro import telemetry

        reg = M.MetricsRegistry()
        with telemetry.tracing(registry=reg) as t:
            sess = make_session(interval=2, max_retunes=1)
            x = x_for(sess)
            for _ in range(4):
                sess.run(x)
        telemetry.disable()
        assert t.find("session.retune")
        snap = reg.snapshot()["counters"]
        assert snap["exec.retune.evaluations"] >= 1
        fmt = sess.format_name
        assert snap[f'exec.retune.triggered{{format="{fmt}"}}'] == 1

    def test_seal_survives_retune(self):
        sess = make_session(interval=2).seal()
        assert sess.sealed
        x = x_for(sess)
        sess.run(x)
        assert sess.tuner.retunes == 0
        sess.run(x)
        assert sess.tuner.retunes == 1
        assert sess.sealed, "retune must re-seal a sealed container"

    def test_retune_warms_the_plan_cache(self):
        sess = make_session(interval=2)
        cache = sess.plan_cache
        x = x_for(sess)
        sess.run(x)
        sess.run(x)  # retunes + prepare()s the new container
        builds_after_retune = cache.stats()["builds"]
        sess.run(x)  # warm: replays the prepared plan
        assert cache.stats()["builds"] == builds_after_retune


class TestKnobs:
    def test_window_interval_respected(self):
        sess = make_session(interval=6)
        x = x_for(sess)
        for _ in range(5):
            sess.run(x)
        assert sess.tuner.history == []
        sess.run(x)
        assert len(sess.tuner.history) == 1

    def test_high_hysteresis_skips(self):
        sess = make_session(interval=2, hysteresis=1e9)
        x = x_for(sess)
        sess.run(x)
        sess.run(x)
        tuner = sess.tuner
        assert sess.format_name == "coo"
        assert tuner.retunes == 0
        (entry,) = tuner.history
        assert entry["decision"] == "skipped_hysteresis"
        assert entry["win"] < 1e9

    def test_max_retunes_budget_stops_evaluation(self):
        sess = make_session(interval=1, max_retunes=1)
        x = x_for(sess)
        for _ in range(5):
            sess.run(x)
        tuner = sess.tuner
        assert tuner.retunes == 1
        assert tuner.calls_seen == 5
        # After the budget is spent, windows close without evaluating.
        assert len(tuner.history) == 1

    def test_zero_budget_never_evaluates(self):
        sess = make_session(interval=1, max_retunes=0)
        x = x_for(sess)
        for _ in range(3):
            sess.run(x)
        assert sess.tuner.history == []
        assert sess.format_name == "coo"

    def test_observe_returns_retune_flag(self):
        # Drive a detached tuner by hand so each observe() is explicit.
        sess = Session(
            "k20", policy=ExecutionPolicy(plan_cache=PlanCache())
        ).load(MATRIX, scale=SCALE).convert("coo")
        tuner = OnlineTuner(sess, RetuneConfig(
            interval=2, hysteresis=1.05, formats=FORMATS))
        x = x_for(sess)
        assert tuner.observe(sess.run(x)) is False  # window open
        assert tuner.observe(sess.run(x)) is True  # closes, retunes
        assert tuner.retunes == 1
        assert sess.format_name != "coo"

    def test_detach_stops_observation(self):
        sess = make_session(interval=1)
        tuner = sess.tuner
        sess.detach_tuner()
        assert sess.tuner is None
        x = x_for(sess)
        for _ in range(3):
            sess.run(x)
        assert tuner.calls_seen == 0
        assert sess.format_name == "coo"

    def test_autotune_replaces_tuner(self):
        sess = make_session(interval=4)
        first = sess.tuner
        sess.autotune(RetuneConfig(interval=8, formats=FORMATS))
        assert sess.tuner is not first
        assert sess.tuner.config.interval == 8

    def test_history_records_measurement(self):
        sess = make_session(interval=3, hysteresis=1e9)
        x = x_for(sess)
        for _ in range(3):
            sess.run(x)
        (entry,) = sess.tuner.history
        assert entry["measured_per_nnz"] > 0
        assert entry["achieved_bytes_per_s"] > 0
        assert entry["best_per_nnz"] > 0
        assert entry["call"] == 3
