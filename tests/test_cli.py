"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfoCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C2070" in out
        assert "GTX680" in out
        assert "Tesla K20" in out
        assert "144.00" in out  # Table 1 pin bandwidth

    def test_matrices(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "cage12" in out and "webbase-1M" in out
        assert out.count("\n") > 30


class TestMatrixCommands:
    def test_analyze_suite_name(self, capsys):
        assert main(["analyze", "epb3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "non-zeros" in out
        assert "delta width" in out

    def test_analyze_mtx_file(self, capsys, tmp_path, paper_matrix):
        from repro.matrices.io import write_matrix_market

        path = tmp_path / "a.mtx"
        write_matrix_market(paper_matrix, path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "4 x 5" in out

    def test_unknown_matrix_errors(self, capsys):
        assert main(["analyze", "not_a_matrix"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compress(self, capsys):
        assert main(["compress", "venkat01", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "space savings" in out
        assert "bro_ell" in out

    def test_compress_bro_coo(self, capsys):
        assert main(
            ["compress", "epb3", "--scale", "0.02", "--format", "bro_coo"]
        ) == 0
        assert "bro_coo" in capsys.readouterr().out

    def test_spmv(self, capsys):
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--device", "gtx680"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "GFlop/s" in out
        assert "GTX680" in out

    def test_advise(self, capsys):
        assert main(["advise", "epb3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Format ranking" in out
        assert "1." in out


class TestBenchCommand:
    def test_bench_table1(self, capsys):
        assert main(["bench", "table1"]) == 0
        assert "Tesla K20" in capsys.readouterr().out

    def test_bench_table3_scaled(self, capsys):
        assert main(["bench", "table3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "shipsec1" in out

    def test_bench_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])


class TestExportCommand:
    def test_export_and_reload(self, capsys, tmp_path):
        out = tmp_path / "epb3.mtx"
        assert main(["export", "epb3", str(out), "--scale", "0.01"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["analyze", str(out)]) == 0
        assert "non-zeros" in capsys.readouterr().out

    def test_export_unknown_matrix(self, capsys, tmp_path):
        assert main(["export", "nope", str(tmp_path / "x.mtx")]) == 1
        assert "error:" in capsys.readouterr().err


class TestSelfcheck:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck passed" in out
        assert "bro_ell" in out
        assert "break-even" in out


class TestVerify:
    def test_verify_passes_with_zero_silent(self, capsys):
        assert main(["verify", "--faults", "30", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "zero silent corruption" in out
        assert "bro_ell" in out
        assert "silent" in out  # the detection/recovery table header

    def test_verify_reports_campaign_table(self, capsys):
        main(["verify", "--faults", "30", "--seed", "1"])
        out = capsys.readouterr().out
        for col in ("format", "fault", "injected", "detected", "recovered"):
            assert col in out


class TestJsonModes:
    def test_analyze_json(self, capsys):
        import json

        assert main(["analyze", "epb3", "--scale", "0.02", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["matrix"] == "epb3"
        assert data["nnz"] > 0
        assert "mean_delta_bits" in data

    def test_verify_json(self, capsys):
        import json

        assert main(["verify", "--faults", "20", "--seed", "0", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["campaign"]["silent"] == 0
        assert data["campaign"]["injected"] == 20
        assert any(row["ok"] for row in data["formats"])


class TestFormatsCommand:
    def test_formats_table(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        assert "format" in out and "kernel" in out and "serializer" in out
        for fmt in ("bro_ell", "bro_coo", "bro_hyb", "csr", "hyb"):
            assert fmt in out

    def test_formats_json_matches_registry(self, capsys):
        import json

        from repro import registry as _registry

        assert main(["formats", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["format"] for r in rows} == set(_registry.available_formats())
        bro = next(r for r in rows if r["format"] == "bro_ell")
        assert bro["kernel"] and bro["planner"] and bro["serializer"]
        assert bro["default_kwargs"] == {"h": 256, "sym_len": 32}


class TestSpmvSaveLoad:
    def test_save_then_spmv_from_container(self, capsys, tmp_path):
        path = tmp_path / "epb3.brx"
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--save", str(path)]
        ) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["spmv", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "GFlop/s" in out

    def test_saved_container_verifies(self, capsys, tmp_path):
        from repro.integrity.checksums import verify_integrity
        from repro.serialize import load_container

        path = tmp_path / "sealed.brx"
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--format", "bro_coo",
             "--save", str(path)]
        ) == 0
        verify_integrity(load_container(path))


class TestSpmvTrace:
    def test_trace_bro_ell(self, capsys):
        assert main(["spmv", "epb3", "--scale", "0.02", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "per-slice profile" in out

    def test_trace_bro_coo(self, capsys):
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--format", "bro_coo",
             "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-interval profile" in out
        assert "atomic" in out

    def test_trace_bro_hyb(self, capsys):
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--format", "bro_hyb",
             "--trace"]
        ) == 0
        out = capsys.readouterr().out
        assert "per-part profile" in out
        assert "bro_coo" in out

    def test_trace_unsupported_format_errors(self, capsys):
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--format", "csr", "--trace"]
        ) == 1
        assert "error:" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_table(self, capsys):
        assert main(["profile", "dense2", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "pipeline spans" in out
        assert "roofline attribution" in out
        assert "per-block profile" in out
        assert "kernel.bro_ell" in out

    def test_profile_chrome_is_valid_trace_json(self, capsys):
        import json

        assert main(
            ["profile", "dense2", "--scale", "0.05", "--export", "chrome"]
        ) == 0
        events = json.loads(capsys.readouterr().out)
        assert isinstance(events, list) and events
        assert all(e["ph"] in ("X", "i") for e in events)
        assert any(e["name"] == "kernel.bro_ell" for e in events)

    def test_profile_process_backend_has_worker_lanes(self, capsys):
        import json

        assert main(
            ["profile", "cant", "--format", "csr", "--scale", "0.02",
             "--devices", "2", "--backend", "process",
             "--export", "chrome"]
        ) == 0
        events = json.loads(capsys.readouterr().out)
        lanes = sorted({e["pid"] for e in events if e["ph"] == "X"})
        assert lanes == [1, 2, 3]  # coordinator + one lane per worker
        meta = {e["pid"]: e["args"]["name"] for e in events
                if e.get("ph") == "M" and e["name"] == "process_name"}
        assert meta[1] == "coordinator"
        assert meta[2].startswith("worker 0")
        assert meta[3].startswith("worker 1")

    def test_profile_jsonl(self, capsys):
        import json

        assert main(
            ["profile", "dense2", "--scale", "0.05", "--export", "json"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        spans = [json.loads(ln) for ln in lines]
        assert {"matrix.generate", "spmv.dispatch"} <= {
            s["name"] for s in spans
        }

    def test_profile_prometheus(self, capsys):
        assert main(
            ["profile", "dense2", "--scale", "0.05", "--export", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_kernel_dram_bytes counter" in out
        assert "repro_integrity_verifications" in out

    def test_profile_output_file(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main(
            ["profile", "dense2", "--scale", "0.05", "--export", "chrome",
             "--output", str(path)]
        ) == 0
        assert "wrote chrome export" in capsys.readouterr().out
        assert json.loads(path.read_text())

    def test_profile_bro_coo_storage(self, capsys):
        assert main(
            ["profile", "epb3", "--scale", "0.02", "--storage", "bro_coo"]
        ) == 0
        out = capsys.readouterr().out
        assert "kernel.bro_coo" in out
        assert "intvl" in out  # per-interval block profile

    def test_profile_format_flag_selects_storage(self, capsys):
        # --format is the unified storage spelling; --storage is an alias.
        assert main(
            ["profile", "epb3", "--scale", "0.02", "--format", "bro_coo"]
        ) == 0
        assert "kernel.bro_coo" in capsys.readouterr().out

    def test_profile_json_shorthand(self, capsys):
        import json

        assert main(["profile", "dense2", "--scale", "0.05", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        spans = [json.loads(ln) for ln in lines]
        assert any(s["name"] == "spmv.dispatch" for s in spans)


class TestShardedSpmv:
    def test_spmv_devices_flag(self, capsys):
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--devices", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "devices    : 4" in out
        assert "greedy-nnz" in out
        assert "t_comm" in out

    def test_spmv_partition_flag(self, capsys):
        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--devices", "2",
             "--partition", "slice-aligned"]
        ) == 0
        assert "slice-aligned" in capsys.readouterr().out

    def test_spmv_json(self, capsys):
        """--json emits an SpMVResponse wire envelope; the old payload
        (device counters, comms, roofline numbers) lives under meta."""
        import json

        assert main(
            ["spmv", "epb3", "--scale", "0.02", "--devices", "2", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "ok" and data["ok"] is True
        assert data["id"] == "cli"
        assert data["batch_size"] == 1
        assert data["execute_ms"] > 0
        assert "y" not in data  # CLI summaries elide the product vector
        meta = data["meta"]
        assert meta["devices"] == 2
        assert meta["comms"]["strategy"] in ("broadcast", "halo")
        assert meta["counters"]["interconnect_bytes"] > 0
        assert meta["gflops"] > 0

    def test_spmv_json_parses_as_serve_response(self, capsys):
        """The CLI envelope round-trips through SpMVResponse.from_wire —
        one schema across the socket protocol and the CLI."""
        import json

        from repro.serve import SpMVResponse

        assert main(["spmv", "epb3", "--scale", "0.02", "--json"]) == 0
        resp = SpMVResponse.from_wire(json.loads(capsys.readouterr().out))
        assert resp.ok and resp.matrix == "epb3"
        assert resp.y is None  # elided on the CLI path

    def test_spmv_single_device_json(self, capsys):
        import json

        assert main(["spmv", "epb3", "--scale", "0.02", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["meta"]["devices"] == 1
        assert data["meta"]["comms"] is None


class TestScaleCommand:
    def test_scale_table(self, capsys):
        assert main(
            ["scale", "cant", "--scale", "0.05", "--devices", "1,2,4"]
        ) == 0
        out = capsys.readouterr().out
        assert "Strong scaling" in out
        assert "speedup" in out
        assert "csr" in out  # default format

    def test_scale_json_speedup_at_four_devices(self, capsys):
        import json

        # Acceptance: matrices with >= 4*256 rows show modeled speedup > 1
        # at 4 devices in `repro scale --json` (cant@0.05 is 3100 rows).
        assert main(
            ["scale", "cant", "--scale", "0.05", "--devices", "1,4",
             "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["format"] == "csr"
        four = next(r for r in data["rows"] if r["devices"] == 4)
        assert four["speedup"] > 1.0
        assert four["interconnect_bytes"] > 0

    def test_scale_bro_ell_small_dense(self, capsys):
        import json

        assert main(
            ["scale", "dense2", "--format", "bro_ell", "--devices", "1,4",
             "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        four = next(r for r in data["rows"] if r["devices"] == 4)
        assert four["speedup"] > 1.0

    def test_scale_rejects_bad_device_list(self):
        with pytest.raises(SystemExit):
            main(["scale", "cant", "--devices", "0,2"])


class TestBenchReports:
    def test_save_then_compare_clean(self, capsys, tmp_path):
        path = tmp_path / "BENCH_table1.json"
        assert main(["bench", "table1", "--save", str(path)]) == 0
        assert "wrote benchmark report" in capsys.readouterr().out
        assert main(["bench", "table1", "--compare", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out
        assert "bench comparison passed" in out

    def test_save_default_path(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "table1", "--save"]) == 0
        assert (tmp_path / "BENCH_table1.json").is_file()

    def test_compare_detects_regression(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_table1.json"
        assert main(["bench", "table1", "--save", str(path)]) == 0
        capsys.readouterr()
        baseline = json.loads(path.read_text())
        for row in baseline["rows"]:
            row["dp_gflops"] *= 2  # current run now looks 50% slower
        path.write_text(json.dumps(baseline))
        assert main(["bench", "table1", "--compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "bench comparison FAILED" in out

    def test_compare_rejects_bad_baseline(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["bench", "table1", "--compare", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestMainModule:
    def test_python_dash_m_repro(self):
        import subprocess, sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "devices"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "Tesla K20" in result.stdout
