"""Unit tests for the device registry (paper Table 1)."""

import pytest

from repro.errors import DeviceError
from repro.gpu.device import (
    DEVICES,
    GTX680,
    TESLA_C2070,
    TESLA_K20,
    DeviceSpec,
    get_device,
)


class TestTable1Specs:
    """The registry must reproduce Table 1 verbatim."""

    def test_c2070(self):
        assert TESLA_C2070.compute_capability == "2.0"
        assert TESLA_C2070.cores == 448
        assert TESLA_C2070.peak_bw_gbps == 144.0
        assert TESLA_C2070.dp_gflops == 515.0
        assert TESLA_C2070.sm_count == 14  # 448 cores / 32 per SM

    def test_gtx680(self):
        assert GTX680.compute_capability == "3.0"
        assert GTX680.cores == 1536
        assert GTX680.peak_bw_gbps == 192.3
        assert GTX680.dp_gflops == 129.0

    def test_k20(self):
        assert TESLA_K20.compute_capability == "3.5"
        assert TESLA_K20.cores == 2496
        assert TESLA_K20.peak_bw_gbps == 208.0
        assert TESLA_K20.dp_gflops == 1170.0

    def test_measured_bandwidths_section_4_1(self):
        assert TESLA_C2070.measured_bw_gbps == pytest.approx(114.0)
        assert GTX680.measured_bw_gbps == pytest.approx(149.0)
        assert TESLA_K20.measured_bw_gbps == pytest.approx(159.0)

    def test_bandwidth_ordering(self):
        # K20 > GTX680 > C2070 (drives Fig. 3's curve ordering).
        assert TESLA_K20.measured_bw > GTX680.measured_bw > TESLA_C2070.measured_bw


class TestCalibration:
    def test_decode_rates_positive(self):
        for dev in DEVICES.values():
            assert dev.decode_gops > 0

    def test_gtx680_has_highest_decode_rate(self):
        # The lowest break-even (9%) implies the cheapest decode.
        assert GTX680.decode_gops > TESLA_K20.decode_gops
        assert GTX680.decode_gops > TESLA_C2070.decode_gops


class TestRegistry:
    def test_lookup_by_key(self):
        assert get_device("k20") is TESLA_K20
        assert get_device("C2070") is TESLA_C2070
        assert get_device("Tesla K20") is TESLA_K20

    def test_lookup_by_full_name(self):
        assert get_device("GTX680") is GTX680

    def test_unknown(self):
        with pytest.raises(DeviceError):
            get_device("rtx9090")


class TestValidation:
    def test_measured_above_peak_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec(
                name="bad",
                compute_capability="0",
                cores=1,
                sm_count=1,
                peak_bw_gbps=100.0,
                measured_bw_gbps=120.0,
                dp_gflops=1.0,
                decode_gops=1.0,
            )

    def test_derived_properties(self):
        assert TESLA_K20.measured_bw == pytest.approx(159e9)
        assert TESLA_K20.dp_flops == pytest.approx(1170e9)
        assert TESLA_K20.tex_cache_bytes_per_sm == 48 * 1024
        assert TESLA_K20.saturation_threads == 13 * 16 * 32
