"""Unit tests for coalesced-transaction counting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.gpu.memory import (
    contiguous_transactions,
    gather_transactions,
    transaction_bytes,
)


class TestContiguous:
    def test_perfectly_coalesced_int32(self):
        # 32 threads x 4 B = 128 B = exactly one transaction per warp.
        assert contiguous_transactions(32, 4) == 1
        assert contiguous_transactions(64, 4) == 2

    def test_doubles_need_two_transactions(self):
        # 32 threads x 8 B = 256 B = two transactions.
        assert contiguous_transactions(32, 8) == 2

    def test_partial_warp(self):
        assert contiguous_transactions(5, 4) == 1
        assert contiguous_transactions(33, 4) == 2

    def test_zero(self):
        assert contiguous_transactions(0, 4) == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            contiguous_transactions(-1, 4)
        with pytest.raises(ValidationError):
            contiguous_transactions(4, 0)


class TestGather:
    def test_same_line_coalesces(self):
        # All 32 lanes hit the same 128-byte line of int32s.
        idx = np.zeros(32, dtype=np.int64)
        assert gather_transactions(idx, 4) == 1

    def test_fully_scattered(self):
        # Each lane a different line: 32 transactions.
        idx = np.arange(32) * 32  # 32 int32 per 128B line
        assert gather_transactions(idx, 4) == 32

    def test_contiguous_doubles(self):
        # 32 consecutive doubles span two 128-byte lines.
        assert gather_transactions(np.arange(32), 8) == 2

    def test_two_warps(self):
        idx = np.concatenate([np.zeros(32), np.full(32, 1000)])
        assert gather_transactions(idx, 8) == 2

    def test_partial_final_warp(self):
        idx = np.zeros(40)  # 1 full warp + 8 lanes, all one line
        assert gather_transactions(idx, 4) == 2  # one per warp

    def test_empty(self):
        assert gather_transactions(np.array([]), 4) == 0


class TestBytes:
    def test_transaction_bytes(self):
        assert transaction_bytes(3) == 384
        assert transaction_bytes(0) == 0
        with pytest.raises(ValidationError):
            transaction_bytes(-1)
