"""Unit tests for the per-block kernel traces (slice/interval/part)."""

import numpy as np
import pytest

from repro.core.bro_coo import BROCOOMatrix
from repro.core.bro_ell import BROELLMatrix
from repro.errors import ValidationError
from repro.formats.conversion import convert
from repro.gpu.device import TESLA_K20
from repro.gpu.trace import (
    IntervalTrace,
    PartTrace,
    SliceTrace,
    trace_bro_coo,
    trace_bro_ell,
    trace_hyb,
)
from repro.kernels import run_spmv
from tests.conftest import random_coo


@pytest.fixture(scope="module")
def traced():
    coo = random_coo(300, 300, density=0.04, seed=1)
    bro = BROELLMatrix.from_coo(coo, h=64)
    return coo, bro, trace_bro_ell(bro, TESLA_K20)


class TestTrace:
    def test_one_row_per_slice(self, traced):
        _, bro, traces = traced
        assert len(traces) == bro.num_slices
        assert [t.slice_id for t in traces] == list(range(bro.num_slices))

    def test_nnz_adds_up(self, traced):
        coo, _, traces = traced
        assert sum(t.nnz for t in traces) == coo.nnz

    def test_rows_add_up(self, traced):
        coo, _, traces = traced
        assert sum(t.rows for t in traces) == coo.shape[0]

    def test_totals_match_kernel_counters(self, traced):
        coo, bro, traces = traced
        res = run_spmv(bro, np.ones(coo.shape[1]), "k20")
        assert sum(t.stream_bytes for t in traces) == res.counters.index_bytes
        assert sum(t.value_bytes for t in traces) == res.counters.value_bytes
        assert sum(t.x_bytes for t in traces) == res.counters.x_bytes
        assert sum(t.decode_ops for t in traces) == res.counters.decode_ops

    def test_padding_fraction_bounds(self, traced):
        _, _, traces = traced
        for t in traces:
            assert 0.0 <= t.padding_fraction < 1.0

    def test_row_rendering(self, traced):
        _, _, traces = traced
        header = SliceTrace.header()
        line = traces[0].row()
        assert "slice" in header
        assert str(traces[0].nnz) in line

    def test_rejects_non_bro_matrix(self, paper_matrix):
        with pytest.raises(ValidationError):
            trace_bro_ell(paper_matrix, TESLA_K20)

    def test_empty_slice_handled(self):
        from repro.formats.coo import COOMatrix

        # Rows 64.. empty: their slice has num_col == 0.
        coo = COOMatrix([0], [0], [1.0], (128, 4))
        bro = BROELLMatrix.from_coo(coo, h=64)
        traces = trace_bro_ell(bro, TESLA_K20)
        assert traces[1].num_col == 0
        assert traces[1].nnz == 0


@pytest.fixture(scope="module")
def traced_coo():
    coo = random_coo(300, 300, density=0.04, seed=1)
    bro = BROCOOMatrix.from_coo(coo)
    return coo, bro, trace_bro_coo(bro, TESLA_K20)


class TestIntervalTrace:
    def test_one_row_per_interval(self, traced_coo):
        _, bro, traces = traced_coo
        assert len(traces) == bro.num_intervals
        assert [t.interval_id for t in traces] == list(range(bro.num_intervals))

    def test_entries_add_up_to_padded_nnz(self, traced_coo):
        _, bro, traces = traced_coo
        assert sum(t.entries for t in traces) == bro.padded_nnz

    def test_nnz_adds_up(self, traced_coo):
        coo, _, traces = traced_coo
        assert sum(t.nnz for t in traces) == coo.nnz

    def test_bits_match_interval_allocation(self, traced_coo):
        _, bro, traces = traced_coo
        assert [t.bits for t in traces] == [int(b) for b in bro.bit_alloc]

    def test_decode_ops_match_kernel_counters(self, traced_coo):
        coo, bro, traces = traced_coo
        res = run_spmv(bro, np.ones(coo.shape[1]), "k20")
        assert sum(t.decode_ops for t in traces) == res.counters.decode_ops

    def test_atomic_pressure_bounds(self, traced_coo):
        _, bro, traces = traced_coo
        w = bro.warp_size
        for t in traces:
            # At least the final flush per lane, at most one per iteration
            # per lane plus the flush.
            assert w <= t.atomics <= t.lanes * w + w
            assert 1 <= t.segments <= t.entries

    def test_row_rendering(self, traced_coo):
        _, _, traces = traced_coo
        header = IntervalTrace.header()
        assert "intvl" in header
        assert "atomic" in header
        assert str(traces[0].nnz) in traces[0].row()

    def test_rejects_non_bro_coo_matrix(self, paper_matrix):
        with pytest.raises(ValidationError):
            trace_bro_coo(paper_matrix, TESLA_K20)


@pytest.fixture(scope="module")
def hyb_pair():
    coo = random_coo(300, 300, density=0.04, seed=1)
    return coo, convert(coo, "hyb"), convert(coo, "bro_hyb", h=64)


class TestPartTrace:
    def test_two_parts_in_order(self, hyb_pair):
        _, hyb, bro_hyb = hyb_pair
        for mat in (hyb, bro_hyb):
            traces = trace_hyb(mat, TESLA_K20)
            assert [t.part for t in traces] == ["ell", "coo"]

    def test_nnz_split_adds_up(self, hyb_pair):
        coo, hyb, bro_hyb = hyb_pair
        for mat in (hyb, bro_hyb):
            traces = trace_hyb(mat, TESLA_K20)
            assert sum(t.nnz for t in traces) == coo.nnz
            assert sum(t.frac_nnz for t in traces) == pytest.approx(1.0)

    def test_part_formats(self, hyb_pair):
        _, hyb, bro_hyb = hyb_pair
        assert [t.format_name for t in trace_hyb(hyb, TESLA_K20)] == [
            "ellpack",
            "coo",
        ]
        assert [t.format_name for t in trace_hyb(bro_hyb, TESLA_K20)] == [
            "bro_ell",
            "bro_coo",
        ]

    def test_traffic_and_time_positive(self, hyb_pair):
        _, _, bro_hyb = hyb_pair
        for t in trace_hyb(bro_hyb, TESLA_K20):
            assert t.dram_bytes > 0
            assert t.t_us > 0
            assert t.dram_bytes >= t.index_bytes + t.value_bytes + t.x_bytes

    def test_bro_parts_decode(self, hyb_pair):
        _, hyb, bro_hyb = hyb_pair
        # The classical HYB parts never decode; the BRO parts always do.
        assert all(t.decode_ops == 0 for t in trace_hyb(hyb, TESLA_K20))
        assert all(t.decode_ops > 0 for t in trace_hyb(bro_hyb, TESLA_K20))

    def test_row_rendering(self, hyb_pair):
        _, hyb, _ = hyb_pair
        traces = trace_hyb(hyb, TESLA_K20)
        assert "part" in PartTrace.header()
        assert "ell" in traces[0].row()

    def test_rejects_non_hybrid_matrix(self, paper_matrix):
        with pytest.raises(ValidationError):
            trace_hyb(paper_matrix, TESLA_K20)
