"""Unit tests for the per-slice kernel trace."""

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.errors import ValidationError
from repro.gpu.device import TESLA_K20
from repro.gpu.trace import SliceTrace, trace_bro_ell
from repro.kernels import run_spmv
from tests.conftest import random_coo


@pytest.fixture(scope="module")
def traced():
    coo = random_coo(300, 300, density=0.04, seed=1)
    bro = BROELLMatrix.from_coo(coo, h=64)
    return coo, bro, trace_bro_ell(bro, TESLA_K20)


class TestTrace:
    def test_one_row_per_slice(self, traced):
        _, bro, traces = traced
        assert len(traces) == bro.num_slices
        assert [t.slice_id for t in traces] == list(range(bro.num_slices))

    def test_nnz_adds_up(self, traced):
        coo, _, traces = traced
        assert sum(t.nnz for t in traces) == coo.nnz

    def test_rows_add_up(self, traced):
        coo, _, traces = traced
        assert sum(t.rows for t in traces) == coo.shape[0]

    def test_totals_match_kernel_counters(self, traced):
        coo, bro, traces = traced
        res = run_spmv(bro, np.ones(coo.shape[1]), "k20")
        assert sum(t.stream_bytes for t in traces) == res.counters.index_bytes
        assert sum(t.value_bytes for t in traces) == res.counters.value_bytes
        assert sum(t.x_bytes for t in traces) == res.counters.x_bytes
        assert sum(t.decode_ops for t in traces) == res.counters.decode_ops

    def test_padding_fraction_bounds(self, traced):
        _, _, traces = traced
        for t in traces:
            assert 0.0 <= t.padding_fraction < 1.0

    def test_row_rendering(self, traced):
        _, _, traces = traced
        header = SliceTrace.header()
        line = traces[0].row()
        assert "slice" in header
        assert str(traces[0].nnz) in line

    def test_rejects_non_bro_matrix(self, paper_matrix):
        with pytest.raises(ValidationError):
            trace_bro_ell(paper_matrix, TESLA_K20)

    def test_empty_slice_handled(self):
        from repro.formats.coo import COOMatrix

        # Rows 64.. empty: their slice has num_col == 0.
        coo = COOMatrix([0], [0], [1.0], (128, 4))
        bro = BROELLMatrix.from_coo(coo, h=64)
        traces = trace_bro_ell(bro, TESLA_K20)
        assert traces[1].num_col == 0
        assert traces[1].nnz == 0
