"""Unit tests for the texture-cache model."""

import numpy as np
import pytest

from repro.gpu.device import TESLA_C2070, TESLA_K20
from repro.gpu.texcache import TextureCacheModel, distinct_lines_per_warp_iteration


class TestDistinctLines:
    def test_all_same_line(self):
        lines = np.zeros((4, 3), dtype=np.int64)
        valid = np.ones((4, 3), dtype=bool)
        assert distinct_lines_per_warp_iteration(lines, valid, warp_size=4) == 3

    def test_all_different(self):
        lines = np.arange(12).reshape(4, 3)
        valid = np.ones((4, 3), dtype=bool)
        assert distinct_lines_per_warp_iteration(lines, valid, warp_size=4) == 12

    def test_invalid_lanes_free(self):
        lines = np.zeros((4, 2), dtype=np.int64)
        valid = np.zeros((4, 2), dtype=bool)
        valid[0, 0] = True
        assert distinct_lines_per_warp_iteration(lines, valid, warp_size=4) == 1

    def test_multiple_warps(self):
        # 8 threads = 2 warps of 4; each warp hits its own line per column.
        lines = np.repeat(np.array([[0], [1]]), 4, axis=0)  # shape (8,1)
        valid = np.ones((8, 1), dtype=bool)
        assert distinct_lines_per_warp_iteration(lines, valid, warp_size=4) == 2

    def test_empty(self):
        assert (
            distinct_lines_per_warp_iteration(
                np.zeros((0, 0), np.int64), np.zeros((0, 0), bool), 32
            )
            == 0
        )


class TestTextureCacheModel:
    def test_spatial_only_matches_distinct_count(self):
        model = TextureCacheModel(TESLA_K20, temporal=False)
        cols = np.arange(64).reshape(8, 8) * model.elems_per_line
        valid = np.ones((8, 8), dtype=bool)
        assert model.block_x_fetches(cols, valid) == 64

    def test_small_footprint_fully_cached(self):
        # Block repeatedly reads the same handful of lines: with temporal
        # reuse the cost is the footprint, not iterations * warps.
        model = TextureCacheModel(TESLA_K20, temporal=True)
        cols = np.tile(np.arange(4) * model.elems_per_line, (64, 16, 1))[0]
        # cols shape (16, 4): 16 threads x 4 iterations... build explicitly:
        cols = np.tile(np.arange(4) * model.elems_per_line, (16, 1))
        valid = np.ones_like(cols, dtype=bool)
        fetches = model.block_x_fetches(cols, valid)
        assert fetches == 4  # footprint only

    def test_huge_footprint_approaches_spatial(self):
        model = TextureCacheModel(TESLA_C2070, temporal=True)
        rng = np.random.default_rng(0)
        # Footprint far beyond the 12 KB Fermi texture cache.
        cols = rng.integers(0, 10_000_000, size=(256, 8))
        valid = np.ones_like(cols, dtype=bool)
        spatial_model = TextureCacheModel(TESLA_C2070, temporal=False)
        temporal = model.block_x_fetches(cols, valid)
        spatial = spatial_model.block_x_fetches(cols, valid)
        assert temporal >= 0.95 * spatial  # nearly uncached

    def test_kepler_cache_larger_than_fermi(self):
        # Same access pattern, mid-size footprint: K20's 48 KB read-only
        # cache must not fetch more than Fermi's 12 KB texture cache.
        rng = np.random.default_rng(1)
        cols = rng.integers(0, 3000, size=(256, 12))
        valid = np.ones_like(cols, dtype=bool)
        fermi = TextureCacheModel(TESLA_C2070).block_x_fetches(cols, valid)
        kepler = TextureCacheModel(TESLA_K20).block_x_fetches(cols, valid)
        assert kepler <= fermi

    def test_bytes_scale_with_line_size(self):
        model = TextureCacheModel(TESLA_K20)
        cols = np.zeros((4, 1), dtype=np.int64)
        valid = np.ones((4, 1), dtype=bool)
        assert model.block_x_bytes(cols, valid) == model.device.tex_line_bytes

    def test_no_valid_entries(self):
        model = TextureCacheModel(TESLA_K20)
        assert model.block_x_fetches(np.zeros((4, 2)), np.zeros((4, 2), bool)) == 0

    def test_shape_mismatch(self):
        from repro.errors import ValidationError

        model = TextureCacheModel(TESLA_K20)
        with pytest.raises(ValidationError):
            model.block_x_fetches(np.zeros((2, 2)), np.zeros((2, 3), bool))
