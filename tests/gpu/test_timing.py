"""Unit tests for counters, launch geometry and the timing model."""

import pytest

from repro.errors import KernelError, ValidationError
from repro.gpu.counters import KernelCounters
from repro.gpu.device import GTX680, TESLA_C2070, TESLA_K20
from repro.gpu.launch import LaunchConfig, occupancy_factor
from repro.gpu.timing import predict
from repro.gpu.warp import num_warps, pad_to_warps, warp_reduce_flops


class TestCounters:
    def test_dram_bytes_sums_components(self):
        c = KernelCounters(
            index_bytes=10, value_bytes=20, x_bytes=5, y_bytes=3, aux_bytes=2
        )
        assert c.dram_bytes == 40

    def test_eai(self):
        c = KernelCounters(value_bytes=100, useful_flops=50)
        assert c.effective_arithmetic_intensity == pytest.approx(0.5)
        assert KernelCounters().effective_arithmetic_intensity == 0.0

    def test_addition(self):
        a = KernelCounters(index_bytes=1, useful_flops=2, launches=1, threads=100)
        b = KernelCounters(index_bytes=3, useful_flops=4, launches=1, threads=50)
        c = a + b
        assert c.index_bytes == 4
        assert c.useful_flops == 6
        assert c.launches == 2
        assert c.threads == 100  # max, not sum

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            KernelCounters(index_bytes=-1)


class TestLaunch:
    def test_for_rows(self):
        cfg = LaunchConfig.for_rows(1000, threads_per_block=256)
        assert cfg.num_blocks == 4
        assert cfg.total_threads == 1024

    def test_for_warps(self):
        cfg = LaunchConfig.for_warps(17, warp_size=32, warps_per_block=8)
        assert cfg.num_blocks == 3

    def test_invalid(self):
        with pytest.raises(KernelError):
            LaunchConfig(0, 1)
        with pytest.raises(KernelError):
            LaunchConfig.for_rows(0)

    def test_occupancy_saturates(self):
        assert occupancy_factor(10**6, TESLA_K20) == 1.0

    def test_occupancy_small_grid(self):
        # Far fewer threads than needed -> proportional slowdown.
        f = occupancy_factor(TESLA_K20.saturation_threads // 2, TESLA_K20)
        assert f == pytest.approx(0.5)

    def test_occupancy_floor(self):
        assert occupancy_factor(1, TESLA_K20) >= 0.05


class TestWarpHelpers:
    def test_num_warps(self):
        assert num_warps(0) == 0
        assert num_warps(1) == 1
        assert num_warps(32) == 1
        assert num_warps(33) == 2

    def test_pad_to_warps(self):
        import numpy as np

        out = pad_to_warps(np.arange(5), warp_size=4, fill=-1)
        assert out.shape == (8,)
        assert (out[5:] == -1).all()

    def test_warp_reduce_flops(self):
        assert warp_reduce_flops(32) == 5 * 32
        with pytest.raises(ValidationError):
            warp_reduce_flops(33)


class TestPredict:
    def _mem_bound_counters(self, gbytes=1.0):
        return KernelCounters(
            value_bytes=int(gbytes * 1e9),
            useful_flops=10**6,
            issued_flops=10**6,
            threads=10**6,
        )

    def test_memory_bound_time(self):
        t = predict(self._mem_bound_counters(), TESLA_K20)
        # 1 GB at 159 GB/s.
        assert t.t_mem == pytest.approx(1.0 / 159.0, rel=1e-6)
        assert t.bound == "memory"
        assert t.time > t.t_mem  # launch overhead included

    def test_faster_device_is_faster(self):
        c = self._mem_bound_counters()
        assert predict(c, TESLA_K20).time < predict(c, GTX680).time
        assert predict(c, GTX680).time < predict(c, TESLA_C2070).time

    def test_decode_adds_time(self):
        base = self._mem_bound_counters()
        with_decode = self._mem_bound_counters()
        with_decode.decode_ops = 10**9
        assert predict(with_decode, TESLA_K20).time > predict(base, TESLA_K20).time

    def test_gflops_uses_useful_flops(self):
        c = KernelCounters(
            value_bytes=159 * 10**6,  # 1 ms on K20
            useful_flops=2 * 10**6,
            issued_flops=4 * 10**6,  # padding doubled the issue count
            threads=10**6,
        )
        t = predict(c, TESLA_K20)
        assert t.gflops == pytest.approx(2e6 / t.time / 1e9)

    def test_bandwidth_utilization_below_one(self):
        t = predict(self._mem_bound_counters(), TESLA_K20)
        assert 0 < t.bandwidth_utilization < 1.0
        # Pure memory-bound: utilization approaches measured/peak.
        assert t.bandwidth_utilization == pytest.approx(
            159.0 / 208.0 * (t.t_mem / t.time), rel=1e-6
        )

    def test_low_occupancy_slows_kernel(self):
        c = self._mem_bound_counters()
        c.threads = TESLA_K20.saturation_threads // 4
        slow = predict(c, TESLA_K20)
        c2 = self._mem_bound_counters()
        fast = predict(c2, TESLA_K20)
        assert slow.time > fast.time
        assert slow.occupancy == pytest.approx(0.25)

    def test_compute_bound_on_weak_dp_device(self):
        # GTX680 has only 129 DP GFlop/s: a flop-heavy kernel binds compute.
        c = KernelCounters(
            value_bytes=10**6,
            useful_flops=10**9,
            issued_flops=10**9,
            threads=10**6,
        )
        assert predict(c, GTX680).bound == "compute"

    def test_threads_required(self):
        with pytest.raises(ValidationError):
            predict(KernelCounters(), TESLA_K20)
