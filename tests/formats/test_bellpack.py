"""Unit tests for the BELLPACK blocked format."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.bellpack import BELLPACKMatrix
from repro.kernels import run_spmv
from repro.matrices.generators import block_band
from tests.conftest import PAPER_A, random_coo


class TestConstruction:
    def test_paper_example_1x1_blocks(self, paper_matrix):
        bell = BELLPACKMatrix.from_coo(paper_matrix, r=1, c=1)
        # 1x1 blocks degenerate to plain ELLPACK structure.
        assert bell.K == 5
        assert bell.nnz == 12
        assert bell.fill_ratio == 1.0

    def test_2x2_blocks(self, paper_matrix):
        bell = BELLPACKMatrix.from_coo(paper_matrix, r=2, c=2)
        assert bell.block_shape == (2, 2)
        assert bell.nnz == 12
        assert bell.stored_entries >= 12
        assert bell.fill_ratio >= 1.0

    def test_perfectly_blocked_matrix_no_fill(self):
        coo = block_band(96, 12.0, 2.0, run=3, bandwidth=60, seed=1,
                         aligned=True)
        bell = BELLPACKMatrix.from_coo(coo, r=3, c=3)
        assert bell.fill_ratio == pytest.approx(1.0)

    def test_unaligned_matrix_pays_fill(self):
        coo = random_coo(90, 90, density=0.05, seed=2)
        bell = BELLPACKMatrix.from_coo(coo, r=3, c=3)
        assert bell.fill_ratio > 1.5

    def test_validation(self):
        with pytest.raises(ValidationError):
            BELLPACKMatrix(
                np.zeros((2, 1), np.int32),
                np.zeros((2, 1, 2, 2)),
                np.zeros(3, np.int64),  # wrong length
                (2, 2),
                (4, 4),
            )


class TestRoundTripAndSpMV:
    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (3, 3), (2, 3)])
    def test_round_trip(self, r, c, paper_matrix):
        bell = BELLPACKMatrix.from_coo(paper_matrix, r=r, c=c)
        np.testing.assert_array_equal(bell.to_dense(), PAPER_A)

    @pytest.mark.parametrize("r,c", [(1, 1), (2, 2), (3, 3), (4, 2)])
    def test_spmv(self, r, c):
        coo = random_coo(70, 55, density=0.06, seed=3)
        bell = BELLPACKMatrix.from_coo(coo, r=r, c=c)
        x = np.random.default_rng(4).standard_normal(55)
        np.testing.assert_allclose(bell.spmv(x), coo.spmv(x), rtol=1e-10)

    def test_non_divisible_dimensions(self):
        # 7x5 matrix with 3x3 blocks: ragged edge blocks.
        coo = random_coo(7, 5, density=0.4, seed=5)
        bell = BELLPACKMatrix.from_coo(coo, r=3, c=3)
        np.testing.assert_allclose(bell.to_dense(), coo.to_dense())

    def test_kernel_correct(self):
        coo = block_band(192, 12.0, 2.0, run=3, bandwidth=60, seed=6,
                         aligned=True)
        x = np.random.default_rng(7).standard_normal(coo.shape[1])
        res = run_spmv(BELLPACKMatrix.from_coo(coo, r=3, c=3), x, "gtx680")
        np.testing.assert_allclose(res.y, coo.spmv(x), rtol=1e-10)


class TestTradeoffs:
    def test_index_bytes_divided_by_block_area(self):
        coo = block_band(960, 24.0, 3.0, run=3, bandwidth=120, seed=8,
                         aligned=True)
        from repro.formats.ellpack import ELLPACKMatrix

        ell = ELLPACKMatrix.from_coo(coo)
        bell = BELLPACKMatrix.from_coo(coo, r=3, c=3)
        # ~9x fewer index entries (modulo padding differences).
        assert bell.device_bytes()["index"] < ell.device_bytes()["index"] / 4

    def test_paper_section5_ordering(self):
        """Blocked beats plain ELLPACK on blocked matrices, but BRO's
        explicit bit compression still wins (the paper's related-work
        argument)."""
        from repro.formats import convert

        coo = block_band(4098, 36.0, 6.0, run=3, bandwidth=300, seed=9,
                         aligned=True)
        x = np.random.default_rng(10).standard_normal(coo.shape[1])
        g = {
            fmt: run_spmv(
                BELLPACKMatrix.from_coo(coo, r=3, c=3)
                if fmt == "bellpack"
                else convert(coo, fmt),
                x, "k20",
            ).gflops
            for fmt in ("ellpack", "bellpack", "bro_ell")
        }
        assert g["bellpack"] > g["ellpack"]
        assert g["bro_ell"] > g["bellpack"]
