"""Unit tests for format conversion and the registry, cross-checked vs SciPy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FormatError
from repro.formats import (
    COOMatrix,
    available_formats,
    convert,
    from_dense,
    from_scipy,
    get_format,
    to_scipy,
)
from tests.conftest import PAPER_A, random_coo

ALL_FORMATS = ["coo", "csr", "ellpack", "ellpack_r", "sliced_ellpack", "hyb"]


class TestRegistry:
    def test_all_formats_registered(self):
        assert set(ALL_FORMATS) <= set(available_formats())

    def test_get_format(self):
        assert get_format("coo") is COOMatrix

    def test_unknown_format(self):
        with pytest.raises(FormatError, match="unknown format"):
            get_format("nope")


class TestConvert:
    @pytest.mark.parametrize("name", ALL_FORMATS)
    def test_round_trip_through_every_format(self, name, paper_matrix):
        mat = convert(paper_matrix, name)
        np.testing.assert_array_equal(mat.to_dense(), PAPER_A)
        assert mat.nnz == 12

    @pytest.mark.parametrize("name", ALL_FORMATS)
    def test_spmv_consistent_across_formats(self, name):
        coo = random_coo(64, 48, seed=77)
        x = np.random.default_rng(7).standard_normal(48)
        expected = coo.to_dense() @ x
        mat = convert(coo, name)
        np.testing.assert_allclose(mat.spmv(x), expected, rtol=1e-10)

    def test_convert_same_format_is_identity(self, paper_matrix):
        assert convert(paper_matrix, "coo") is paper_matrix

    def test_convert_kwargs_forwarded(self, paper_matrix):
        sl = convert(paper_matrix, "sliced_ellpack", h=2)
        assert sl.h == 2

    def test_from_dense(self):
        mat = from_dense(PAPER_A, "csr")
        assert mat.format_name == "csr"
        assert mat.nnz == 12


class TestRegistryRouting:
    """The conversion fix: registry defaults + format_name equality."""

    def test_subclass_converts_to_parent_format(self, paper_matrix):
        # ellpack_r IS-A ELLPACKMatrix; conversion must still rebuild it
        # as plain ellpack instead of passing the subclass through.
        from repro.formats import ELLPACKRMatrix

        ell_r = convert(paper_matrix, "ellpack_r")
        assert isinstance(ell_r, ELLPACKRMatrix)
        ell = convert(ell_r, "ellpack")
        assert ell.format_name == "ellpack"
        assert not isinstance(ell, ELLPACKRMatrix)
        np.testing.assert_array_equal(ell.to_dense(), PAPER_A)

    def test_same_format_with_kwargs_reconverts(self, paper_matrix):
        sl = convert(paper_matrix, "sliced_ellpack", h=2)
        resliced = convert(sl, "sliced_ellpack", h=4)
        assert resliced is not sl
        assert resliced.h == 4

    def test_registry_defaults_honored(self, paper_matrix):
        from repro import registry as _registry

        coo = random_coo(600, 600, seed=5)
        sl = convert(coo, "sliced_ellpack")
        assert sl.h == _registry.get_spec("sliced_ellpack").default_kwargs["h"]
        assert convert(coo, "sliced_ellpack", h=64).h == 64

    def test_unknown_kwarg_names_declared_set(self, paper_matrix):
        with pytest.raises(FormatError, match="does not accept") as excinfo:
            convert(paper_matrix, "sliced_ellpack", sym_len=32)
        assert "'h'" in str(excinfo.value)  # message lists declared keys

    def test_kwargless_format_rejects_any_kwarg(self, paper_matrix):
        with pytest.raises(FormatError, match="csr"):
            convert(paper_matrix, "csr", h=64)


class TestCapabilityMatrix:
    def test_every_format_has_container_and_serializer(self):
        from repro import registry as _registry

        for row in _registry.capability_matrix():
            assert row["container"], row["format"]
            assert row["serializer"], row["format"]

    def test_bro_formats_fully_capable(self):
        from repro import registry as _registry

        rows = {r["format"]: r for r in _registry.capability_matrix()}
        for fmt in ("bro_ell", "bro_coo", "bro_hyb"):
            row = rows[fmt]
            for cap in ("kernel", "planner", "tracer", "tuner",
                        "validator", "integrity", "serializer"):
                assert row[cap], f"{fmt} lacks {cap}"


class TestScipyInterop:
    def test_from_scipy_matches(self):
        rng = np.random.default_rng(8)
        spm = sp.random(30, 20, density=0.1, random_state=rng, format="csr")
        ours = from_scipy(spm, "ellpack")
        np.testing.assert_allclose(ours.to_dense(), spm.toarray())

    def test_to_scipy_matches(self, paper_matrix):
        spm = to_scipy(paper_matrix)
        np.testing.assert_array_equal(spm.toarray(), PAPER_A)

    def test_spmv_matches_scipy(self):
        rng = np.random.default_rng(9)
        spm = sp.random(50, 50, density=0.08, random_state=rng, format="csr")
        x = rng.standard_normal(50)
        ours = from_scipy(spm, "hyb")
        np.testing.assert_allclose(ours.spmv(x), spm @ x, rtol=1e-10)

    def test_from_scipy_rejects_non_sparse(self):
        with pytest.raises(FormatError):
            from_scipy(np.zeros((2, 2)))
