"""Unit tests for the HYB format and the Bell-Garland split heuristic."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.formats.hyb import HYBMatrix, hyb_split_column, split_coo
from tests.conftest import PAPER_A, random_coo


class TestSplitColumn:
    def test_uniform_rows_pure_ell(self):
        # Every row has 4 entries -> all columns fully utilized -> k = 4.
        assert hyb_split_column(np.full(30, 4)) == 4

    def test_single_long_row(self):
        # 99 rows of length 2, one of length 50: columns past 2 are used by
        # 1% of rows only -> k = 2.
        lengths = np.full(100, 2)
        lengths[0] = 50
        assert hyb_split_column(lengths) == 2

    def test_paper_example_partition(self, paper_matrix):
        # Row lengths [2, 5, 3, 2]: k=3 is reached by 2/4 >= 1/3 of rows,
        # k=4 by only 1/4 < 1/3 -> k = 3, matching Section 2.1.3's example.
        assert hyb_split_column(paper_matrix.row_lengths()) == 3

    def test_all_zero_rows(self):
        assert hyb_split_column(np.zeros(5, dtype=np.int64)) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            hyb_split_column(np.array([], dtype=np.int64))


class TestSplitCoo:
    def test_paper_example(self, paper_matrix):
        ell_part, coo_part = split_coo(paper_matrix, k=3)
        assert ell_part.nnz == 10
        assert coo_part.nnz == 2
        # The COO part holds row 1's entries at columns 3 and 4 (0-based),
        # exactly the paper's example COO partition.
        np.testing.assert_array_equal(coo_part.row_idx, [1, 1])
        np.testing.assert_array_equal(coo_part.col_idx, [3, 4])
        np.testing.assert_array_equal(coo_part.vals, [4.0, 1.0])

    def test_k_zero_all_coo(self, paper_matrix):
        ell_part, coo_part = split_coo(paper_matrix, k=0)
        assert ell_part is None
        assert coo_part.nnz == 12

    def test_k_large_all_ell(self, paper_matrix):
        ell_part, coo_part = split_coo(paper_matrix, k=10)
        assert coo_part is None
        assert ell_part.nnz == 12


class TestHYBMatrix:
    def test_from_coo_paper_example(self, paper_matrix):
        hyb = HYBMatrix.from_coo(paper_matrix)
        assert hyb.k == 3
        assert hyb.ell.nnz == 10
        assert hyb.coo.nnz == 2
        assert hyb.nnz == 12
        assert hyb.ell_fraction == pytest.approx(10 / 12)

    def test_round_trip(self, paper_matrix):
        hyb = HYBMatrix.from_coo(paper_matrix)
        np.testing.assert_array_equal(hyb.to_coo().to_dense(), PAPER_A)

    def test_spmv(self, paper_matrix):
        hyb = HYBMatrix.from_coo(paper_matrix)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(hyb.spmv(x), PAPER_A @ x)

    def test_spmv_random(self):
        coo = random_coo(80, 60, seed=61)
        hyb = HYBMatrix.from_coo(coo)
        x = np.random.default_rng(6).standard_normal(60)
        np.testing.assert_allclose(hyb.spmv(x), coo.spmv(x), rtol=1e-12)

    def test_explicit_k(self, paper_matrix):
        hyb = HYBMatrix.from_coo(paper_matrix, k=1)
        assert hyb.k == 1
        assert hyb.ell.nnz == 4
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(hyb.spmv(x), PAPER_A @ x)

    def test_pure_coo_when_k_zero(self):
        # One dense row in an otherwise near-empty matrix.
        coo = COOMatrix([0] * 10, list(range(10)), np.ones(10), (40, 10))
        hyb = HYBMatrix.from_coo(coo)
        assert hyb.k == 0
        np.testing.assert_allclose(hyb.spmv(np.ones(10)), coo.spmv(np.ones(10)))

    def test_hyb_storage_beats_ellpack_on_skewed_rows(self):
        from repro.formats.ellpack import ELLPACKMatrix

        lengths = np.full(64, 3)
        lengths[0] = 40
        rows = np.repeat(np.arange(64), lengths)
        cols = np.concatenate([np.arange(n) for n in lengths])
        coo = COOMatrix(rows, cols, np.ones(rows.size), (64, 64))
        ell = ELLPACKMatrix.from_coo(coo)
        hyb = HYBMatrix.from_coo(coo)
        assert hyb.total_bytes < ell.total_bytes
