"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.errors import FormatError, ValidationError
from repro.formats.coo import COOMatrix
from tests.conftest import PAPER_A, random_coo


class TestConstruction:
    def test_from_dense_matches_paper_example(self, paper_matrix):
        assert paper_matrix.shape == (4, 5)
        assert paper_matrix.nnz == 12
        # Paper Section 2.1.1 arrays (1-based there, 0-based here).
        np.testing.assert_array_equal(
            paper_matrix.row_idx, [0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3]
        )
        np.testing.assert_array_equal(
            paper_matrix.col_idx, [0, 2, 0, 1, 2, 3, 4, 1, 2, 4, 3, 4]
        )
        np.testing.assert_array_equal(
            paper_matrix.vals, [3, 2, 2, 6, 5, 4, 1, 1, 9, 7, 8, 3]
        )

    def test_sorting(self):
        coo = COOMatrix([1, 0, 0], [0, 1, 0], [1.0, 2.0, 3.0], (2, 2))
        np.testing.assert_array_equal(coo.row_idx, [0, 0, 1])
        np.testing.assert_array_equal(coo.col_idx, [0, 1, 0])
        np.testing.assert_array_equal(coo.vals, [3.0, 2.0, 1.0])

    def test_duplicates_summed(self):
        coo = COOMatrix([0, 0, 0], [1, 1, 0], [1.0, 2.0, 5.0], (1, 2))
        assert coo.nnz == 2
        np.testing.assert_array_equal(coo.vals, [5.0, 3.0])

    def test_duplicates_rejected_when_asked(self):
        with pytest.raises(FormatError):
            COOMatrix([0, 0], [1, 1], [1.0, 2.0], (1, 2), sum_duplicates=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            COOMatrix([2], [0], [1.0], (2, 2))
        with pytest.raises(ValidationError):
            COOMatrix([0], [-1], [1.0], (2, 2))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            COOMatrix([0, 1], [0], [1.0], (2, 2))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            COOMatrix([], [], [], (0, 3))

    def test_empty_matrix_allowed(self):
        coo = COOMatrix([], [], [], (3, 3))
        assert coo.nnz == 0
        np.testing.assert_array_equal(coo.to_dense(), np.zeros((3, 3)))


class TestOperations:
    def test_dense_round_trip(self, paper_matrix):
        np.testing.assert_array_equal(paper_matrix.to_dense(), PAPER_A)

    def test_spmv_matches_dense(self, paper_matrix):
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(paper_matrix.spmv(x), PAPER_A @ x)

    def test_spmv_random_matches_dense(self):
        coo = random_coo(40, 33, seed=5)
        x = np.random.default_rng(1).standard_normal(33)
        np.testing.assert_allclose(coo.spmv(x), coo.to_dense() @ x, rtol=1e-12)

    def test_spmv_rejects_bad_x(self, paper_matrix):
        with pytest.raises(ValidationError):
            paper_matrix.spmv(np.zeros(4))

    def test_row_lengths(self, paper_matrix):
        np.testing.assert_array_equal(paper_matrix.row_lengths(), [2, 5, 3, 2])

    def test_device_bytes(self, paper_matrix):
        db = paper_matrix.device_bytes()
        assert db["index"] == 2 * 12 * 4  # two int32 arrays
        assert db["values"] == 12 * 8
        assert paper_matrix.total_bytes == db["index"] + db["values"]


class TestPermuteRows:
    def test_identity(self, paper_matrix):
        out = paper_matrix.permute_rows(np.arange(4))
        np.testing.assert_array_equal(out.to_dense(), PAPER_A)

    def test_reversal(self, paper_matrix):
        out = paper_matrix.permute_rows(np.array([3, 2, 1, 0]))
        np.testing.assert_array_equal(out.to_dense(), PAPER_A[::-1])

    def test_spmv_equivalence(self):
        coo = random_coo(30, 30, seed=9)
        rng = np.random.default_rng(2)
        perm = rng.permutation(30)
        x = rng.standard_normal(30)
        np.testing.assert_allclose(
            coo.permute_rows(perm).spmv(x), coo.spmv(x)[perm], rtol=1e-12
        )

    def test_invalid_perm_rejected(self, paper_matrix):
        with pytest.raises(ValidationError):
            paper_matrix.permute_rows(np.array([0, 0, 1, 2]))
        with pytest.raises(ValidationError):
            paper_matrix.permute_rows(np.array([0, 1]))
