"""Unit tests for Sliced-ELLPACK."""

import numpy as np
import pytest

from repro.errors import FormatError, ValidationError
from repro.formats.sliced_ellpack import (
    SlicedELLPACKMatrix,
    slice_bounds,
    variable_slice_bounds,
)
from tests.conftest import PAPER_A, random_coo


class TestSliceBounds:
    def test_exact_multiple(self):
        np.testing.assert_array_equal(slice_bounds(8, 4), [0, 4, 8])

    def test_remainder(self):
        np.testing.assert_array_equal(slice_bounds(10, 4), [0, 4, 8, 10])

    def test_h_above_m_rejected(self):
        with pytest.raises(FormatError, match=r"h=4.*m=3"):
            slice_bounds(3, 4)

    def test_h_below_one_rejected(self):
        with pytest.raises(FormatError, match=r"h=0.*m=3"):
            slice_bounds(3, 0)
        with pytest.raises(FormatError, match=r"h=-2.*m=3"):
            slice_bounds(3, -2)

    def test_h_one(self):
        np.testing.assert_array_equal(slice_bounds(3, 1), [0, 1, 2, 3])


class TestVariableSliceBounds:
    def test_cumulative_edges(self):
        np.testing.assert_array_equal(
            variable_slice_bounds(10, [4, 1, 5]), [0, 4, 5, 10]
        )

    def test_heights_must_sum_to_m(self):
        with pytest.raises(FormatError, match=r"sum to 9.*m=10"):
            variable_slice_bounds(10, [4, 5])

    def test_heights_must_be_positive(self):
        with pytest.raises(FormatError, match="positive"):
            variable_slice_bounds(10, [4, 0, 6])
        with pytest.raises(FormatError, match="positive"):
            variable_slice_bounds(10, [])


class TestSlicedELLPACK:
    def test_paper_example_with_h2(self, paper_matrix):
        sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=2)
        assert sl.num_slices == 2
        # Slice 0 holds rows {0,1} with max length 5; slice 1 rows {2,3}
        # with max length 3 (this is Fig. 1's num_col = [5, 3]).
        np.testing.assert_array_equal(sl.num_col, [5, 3])
        cols0, vals0 = sl.slice_block(0)
        assert cols0.shape == (2, 5)
        cols1, vals1 = sl.slice_block(1)
        assert cols1.shape == (2, 3)
        np.testing.assert_array_equal(cols1, [[1, 2, 4], [3, 4, 0]])
        np.testing.assert_array_equal(vals1, [[1, 9, 7], [8, 3, 0]])

    def test_storage_smaller_than_ellpack(self, paper_matrix):
        from repro.formats.ellpack import ELLPACKMatrix

        ell = ELLPACKMatrix.from_coo(paper_matrix)
        sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=2)
        assert sl.device_bytes()["index"] < ell.device_bytes()["index"]

    def test_round_trip(self, paper_matrix):
        sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=2)
        np.testing.assert_array_equal(sl.to_coo().to_dense(), PAPER_A)

    def test_round_trip_random(self):
        coo = random_coo(50, 40, seed=31)
        sl = SlicedELLPACKMatrix.from_coo(coo, h=8)
        np.testing.assert_allclose(sl.to_coo().to_dense(), coo.to_dense())

    def test_spmv(self, paper_matrix):
        for h in (1, 2, 3, 4, 8):
            sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=h)
            x = np.arange(1.0, 6.0)
            np.testing.assert_allclose(sl.spmv(x), PAPER_A @ x)

    def test_spmv_random(self):
        coo = random_coo(45, 45, seed=41)
        sl = SlicedELLPACKMatrix.from_coo(coo, h=7)
        x = np.random.default_rng(5).standard_normal(45)
        np.testing.assert_allclose(sl.spmv(x), coo.spmv(x), rtol=1e-12)

    def test_partial_final_slice(self):
        coo = random_coo(10, 10, seed=51)
        sl = SlicedELLPACKMatrix.from_coo(coo, h=4)
        assert sl.num_slices == 3
        cols, vals = sl.slice_block(2)
        assert cols.shape[0] == 2  # last slice holds 2 rows

    def test_bad_slice_index(self, paper_matrix):
        sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=2)
        with pytest.raises(ValidationError):
            sl.slice_block(2)

    def test_nnz_preserved(self, paper_matrix):
        sl = SlicedELLPACKMatrix.from_coo(paper_matrix, h=2)
        assert sl.nnz == 12
