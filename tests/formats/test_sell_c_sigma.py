"""SELL-C-σ: σ-window sorted chunks of Sliced ELLPACK."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.formats.sell_c_sigma import SELLCSigmaMatrix, sell_permutation
from tests.conftest import random_coo


class TestSellPermutation:
    def test_sigma_one_is_identity(self):
        lengths = np.array([3, 9, 1, 7])
        assert np.array_equal(sell_permutation(lengths, 1), np.arange(4))

    def test_global_sort_orders_by_decreasing_length(self):
        lengths = np.array([3, 9, 1, 7])
        perm = sell_permutation(lengths, 4)
        assert np.array_equal(lengths[perm], [9, 7, 3, 1])

    def test_sort_scoped_to_sigma_windows(self):
        lengths = np.array([1, 5, 9, 2])
        perm = sell_permutation(lengths, 2)
        # Each window of 2 is sorted independently; rows never cross.
        assert np.array_equal(perm, [1, 0, 2, 3])

    def test_stable_within_equal_lengths(self):
        lengths = np.array([4, 4, 4, 4])
        assert np.array_equal(sell_permutation(lengths, 4), np.arange(4))

    def test_sigma_validated(self):
        with pytest.raises(ValidationError):
            sell_permutation(np.array([1, 2]), 0)


class TestContainer:
    def test_round_trip_is_exact(self):
        coo = random_coo(90, 70, density=0.08, seed=0)
        mat = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=32)
        back = mat.to_coo()
        assert np.array_equal(back.row_idx, coo.row_idx)
        assert np.array_equal(back.col_idx, coo.col_idx)
        assert np.array_equal(back.vals, coo.vals)

    def test_spmv_matches_coo(self):
        coo = random_coo(90, 70, density=0.08, seed=1)
        mat = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=32)
        x = np.random.default_rng(2).standard_normal(70)
        np.testing.assert_allclose(mat.spmv(x), coo.spmv(x))

    def test_chunk_widths_hug_sorted_lengths(self):
        coo = random_coo(128, 64, density=0.1, seed=3)
        perm_lengths = coo.row_lengths()[
            SELLCSigmaMatrix.from_coo(coo, c=16, sigma=128).row_ids
        ]
        mat = SELLCSigmaMatrix.from_coo(coo, c=16, sigma=128)
        for i in range(mat.num_chunks):
            lo, hi = mat.chunk_edges[i], mat.chunk_edges[i + 1]
            assert mat.num_col[i] == perm_lengths[lo:hi].max()

    def test_sorting_reduces_padding(self):
        # A strongly skewed matrix: global sort must pad less than σ=1.
        rows = np.concatenate([np.repeat(np.arange(0, 64, 2), 12),
                               np.arange(1, 64, 2)])
        cols = np.concatenate([np.tile(np.arange(12), 32),
                               np.zeros(32, dtype=np.int64)])
        coo = COOMatrix(rows, cols, np.ones(rows.size), (64, 12))
        unsorted = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=1)
        fully = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=64)
        assert fully.padded_entries < unsorted.padded_entries

    def test_padding_stores_zero_value_column_zero(self):
        coo = random_coo(40, 30, density=0.1, seed=4)
        mat = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=16)
        perm_lengths = coo.row_lengths()[mat.row_ids]
        for i in range(mat.num_chunks):
            cols, vals = mat.chunk_block(i)
            lo, hi = mat.chunk_edges[i], mat.chunk_edges[i + 1]
            lens = perm_lengths[lo:hi]
            pad = np.arange(cols.shape[1])[np.newaxis, :] >= lens[:, np.newaxis]
            assert np.all(cols[pad] == 0)
            assert np.all(vals[pad] == 0.0)

    def test_row_ids_must_be_permutation(self):
        coo = random_coo(20, 20, density=0.2, seed=5)
        mat = SELLCSigmaMatrix.from_coo(coo, c=4, sigma=8)
        meta, arrays = mat.to_state()
        bad = dict(arrays)
        bad["row_ids"] = np.zeros_like(arrays["row_ids"])
        with pytest.raises(ValidationError, match="permutation"):
            SELLCSigmaMatrix.from_state(meta, bad)

    def test_nominal_c_above_m_collapses_to_one_chunk(self):
        coo = random_coo(10, 10, density=0.3, seed=6)
        mat = SELLCSigmaMatrix.from_coo(coo, c=32, sigma=128)
        assert mat.num_chunks == 1
        assert mat.c == 32  # the requested c is retained

    def test_device_bytes_accounts_for_permutation_table(self):
        coo = random_coo(64, 64, density=0.1, seed=7)
        mat = SELLCSigmaMatrix.from_coo(coo, c=8, sigma=32)
        bytes_ = mat.device_bytes()
        assert bytes_["index"] == mat._col_idx.nbytes + 4 * 64
