"""CMRS: compressed multi-row strips with 1-byte in-strip row offsets."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.cmrs import CMRSMatrix, MAX_STRIP_HEIGHT
from repro.formats.coo import COOMatrix
from tests.conftest import random_coo


class TestContainer:
    def test_round_trip_is_exact(self):
        coo = random_coo(90, 70, density=0.08, seed=0)
        mat = CMRSMatrix.from_coo(coo, height=4)
        back = mat.to_coo()
        assert np.array_equal(back.row_idx, coo.row_idx)
        assert np.array_equal(back.col_idx, coo.col_idx)
        assert np.array_equal(back.vals, coo.vals)

    def test_spmv_matches_coo(self):
        coo = random_coo(90, 70, density=0.08, seed=1)
        mat = CMRSMatrix.from_coo(coo, height=6)
        x = np.random.default_rng(2).standard_normal(70)
        np.testing.assert_allclose(mat.spmv(x), coo.spmv(x))

    def test_strip_row_reconstruction(self):
        coo = random_coo(50, 40, density=0.1, seed=3)
        mat = CMRSMatrix.from_coo(coo, height=8)
        rows = mat.entry_rows()
        assert np.array_equal(rows, coo.row_idx)
        assert np.all(np.diff(rows) >= 0)

    def test_row_in_strip_is_one_byte(self):
        mat = CMRSMatrix.from_coo(random_coo(30, 30, density=0.2, seed=4))
        assert mat.row_in_strip.dtype == np.uint8

    def test_row_info_is_quarter_of_coo(self):
        # The bit-representation angle: 1 B/entry of row information
        # versus COO's 4 B int32 row index.
        coo = random_coo(128, 64, density=0.1, seed=5)
        mat = CMRSMatrix.from_coo(coo, height=4)
        assert mat.row_in_strip.nbytes * 4 == coo.row_idx.size * 4

    def test_height_above_uint8_range_rejected(self):
        coo = random_coo(600, 20, density=0.05, seed=6)
        with pytest.raises(ValidationError, match="uint8"):
            CMRSMatrix.from_coo(coo, height=MAX_STRIP_HEIGHT + 1)
        CMRSMatrix.from_coo(coo, height=MAX_STRIP_HEIGHT)  # boundary is fine

    def test_strip_ptr_partitions_entries(self):
        coo = random_coo(64, 32, density=0.15, seed=7)
        mat = CMRSMatrix.from_coo(coo, height=4)
        assert mat.strip_ptr[0] == 0
        assert mat.strip_ptr[-1] == coo.nnz
        assert mat.num_strips == -(-64 // 4)
        # Entries of strip s all reconstruct to rows inside the strip.
        for s in range(mat.num_strips):
            lo, hi = mat.strip_ptr[s], mat.strip_ptr[s + 1]
            rows = mat.entry_rows()[lo:hi]
            assert np.all((rows >= s * 4) & (rows < (s + 1) * 4))

    def test_empty_rows_and_strips_are_fine(self):
        coo = COOMatrix([0, 15], [1, 2], [1.0, 2.0], (16, 4))
        mat = CMRSMatrix.from_coo(coo, height=4)
        x = np.arange(4, dtype=np.float64)
        np.testing.assert_allclose(mat.spmv(x), coo.spmv(x))

    def test_duplicate_coordinates_summed_once(self):
        coo = COOMatrix([2, 2, 2], [1, 1, 3], [1.0, 2.0, 4.0], (4, 4))
        mat = CMRSMatrix.from_coo(coo, height=2)
        assert mat.nnz == 2  # COOMatrix canonicalizes on construction
        np.testing.assert_allclose(
            mat.spmv(np.ones(4)), [0.0, 0.0, 7.0, 0.0]
        )
