"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from tests.conftest import PAPER_A, random_coo


class TestConstruction:
    def test_from_coo(self, paper_matrix):
        csr = CSRMatrix.from_coo(paper_matrix)
        np.testing.assert_array_equal(csr.indptr, [0, 2, 7, 10, 12])
        np.testing.assert_array_equal(csr.row_lengths(), [2, 5, 3, 2])
        assert csr.nnz == 12

    def test_bad_indptr(self):
        with pytest.raises(ValidationError):
            CSRMatrix(np.array([0, 2]), np.array([0]), np.array([1.0]), (2, 2))
        with pytest.raises(ValidationError):
            CSRMatrix(np.array([0, 2, 1]), np.array([0, 1]), np.ones(2), (2, 2))
        with pytest.raises(ValidationError):
            CSRMatrix(np.array([1, 1, 2]), np.array([0, 1]), np.ones(2), (2, 2))

    def test_column_out_of_range(self):
        with pytest.raises(ValidationError):
            CSRMatrix(np.array([0, 1]), np.array([5]), np.array([1.0]), (1, 2))


class TestOperations:
    def test_round_trip(self, paper_matrix):
        csr = CSRMatrix.from_coo(paper_matrix)
        np.testing.assert_array_equal(csr.to_coo().to_dense(), PAPER_A)

    def test_spmv_matches_dense(self, paper_matrix):
        csr = CSRMatrix.from_coo(paper_matrix)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(csr.spmv(x), PAPER_A @ x)

    def test_spmv_with_empty_rows(self):
        coo = COOMatrix([0, 2], [0, 1], [1.0, 2.0], (4, 2))
        csr = CSRMatrix.from_coo(coo)
        y = csr.spmv(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(y, [1.0, 0.0, 2.0, 0.0])

    def test_spmv_empty_matrix(self):
        csr = CSRMatrix.from_coo(COOMatrix([], [], [], (3, 3)))
        np.testing.assert_array_equal(csr.spmv(np.ones(3)), np.zeros(3))

    def test_spmv_random_matches_coo(self):
        coo = random_coo(50, 64, seed=11)
        csr = CSRMatrix.from_coo(coo)
        x = np.random.default_rng(3).standard_normal(64)
        np.testing.assert_allclose(csr.spmv(x), coo.spmv(x), rtol=1e-12)

    def test_device_bytes(self, paper_matrix):
        csr = CSRMatrix.from_coo(paper_matrix)
        db = csr.device_bytes()
        assert db["index"] == 12 * 4
        assert db["values"] == 12 * 8
        assert db["aux"] == 5 * 4
