"""Unit tests for ELLPACK and ELLPACK-R."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.ellpack import ELLPACKMatrix
from repro.formats.ellpack_r import ELLPACKRMatrix
from tests.conftest import PAPER_A, random_coo


class TestELLPACK:
    def test_paper_example_layout(self, paper_matrix):
        ell = ELLPACKMatrix.from_coo(paper_matrix)
        assert ell.k == 5
        # Paper Section 2.1.2 arrays (0-based; '*' padding stored as 0).
        np.testing.assert_array_equal(
            ell.col_idx,
            [
                [0, 2, 0, 0, 0],
                [0, 1, 2, 3, 4],
                [1, 2, 4, 0, 0],
                [3, 4, 0, 0, 0],
            ],
        )
        np.testing.assert_array_equal(
            ell.vals,
            [
                [3, 2, 0, 0, 0],
                [2, 6, 5, 4, 1],
                [1, 9, 7, 0, 0],
                [8, 3, 0, 0, 0],
            ],
        )
        np.testing.assert_array_equal(ell.row_lengths, [2, 5, 3, 2])

    def test_round_trip(self, paper_matrix):
        ell = ELLPACKMatrix.from_coo(paper_matrix)
        np.testing.assert_array_equal(ell.to_coo().to_dense(), PAPER_A)

    def test_spmv(self, paper_matrix):
        ell = ELLPACKMatrix.from_coo(paper_matrix)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(ell.spmv(x), PAPER_A @ x)

    def test_padding_accounting(self, paper_matrix):
        ell = ELLPACKMatrix.from_coo(paper_matrix)
        assert ell.nnz == 12
        assert ell.padded_entries == 4 * 5 - 12
        db = ell.device_bytes()
        assert db["index"] == 4 * 5 * 4
        assert db["values"] == 4 * 5 * 8

    def test_valid_mask(self, paper_matrix):
        ell = ELLPACKMatrix.from_coo(paper_matrix)
        mask = ell.valid_mask()
        assert mask.sum() == 12
        assert mask[0].tolist() == [True, True, False, False, False]

    def test_spmv_random(self):
        coo = random_coo(37, 29, seed=21)
        ell = ELLPACKMatrix.from_coo(coo)
        x = np.random.default_rng(4).standard_normal(29)
        np.testing.assert_allclose(ell.spmv(x), coo.spmv(x), rtol=1e-12)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ELLPACKMatrix(
                np.zeros((2, 3), np.int32),
                np.zeros((2, 2)),
                np.zeros(2, np.int64),
                (2, 4),
            )
        with pytest.raises(ValidationError):
            ELLPACKMatrix(
                np.zeros((2, 2), np.int32),
                np.zeros((2, 2)),
                np.array([3, 0]),  # length > k
                (2, 4),
            )

    def test_empty_rows_matrix(self):
        from repro.formats.coo import COOMatrix

        coo = COOMatrix([1], [1], [5.0], (3, 3))
        ell = ELLPACKMatrix.from_coo(coo)
        assert ell.k == 1
        np.testing.assert_allclose(ell.spmv(np.ones(3)), [0.0, 5.0, 0.0])


class TestELLPACKR:
    def test_same_arrays_as_ellpack(self, paper_matrix):
        ell = ELLPACKMatrix.from_coo(paper_matrix)
        ellr = ELLPACKRMatrix.from_coo(paper_matrix)
        np.testing.assert_array_equal(ell.col_idx, ellr.col_idx)
        np.testing.assert_array_equal(ell.vals, ellr.vals)
        np.testing.assert_array_equal(ellr.row_lengths, [2, 5, 3, 2])

    def test_aux_bytes_counted(self, paper_matrix):
        ellr = ELLPACKRMatrix.from_coo(paper_matrix)
        assert ellr.device_bytes()["aux"] == 4 * 4

    def test_warp_iterations(self, paper_matrix):
        ellr = ELLPACKRMatrix.from_coo(paper_matrix)
        # warp_size=2 -> warps {rows 0,1} and {rows 2,3}.
        np.testing.assert_array_equal(ellr.warp_iterations(warp_size=2), [5, 3])
        # A single warp covers everything.
        np.testing.assert_array_equal(ellr.warp_iterations(warp_size=32), [5])

    def test_spmv(self, paper_matrix):
        ellr = ELLPACKRMatrix.from_coo(paper_matrix)
        x = np.arange(1.0, 6.0)
        np.testing.assert_allclose(ellr.spmv(x), PAPER_A @ x)
