"""Pipeline :class:`~repro.pipeline.Session` end-to-end tests.

Includes the registry acceptance case: a toy format that declares EVERY
capability — container, conversion defaults, kernel, planner, validator,
integrity fields, tracer, tuner profile, serializer — in one
``register_format`` call, and then works through the whole Session
pipeline (convert, seal, save, open, prepare, fast/verified execute)
with no other wiring.
"""

import numpy as np
import pytest

from repro import registry as _registry
from repro.exec.policy import ExecutionPolicy
from repro.errors import FormatError, ReproError, ValidationError
from repro.formats.base import SparseFormat, register_format
from repro.formats.coo import COOMatrix
from repro.gpu.counters import KernelCounters
from repro.integrity.checksums import is_sealed
from repro.kernels.base import SpMVKernel, SpMVResult
from repro.kernels.plan import SpMVPlan
from repro.kernels.plancache import PlanCache
from repro.pipeline import Session


class TestSessionPipeline:
    def test_full_chain(self, tmp_path):
        sess = (
            Session(device="k20")
            .load("epb3", scale=0.01)
            .reorder("bar", h=64)
            .convert("bro_ell", h=64)
            .seal()
            .prepare()
        )
        assert sess.format_name == "bro_ell"
        assert sess.sealed
        assert sess.permutation is not None
        x = np.random.default_rng(0).standard_normal(sess.matrix.shape[1])
        r = sess.run(x)
        assert np.allclose(r.y, sess.matrix.to_coo().spmv(x), rtol=1e-8)
        assert sess.spmv_calls == 1
        assert sess.device_time > 0
        assert sess.dram_bytes > 0

        d = sess.describe()
        assert d["format"] == "bro_ell"
        assert d["sealed"] and d["reordered"]
        assert d["plannable"] and d["serializable"]

    def test_save_open_roundtrip(self, tmp_path):
        path = tmp_path / "sess.brx"
        s1 = (
            Session()
            .load("epb3", scale=0.01)
            .convert("bro_ell", h=64)
            .seal()
            .save(path)
        )
        s2 = Session.open(path)
        assert s2.sealed
        assert s2.fingerprint == s1.fingerprint
        x = np.random.default_rng(1).standard_normal(s1.matrix.shape[1])
        assert np.array_equal(s1.run(x).y, s2.run(x).y)

    def test_load_accepts_brx_path(self, tmp_path):
        path = tmp_path / "direct.brx"
        Session().load("epb3", scale=0.01).convert("csr").save(path)
        sess = Session().load(str(path))
        assert sess.format_name == "csr"

    def test_run_2d_matches_columnwise(self):
        sess = Session().load("epb3", scale=0.01).convert("bro_ell", h=64)
        X = np.random.default_rng(2).standard_normal((sess.matrix.shape[1], 4))
        R = sess.run(X)
        for j in range(4):
            assert np.array_equal(R.y[:, j], sess.run(X[:, j]).y)

    def test_with_fallback_recovers(self):
        sess = (
            Session(policy=ExecutionPolicy(verify="checksum"))
            .load("epb3", scale=0.01)
            .with_fallback("csr")
            .convert("bro_ell", h=64)
            .seal()
        )
        # Corrupt the sealed stream: verified dispatch must fall back.
        sess.matrix.stream.data[:] ^= 7
        x = np.random.default_rng(3).standard_normal(sess.matrix.shape[1])
        r = sess.run(x)
        assert r.fallback_used
        assert sess.fallbacks_used == 1
        assert np.allclose(r.y, sess.fallback.spmv(x))

    def test_empty_session_raises(self):
        with pytest.raises(ReproError, match="no matrix"):
            Session().matrix
        with pytest.raises(ReproError, match="neither"):
            Session().load("not_a_matrix_name")

    def test_reorder_after_convert_rejected(self):
        sess = Session().load("epb3", scale=0.01).convert("csr")
        with pytest.raises(ReproError, match="before convert"):
            sess.reorder("bar")

    def test_unknown_reordering_rejected(self):
        sess = Session().load("epb3", scale=0.01)
        with pytest.raises(ValidationError, match="unknown reordering"):
            sess.reorder("sort_by_vibes")

    def test_reference_engine_has_no_plan_cache(self):
        sess = Session(policy=ExecutionPolicy(engine="reference")).load("epb3", scale=0.01)
        assert sess.plan_cache is None
        assert sess.convert("bro_ell", h=64).plan() is None


# ---------------------------------------------------------------------------
# The toy format: every capability declared in ONE register_format call.
# ---------------------------------------------------------------------------


class _ToyKernel(SpMVKernel):
    format_name = "toy_diag"

    def _execute(self, matrix, x, device):
        n = matrix.shape[0]
        counters = KernelCounters(
            value_bytes=8 * n, x_bytes=8 * n, y_bytes=8 * n,
            useful_flops=2 * n, issued_flops=2 * n, launches=1, threads=n,
        )
        return SpMVResult(y=matrix.diag * x, counters=counters, device=device)


class _ToyPlan(SpMVPlan):
    format_name = "toy_diag"

    def _replay(self, x):
        return self.matrix.diag * x


def _build_toy_plan(matrix, device):
    n = matrix.shape[0]
    counters = KernelCounters(
        value_bytes=8 * n, x_bytes=8 * n, y_bytes=8 * n,
        useful_flops=2 * n, issued_flops=2 * n, launches=1, threads=n,
    )
    return _ToyPlan(matrix, device, counters)


def _validate_toy(matrix, deep=False):
    if matrix.diag.shape != (matrix.shape[0],):
        raise ValidationError("toy_diag diagonal has the wrong length")


def _toy_fields(matrix):
    return {"diag": matrix.diag}, ("toy_diag", matrix.shape)


def _toy_trace_rows(matrix, device):
    class _Row:
        def __init__(self, i, v):
            self.i, self.v = i, v

        def row(self):
            return f"{self.i:6d} {self.v:10.3f}"

    return [_Row(i, v) for i, v in enumerate(matrix.diag[:4])]


def _make_toy_format():
    @register_format(
        default_kwargs={"gain": 1.0},
        kernel=_ToyKernel,
        planner=_build_toy_plan,
        validator=_validate_toy,
        integrity_fields=_toy_fields,
        tracer=_registry.BlockTracer(
            "per-diagonal profile", lambda: "   idx      value", _toy_trace_rows
        ),
        tuner=_registry.TunerProfile(candidate=False),
        # _ToyPlan overrides _replay directly, so it runs unchanged under
        # any compute_backend — declare the compiled capability covered.
        compiled=True,
        # The diagonal array is its own (trivial) index encoding; the label
        # only needs to show up in the capability matrix.
        codec="columns",
    )
    class ToyDiagMatrix(SparseFormat):
        """Diagonal-only storage: one array, the simplest possible format."""

        format_name = "toy_diag"

        def __init__(self, diag, shape):
            self.diag = np.asarray(diag, dtype=np.float64)
            self._shape = (int(shape[0]), int(shape[1]))

        @property
        def shape(self):
            return self._shape

        @property
        def nnz(self):
            return int(np.count_nonzero(self.diag))

        @classmethod
        def from_coo(cls, coo, gain=1.0, **kwargs):
            diag = np.zeros(coo.shape[0], dtype=np.float64)
            on = coo.row_idx == coo.col_idx
            np.add.at(diag, coo.row_idx[on], coo.vals[on])
            return cls(diag * float(gain), coo.shape)

        def to_coo(self):
            idx = np.flatnonzero(self.diag)
            return COOMatrix(idx, idx, self.diag[idx], self._shape)

        def spmv(self, x):
            x = self.check_x(x)
            return self.diag * x

        def device_bytes(self):
            return {"index": 0, "values": int(self.diag.nbytes), "aux": 0}

        def to_state(self):
            return {"shape": list(self._shape)}, {"diag": self.diag}

        @classmethod
        def from_state(cls, meta, arrays):
            return cls(arrays["diag"], tuple(meta["shape"]))

    return ToyDiagMatrix


@pytest.fixture
def toy_format():
    cls = _make_toy_format()
    try:
        yield cls
    finally:
        _registry.unregister_format("toy_diag")


class TestToyFormatThroughSession:
    def _diag_coo(self, n=64, seed=0):
        rng = np.random.default_rng(seed)
        idx = np.arange(n)
        return COOMatrix(idx, idx, rng.standard_normal(n), (n, n))

    def test_one_declaration_covers_every_capability(self, toy_format):
        spec = _registry.get_spec("toy_diag")
        caps = spec.capabilities()
        assert all(caps.values()), f"missing capabilities: {caps}"
        row = next(
            r for r in _registry.capability_matrix() if r["format"] == "toy_diag"
        )
        assert row["kernel"] and row["planner"] and row["serializer"]
        assert row["default_kwargs"] == {"gain": 1.0}

    def test_end_to_end_session(self, toy_format, tmp_path):
        coo = self._diag_coo()
        cache = PlanCache()
        sess = (
            Session(policy=ExecutionPolicy(plan_cache=cache))
            .use(coo)
            .convert("toy_diag")
            .seal()
            .save(tmp_path / "toy.brx")
        )
        assert is_sealed(sess.matrix)

        # Reopen: serializer + reattached seal + content-keyed plan cache.
        sess.prepare()
        reopened = Session.open(tmp_path / "toy.brx", policy=ExecutionPolicy(plan_cache=cache))
        x = np.random.default_rng(4).standard_normal(coo.shape[1])
        r = reopened.run(x, engine="fast", verify="full")
        assert np.array_equal(r.y, sess.matrix.diag * x)
        assert cache.stats()["builds"] == 1  # content hit, no rebuild
        assert cache.stats()["content_hits"] >= 1

        # Registry-routed tracer, straight from the one declaration.
        tracer = _registry.tracer_for("toy_diag")
        assert tracer.title == "per-diagonal profile"
        assert len(tracer.rows(sess.matrix, r.device)) == 4

    def test_conversion_defaults_and_rejection(self, toy_format):
        coo = self._diag_coo()
        from repro.formats.conversion import convert

        mat = convert(coo, "toy_diag", gain=2.0)
        assert np.allclose(mat.diag, 2.0 * coo.to_dense().diagonal())
        with pytest.raises(FormatError, match="gain"):
            convert(coo, "toy_diag", h=64)

    def test_unregister_removes_everything(self):
        cls = _make_toy_format()
        assert "toy_diag" in _registry.available_formats()
        _registry.unregister_format("toy_diag")
        assert "toy_diag" not in _registry.available_formats()
        assert _registry.find_spec("toy_diag") is None
        with pytest.raises(FormatError):
            _registry.get_spec("toy_diag")
