"""Session.run — the single entry point replacing execute/execute_many.

1-D dispatches to run_spmv, 2-D to run_spmm (column-bit-identical), any
other rank is a typed error, and the legacy spellings survive as
DeprecationWarning shims delegating to run.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.conversion import convert
from repro.matrices.suite import generate
from repro.pipeline import Session


@pytest.fixture(scope="module")
def sess():
    s = Session("k20")
    s.use(convert(generate("qcd5_4", scale=0.02, seed=3), "bro_ell", h=16))
    return s


@pytest.fixture(scope="module")
def n(sess):
    return sess.matrix.shape[1]


class TestRunDispatch:
    def test_1d_runs_single_spmv(self, sess, n):
        x = np.linspace(-1, 1, n)
        result = sess.run(x)
        assert result.y.shape == (sess.matrix.shape[0],)
        assert np.array_equal(result.y, sess.run(x).y)  # deterministic

    def test_2d_runs_multi_rhs_column_identical(self, sess, n):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((n, 3))
        block = sess.run(X)
        assert block.y.shape == (sess.matrix.shape[0], 3)
        for j in range(3):
            single = sess.run(np.ascontiguousarray(X[:, j]))
            assert np.array_equal(block.y[:, j], single.y)

    def test_other_ranks_are_typed_errors(self, sess):
        with pytest.raises(ValidationError, match="1-D vector or"):
            sess.run(np.ones((2, 2, 2)))
        with pytest.raises(ValidationError):
            sess.run(np.float64(3.0))

    def test_accepts_lists(self, sess, n):
        y_list = sess.run([1.0] * n).y
        y_arr = sess.run(np.ones(n)).y
        assert np.array_equal(y_list, y_arr)

    def test_engine_and_verify_overrides_still_work(self, sess, n):
        x = np.linspace(0, 1, n)
        fast = sess.run(x)
        ref = sess.run(x, engine="reference")
        assert np.allclose(fast.y, ref.y)
        verified = sess.run(x, verify=True)
        assert verified.fault_detected is False


class TestDeprecatedShims:
    def test_execute_warns_and_matches_run(self, sess, n):
        x = np.linspace(-2, 2, n)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            y_old = sess.execute(x).y
        assert any(issubclass(w.category, DeprecationWarning)
                   and "Session.run" in str(w.message) for w in caught)
        assert np.array_equal(y_old, sess.run(x).y)

    def test_execute_many_warns_and_matches_run(self, sess, n):
        X = np.stack([np.linspace(0, 1, n), np.linspace(1, 0, n)], axis=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            y_old = sess.execute_many(X).y
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert np.array_equal(y_old, sess.run(X).y)

    def test_run_itself_does_not_warn(self, sess, n):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            sess.run(np.ones(n))
        assert not caught
