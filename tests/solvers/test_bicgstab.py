"""Unit tests for the BiCGSTAB solver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.formats.coo import COOMatrix
from repro.solvers.bicgstab import bicgstab
from repro.solvers.operators import FormatOperator, SimulatedOperator
from tests.solvers.test_gmres import unsymmetric_matrix


class TestBiCGSTAB:
    def test_solves_unsymmetric_system(self):
        coo, dense = unsymmetric_matrix()
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(60)
        b = dense @ x_true
        result = bicgstab(FormatOperator(coo), b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)

    def test_two_spmv_per_iteration(self):
        coo, dense = unsymmetric_matrix(seed=2)
        op = FormatOperator(coo)
        result = bicgstab(op, np.ones(60), tol=1e-10)
        assert result.converged
        # 1 initial residual + (<= 2 per iteration).
        assert op.spmv_calls <= 1 + 2 * result.iterations

    def test_zero_rhs(self):
        coo, _ = unsymmetric_matrix()
        result = bicgstab(FormatOperator(coo), np.zeros(60))
        assert result.converged
        np.testing.assert_array_equal(result.x, np.zeros(60))

    def test_spd_system_also_works(self):
        rng = np.random.default_rng(3)
        b_mat = rng.standard_normal((40, 40)) * 0.2
        dense = b_mat.T @ b_mat + 40 * np.eye(40)
        coo = COOMatrix.from_dense(dense)
        b = np.ones(40)
        result = bicgstab(FormatOperator(coo), b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(dense @ result.x, b, atol=1e-7)

    def test_budget_and_raise(self):
        coo, _ = unsymmetric_matrix(seed=4)
        result = bicgstab(FormatOperator(coo), np.ones(60), tol=1e-15,
                          max_iter=2)
        assert not result.converged
        with pytest.raises(ConvergenceError):
            bicgstab(FormatOperator(coo), np.ones(60), tol=1e-15, max_iter=2,
                     raise_on_fail=True)

    def test_validation(self):
        coo, _ = unsymmetric_matrix()
        with pytest.raises(ValidationError):
            bicgstab(FormatOperator(coo), np.ones((2, 3)))
        with pytest.raises(ValidationError):
            bicgstab(FormatOperator(coo), np.ones(60), x0=np.ones(5))
        with pytest.raises(ValidationError):
            bicgstab(FormatOperator(coo), np.ones(60), max_iter=0)

    def test_through_simulated_bro_ell(self):
        from repro.formats import convert

        coo, dense = unsymmetric_matrix(seed=5)
        b = np.ones(60)
        op = SimulatedOperator(convert(coo, "bro_ell", h=16), "k20")
        result = bicgstab(op, b, tol=1e-9)
        assert result.converged
        np.testing.assert_allclose(dense @ result.x, b, atol=1e-6)
        assert op.device_time > 0
