"""Retry wrapper: perturbed restarts, reference-operator fallback."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, IntegrityError, ValidationError
from repro.solvers import gmres, solve_with_retry


def _spd_system(n=32, seed=0):
    rng = np.random.default_rng(seed)
    q = np.linalg.qr(rng.standard_normal((n, n)))[0]
    a = q @ np.diag(np.linspace(1.0, 10.0, n)) @ q.T
    b = rng.standard_normal(n)
    return a, b


class _FlakyOperator:
    """Raises on the first ``failures`` applications, then works."""

    def __init__(self, a, failures, exc_factory):
        self.a = a
        self.remaining = failures
        self.exc_factory = exc_factory

    def __call__(self, x):
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc_factory()
        return self.a @ x


class TestSolveWithRetry:
    def test_clean_solve_is_single_attempt(self):
        a, b = _spd_system()
        result = solve_with_retry(gmres, lambda x: a @ x, b, tol=1e-10)
        assert result.converged
        assert result.attempts == 1
        assert not result.used_fallback_operator
        assert result.errors == []
        np.testing.assert_allclose(a @ result.x, b, atol=1e-8)

    def test_retry_recovers_from_transient_integrity_fault(self):
        a, b = _spd_system(seed=1)
        flaky = _FlakyOperator(a, 1, lambda: IntegrityError("transient CRC fault"))
        result = solve_with_retry(gmres, flaky, b, tol=1e-10)
        assert result.converged
        assert result.attempts == 2
        assert not result.used_fallback_operator
        assert "IntegrityError" in result.errors[0]
        np.testing.assert_allclose(a @ result.x, b, atol=1e-8)

    def test_fallback_operator_used_after_budget_exhausted(self):
        a, b = _spd_system(seed=2)

        def always_broken(x):
            raise IntegrityError("operator is permanently corrupt")

        result = solve_with_retry(
            gmres, always_broken, b,
            max_retries=1, fallback_operator=lambda x: a @ x, tol=1e-10,
        )
        assert result.converged
        assert result.used_fallback_operator
        assert result.attempts == 3  # first try + 1 retry + fallback
        assert len(result.errors) == 2
        np.testing.assert_allclose(a @ result.x, b, atol=1e-8)

    def test_exhausted_budget_without_fallback_reraises(self):
        _, b = _spd_system(seed=3)

        def always_broken(x):
            raise ConvergenceError("stagnated", iterations=0, residual=np.inf)

        with pytest.raises(ConvergenceError, match="stagnated"):
            solve_with_retry(gmres, always_broken, b, max_retries=2)

    def test_nonconvergence_is_retried_then_reraised(self):
        a, b = _spd_system(seed=4)
        calls = []

        def counting_op(x):
            calls.append(1)
            return a @ x

        # One inner iteration can't reach tol, so raise_on_fail makes every
        # attempt (first try + 2 retries) fail with ConvergenceError.
        with pytest.raises(ConvergenceError):
            solve_with_retry(
                gmres, counting_op, b, max_retries=2, max_iter=1, restart=1
            )
        assert len(calls) >= 3  # the operator really ran on every attempt

    def test_negative_retry_budget_rejected(self):
        _, b = _spd_system(seed=5)
        with pytest.raises(ValidationError, match="max_retries"):
            solve_with_retry(gmres, lambda x: x, b, max_retries=-1)

    def test_deterministic_in_seed(self):
        a, b = _spd_system(seed=6)
        flaky1 = _FlakyOperator(a, 1, lambda: IntegrityError("boom"))
        flaky2 = _FlakyOperator(a, 1, lambda: IntegrityError("boom"))
        r1 = solve_with_retry(gmres, flaky1, b, seed=7, tol=1e-10)
        r2 = solve_with_retry(gmres, flaky2, b, seed=7, tol=1e-10)
        np.testing.assert_array_equal(r1.x, r2.x)


class TestResilientShardedSolve:
    """Satellite acceptance: CG over a Table 2 pattern through the
    fault-tolerant process backend converges bit-identically to the
    single-device solve, with the recovery visible in metrics."""

    @staticmethod
    def _table2_spd(scale=0.01, seed=0):
        """SPD system on a Table 2 sparsity pattern: A = B^T B + n I."""
        from repro.formats.coo import COOMatrix
        from repro.matrices.suite import generate

        dense_b = generate("cant", scale=scale, seed=seed).to_dense()
        n = dense_b.shape[0]
        dense = dense_b.T @ dense_b + n * np.eye(n)
        return COOMatrix.from_dense(dense), dense

    def test_cg_bit_identical_under_injected_faults(self):
        from repro import telemetry
        from repro.exec.chaos import ChaosPolicy
        from repro.exec.engine import shutdown_pools
        from repro.exec.policy import ExecutionPolicy
        from repro.formats.conversion import convert
        from repro.solvers import conjugate_gradient
        from repro.solvers.operators import SimulatedOperator
        from repro.telemetry import metrics as M

        coo, dense = self._table2_spd()
        mat = convert(coo, "bro_ell")
        rng = np.random.default_rng(5)
        b = dense @ rng.standard_normal(dense.shape[0])

        clean_op = SimulatedOperator(mat, "k20")
        clean = solve_with_retry(conjugate_gradient, clean_op, b, tol=1e-10)
        assert clean.converged and clean.attempts == 1

        chaos = ChaosPolicy(
            seed=11, kinds=("kill-worker", "corrupt-shard-result"),
            rate=0.5, max_faults=3,
        )
        policy = ExecutionPolicy(
            devices=2, backend="process", shard_timeout_s=5.0,
            max_retries=3, chaos=chaos,
        )
        faulted_op = SimulatedOperator(mat, "k20", policy=policy)
        reg = M.MetricsRegistry()
        try:
            with telemetry.tracing(registry=reg):
                result = solve_with_retry(
                    conjugate_gradient, faulted_op, b, tol=1e-10
                )
        finally:
            shutdown_pools(mat)

        # Every faulted multiply recovered bit-identically, so the whole
        # Krylov iteration — and the solution — matches exactly.
        assert result.converged
        assert result.attempts == 1  # recovery happened BELOW the solver
        np.testing.assert_array_equal(result.x, clean.x)
        assert result.iterations == clean.iterations

        counters = reg.snapshot()["counters"]
        assert counters.get("exec.retries", 0) >= 1
        assert counters.get("exec.shard_reassignments", 0) >= 1
