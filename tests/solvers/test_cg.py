"""Unit tests for the Conjugate Gradient solver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.solvers.cg import conjugate_gradient
from repro.solvers.operators import FormatOperator, SimulatedOperator


def spd_matrix(n=64, seed=0, density=0.05):
    """A random sparse SPD matrix: A = B^T B + n*I (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    nnz = int(density * n * n)
    b = np.zeros((n, n))
    b[rng.integers(0, n, nnz), rng.integers(0, n, nnz)] = rng.standard_normal(nnz)
    dense = b.T @ b + n * np.eye(n)
    return COOMatrix.from_dense(dense), dense


class TestCG:
    def test_solves_spd_system(self):
        coo, dense = spd_matrix()
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(64)
        b = dense @ x_true
        result = conjugate_gradient(FormatOperator(coo), b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)

    def test_residual_history_decreases_overall(self):
        coo, dense = spd_matrix(seed=2)
        b = np.ones(64)
        result = conjugate_gradient(FormatOperator(coo), b, tol=1e-10)
        assert result.residual_history[-1] < result.residual_history[0]

    def test_jacobi_preconditioning_converges(self):
        coo, dense = spd_matrix(seed=3)
        b = np.ones(64)
        plain = conjugate_gradient(FormatOperator(coo), b, tol=1e-10)
        pre = conjugate_gradient(
            FormatOperator(coo), b, tol=1e-10, jacobi_diagonal=np.diag(dense)
        )
        assert pre.converged and plain.converged

    def test_zero_rhs(self):
        coo, _ = spd_matrix()
        result = conjugate_gradient(FormatOperator(coo), np.zeros(64))
        assert result.converged
        np.testing.assert_array_equal(result.x, np.zeros(64))

    def test_non_spd_detected(self):
        # An indefinite matrix makes p^T A p negative quickly.
        dense = np.diag(np.concatenate([np.ones(3), -np.ones(3)]))
        coo = COOMatrix.from_dense(dense)
        with pytest.raises(ConvergenceError, match="positive definite"):
            conjugate_gradient(FormatOperator(coo), np.ones(6))

    def test_iteration_budget(self):
        coo, _ = spd_matrix(seed=4)
        result = conjugate_gradient(FormatOperator(coo), np.ones(64), max_iter=2)
        assert not result.converged
        assert result.iterations == 2
        with pytest.raises(ConvergenceError):
            conjugate_gradient(
                FormatOperator(coo), np.ones(64), max_iter=2, raise_on_fail=True
            )

    def test_validation(self):
        coo, _ = spd_matrix()
        with pytest.raises(ValidationError):
            conjugate_gradient(FormatOperator(coo), np.ones((4, 4)))
        with pytest.raises(ValidationError):
            conjugate_gradient(FormatOperator(coo), np.ones(64), x0=np.ones(3))
        with pytest.raises(ValidationError):
            conjugate_gradient(FormatOperator(coo), np.ones(64), max_iter=0)
        with pytest.raises(ValidationError):
            conjugate_gradient(
                FormatOperator(coo), np.ones(64), jacobi_diagonal=np.zeros(64)
            )


class TestOperators:
    def test_format_operator_counts_calls(self):
        coo, dense = spd_matrix()
        op = FormatOperator(coo)
        conjugate_gradient(op, np.ones(64), tol=1e-10)
        assert op.spmv_calls > 1

    def test_simulated_operator_accumulates_time(self):
        coo, _ = spd_matrix()
        op = SimulatedOperator(CSRMatrix.from_coo(coo), "k20")
        result = conjugate_gradient(op, np.ones(64), tol=1e-8)
        assert result.converged
        assert op.device_time > 0
        assert op.dram_bytes > 0

    def test_simulated_matches_reference(self):
        coo, dense = spd_matrix(seed=5)
        b = np.ones(64)
        ref = conjugate_gradient(FormatOperator(coo), b, tol=1e-10)
        sim = conjugate_gradient(SimulatedOperator(coo, "c2070"), b, tol=1e-10)
        np.testing.assert_allclose(sim.x, ref.x, rtol=1e-8)
