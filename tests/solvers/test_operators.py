"""SimulatedOperator must route through run_spmv — the integrity boundary —
and use the prepared-plan engine for plannable formats.
"""

import copy

import numpy as np
import pytest

from repro import telemetry
from repro.exec.policy import ExecutionPolicy
from repro.formats.conversion import convert
from repro.formats.csr import CSRMatrix
from repro.kernels import run_spmv
from repro.kernels.plancache import PlanCache
from repro.solvers.operators import FormatOperator, SimulatedOperator
from tests.conftest import random_coo


def workload(fmt="bro_ell", seed=0):
    coo = random_coo(72, 72, density=0.08, seed=seed)
    kwargs = {"h": 24} if fmt in ("bro_ell", "bro_hyb") else {}
    return coo, convert(coo, fmt, **kwargs)


class TestFormatOperator:
    def test_reference_application(self):
        coo, mat = workload()
        op = FormatOperator(mat)
        x = np.ones(72)
        np.testing.assert_allclose(op(x), coo.spmv(x))
        assert op.spmv_calls == 1


class TestSimulatedOperator:
    def test_matches_reference_engine_bit_identically(self):
        _, mat = workload()
        x = np.random.default_rng(1).standard_normal(72)
        fast = SimulatedOperator(mat, "k20", policy=ExecutionPolicy(plan_cache=PlanCache()))
        ref = SimulatedOperator(mat, "k20", policy=ExecutionPolicy(engine="reference"))
        assert fast.engine == "fast"
        assert ref.engine == "reference"
        assert np.array_equal(fast(x), ref(x))
        # Equal counters => equal predicted device time and traffic.
        assert fast.device_time == ref.device_time
        assert fast.dram_bytes == ref.dram_bytes

    def test_unplannable_format_falls_back_to_reference_engine(self, monkeypatch):
        # Every shipped format with a kernel now has a planner; unbind one
        # to exercise the reference-engine fallback.
        from repro import registry as _registry

        monkeypatch.setattr(_registry.get_spec("ellpack_r"), "planner", None)
        _, mat = workload(fmt="ellpack_r")
        op = SimulatedOperator(mat, "k20")
        assert op.engine == "reference"
        x = np.ones(72)
        op(x)
        assert op.spmv_calls == 1

    def test_repeated_calls_hit_the_plan_cache(self):
        _, mat = workload()
        cache = PlanCache()
        op = SimulatedOperator(mat, "k20", policy=ExecutionPolicy(plan_cache=cache))
        x = np.ones(72)
        for _ in range(5):
            op(x)
        s = cache.stats()
        assert s["builds"] == 1
        assert s["hits"] == 4
        assert op.spmv_calls == 5

    def test_routes_through_run_spmv_dispatch_span(self):
        """The satellite bug: operator calls used to bypass run_spmv, so
        solves never produced the dispatch span. Now they must."""
        _, mat = workload()
        op = SimulatedOperator(mat, "k20", policy=ExecutionPolicy(plan_cache=PlanCache()))
        with telemetry.tracing() as t:
            op(np.ones(72))
        telemetry.disable()
        assert t.find("spmv.dispatch")

    def test_verify_and_fallback_pass_through(self):
        """Operator-driven solves honor verify/fallback like direct dispatch."""
        coo, mat = workload()
        mat = copy.deepcopy(mat)
        mat.stream.data[:] = np.iinfo(mat.stream.data.dtype).max
        fb = CSRMatrix.from_coo(coo)
        op = SimulatedOperator(
            mat, "k20",
            policy=ExecutionPolicy(verify="structure", fallback=fb,
                                   plan_cache=PlanCache()),
        )
        x = np.ones(72)
        y = op(x)
        np.testing.assert_allclose(y, coo.spmv(x))
        assert op.fallbacks_used == 1

    def test_accumulates_device_time_and_traffic(self):
        _, mat = workload()
        op = SimulatedOperator(mat, "k20", policy=ExecutionPolicy(plan_cache=PlanCache()))
        x = np.ones(72)
        single = run_spmv(mat, x, "k20", policy=ExecutionPolicy(engine="reference"))
        op(x)
        op(x)
        assert op.device_time == pytest.approx(2 * single.timing.time)
        assert op.dram_bytes == 2 * single.counters.dram_bytes

    def test_cg_solve_identical_across_engines(self):
        from repro.solvers.cg import conjugate_gradient

        n = 48
        rng = np.random.default_rng(4)
        q = np.linalg.qr(rng.standard_normal((n, n)))[0]
        dense = q @ np.diag(np.linspace(1.0, 8.0, n)) @ q.T
        from repro.formats.coo import COOMatrix

        mat = convert(COOMatrix.from_dense(dense), "bro_ell", h=16)
        b = rng.standard_normal(n)
        res_fast = conjugate_gradient(
            SimulatedOperator(mat, "k20", policy=ExecutionPolicy(plan_cache=PlanCache())), b, tol=1e-10
        )
        res_ref = conjugate_gradient(
            SimulatedOperator(mat, "k20", policy=ExecutionPolicy(engine="reference")), b, tol=1e-10
        )
        # Bit-identical SpMVs => bit-identical CG trajectories.
        assert res_fast.iterations == res_ref.iterations
        assert np.array_equal(res_fast.x, res_ref.x)
