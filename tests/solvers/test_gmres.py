"""Unit tests for the restarted GMRES solver."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, ValidationError
from repro.formats.coo import COOMatrix
from repro.solvers.gmres import gmres
from repro.solvers.operators import FormatOperator, SimulatedOperator


def unsymmetric_matrix(n=60, seed=0):
    """A well-conditioned unsymmetric system (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * 0.2
    dense[np.abs(dense) < 0.15] = 0.0
    dense += np.diag(np.abs(dense).sum(axis=1) + 1.0)
    return COOMatrix.from_dense(dense), dense


class TestGMRES:
    def test_solves_unsymmetric_system(self):
        coo, dense = unsymmetric_matrix()
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(60)
        b = dense @ x_true
        result = gmres(FormatOperator(coo), b, tol=1e-10, restart=30)
        assert result.converged
        np.testing.assert_allclose(result.x, x_true, rtol=1e-6)

    def test_restart_smaller_than_needed_still_converges(self):
        coo, dense = unsymmetric_matrix(seed=2)
        b = np.ones(60)
        result = gmres(FormatOperator(coo), b, tol=1e-8, restart=5, max_iter=500)
        assert result.converged
        np.testing.assert_allclose(dense @ result.x, b, atol=1e-6)

    def test_zero_rhs(self):
        coo, _ = unsymmetric_matrix()
        result = gmres(FormatOperator(coo), np.zeros(60))
        assert result.converged
        np.testing.assert_array_equal(result.x, np.zeros(60))

    def test_identity_converges_instantly(self):
        coo = COOMatrix.from_dense(np.eye(8))
        b = np.arange(1.0, 9.0)
        result = gmres(FormatOperator(coo), b, tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, b, rtol=1e-10)

    def test_budget_exhaustion(self):
        # An ill-conditioned system with a tiny budget.
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((40, 40)) + 40 * np.eye(40)
        coo = COOMatrix.from_dense(dense)
        result = gmres(FormatOperator(coo), np.ones(40), tol=1e-14, max_iter=3)
        assert not result.converged
        with pytest.raises(ConvergenceError):
            gmres(FormatOperator(coo), np.ones(40), tol=1e-14, max_iter=3,
                  raise_on_fail=True)

    def test_validation(self):
        coo, _ = unsymmetric_matrix()
        with pytest.raises(ValidationError):
            gmres(FormatOperator(coo), np.ones((2, 2)))
        with pytest.raises(ValidationError):
            gmres(FormatOperator(coo), np.ones(60), restart=0)
        with pytest.raises(ValidationError):
            gmres(FormatOperator(coo), np.ones(60), x0=np.ones(2))

    def test_with_simulated_operator_on_bro_format(self):
        from repro.formats import convert

        coo, dense = unsymmetric_matrix(seed=4)
        b = np.ones(60)
        op = SimulatedOperator(convert(coo, "bro_ell", h=16), "k20")
        result = gmres(op, b, tol=1e-8)
        assert result.converged
        np.testing.assert_allclose(dense @ result.x, b, atol=1e-6)
        assert op.device_time > 0
