"""Coverage for the small foundation modules: types, registries, errors."""

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    FormatError,
    KernelError,
    ReproError,
    ValidationError,
)
from repro.formats.base import SparseFormat, register_format
from repro.kernels.base import SpMVKernel, register_kernel
from repro.types import INDEX_DTYPE, VALUE_DTYPE, symbol_dtype


class TestTypes:
    def test_dtypes(self):
        assert VALUE_DTYPE == np.float64
        assert INDEX_DTYPE == np.int32

    def test_symbol_dtype(self):
        assert symbol_dtype(32) == np.uint32
        assert symbol_dtype(64) == np.uint64

    def test_symbol_dtype_rejects_others(self):
        for bad in (8, 16, 33, 0, "x"):
            with pytest.raises(ValidationError):
                symbol_dtype(bad)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ValidationError, FormatError, KernelError):
            assert issubclass(exc, ReproError)

    def test_validation_error_is_value_error(self):
        # So numpy-style callers catching ValueError still work.
        assert issubclass(ValidationError, ValueError)

    def test_convergence_error_carries_state(self):
        err = ConvergenceError("no", 42, 0.5)
        assert err.iterations == 42
        assert err.residual == 0.5


class TestFormatRegistry:
    def test_duplicate_name_rejected(self):
        with pytest.raises(FormatError, match="twice"):
            @register_format
            class Dup(SparseFormat):  # noqa - test class
                format_name = "coo"  # already taken

    def test_missing_name_rejected(self):
        with pytest.raises(FormatError, match="format_name"):
            @register_format
            class NoName(SparseFormat):  # noqa - test class
                pass


class TestKernelRegistry:
    def test_duplicate_name_rejected(self):
        with pytest.raises(KernelError, match="twice"):
            @register_kernel
            class Dup(SpMVKernel):  # noqa - test class
                format_name = "coo"

    def test_missing_name_rejected(self):
        with pytest.raises(KernelError, match="format_name"):
            @register_kernel
            class NoName(SpMVKernel):  # noqa - test class
                pass


class TestSparseFormatHelpers:
    def test_check_x_casts_dtype(self, paper_matrix):
        x = paper_matrix.check_x(np.ones(5, dtype=np.float32))
        assert x.dtype == VALUE_DTYPE

    def test_repr(self, paper_matrix):
        assert "4x5" in repr(paper_matrix)
        assert "nnz=12" in repr(paper_matrix)

    def test_index_and_total_bytes(self, paper_matrix):
        assert paper_matrix.index_bytes == 96
        assert paper_matrix.total_bytes == 96 + 96
