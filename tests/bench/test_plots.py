"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.bench.plots import bar_chart, line_chart
from repro.errors import ValidationError


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") < lines[1].count("█")
        assert lines[1].count("█") == 10  # max value fills the width

    def test_title_and_units(self):
        text = bar_chart(["x"], [3.0], title="T", unit=" GF")
        assert text.splitlines()[0] == "T"
        assert "3.00 GF" in text

    def test_zero_values_ok(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.00" in text

    def test_empty(self):
        assert "(no data)" in bar_chart([], [], title="t")

    def test_validation(self):
        with pytest.raises(ValidationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValidationError):
            bar_chart(["a"], [-1.0])


class TestLineChart:
    def test_series_markers_and_legend(self):
        text = line_chart(
            {"up": [(0, 0), (1, 1)], "down": [(0, 1), (1, 0)]},
            title="trend",
        )
        assert "o up" in text
        assert "x down" in text
        assert text.splitlines()[0] == "trend"
        # Extremes of the y-axis are labelled.
        assert "1.00" in text and "0.00" in text

    def test_monotone_series_renders_diagonal(self):
        pts = [(float(i), float(i)) for i in range(8)]
        text = line_chart({"s": pts}, width=16, height=8)
        rows = [l for l in text.splitlines() if "o" in l]
        cols = [r.index("o") for r in rows]
        # y decreases down the grid while x grows rightward, so the marker
        # column must decrease row by row — a falling diagonal on screen.
        assert cols == sorted(cols, reverse=True)

    def test_single_point(self):
        text = line_chart({"s": [(2.0, 5.0)]})
        assert "o s" in text

    def test_empty(self):
        assert "(no data)" in line_chart({}, title="t")
        assert "(no data)" in line_chart({"s": []})


class TestCLIPlot:
    def test_bench_with_plot_flag(self, capsys):
        from repro.cli import main

        assert main(["bench", "table3", "--scale", "0.02", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "█" in out  # a bar chart rendered

    def test_fig3_plot_is_line_chart(self, capsys):
        from repro.cli import main

        assert main(["bench", "fig3", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C2070" in out
        assert "└" in out  # chart frame