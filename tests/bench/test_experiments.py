"""Unit tests for the experiment definitions (tiny scale, shape only)."""

import pytest

from repro.bench import experiments as E


class TestTables:
    def test_table1_rows(self):
        rows = E.table1_devices()
        assert [r["device"] for r in rows] == ["Tesla C2070", "GTX680",
                                               "Tesla K20"]

    def test_table2_covers_suite(self):
        rows = E.table2_suite(scale=0.01)
        assert len(rows) == 31  # Table 2's thirty plus the dense2 control
        assert {r["test_set"] for r in rows} == {1, 2}

    def test_table3_structure(self):
        rows = E.table3_savings(scale=0.02)
        assert len(rows) == 17
        for r in rows:
            assert 0 < r["eta_pct"] < 100
            assert r["kappa"] > 1.0
            assert r["compressed_bytes"] < r["original_bytes"]

    def test_table4_structure(self):
        rows = E.table4_hyb_split(scale=0.02)
        assert len(rows) == 14
        for r in rows:
            assert 0 <= r["pct_bro_ell"] <= 100

    def test_table5_structure(self):
        rows = E.table5_bar_savings(scale=0.01, h=64)
        assert len(rows) == 17
        for r in rows:
            assert r["delta_pp"] == pytest.approx(
                r["eta_after_pct"] - r["eta_before_pct"], abs=1e-9
            )


class TestFigures:
    def test_fig3_rows_and_break_even(self):
        rows = E.fig3_savings_sweep(m=2048, k=16, bit_widths=(32, 16, 1),
                                    devices=("k20",))
        assert len(rows) == 3
        eta = {r["bits"]: r["eta_pct"] for r in rows}
        assert eta[32] == 0.0
        assert eta[16] == 50.0
        be = E.fig3_break_even(rows)
        assert "k20" in be

    def test_fig4_speedups_computed(self):
        rows = E.fig4_bro_ell(scale=0.01, devices=("k20",),
                              matrices=("epb3",), h=64)
        assert len(rows) == 1
        r = rows[0]
        assert r["speedup_vs_ellpack"] == pytest.approx(
            r["gflops_bro_ell"] / r["gflops_ellpack"]
        )

    def test_fig5_derived_from_fig4(self):
        rows = E.fig5_eai(scale=0.01, h=64)
        assert len(rows) == 17
        for r in rows:
            assert r["eai_ratio"] == pytest.approx(
                r["eai_bro_ell"] / r["eai_ellpack"]
            )

    def test_fig6_first_six_only(self):
        rows = E.fig6_bandwidth(scale=0.01, devices=("k20",), h=64)
        assert len(rows) == 6

    def test_fig7_subset(self):
        rows = E.fig7_bro_coo(scale=0.01, devices=("k20",),
                              matrices=("epb3", "scircuit"))
        assert len(rows) == 2
        for r in rows:
            assert r["speedup_vs_coo"] > 0

    def test_fig8_k20_default(self):
        rows = E.fig8_bro_hyb(scale=0.01)
        assert len(rows) == 14
        assert all(r["device_key"] == "k20" for r in rows)

    def test_fig9_single_matrix(self):
        rows = E.fig9_reordering(scale=0.01, matrices=("epb3",), h=64)
        assert len(rows) == 1
        r = rows[0]
        for label in ("bar", "rcm", "amd"):
            assert f"gflops_{label}" in r
            assert f"{label}_gain_pct" in r


class TestScaleBench:
    def test_rows_carry_modeled_and_measured_columns(self):
        rows = E.scale_bench(scale=0.02, devices=(1, 2), repeats=1)
        assert [r["devices"] for r in rows] == [1, 2]
        single, sharded = rows
        assert single["backend"] == "single"
        assert sharded["backend"] == "process"
        for r in rows:
            assert r["speedup"] > 0 and 0 < r["efficiency"] <= 1.0 + 1e-9
            assert r["wallclock_ms"] > 0
            assert 0 < r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"]
        # modeled columns are deterministic, so they can gate --compare
        again = E.scale_bench(scale=0.02, devices=(1, 2), repeats=1)
        assert [r["speedup"] for r in again] == [r["speedup"] for r in rows]

    def test_measured_columns_never_gate_ci(self):
        from repro.telemetry.benchreport import metric_direction

        for col in ("wallclock_ms", "p50_ms", "p95_ms", "p99_ms",
                    "efficiency"):
            assert metric_direction(col) == 0  # informational only
        assert metric_direction("speedup") == 1
