"""Unit tests for the benchmark harness and reporting helpers."""


import numpy as np
import pytest

from repro.bench.harness import (
    BENCH_SCALE_ENV,
    ExperimentGrid,
    bench_scale,
    cached_format,
    cached_matrix,
    spmv_once,
)
from repro.bench.reporting import format_table, geomean, write_csv
from repro.errors import ValidationError


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(BENCH_SCALE_ENV, raising=False)
        assert bench_scale() == 0.06
        assert bench_scale(0.25) == 0.25

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BENCH_SCALE_ENV, "0.5")
        assert bench_scale() == 0.5
        assert bench_scale(0.25) == 0.5  # env wins over the default


class TestCaching:
    def test_matrix_cached(self):
        a = cached_matrix("epb3", 0.01)
        b = cached_matrix("epb3", 0.01)
        assert a is b

    def test_format_cached_and_correct(self):
        mat = cached_format("epb3", 0.01, "bro_ell", 64)
        coo = cached_matrix("epb3", 0.01)
        np.testing.assert_allclose(mat.to_dense(), coo.to_dense())
        assert cached_format("epb3", 0.01, "bro_ell", 64) is mat

    def test_different_scale_different_matrix(self):
        assert cached_matrix("epb3", 0.01) is not cached_matrix("epb3", 0.02)


class TestSpmvOnce:
    def test_result_fields(self):
        mat = cached_format("epb3", 0.01, "ellpack")
        res = spmv_once(mat, "k20")
        assert res.gflops > 0
        assert res.counters.dram_bytes > 0

    def test_accepts_device_spec(self):
        from repro.gpu.device import TESLA_C2070

        mat = cached_format("epb3", 0.01, "coo")
        assert spmv_once(mat, TESLA_C2070).device is TESLA_C2070


class TestExperimentGrid:
    def test_grid_rows_and_verification(self):
        grid = ExperimentGrid(
            matrices=["epb3"],
            formats=("ellpack", "bro_ell"),
            devices=("k20", "c2070"),
            scale=0.01,
            h=64,
        )
        rows = grid.run()
        assert len(rows) == 2  # one per device
        for row in rows:
            assert row["matrix"] == "epb3"
            assert row["gflops_ellpack"] > 0
            assert row["gflops_bro_ell"] > 0
            assert row["eai_bro_ell"] > row["eai_ellpack"]


class TestReporting:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)
        with pytest.raises(ValidationError):
            geomean([])
        with pytest.raises(ValidationError):
            geomean([1.0, -1.0])

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "0.12" in text  # default float format
        assert format_table([], ["a"], "empty").endswith("(no rows)")

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out" / "rows.csv"
        write_csv([{"a": 1, "b": "x", "ignored": 9}], str(path), ["a", "b"])
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,x"
