"""The typed public surface of the top-level ``repro`` package.

These tests pin the names exported from ``repro/__init__.py`` so the
public API cannot change silently: removing a re-export, renaming a
class or dropping a subpackage from ``__all__`` fails here first, and
adding a new public name forces an explicit update of EXPECTED_EXPORTS.
"""

import pytest

import repro

#: The complete expected value of ``repro.__all__``. Update deliberately.
EXPECTED_EXPORTS = {
    "__version__",
    "ReproError",
    # formats
    "SparseFormat",
    "COOMatrix",
    "CSRMatrix",
    "ELLPACKMatrix",
    "ELLPACKRMatrix",
    "SlicedELLPACKMatrix",
    "HYBMatrix",
    "convert",
    "from_dense",
    "from_scipy",
    "to_scipy",
    # the paper's contribution
    "BROELLMatrix",
    "BROCOOMatrix",
    "BROHYBMatrix",
    "CompressionReport",
    "index_compression_report",
    "space_savings",
    "compression_ratio",
    # simulated GPU
    "DeviceSpec",
    "DEVICES",
    "get_device",
    "run_spmv",
    "run_spmm",
    "prepare",
    "SpMVResult",
    "jit_available",
    # execution policy + multi-device sharding
    "ExecutionPolicy",
    "ShardedMatrix",
    "partition",
    "strong_scaling",
    "weak_scaling",
    # fault tolerance + chaos testing
    "ChaosPolicy",
    "run_chaos_campaign",
    # extension points
    "register_format",
    # reordering
    "bar_permutation",
    "rcm_permutation",
    "amd_permutation",
    "rowsort_permutation",
    "apply_reordering",
    # solvers
    "conjugate_gradient",
    "gmres",
    "SimulatedOperator",
    # integrity
    "seal",
    "verify_integrity",
    "validate_structure",
    "run_campaign",
    # pipeline + persistence
    "Session",
    "save_container",
    "load_container",
    # online autotuning
    "OnlineTuner",
    "RetuneConfig",
    # serving layer
    "SpMVRequest",
    "SpMVResponse",
    "ServerConfig",
    "SpMVServer",
    "ServeClient",
    "MatrixPool",
    "ServeError",
    "AdmissionError",
    # subpackages
    "registry",
    "bench",
    "bitstream",
    "core",
    "exec",
    "formats",
    "gpu",
    "integrity",
    "kernels",
    "matrices",
    "reorder",
    "serve",
    "solvers",
    "telemetry",
    "tuner",
}


class TestPublicSurface:
    def test_all_matches_expected_exactly(self):
        actual = set(repro.__all__)
        added = actual - EXPECTED_EXPORTS
        removed = EXPECTED_EXPORTS - actual
        assert not added and not removed, (
            f"public surface changed: added={sorted(added)}, "
            f"removed={sorted(removed)} — update tests/test_public_api.py "
            f"deliberately if this is intended"
        )

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_no_duplicates_in_all(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        for name in repro.__all__:
            if name != "__version__":
                assert name in namespace


class TestKeyExports:
    def test_execution_policy_is_frozen_dataclass(self):
        import dataclasses

        assert dataclasses.is_dataclass(repro.ExecutionPolicy)
        pol = repro.ExecutionPolicy(devices=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            pol.devices = 4

    def test_sharded_format_registered_at_import(self):
        # Importing repro must register the "sharded" container so plain
        # load_container() can read sharded .brx files.
        assert "sharded" in repro.registry.available_formats()

    def test_session_and_policy_compose(self):
        sess = repro.Session("k20", policy=repro.ExecutionPolicy(devices=2))
        assert sess.policy.devices == 2

    def test_prepare_and_register_format_are_canonical(self):
        from repro.kernels.plan import prepare as plan_prepare
        from repro.registry import register_format as registry_register

        assert repro.prepare is plan_prepare
        assert repro.register_format is registry_register

    def test_serve_types_are_frozen_dataclasses(self):
        import dataclasses

        for cls in (repro.SpMVRequest, repro.SpMVResponse, repro.ServerConfig):
            assert dataclasses.is_dataclass(cls)
        cfg = repro.ServerConfig(max_queue=8)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.max_queue = 16

    def test_admission_error_is_typed_serve_error(self):
        assert issubclass(repro.AdmissionError, repro.ServeError)
        assert issubclass(repro.ServeError, repro.ReproError)

    def test_session_run_is_the_entrypoint_with_shims(self):
        import warnings

        assert callable(repro.Session.run)
        # execute/execute_many survive as deprecated shims
        sess = repro.Session("k20")
        sess.use(repro.convert(
            repro.matrices.generate("cant", scale=0.01), "bro_ell"
        ))
        import numpy as np

        x = np.ones(sess.matrix.shape[1])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            y_old = sess.execute(x).y
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert np.array_equal(y_old, sess.run(x).y)

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1
