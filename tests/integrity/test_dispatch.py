"""Graceful degradation in run_spmv: verify levels, CSR fallback, counters."""

import copy

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.errors import IntegrityError, ValidationError
from repro.exec.policy import ExecutionPolicy
from repro.formats.csr import CSRMatrix
from repro.integrity import COUNTERS, seal
from repro.kernels.dispatch import run_spmv
from tests.conftest import random_coo


@pytest.fixture
def fixture():
    coo = random_coo(64, 48, density=0.08, seed=21)
    mat = seal(BROELLMatrix.from_coo(coo, h=16))
    x = np.random.default_rng(21).standard_normal(coo.shape[1])
    return coo, mat, x, CSRMatrix.from_coo(coo)


def _corrupt(mat):
    bad = copy.deepcopy(mat)
    bad.stream.data[0] ^= np.uint32(1 << 13)
    return bad


class TestVerifyLevels:
    def test_default_path_unchanged(self, fixture):
        coo, mat, x, _ = fixture
        result = run_spmv(mat, x, "k20")
        assert not result.fault_detected
        assert not result.fallback_used
        assert result.integrity_counters is None
        np.testing.assert_allclose(result.y, coo.spmv(x))

    @pytest.mark.parametrize("level", [True, "structure", "checksum", "full"])
    def test_clean_matrix_passes_every_level(self, fixture, level):
        coo, mat, x, _ = fixture
        result = run_spmv(mat, x, "k20", policy=ExecutionPolicy(verify=level))
        assert not result.fault_detected
        assert result.integrity_counters is not None
        np.testing.assert_allclose(result.y, coo.spmv(x))

    def test_unknown_level_rejected(self, fixture):
        _, mat, x, _ = fixture
        with pytest.raises(ValidationError, match="verify"):
            run_spmv(mat, x, "k20", policy=ExecutionPolicy(verify="paranoid"))

    def test_corruption_raises_without_fallback(self, fixture):
        _, mat, x, _ = fixture
        with pytest.raises(IntegrityError):
            run_spmv(_corrupt(mat), x, "k20",
                     policy=ExecutionPolicy(verify=True))


class TestFallback:
    def test_fallback_recovers_reference_result(self, fixture):
        coo, mat, x, csr = fixture
        result = run_spmv(_corrupt(mat), x, "k20",
                          policy=ExecutionPolicy(verify=True, fallback=csr))
        assert result.fault_detected
        assert result.fallback_used
        assert "IntegrityError" in result.integrity_error
        np.testing.assert_allclose(result.y, coo.to_dense() @ x, rtol=1e-9)

    def test_fallback_not_used_when_clean(self, fixture):
        coo, mat, x, csr = fixture
        result = run_spmv(mat, x, "k20",
                          policy=ExecutionPolicy(verify=True, fallback=csr))
        assert not result.fallback_used
        np.testing.assert_allclose(result.y, coo.spmv(x))

    def test_fallback_without_verify_still_guards_kernel_errors(self, fixture):
        # verify=False + fallback: pre-checks are skipped but a decode
        # error inside the kernel still degrades gracefully.
        coo, mat, x, csr = fixture
        bad = copy.deepcopy(mat)
        bad._stream = type(bad.stream)(
            bad.stream.data[:-1].copy(),
            np.minimum(bad.stream.slice_ptr, bad.stream.data.shape[0] - 1),
            bad.stream.sym_len,
        )
        result = run_spmv(bad, x, "k20", policy=ExecutionPolicy(fallback=csr))
        assert result.fallback_used
        np.testing.assert_allclose(result.y, coo.to_dense() @ x, rtol=1e-9)

    def test_unsealed_matrix_verify_checksum_skips_crc(self, fixture):
        coo, _, x, csr = fixture
        unsealed = BROELLMatrix.from_coo(coo, h=16)
        result = run_spmv(unsealed, x, "k20",
                          policy=ExecutionPolicy(verify="checksum", fallback=csr))
        assert not result.fallback_used  # structure fine, no header to check


class TestCounters:
    def test_counters_accumulate(self, fixture):
        coo, mat, x, csr = fixture
        COUNTERS.reset()
        run_spmv(mat, x, "k20", policy=ExecutionPolicy(verify=True))
        result = run_spmv(_corrupt(mat), x, "k20",
                          policy=ExecutionPolicy(verify=True, fallback=csr))
        snap = result.integrity_counters
        assert snap.verifications == 2
        assert snap.detections == 1
        assert snap.fallbacks == 1
        assert snap.raised == 0

    def test_raised_counter_without_fallback(self, fixture):
        _, mat, x, _ = fixture
        COUNTERS.reset()
        with pytest.raises(IntegrityError):
            run_spmv(_corrupt(mat), x, "k20",
                     policy=ExecutionPolicy(verify=True))
        snap = COUNTERS.snapshot()
        assert snap.detections == 1
        assert snap.raised == 1
        assert snap.fallbacks == 0
