"""CRC32 integrity headers: seal, verify, mismatch reporting."""

import copy

import numpy as np
import pytest

from repro.core.bro_coo import BROCOOMatrix
from repro.core.bro_ell import BROELLMatrix
from repro.core.bro_hyb import BROHYBMatrix
from repro.errors import IntegrityError
from repro.formats.csr import CSRMatrix
from repro.formats.sliced_ellpack import SlicedELLPACKMatrix
from repro.integrity import (
    array_crc,
    compute_header,
    get_header,
    is_sealed,
    seal,
    verify_integrity,
)
from tests.conftest import random_coo


class TestArrayCRC:
    def test_deterministic(self):
        a = np.arange(100, dtype=np.uint32)
        assert array_crc(a) == array_crc(a.copy())

    def test_sensitive_to_content(self):
        a = np.arange(100, dtype=np.uint32)
        b = a.copy()
        b[50] ^= 1
        assert array_crc(a) != array_crc(b)

    def test_sensitive_to_dtype_and_shape(self):
        a = np.zeros(8, dtype=np.uint32)
        assert array_crc(a) != array_crc(a.astype(np.uint64))
        assert array_crc(a) != array_crc(a.reshape(2, 4))
        # A truncated array must not collide with its original even though
        # its raw bytes are a prefix of the original's.
        assert array_crc(a) != array_crc(a[:4])


class TestSealVerify:
    @pytest.mark.parametrize("fmt_cls,kwargs", [
        (BROELLMatrix, {"h": 16}),
        (BROCOOMatrix, {"interval_size": 64}),
        (BROHYBMatrix, {"h": 16, "interval_size": 64}),
        (CSRMatrix, {}),
    ])
    def test_pristine_matrix_verifies(self, fmt_cls, kwargs):
        coo = random_coo(64, 48, density=0.08, seed=5)
        mat = seal(fmt_cls.from_coo(coo, **kwargs))
        assert is_sealed(mat)
        verify_integrity(mat)  # must not raise

    def test_unsealed_matrix_rejected(self):
        coo = random_coo(32, 32, density=0.1, seed=6)
        mat = BROELLMatrix.from_coo(coo, h=8)
        assert not is_sealed(mat)
        with pytest.raises(IntegrityError, match="no integrity header"):
            verify_integrity(mat)

    def test_stream_corruption_names_field(self):
        coo = random_coo(64, 48, density=0.08, seed=7)
        mat = seal(BROELLMatrix.from_coo(coo, h=16))
        bad = copy.deepcopy(mat)
        bad.stream.data[0] ^= np.uint32(1)
        with pytest.raises(IntegrityError) as exc_info:
            verify_integrity(bad)
        assert "stream" in exc_info.value.fields

    def test_value_corruption_names_field(self):
        coo = random_coo(64, 48, density=0.08, seed=8)
        mat = seal(BROCOOMatrix.from_coo(coo, interval_size=64))
        bad = copy.deepcopy(mat)
        bad.vals[0] += 1.0
        with pytest.raises(IntegrityError) as exc_info:
            verify_integrity(bad)
        assert "vals" in exc_info.value.fields

    def test_hyb_part_corruption_names_prefixed_field(self):
        coo = random_coo(96, 64, density=0.08, seed=9)
        mat = seal(BROHYBMatrix.from_coo(coo, h=16, interval_size=64))
        bad = copy.deepcopy(mat)
        bad.ell.stream.data[0] ^= np.uint32(1 << 7)
        with pytest.raises(IntegrityError) as exc_info:
            verify_integrity(bad)
        assert any(f.startswith("ell.") for f in exc_info.value.fields)

    def test_metadata_corruption_detected(self):
        coo = random_coo(64, 48, density=0.08, seed=10)
        mat = seal(BROCOOMatrix.from_coo(coo, interval_size=64))
        bad = copy.deepcopy(mat)
        bad._nnz += 1
        with pytest.raises(IntegrityError) as exc_info:
            verify_integrity(bad)
        assert "metadata" in exc_info.value.fields

    def test_deepcopy_inherits_header(self):
        coo = random_coo(32, 32, density=0.1, seed=11)
        mat = seal(BROELLMatrix.from_coo(coo, h=8))
        dup = copy.deepcopy(mat)
        assert is_sealed(dup)
        verify_integrity(dup)

    def test_original_untouched_by_copy_corruption(self):
        coo = random_coo(32, 32, density=0.1, seed=12)
        mat = seal(BROELLMatrix.from_coo(coo, h=8))
        bad = copy.deepcopy(mat)
        bad.stream.data[:] ^= np.uint32(0xFF)
        verify_integrity(mat)  # pristine original still verifies

    def test_generic_extractor_covers_unregistered_formats(self):
        coo = random_coo(48, 40, density=0.1, seed=13)
        mat = seal(SlicedELLPACKMatrix.from_coo(coo, h=16))
        verify_integrity(mat)
        header = get_header(mat)
        assert any(name.startswith("coo.") for name in header.field_crcs)

    def test_compute_header_does_not_attach(self):
        coo = random_coo(32, 32, density=0.1, seed=14)
        mat = BROELLMatrix.from_coo(coo, h=8)
        header = compute_header(mat)
        assert not is_sealed(mat)
        header.verify(mat)  # standalone header still verifies
