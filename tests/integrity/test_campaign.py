"""Fault-injection campaign: the PR's acceptance criterion lives here.

A seeded campaign of >= 500 injected faults across BRO-ELL, BRO-COO and
BRO-HYB must report zero silent corruptions: every fault is either
detected (typed error / fallback) or provably benign.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.integrity import (
    DEFAULT_FORMATS,
    build_campaign_matrix,
    run_campaign,
    verify_integrity,
)


class TestBuildFixture:
    @pytest.mark.parametrize("fmt", DEFAULT_FORMATS)
    def test_fixture_is_sealed_and_faithful(self, fmt):
        mat, coo = build_campaign_matrix(fmt, seed=1)
        verify_integrity(mat)
        x = np.random.default_rng(1).standard_normal(coo.shape[1])
        np.testing.assert_allclose(mat.spmv(x), coo.to_dense() @ x, rtol=1e-9)

    def test_unknown_format_rejected(self):
        with pytest.raises(ReproError, match="does not support"):
            build_campaign_matrix("dia", seed=0)


class TestCampaign:
    def test_acceptance_500_faults_zero_silent(self):
        # ISSUE acceptance: >= 500 faults across all three BRO formats,
        # zero silent corruption. 510 divides evenly round-robin by 3.
        report = run_campaign(n_faults=510, seed=0)
        assert report.injected == 510
        assert report.clean, [
            (r.format_name, r.kind, r.target) for r in report.silent_records()
        ]
        assert report.silent == 0
        # Every fault is accounted for as detected or benign, and the
        # fallback actually served recovered results (not just raises).
        assert report.detected + report.benign == report.injected
        assert report.recovered > 0
        fmts = {r.format_name for r in report.records}
        assert fmts == set(DEFAULT_FORMATS)

    def test_campaign_deterministic(self):
        a = run_campaign(n_faults=30, seed=42)
        b = run_campaign(n_faults=30, seed=42)
        assert [(r.kind, r.target) for r in a.records] == [
            (r.kind, r.target) for r in b.records
        ]

    def test_rows_aggregate_to_totals(self):
        report = run_campaign(n_faults=60, seed=7)
        rows = report.rows()
        assert sum(r["injected"] for r in rows) == report.injected
        assert sum(r["detected"] for r in rows) == report.detected
        assert sum(r["silent"] for r in rows) == report.silent
        for row in rows:
            assert set(row) == {
                "format", "fault", "injected", "detected", "recovered",
                "benign", "silent",
            }

    def test_single_format_campaign(self):
        report = run_campaign(formats=("bro_coo",), n_faults=25, seed=3)
        assert report.injected == 25
        assert {r.format_name for r in report.records} == {"bro_coo"}
        assert report.clean
