"""Structural validators: self-consistency without a prior seal."""

import copy

import numpy as np
import pytest

from repro.core.bro_coo import BROCOOMatrix
from repro.core.bro_ell import BROELLMatrix
from repro.core.bro_hyb import BROHYBMatrix
from repro.errors import IntegrityError, ReproError
from repro.formats.csr import CSRMatrix
from repro.integrity import structural_validators, validate_structure
from tests.conftest import random_coo


def _bro_ell(seed=1):
    return BROELLMatrix.from_coo(random_coo(64, 48, density=0.08, seed=seed), h=16)


def _bro_coo(seed=1):
    return BROCOOMatrix.from_coo(
        random_coo(64, 48, density=0.08, seed=seed), interval_size=64
    )


class TestFastPass:
    def test_pristine_formats_pass(self):
        coo = random_coo(96, 64, density=0.08, seed=2)
        for mat in (
            coo,
            CSRMatrix.from_coo(coo),
            BROELLMatrix.from_coo(coo, h=16),
            BROCOOMatrix.from_coo(coo, interval_size=64),
            BROHYBMatrix.from_coo(coo, h=16, interval_size=64),
        ):
            validate_structure(mat, deep=True)

    def test_registry_lists_validators(self):
        names = structural_validators()
        for fmt in ("bro_ell", "bro_coo", "bro_hyb", "csr", "coo"):
            assert fmt in names

    def test_ell_width_out_of_range(self):
        bad = copy.deepcopy(_bro_ell())
        bad._bit_allocs[0][0] = 0
        with pytest.raises(IntegrityError, match="bit_alloc"):
            validate_structure(bad)

    def test_ell_stream_length_mismatch(self):
        bad = copy.deepcopy(_bro_ell())
        # Widening a column makes the stored stream too short for the widths.
        ba = bad._bit_allocs[0]
        ba[0] = min(32, int(ba[0]) + 8)
        with pytest.raises(IntegrityError, match="stream"):
            validate_structure(bad)

    def test_ell_inflated_num_col(self):
        bad = copy.deepcopy(_bro_ell())
        bad._num_col[0] += 1
        with pytest.raises(IntegrityError, match="num_col"):
            validate_structure(bad)

    def test_ell_row_lengths_exceed_width(self):
        bad = copy.deepcopy(_bro_ell())
        bad._row_lengths[0] = int(bad.num_col[0]) + 3
        with pytest.raises(IntegrityError, match="row_lengths"):
            validate_structure(bad)

    def test_coo_col_out_of_range(self):
        bad = copy.deepcopy(_bro_coo())
        bad._col_idx[0] = bad.shape[1] + 10
        with pytest.raises(IntegrityError, match="col_idx"):
            validate_structure(bad)

    def test_coo_nnz_beyond_padding(self):
        bad = copy.deepcopy(_bro_coo())
        bad._nnz = bad.padded_nnz + 1
        with pytest.raises(IntegrityError, match="nnz"):
            validate_structure(bad)

    def test_csr_indptr_corruption(self):
        coo = random_coo(32, 32, density=0.1, seed=3)
        bad = CSRMatrix.from_coo(coo)
        bad._indptr[1] = bad._indptr[2] + 5
        with pytest.raises(IntegrityError, match="indptr"):
            validate_structure(bad)


class TestDeepPass:
    def test_deep_catches_garbage_stream(self):
        # Saturating the packed stream decodes to huge deltas: the running
        # column index leaves [0, n) and the deep pass must notice.
        bad = copy.deepcopy(_bro_ell())
        bad.stream.data[:] = np.uint32(0xFFFFFFFF)
        with pytest.raises(ReproError):
            validate_structure(bad, deep=True)

    def test_deep_catches_nonfinite_csr_values(self):
        coo = random_coo(32, 32, density=0.1, seed=4)
        bad = CSRMatrix.from_coo(coo)
        bad.vals[0] = np.inf
        validate_structure(bad)  # fast pass does not look at values
        with pytest.raises(IntegrityError, match="vals"):
            validate_structure(bad, deep=True)

    def test_formats_without_validator_pass_trivially(self):
        from repro.formats.ellpack import ELLPACKMatrix

        coo = random_coo(24, 24, density=0.1, seed=5)
        validate_structure(ELLPACKMatrix.from_coo(coo), deep=True)
