"""Fault injectors: determinism, isolation of the original, archive faults."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.integrity import (
    ARCHIVE_FAULT_KINDS,
    build_campaign_matrix,
    corrupt_archive,
    fault_kinds,
    inject_fault,
    verify_integrity,
)
from repro.matrices.cache import save_matrix
from tests.conftest import random_coo


@pytest.fixture(params=["bro_ell", "bro_coo", "bro_hyb"])
def sealed(request):
    mat, _ = build_campaign_matrix(request.param, seed=3)
    return mat


class TestInjectors:
    def test_original_never_touched(self, sealed):
        rng = np.random.default_rng(0)
        for _ in range(40):
            inject_fault(sealed, rng)
        verify_integrity(sealed)  # pristine original still verifies

    def test_corrupted_copy_fails_verification(self, sealed):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(20):
            injected = inject_fault(sealed, rng)
            if injected.matrix is None:
                hits += 1  # rejected at construction counts as detected
                continue
            try:
                verify_integrity(injected.matrix)
            except Exception:
                hits += 1
        # Checksums over every stored field must flag (nearly) every fault;
        # the only escape is an injector whose mutation round-trips to the
        # identical bytes, which these injectors never produce.
        assert hits == 20

    def test_deterministic_given_seed(self, sealed):
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        seq_a = [inject_fault(sealed, rng_a).spec for _ in range(10)]
        seq_b = [inject_fault(sealed, rng_b).spec for _ in range(10)]
        assert seq_a == seq_b

    def test_kind_restriction_honoured(self, sealed):
        rng = np.random.default_rng(2)
        injected = inject_fault(sealed, rng, kind="value_nan")
        assert injected.spec.kind == "value_nan"

    def test_value_nan_actually_poisons(self):
        mat, _ = build_campaign_matrix("bro_coo", seed=4)
        injected = inject_fault(mat, np.random.default_rng(3), kind="value_nan")
        assert not np.all(np.isfinite(injected.matrix.vals))

    def test_kind_registry(self):
        for fmt in ("bro_ell", "bro_coo", "bro_hyb"):
            kinds = fault_kinds(fmt)
            assert "stream_bit_flip" in kinds
            assert "metadata_corrupt" in kinds
        assert fault_kinds("csr") == ()

    def test_unknown_format_rejected(self):
        coo = random_coo(16, 16, density=0.2, seed=5)
        with pytest.raises(ValidationError, match="no fault injectors"):
            inject_fault(coo, np.random.default_rng(0))

    def test_unknown_kind_rejected(self, sealed):
        with pytest.raises(ValidationError, match="no applicable fault kind"):
            inject_fault(sealed, np.random.default_rng(0), kind="cosmic_ray")


class TestArchiveCorruption:
    @pytest.fixture
    def archive(self, tmp_path):
        path = tmp_path / "mat.npz"
        save_matrix(random_coo(32, 32, density=0.1, seed=6), path)
        return path

    @pytest.mark.parametrize("kind", ARCHIVE_FAULT_KINDS)
    def test_each_kind_alters_file(self, archive, kind):
        before = archive.read_bytes()
        spec = corrupt_archive(archive, np.random.default_rng(11), kind=kind)
        assert spec.kind == kind
        assert archive.read_bytes() != before

    def test_unknown_kind_rejected(self, archive):
        with pytest.raises(ValidationError, match="unknown archive fault kind"):
            corrupt_archive(archive, np.random.default_rng(0), kind="shred")

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.npz"
        empty.write_bytes(b"")
        with pytest.raises(ValidationError, match="empty"):
            corrupt_archive(empty, np.random.default_rng(0))
