"""BAR-specific tests: the Eqn. (1) objective and Algorithm 2 behaviour."""

import numpy as np
import pytest

from repro.core.bro_ell import BROELLMatrix
from repro.core.compression import index_compression_report
from repro.errors import ReorderingError
from repro.formats.coo import COOMatrix
from repro.matrices.generators import block_band
from repro.reorder.bar import bar_permutation, bar_reordering
from repro.reorder.objective import bar_objective, cluster_cost, delta_rows_for_bar
from repro.reorder.rcm import rcm_permutation


def mixed_width_matrix(seed=0, m=256):
    """Rows alternate between short tight-run rows and long scattered rows
    (different lengths AND different delta widths), so Algorithm 2's
    length-sorted seeding plus greedy placement can profitably separate
    them into homogeneous slices."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for i in range(m):
        if i % 2 == 0:  # short run of unit deltas near the diagonal
            base = min(i, m - 5)
            c = base + np.arange(4)
        else:  # long scattered row
            c = np.sort(rng.choice(m, size=12, replace=False))
        rows.extend([i] * len(c))
        cols.extend(c.tolist())
    return COOMatrix(rows, cols, np.ones(len(rows)), (m, m))


class TestObjective:
    def test_cluster_cost_components(self):
        # One cluster, 2 rows, widths max to [2, 3]; alpha=4 -> 2 loads.
        bits = np.array([[2, 1], [1, 3]])
        lines = np.array([[0, 1], [0, 2]])
        cost = cluster_cost(bits, lines, alpha=4, h=2, w=2)
        # h/w = 1; ceil(5/4)=2 stream loads; c = 1 + 2 distinct lines.
        assert cost == pytest.approx(2 + 3)

    def test_empty_cluster_free(self):
        cost = cluster_cost(np.zeros((0, 3)), np.zeros((0, 3)), alpha=32)
        assert cost == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ReorderingError):
            cluster_cost(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_objective_sums_clusters(self):
        bits = np.array([[1, 1], [2, 2], [3, 3], [4, 4]])
        lines = np.zeros((4, 2), dtype=np.int64)
        both = bar_objective([np.array([0, 1]), np.array([2, 3])], bits, lines,
                             alpha=8, h=2, w=2)
        assert both == pytest.approx(
            cluster_cost(bits[:2], lines[:2], 8, 2, 2)
            + cluster_cost(bits[2:], lines[2:], 8, 2, 2)
        )

    def test_grouping_similar_rows_is_cheaper(self):
        # Mixing a wide row into a narrow cluster raises every column max.
        bits = np.array([[1, 1], [1, 1], [8, 8], [8, 8]])
        lines = np.tile(np.array([[0, 1]]), (4, 1))
        good = bar_objective([np.array([0, 1]), np.array([2, 3])], bits, lines,
                             alpha=4, h=2, w=2)
        bad = bar_objective([np.array([0, 2]), np.array([1, 3])], bits, lines,
                            alpha=4, h=2, w=2)
        assert good < bad


class TestAlgorithm2:
    def test_equal_cluster_sizes(self):
        coo = mixed_width_matrix(m=256)
        result = bar_reordering(coo, h=32)
        assert result.v == 8
        np.testing.assert_array_equal(result.cluster_sizes, np.full(8, 32))

    def test_ragged_final_cluster(self):
        coo = mixed_width_matrix(m=250)
        result = bar_reordering(coo, h=32)
        assert result.cluster_sizes.sum() == 250
        assert result.cluster_sizes[:-1].max() <= 32

    def test_lowers_objective_vs_identity(self):
        coo = mixed_width_matrix()
        bits, lines, _ = delta_rows_for_bar(coo)
        h = 32
        m = coo.shape[0]
        identity_clusters = [np.arange(i, min(i + h, m)) for i in range(0, m, h)]
        perm = bar_permutation(coo, h=h)
        bar_clusters = [perm[i : i + h] for i in range(0, m, h)]
        before = bar_objective(identity_clusters, bits, lines, h=h)
        after = bar_objective(bar_clusters, bits, lines, h=h)
        assert after < before

    def test_improves_compression(self):
        coo = mixed_width_matrix(seed=3)
        perm = bar_permutation(coo, h=32)
        eta0 = index_compression_report(BROELLMatrix.from_coo(coo, h=32), "o").eta
        eta1 = index_compression_report(
            BROELLMatrix.from_coo(coo.permute_rows(perm), h=32), "r"
        ).eta
        assert eta1 > eta0

    def test_bar_beats_rcm_on_compression(self):
        # The paper's headline reordering claim (Fig. 9 / Table 5).
        coo = block_band(2048, 30.0, 10.0, run=3, bandwidth=600, seed=7)
        h = 64
        def eta(p):
            return index_compression_report(
                BROELLMatrix.from_coo(coo.permute_rows(p), h=h), "x"
            ).eta
        assert eta(bar_permutation(coo, h=h)) >= eta(rcm_permutation(coo))

    def test_cache_weight_zero_ablation_runs(self):
        coo = mixed_width_matrix(seed=5)
        perm = bar_permutation(coo, h=32, cache_weight=0.0)
        assert np.array_equal(np.sort(perm), np.arange(coo.shape[0]))

    def test_bad_params(self):
        coo = mixed_width_matrix()
        with pytest.raises(ReorderingError):
            bar_permutation(coo, h=0)

    def test_small_matrix_single_cluster(self):
        coo = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (2, 2))
        perm = bar_permutation(coo, h=256)
        assert np.array_equal(np.sort(perm), [0, 1])
