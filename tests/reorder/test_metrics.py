"""Unit tests for ordering-quality metrics."""

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices.generators import banded_random
from repro.reorder import (
    apply_reordering,
    bar_permutation,
    matrix_bandwidth,
    ordering_metrics,
    profile,
    rcm_permutation,
)


class TestBandwidthAndProfile:
    def test_diagonal_matrix(self):
        coo = COOMatrix.from_dense(np.eye(5))
        assert matrix_bandwidth(coo) == 0
        assert profile(coo) == 0

    def test_known_bandwidth(self):
        coo = COOMatrix([0, 2], [3, 0], [1.0, 1.0], (4, 4))
        assert matrix_bandwidth(coo) == 3

    def test_profile_counts_envelope(self):
        # Row 2 reaches left to column 0: profile contribution 2.
        coo = COOMatrix([0, 1, 2], [0, 1, 0], np.ones(3), (3, 3))
        assert profile(coo) == 2

    def test_empty(self):
        coo = COOMatrix([], [], [], (3, 3))
        assert matrix_bandwidth(coo) == 0
        assert profile(coo) == 0


class TestOrderingMetrics:
    def test_rcm_improves_bandwidth_bar_improves_eta(self):
        """Each ordering wins on its own objective — the Fig. 9 story."""
        band = banded_random(400, 6.0, 1.0, bandwidth=8, seed=1)
        rng = np.random.default_rng(2)
        shuffle = rng.permutation(400)
        scrambled = COOMatrix(
            shuffle[band.row_idx], shuffle[band.col_idx], band.vals, band.shape
        )
        base = ordering_metrics(scrambled, h=64)
        # RCM permutes rows only in our pipeline; to exercise its bandwidth
        # objective, apply it to rows (columns fixed): bandwidth shrinks
        # only partially, but the BAR comparison below is row-based too.
        rcm = ordering_metrics(
            apply_reordering(scrambled, rcm_permutation(scrambled)), h=64
        )
        bar = ordering_metrics(
            apply_reordering(scrambled, bar_permutation(scrambled, h=64)), h=64
        )
        assert bar.eta >= rcm.eta - 0.01  # BAR at least matches RCM on eta
        assert base.eta <= bar.eta + 1e-9  # and improves on the baseline

    def test_mean_delta_bits_tracks_structure(self):
        tight = banded_random(200, 5.0, 1.0, bandwidth=6, seed=3)
        loose = banded_random(200, 5.0, 1.0, bandwidth=90, seed=3)
        assert (
            ordering_metrics(tight, h=32).mean_delta_bits
            < ordering_metrics(loose, h=32).mean_delta_bits
        )

    def test_empty_matrix(self):
        metrics = ordering_metrics(COOMatrix([], [], [], (4, 4)))
        assert metrics.eta == 0.0
        assert metrics.mean_delta_bits == 0.0
