"""Correctness of all reordering algorithms: valid permutations, SpMV
equivalence, and the structural properties each ordering promises."""

import numpy as np
import pytest

from repro.errors import ReorderingError
from repro.formats.coo import COOMatrix
from repro.matrices.generators import banded_random
from repro.reorder import (
    amd_permutation,
    apply_reordering,
    bar_permutation,
    identity_permutation,
    invert_permutation,
    rcm_permutation,
    rowsort_permutation,
)
from tests.conftest import random_coo

ALL_REORDERINGS = [
    ("bar", lambda c: bar_permutation(c, h=8)),
    ("rcm", rcm_permutation),
    ("amd", amd_permutation),
    ("rowsort", rowsort_permutation),
]


class TestPermutationValidity:
    @pytest.mark.parametrize("name,fn", ALL_REORDERINGS)
    def test_valid_permutation(self, name, fn):
        coo = random_coo(64, 64, density=0.06, seed=1)
        perm = fn(coo)
        assert np.array_equal(np.sort(perm), np.arange(64))

    @pytest.mark.parametrize("name,fn", ALL_REORDERINGS)
    def test_spmv_equivalence(self, name, fn):
        coo = random_coo(80, 80, density=0.05, seed=2)
        x = np.random.default_rng(3).standard_normal(80)
        perm = fn(coo)
        reordered = apply_reordering(coo, perm)
        np.testing.assert_allclose(reordered.spmv(x), coo.spmv(x)[perm], rtol=1e-12)

    @pytest.mark.parametrize("name,fn", ALL_REORDERINGS)
    def test_deterministic(self, name, fn):
        coo = random_coo(50, 50, density=0.08, seed=4)
        np.testing.assert_array_equal(fn(coo), fn(coo))

    def test_disconnected_graph_handled(self):
        # Two disjoint blocks.
        coo = COOMatrix([0, 1, 4, 5], [1, 0, 5, 4], np.ones(4), (8, 8))
        for name, fn in ALL_REORDERINGS:
            perm = fn(coo)
            assert np.array_equal(np.sort(perm), np.arange(8)), name


class TestBaseHelpers:
    def test_identity(self):
        np.testing.assert_array_equal(identity_permutation(4), [0, 1, 2, 3])

    def test_invert(self):
        perm = np.array([2, 0, 3, 1])
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], [0, 1, 2, 3])

    def test_apply_rejects_bad_perm(self, paper_matrix):
        with pytest.raises(ReorderingError):
            apply_reordering(paper_matrix, np.array([0, 0, 1, 2]))


class TestRCMProperties:
    def test_reduces_bandwidth_of_shuffled_band(self):
        # Take a banded matrix, shuffle its rows+cols, RCM should restore
        # a narrow profile.
        band = banded_random(200, 5.0, 1.0, bandwidth=6, seed=5)
        rng = np.random.default_rng(6)
        shuffle = rng.permutation(200)
        scrambled = COOMatrix(
            shuffle[band.row_idx], shuffle[band.col_idx], band.vals, band.shape
        )
        perm = rcm_permutation(scrambled)
        inv = invert_permutation(perm)
        new_span = np.abs(
            inv[scrambled.row_idx].astype(np.int64)
            - inv[scrambled.col_idx].astype(np.int64)
        )
        old_span = np.abs(
            scrambled.row_idx.astype(np.int64) - scrambled.col_idx.astype(np.int64)
        )
        assert new_span.mean() < old_span.mean() / 3

    def test_rejects_rectangular(self):
        coo = COOMatrix([0], [1], [1.0], (2, 3))
        with pytest.raises(ReorderingError, match="square"):
            rcm_permutation(coo)


class TestRowSort:
    def test_descending_lengths(self, paper_matrix):
        perm = rowsort_permutation(paper_matrix)
        lengths = paper_matrix.row_lengths()[perm]
        assert (np.diff(lengths) <= 0).all()

    def test_ascending(self, paper_matrix):
        perm = rowsort_permutation(paper_matrix, descending=False)
        lengths = paper_matrix.row_lengths()[perm]
        assert (np.diff(lengths) >= 0).all()


class TestAMDProperties:
    def test_isolated_vertices_first_ish(self):
        # A star graph: the hub has max degree and should be eliminated last.
        m = 20
        rows = np.concatenate([np.zeros(m - 1), np.arange(1, m)])
        cols = np.concatenate([np.arange(1, m), np.zeros(m - 1)])
        coo = COOMatrix(rows, cols, np.ones(rows.size), (m, m))
        perm = amd_permutation(coo)
        assert perm[-1] == 0  # hub eliminated last
