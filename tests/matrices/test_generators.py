"""Unit tests for the structural matrix generators."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.matrices.generators import (
    banded_random,
    block_band,
    dense_rows,
    power_law,
    random_uniform,
    row_lengths_lognormal,
    row_lengths_normal,
    row_lengths_zipf,
    stencil,
)


class TestRowLengthDistributions:
    def test_normal_mean(self):
        rng = np.random.default_rng(0)
        lengths = row_lengths_normal(20000, 30.0, 5.0, 100, rng)
        assert abs(lengths.mean() - 30.0) < 0.5
        assert lengths.min() >= 1
        assert lengths.max() <= 100

    def test_lognormal_skew(self):
        rng = np.random.default_rng(1)
        lengths = row_lengths_lognormal(20000, 20.0, 25.0, 1000, rng)
        assert abs(lengths.mean() - 20.0) < 2.0
        # Right-skewed: median below mean.
        assert np.median(lengths) < lengths.mean()

    def test_lognormal_rejects_bad_mu(self):
        with pytest.raises(ValidationError):
            row_lengths_lognormal(10, 0.0, 1.0, 10, np.random.default_rng(0))

    def test_zipf_heavy_tail(self):
        rng = np.random.default_rng(2)
        lengths = row_lengths_zipf(50000, 5.0, 10000, rng, alpha=1.8)
        assert lengths.max() > 20 * lengths.mean()  # heavy tail
        assert lengths.min() >= 1


class TestStencil:
    def test_exact_pattern(self):
        coo = stencil(100, [-10, -1, 1, 10])
        lengths = coo.row_lengths()
        # Interior rows have exactly 4 entries.
        assert (lengths[10:90] == 4).all()
        # Row 50 holds exactly the stencil columns.
        mask = coo.row_idx == 50
        np.testing.assert_array_equal(coo.col_idx[mask], [40, 49, 51, 60])

    def test_boundary_clipping(self):
        coo = stencil(100, [-10, -1, 1, 10])
        assert coo.row_lengths()[0] == 2  # only +1 and +10 fit

    def test_deterministic(self):
        a = stencil(64, [-1, 1], seed=3)
        b = stencil(64, [-1, 1], seed=3)
        np.testing.assert_array_equal(a.vals, b.vals)

    def test_empty_offsets_rejected(self):
        with pytest.raises(ValidationError):
            stencil(10, [])


class TestBandedRandom:
    def test_statistics(self):
        coo = banded_random(20000, 15.0, 4.0, bandwidth=100, seed=4)
        lengths = coo.row_lengths()
        assert abs(lengths.mean() - 15.0) < 0.5
        assert abs(lengths.std() - 4.0) < 0.5

    def test_band_respected(self):
        coo = banded_random(5000, 10.0, 2.0, bandwidth=50, seed=5)
        span = np.abs(coo.col_idx.astype(np.int64) - coo.row_idx.astype(np.int64))
        assert span.max() <= 101  # window of half-width 50 (+ clipping slack)

    def test_distinct_columns_per_row(self):
        coo = banded_random(2000, 12.0, 3.0, bandwidth=40, seed=6)
        # COOMatrix sums duplicates; distinct sampling means nnz == raw count.
        lengths = coo.row_lengths()
        assert lengths.sum() == coo.nnz

    def test_skewed_variant(self):
        coo = banded_random(20000, 10.0, 12.0, bandwidth=200, seed=7, skewed=True)
        lengths = coo.row_lengths()
        assert np.median(lengths) < lengths.mean()


class TestBlockBand:
    def test_runs_of_unit_deltas(self):
        coo = block_band(4096, 30.0, 6.0, run=3, bandwidth=200, seed=8)
        # At least ~60% of within-row deltas must be exactly 1 (runs).
        from repro.core.delta import delta_encode_columns
        from repro.formats.ellpack import ellpack_arrays_from_coo

        col_idx, _v, stored = ellpack_arrays_from_coo(coo)
        valid = np.arange(col_idx.shape[1])[None, :] < stored[:, None]
        deltas = delta_encode_columns(col_idx, valid)
        unit_fraction = (deltas[valid] == 1).mean()
        assert unit_fraction > 0.55

    def test_mean_row_length(self):
        coo = block_band(8192, 45.0, 10.0, run=3, bandwidth=400, seed=9)
        assert abs(coo.row_lengths().mean() - 45.0) < 5.0


class TestPowerLaw:
    def test_heavy_tailed_rows(self):
        coo = power_law(30000, 8.0, seed=10, alpha=1.7)
        lengths = coo.row_lengths()
        # Heavy tail: sigma well above mu (duplicate-merging trims it a bit).
        assert lengths.std() > 2.5 * lengths.mean()
        assert lengths.max() > 15 * lengths.mean()

    def test_hub_columns_reused(self):
        coo = power_law(10000, 6.0, seed=11, locality=0.3, hub_fraction=0.01)
        counts = np.bincount(coo.col_idx, minlength=coo.shape[1])
        # Hubs: some columns are referenced far more than average.
        assert counts.max() > 20 * max(counts.mean(), 1e-9)


class TestDenseRows:
    def test_wide_shape(self):
        coo = dense_rows(64, 2000, 300.0, 400.0, seed=12)
        assert coo.shape == (64, 2000)
        assert coo.row_lengths().mean() > 100

    def test_random_uniform_full_width(self):
        coo = random_uniform(1000, 1000, 8.0, 2.0, seed=13)
        # Columns should span (almost) the full width.
        assert coo.col_idx.max() > 900
        assert coo.col_idx.min() < 100
