"""Unit tests for the Table 2 suite registry."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.matrices.analysis import analyze
from repro.matrices.suite import TABLE2, generate
from repro.matrices.suite import test_set_1 as set1_names
from repro.matrices.suite import test_set_2 as set2_names


class TestRegistry:
    def test_suite_size(self):
        # Table 2's thirty matrices plus the dense2 control matrix.
        assert len(TABLE2) == 31

    def test_set_sizes(self):
        assert len(set1_names()) == 17
        assert len(set2_names()) == 14

    def test_table2_statistics_recorded(self):
        # Spot-check published Table 2 rows.
        assert TABLE2["cage12"].nnz == 2_032_536
        assert TABLE2["pdb1HYS"].mu == 119.3
        assert TABLE2["qcd5_4"].sigma == 0.0
        assert TABLE2["rail4284"].rows == 4_300
        assert TABLE2["rail4284"].cols == 109_000
        assert TABLE2["webbase-1M"].rows == 1_000_000
        assert TABLE2["gupta2"].sigma == 356.0

    def test_unknown_matrix(self):
        with pytest.raises(ValidationError, match="unknown matrix"):
            generate("not_a_matrix")


class TestGeneration:
    @pytest.mark.parametrize("name", ["cage12", "shipsec1", "mc2depi", "scircuit"])
    def test_statistics_close_to_table2(self, name):
        spec = TABLE2[name]
        coo = generate(name, scale=0.1)
        stats = analyze(coo, name)
        assert abs(stats.mu - spec.mu) / spec.mu < 0.25

    def test_scale_changes_dimensions(self):
        small = generate("cage12", scale=0.05)
        big = generate("cage12", scale=0.1)
        assert big.shape[0] > small.shape[0]

    def test_deterministic_by_default(self):
        a = generate("epb3", scale=0.05)
        b = generate("epb3", scale=0.05)
        np.testing.assert_array_equal(a.col_idx, b.col_idx)
        np.testing.assert_array_equal(a.vals, b.vals)

    def test_seed_override_changes_matrix(self):
        a = generate("cage12", scale=0.05)
        b = generate("cage12", scale=0.05, seed=99)
        assert a.nnz != b.nnz or not np.array_equal(a.col_idx, b.col_idx)

    def test_bad_scale(self):
        with pytest.raises(ValidationError):
            generate("cage12", scale=0.0)
        with pytest.raises(ValidationError):
            generate("cage12", scale=1.5)

    def test_qcd_row_length_regular(self):
        coo = generate("qcd5_4", scale=0.1)
        lengths = coo.row_lengths()
        # QCD is near-uniform: 39 entries for interior sites.
        assert abs(lengths.mean() - 39.0) < 4.0
        assert np.median(lengths) == 39

    def test_rail4284_shape(self):
        coo = generate("rail4284", scale=0.1)
        m, n = coo.shape
        assert n > 10 * m  # short and wide

    def test_dense2_fully_dense(self):
        coo = generate("dense2", scale=0.05)
        m, n = coo.shape
        assert coo.nnz == m * n
        lengths = coo.row_lengths()
        assert int(lengths.min()) == int(lengths.max()) == n

    def test_set2_matrices_have_higher_spread(self):
        # gupta2's sigma/mu ratio must dwarf a Test Set 1 FEM matrix's.
        gupta = analyze(generate("gupta2", scale=0.05), "gupta2")
        ship = analyze(generate("shipsec1", scale=0.05), "shipsec1")
        assert gupta.sigma / gupta.mu > 3 * ship.sigma / ship.mu


class TestCompressibilityShape:
    def test_mc2depi_least_compressible_of_stencils(self):
        """Table 3's qualitative shape: mc2depi ~50%, shipsec1 ~93%."""
        from repro.core.bro_ell import BROELLMatrix
        from repro.core.compression import index_compression_report

        etas = {}
        for name in ("mc2depi", "shipsec1", "stomach"):
            coo = generate(name, scale=0.08)
            etas[name] = index_compression_report(
                BROELLMatrix.from_coo(coo, h=256), name
            ).eta
        assert etas["mc2depi"] < etas["stomach"] < etas["shipsec1"]
        assert etas["mc2depi"] < 0.6
        assert etas["shipsec1"] > 0.85
