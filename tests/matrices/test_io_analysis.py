"""Unit tests for MatrixMarket I/O and matrix analysis."""

import io

import numpy as np
import pytest

from repro.errors import MatrixMarketError
from repro.formats.coo import COOMatrix
from repro.matrices.analysis import analyze
from repro.matrices.io import read_matrix_market, write_matrix_market
from tests.conftest import PAPER_A


class TestWriteRead:
    def test_round_trip_stream(self, paper_matrix):
        buf = io.StringIO()
        write_matrix_market(paper_matrix, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        np.testing.assert_array_equal(back.to_dense(), PAPER_A)

    def test_round_trip_file(self, paper_matrix, tmp_path):
        path = tmp_path / "a.mtx"
        write_matrix_market(paper_matrix, path)
        back = read_matrix_market(path)
        np.testing.assert_array_equal(back.to_dense(), PAPER_A)

    def test_values_exact(self, tmp_path):
        coo = COOMatrix([0], [0], [1.0 / 3.0], (1, 1))
        path = tmp_path / "v.mtx"
        write_matrix_market(coo, path)
        back = read_matrix_market(path)
        assert back.vals[0] == 1.0 / 3.0  # repr round-trip


class TestReadVariants:
    def test_pattern_matrix(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        coo = read_matrix_market(io.StringIO(text))
        np.testing.assert_array_equal(coo.to_dense(), np.eye(2))

    def test_symmetric_expansion(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n1 1 5.0\n2 1 2.0\n3 3 1.0\n"
        )
        coo = read_matrix_market(io.StringIO(text))
        dense = coo.to_dense()
        assert dense[1, 0] == dense[0, 1] == 2.0
        assert coo.nnz == 4

    def test_comments_skipped(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n% another\n1 1 1\n1 1 3.5\n"
        )
        coo = read_matrix_market(io.StringIO(text))
        assert coo.vals[0] == 3.5

    def test_bad_header(self):
        with pytest.raises(MatrixMarketError, match="header"):
            read_matrix_market(io.StringIO("%%NotMM matrix x y z\n"))

    def test_unsupported_format(self):
        with pytest.raises(MatrixMarketError, match="coordinate"):
            read_matrix_market(
                io.StringIO("%%MatrixMarket matrix array real general\n")
            )

    def test_entry_count_mismatch(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
        with pytest.raises(MatrixMarketError, match="expected 3"):
            read_matrix_market(io.StringIO(text))

    def test_empty_file(self):
        with pytest.raises(MatrixMarketError, match="empty"):
            read_matrix_market(io.StringIO(""))


class TestAnalyze:
    def test_paper_example_stats(self, paper_matrix):
        stats = analyze(paper_matrix, "A")
        assert stats.rows == 4
        assert stats.cols == 5
        assert stats.nnz == 12
        assert stats.mu == pytest.approx(3.0)
        assert stats.max_row == 5
        assert stats.min_row == 2
        assert stats.mean_delta_bits > 0

    def test_delta_bits_reflect_structure(self):
        # A unit-band matrix has tiny deltas; a scattered one has large ones.
        band = COOMatrix(
            np.repeat(np.arange(100), 2),
            np.clip(np.repeat(np.arange(100), 2) + np.tile([0, 1], 100), 0, 99),
            np.ones(200),
            (100, 100),
        )
        rng = np.random.default_rng(0)
        scattered = COOMatrix(
            np.repeat(np.arange(100), 2),
            np.sort(rng.choice(10000, (100, 2)), axis=1).reshape(-1),
            np.ones(200),
            (100, 10000),
        )
        assert (
            analyze(band, "band").mean_delta_bits
            < analyze(scattered, "scattered").mean_delta_bits
        )

    def test_report_row_format(self, paper_matrix):
        line = analyze(paper_matrix, "A").row()
        assert "A" in line and "12" in line
