"""Unit tests for the on-disk matrix cache."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.matrices.cache import (
    default_cache_dir,
    generate_cached,
    load_matrix,
    save_matrix,
)
from tests.conftest import random_coo


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        coo = random_coo(60, 40, density=0.1, seed=1)
        path = tmp_path / "m.npz"
        save_matrix(coo, path)
        back = load_matrix(path)
        assert back.shape == coo.shape
        np.testing.assert_array_equal(back.row_idx, coo.row_idx)
        np.testing.assert_array_equal(back.col_idx, coo.col_idx)
        np.testing.assert_array_equal(back.vals, coo.vals)

    def test_creates_parent_dirs(self, tmp_path):
        coo = random_coo(10, 10, seed=2)
        path = tmp_path / "a" / "b" / "m.npz"
        save_matrix(coo, path)
        assert path.exists()

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValidationError, match="not a repro matrix"):
            load_matrix(path)


class TestGenerateCached:
    def test_first_call_writes_second_reads(self, tmp_path):
        a = generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        b = generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        np.testing.assert_array_equal(a.col_idx, b.col_idx)

    def test_cache_key_includes_scale_and_seed(self, tmp_path):
        generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        generate_cached("epb3", scale=0.02, cache_dir=tmp_path)
        generate_cached("epb3", scale=0.01, seed=7, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 3

    def test_cached_equals_generated(self, tmp_path):
        from repro.matrices.suite import generate

        cached = generate_cached("venkat01", scale=0.01, cache_dir=tmp_path)
        fresh = generate("venkat01", scale=0.01)
        np.testing.assert_array_equal(cached.to_dense(), fresh.to_dense())

    def test_env_var_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MATRIX_CACHE", str(tmp_path / "cache"))
        assert default_cache_dir() == tmp_path / "cache"
