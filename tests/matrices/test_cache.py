"""Unit tests for the on-disk matrix cache."""

import os

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.matrices.cache import (
    default_cache_dir,
    generate_cached,
    load_matrix,
    save_matrix,
)
from tests.conftest import random_coo


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        coo = random_coo(60, 40, density=0.1, seed=1)
        path = tmp_path / "m.npz"
        save_matrix(coo, path)
        back = load_matrix(path)
        assert back.shape == coo.shape
        np.testing.assert_array_equal(back.row_idx, coo.row_idx)
        np.testing.assert_array_equal(back.col_idx, coo.col_idx)
        np.testing.assert_array_equal(back.vals, coo.vals)

    def test_creates_parent_dirs(self, tmp_path):
        coo = random_coo(10, 10, seed=2)
        path = tmp_path / "a" / "b" / "m.npz"
        save_matrix(coo, path)
        assert path.exists()

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValidationError, match="not a repro matrix"):
            load_matrix(path)


class TestGenerateCached:
    def test_first_call_writes_second_reads(self, tmp_path):
        a = generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        b = generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        np.testing.assert_array_equal(a.col_idx, b.col_idx)

    def test_cache_key_includes_scale_and_seed(self, tmp_path):
        generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        generate_cached("epb3", scale=0.02, cache_dir=tmp_path)
        generate_cached("epb3", scale=0.01, seed=7, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.npz"))) == 3

    def test_cached_equals_generated(self, tmp_path):
        from repro.matrices.suite import generate

        cached = generate_cached("venkat01", scale=0.01, cache_dir=tmp_path)
        fresh = generate("venkat01", scale=0.01)
        np.testing.assert_array_equal(cached.to_dense(), fresh.to_dense())

    def test_env_var_controls_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MATRIX_CACHE", str(tmp_path / "cache"))
        assert default_cache_dir() == tmp_path / "cache"


class TestAtomicWrites:
    def test_crash_mid_write_leaves_old_archive_intact(self, tmp_path, monkeypatch):
        old = random_coo(20, 20, density=0.1, seed=10)
        path = tmp_path / "m.npz"
        save_matrix(old, path)

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_matrix(random_coo(20, 20, density=0.1, seed=11), path)
        monkeypatch.undo()
        # The archive under the cache key is still the complete old version
        # and no staging temp file was left behind.
        back = load_matrix(path)
        np.testing.assert_array_equal(back.vals, old.vals)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stray_temp_file_is_ignored_by_load(self, tmp_path):
        coo = random_coo(16, 16, density=0.1, seed=12)
        path = tmp_path / "m.npz"
        save_matrix(coo, path)
        # A partial staging file from a crashed writer sits alongside.
        (tmp_path / "m.npz.abc123.tmp").write_bytes(b"PK\x03\x04 partial junk")
        back = load_matrix(path)
        assert back.shape == coo.shape


class TestCorruptionDetection:
    @pytest.fixture
    def archive(self, tmp_path):
        path = tmp_path / "m.npz"
        save_matrix(random_coo(48, 32, density=0.1, seed=13), path)
        return path

    def test_crc_catches_payload_tampering(self, archive, tmp_path):
        data = dict(np.load(archive))
        data["vals"][0] += 1.0  # tamper after the CRCs were computed
        np.savez_compressed(tmp_path / "evil.npz", **data)
        with pytest.raises(ValidationError, match="'vals' failed its CRC32"):
            load_matrix(tmp_path / "evil.npz")

    def test_truncated_file_rejected(self, archive):
        raw = archive.read_bytes()
        archive.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ValidationError):
            load_matrix(archive)

    def test_garbage_file_rejected(self, archive):
        archive.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValidationError, match="not a readable .npz"):
            load_matrix(archive)

    def test_out_of_range_indices_named(self, tmp_path):
        path = tmp_path / "m.npz"
        np.savez_compressed(
            path,
            row=np.array([0, 99], dtype=np.int64),
            col=np.array([0, 1], dtype=np.int64),
            vals=np.array([1.0, 2.0]),
            shape=np.array([4, 4], dtype=np.int64),
        )
        with pytest.raises(ValidationError, match="'row' holds indices outside"):
            load_matrix(path)

    def test_nonfinite_values_named(self, tmp_path):
        path = tmp_path / "m.npz"
        np.savez_compressed(
            path,
            row=np.array([0], dtype=np.int64),
            col=np.array([0], dtype=np.int64),
            vals=np.array([np.nan]),
            shape=np.array([2, 2], dtype=np.int64),
        )
        with pytest.raises(ValidationError, match="'vals' holds non-finite"):
            load_matrix(path)

    def test_wrong_dtype_named(self, tmp_path):
        path = tmp_path / "m.npz"
        np.savez_compressed(
            path,
            row=np.array([0.5]),  # float rows
            col=np.array([0], dtype=np.int64),
            vals=np.array([1.0]),
            shape=np.array([2, 2], dtype=np.int64),
        )
        with pytest.raises(ValidationError, match="'row' must be a 1-D integer"):
            load_matrix(path)

    def test_generate_cached_regenerates_over_corruption(self, tmp_path):
        a = generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.npz")
        path.write_bytes(b"corrupted beyond recognition")
        b = generate_cached("epb3", scale=0.01, cache_dir=tmp_path)
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())
        # The regenerated archive is valid again.
        load_matrix(path)
