"""Property-based tests over the format zoo.

Invariants:

* every format round-trips through COO losslessly;
* every format's reference SpMV agrees with the dense product;
* BRO compression is lossless for arbitrary sparsity patterns;
* row permutation commutes with SpMV.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bro_coo import BROCOOMatrix
from repro.core.bro_ell import BROELLMatrix
from repro.formats import convert
from repro.formats.coo import COOMatrix


@st.composite
def sparse_matrices(draw, max_dim=40, max_nnz=120):
    """Random COO matrices, duplicates allowed (summed by the class)."""
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, m - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return COOMatrix(rows, cols, vals, (m, n))


FORMATS = ["csr", "ellpack", "ellpack_r", "sliced_ellpack", "hyb",
           "bro_ell", "bro_coo", "bro_hyb"]


@given(sparse_matrices(), st.sampled_from(FORMATS))
@settings(max_examples=120, deadline=None)
def test_conversion_is_lossless(coo, fmt):
    kwargs = {"h": 8} if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb") else {}
    mat = convert(coo, fmt, **kwargs)
    np.testing.assert_allclose(mat.to_dense(), coo.to_dense(), rtol=1e-12)
    assert mat.nnz == coo.nnz
    assert mat.shape == coo.shape


@given(sparse_matrices(), st.sampled_from(FORMATS), st.integers(0, 2**31 - 1))
@settings(max_examples=120, deadline=None)
def test_spmv_matches_dense(coo, fmt, seed):
    kwargs = {"h": 8} if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb") else {}
    mat = convert(coo, fmt, **kwargs)
    x = np.random.default_rng(seed).standard_normal(coo.shape[1])
    np.testing.assert_allclose(
        mat.spmv(x), coo.to_dense() @ x, rtol=1e-9, atol=1e-9
    )


@given(sparse_matrices(), st.integers(1, 16), st.sampled_from([32, 64]))
@settings(max_examples=100, deadline=None)
def test_bro_ell_compression_lossless(coo, h, sym_len):
    bro = BROELLMatrix.from_coo(coo, h=h, sym_len=sym_len)
    np.testing.assert_allclose(bro.to_dense(), coo.to_dense(), rtol=1e-12)
    # bit_alloc widths are always within the symbol length.
    for widths in bro.bit_allocs:
        if widths.size:
            assert 1 <= widths.min() and widths.max() <= sym_len


@given(sparse_matrices(), st.integers(1, 4))
@settings(max_examples=80, deadline=None)
def test_bro_coo_compression_lossless(coo, lanes_pow):
    w = 2**lanes_pow  # warp sizes 2..16 for variety
    bro = BROCOOMatrix.from_coo(coo, interval_size=8 * w, warp_size=w)
    np.testing.assert_allclose(bro.to_dense(), coo.to_dense(), rtol=1e-12)
    # Decoded rows are sorted (entry order preserved).
    rows = bro.decode_rows()
    assert (np.diff(rows) >= 0).all()


@given(sparse_matrices(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_permutation_commutes_with_spmv(coo, seed):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(coo.shape[0])
    x = rng.standard_normal(coo.shape[1])
    np.testing.assert_allclose(
        coo.permute_rows(perm).spmv(x), coo.spmv(x)[perm], rtol=1e-9, atol=1e-12
    )


@given(sparse_matrices())
@settings(max_examples=80, deadline=None)
def test_device_bytes_are_consistent(coo):
    for fmt in ("coo", "ellpack", "bro_ell", "hyb"):
        kwargs = {"h": 8} if fmt == "bro_ell" else {}
        mat = convert(coo, fmt, **kwargs)
        db = mat.device_bytes()
        assert set(db) >= {"index", "values"}
        assert all(v >= 0 for v in db.values())
        assert mat.total_bytes == sum(db.values())
