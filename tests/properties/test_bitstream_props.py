"""Property-based tests: the bit-stream layer is the foundation every BRO
format rests on, so we check its invariants with Hypothesis.

Key properties:

* pack -> unpack is the identity for any widths/values that fit;
* the vectorized packer agrees bit-for-bit with the scalar BitWriter;
* the Algorithm-1 SliceDecoder agrees with the random-access unpacker and
  performs exactly ``row_stream_symbols`` coalesced loads.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitstream.packing import pack_slice, row_stream_symbols, unpack_slice
from repro.bitstream.reader import BitReader, SliceDecoder
from repro.bitstream.writer import BitWriter


@st.composite
def slices(draw, max_h=8, max_cols=12, sym_len=32):
    """A random (values, widths) pair where every value fits its width."""
    h = draw(st.integers(1, max_h))
    L = draw(st.integers(1, max_cols))
    widths = draw(
        st.lists(st.integers(1, sym_len), min_size=L, max_size=L).map(np.array)
    )
    cols = []
    for w in widths:
        hi = (1 << int(w)) - 1
        cols.append(
            draw(st.lists(st.integers(0, hi), min_size=h, max_size=h))
        )
    values = np.array(cols, dtype=np.uint64).T
    return values, widths


@given(slices())
@settings(max_examples=60, deadline=None)
def test_pack_unpack_identity_32(data):
    values, widths = data
    stream = pack_slice(values, widths, sym_len=32)
    out = unpack_slice(stream, widths, values.shape[0], sym_len=32)
    np.testing.assert_array_equal(out.astype(np.uint64), values)


@given(slices(sym_len=64))
@settings(max_examples=40, deadline=None)
def test_pack_unpack_identity_64(data):
    values, widths = data
    stream = pack_slice(values, widths, sym_len=64)
    out = unpack_slice(stream, widths, values.shape[0], sym_len=64)
    np.testing.assert_array_equal(out.astype(np.uint64), values)


@given(slices())
@settings(max_examples=60, deadline=None)
def test_vectorized_matches_scalar_writer(data):
    values, widths = data
    h = values.shape[0]
    stream = pack_slice(values, widths, sym_len=32).reshape(-1, h)
    for r in range(h):
        w = BitWriter(sym_len=32)
        for j, b in enumerate(widths):
            w.write(int(values[r, j]), int(b))
        np.testing.assert_array_equal(stream[:, r], w.finish())


@given(slices())
@settings(max_examples=60, deadline=None)
def test_slice_decoder_matches_unpack(data):
    values, widths = data
    h = values.shape[0]
    stream = pack_slice(values, widths, sym_len=32)
    dec = SliceDecoder(stream, h=h, sym_len=32)
    out = np.stack([dec.decode(int(b)) for b in widths], axis=1)
    np.testing.assert_array_equal(out.astype(np.uint64), values)
    assert dec.symbol_loads == row_stream_symbols(widths, 32)
    assert dec.remaining_symbols == 0


@given(
    st.lists(
        st.tuples(st.integers(1, 32), st.integers(0, 2**32 - 1)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_scalar_writer_reader_round_trip(pieces):
    w = BitWriter(sym_len=32)
    clipped = [(b, v & ((1 << b) - 1)) for b, v in pieces]
    for b, v in clipped:
        w.write(v, b)
    r = BitReader(w.finish(), sym_len=32)
    for b, v in clipped:
        assert r.read(b) == v
