"""Property tests across subsystem boundaries: I/O, reordering, advisor."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrices.io import read_matrix_market, write_matrix_market
from repro.reorder import (
    amd_permutation,
    bar_permutation,
    invert_permutation,
    rcm_permutation,
    rowsort_permutation,
)
from tests.properties.test_format_props import sparse_matrices


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_matrix_market_round_trip(coo):
    buf = io.StringIO()
    write_matrix_market(coo, buf)
    buf.seek(0)
    back = read_matrix_market(buf)
    assert back.shape == coo.shape
    assert back.nnz == coo.nnz
    np.testing.assert_array_equal(back.row_idx, coo.row_idx)
    np.testing.assert_array_equal(back.col_idx, coo.col_idx)
    np.testing.assert_array_equal(back.vals, coo.vals)  # repr round-trip


@given(sparse_matrices(max_dim=24, max_nnz=60), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_bar_always_valid_permutation(coo, h):
    perm = bar_permutation(coo, h=h)
    assert np.array_equal(np.sort(perm), np.arange(coo.shape[0]))
    inv = invert_permutation(perm)
    assert np.array_equal(perm[inv], np.arange(coo.shape[0]))


@given(sparse_matrices(max_dim=20, max_nnz=50))
@settings(max_examples=40, deadline=None)
def test_square_reorderings_always_valid(coo):
    if coo.shape[0] != coo.shape[1]:
        return  # RCM/AMD require square matrices
    for fn in (rcm_permutation, amd_permutation, rowsort_permutation):
        perm = fn(coo)
        assert np.array_equal(np.sort(perm), np.arange(coo.shape[0])), fn


@given(sparse_matrices(max_dim=30, max_nnz=80), st.integers(0, 3))
@settings(max_examples=40, deadline=None)
def test_advisor_deterministic_and_consistent(coo, seed):
    from repro.tuner.advisor import rank_formats

    if coo.nnz == 0:
        return
    a = rank_formats(coo, "k20", formats=("coo", "bro_ell"), seed=seed)
    b = rank_formats(coo, "k20", formats=("coo", "bro_ell"), seed=seed)
    assert [r.format_name for r in a] == [r.format_name for r in b]
    assert all(r.predicted_time > 0 for r in a)
    # Ranking is by time/nnz, ascending.
    times = [r.time_per_nnz for r in a]
    assert times == sorted(times)
