"""Property-based tests for the integrity layer.

The contract, stated as a property: for ANY random matrix and ANY random
injected fault, dispatch with verification + CSR fallback either raises a
typed :class:`~repro.errors.ReproError` or returns a ``y`` that matches
the dense reference — a wrong answer never reaches the caller silently.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bro_coo import BROCOOMatrix
from repro.core.bro_ell import BROELLMatrix
from repro.core.bro_hyb import BROHYBMatrix
from repro.exec.policy import ExecutionPolicy
from repro.errors import ReproError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.integrity import (
    array_crc,
    compute_header,
    inject_fault,
    seal,
    validate_structure,
    verify_integrity,
)
from repro.kernels.dispatch import run_spmv

_BUILDERS = {
    "bro_ell": lambda coo: BROELLMatrix.from_coo(coo, h=8),
    "bro_coo": lambda coo: BROCOOMatrix.from_coo(coo, interval_size=32),
    "bro_hyb": lambda coo: BROHYBMatrix.from_coo(coo, h=8, interval_size=32),
}


@st.composite
def sparse_coo(draw):
    m = draw(st.integers(4, 40))
    n = draw(st.integers(4, 40))
    nnz = draw(st.integers(1, min(60, m * n)))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    flat = rng.choice(m * n, size=nnz, replace=False)
    vals = rng.standard_normal(nnz)
    vals[vals == 0] = 1.0
    return COOMatrix(flat // n, flat % n, vals, (m, n))


@given(sparse_coo(), st.sampled_from(sorted(_BUILDERS)))
@settings(max_examples=40, deadline=None)
def test_pristine_container_always_verifies(coo, fmt):
    mat = seal(_BUILDERS[fmt](coo))
    verify_integrity(mat)
    validate_structure(mat, deep=True)


@given(sparse_coo(), st.sampled_from(sorted(_BUILDERS)), st.integers(0, 2**31))
@settings(max_examples=60, deadline=None)
def test_no_silent_corruption(coo, fmt, fault_seed):
    """The headline property: detected, or correct — never silently wrong."""
    mat = seal(_BUILDERS[fmt](coo))
    x = np.random.default_rng(fault_seed ^ 0xA5A5).standard_normal(coo.shape[1])
    y_ref = coo.to_dense() @ x
    fallback = CSRMatrix.from_coo(coo)

    injected = inject_fault(mat, np.random.default_rng(fault_seed))
    if injected.matrix is None:
        return  # rejected at construction: detected by definition
    try:
        result = run_spmv(
            injected.matrix, x, "k20",
            policy=ExecutionPolicy(verify=True, fallback=fallback),
        )
    except ReproError:
        return  # typed detection: the contract holds
    np.testing.assert_allclose(result.y, y_ref, rtol=1e-9, atol=1e-12)


@given(sparse_coo(), st.sampled_from(sorted(_BUILDERS)))
@settings(max_examples=30, deadline=None)
def test_header_is_a_pure_function_of_content(coo, fmt):
    mat = _BUILDERS[fmt](coo)
    a, b = compute_header(mat), compute_header(mat)
    assert a.field_crcs == b.field_crcs
    assert a.meta_crc == b.meta_crc


@given(
    st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=64),
    st.integers(0, 63),
    st.integers(0, 31),
)
@settings(max_examples=60, deadline=None)
def test_crc_detects_any_single_bit_flip(words, idx, bit):
    arr = np.asarray(words, dtype=np.uint32)
    bad = arr.copy()
    bad[idx % arr.shape[0]] ^= np.uint32(1) << np.uint32(bit)
    assert array_crc(arr) != array_crc(bad)
