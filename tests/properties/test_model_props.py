"""Property-based tests on the GPU model's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.counters import KernelCounters
from repro.gpu.device import DEVICES, TESLA_K20
from repro.gpu.launch import occupancy_factor
from repro.gpu.memory import contiguous_transactions, gather_transactions
from repro.gpu.timing import predict


counters_strategy = st.builds(
    KernelCounters,
    index_bytes=st.integers(0, 10**9),
    value_bytes=st.integers(0, 10**9),
    x_bytes=st.integers(0, 10**9),
    y_bytes=st.integers(0, 10**8),
    aux_bytes=st.integers(0, 10**7),
    useful_flops=st.integers(0, 10**9),
    issued_flops=st.integers(0, 10**9),
    decode_ops=st.integers(0, 10**9),
    launches=st.integers(1, 8),
    threads=st.integers(1, 10**7),
)


@given(counters_strategy)
@settings(max_examples=200, deadline=None)
def test_time_positive_and_composed_of_parts(c):
    for dev in DEVICES.values():
        t = predict(c, dev)
        assert t.time > 0
        assert t.time >= t.t_launch
        assert t.time >= max(t.t_mem, t.t_flop)
        assert 0.05 <= t.occupancy <= 1.0


@given(counters_strategy, st.integers(1, 10**9))
@settings(max_examples=200, deadline=None)
def test_more_bytes_never_faster(c, extra):
    slow = KernelCounters(**{**c.__dict__, "value_bytes": c.value_bytes + extra})
    assert predict(slow, TESLA_K20).time >= predict(c, TESLA_K20).time


@given(counters_strategy, st.integers(1, 10**9))
@settings(max_examples=200, deadline=None)
def test_more_decode_never_faster(c, extra):
    slow = KernelCounters(**{**c.__dict__, "decode_ops": c.decode_ops + extra})
    assert predict(slow, TESLA_K20).time >= predict(c, TESLA_K20).time


@given(counters_strategy)
@settings(max_examples=100, deadline=None)
def test_bandwidth_utilization_bounded(c):
    t = predict(c, TESLA_K20)
    # Achieved bandwidth can never exceed the measured bandwidth, hence
    # never the pin bandwidth either.
    assert t.achieved_bw_gbps <= TESLA_K20.measured_bw_gbps * 1.0 + 1e-9
    assert 0.0 <= t.bandwidth_utilization <= 1.0


@given(st.integers(0, 10**6), st.sampled_from([1, 2, 4, 8, 16]))
@settings(max_examples=200, deadline=None)
def test_contiguous_transactions_tight_bounds(n, elem_bytes):
    tx = contiguous_transactions(n, elem_bytes)
    lower = -(-n * elem_bytes // 128) if n else 0
    # Within one extra transaction per warp of the byte-exact lower bound.
    upper = lower + (-(-n // 32)) if n else 0
    assert lower <= tx <= max(upper, lower)


@given(
    st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
    st.sampled_from([4, 8]),
)
@settings(max_examples=200, deadline=None)
def test_gather_bounded_by_lanes_and_lines(indices, elem_bytes):
    idx = np.array(indices)
    tx = gather_transactions(idx, elem_bytes)
    n_warps = -(-idx.size // 32)
    per_line = 128 // elem_bytes
    distinct_lines = np.unique(idx // per_line).shape[0]
    assert tx >= max(n_warps, 0)
    assert tx <= min(idx.size, n_warps * 32)
    # One transaction per (warp, distinct line) is the exact upper bound,
    # and every distinct line must be fetched at least once.
    assert distinct_lines <= tx <= n_warps * distinct_lines


@given(st.integers(1, 10**8))
@settings(max_examples=100, deadline=None)
def test_occupancy_monotone(threads):
    f1 = occupancy_factor(threads, TESLA_K20)
    f2 = occupancy_factor(threads * 2, TESLA_K20)
    assert f2 >= f1
