"""Property-based tests on the extension features (VC, multi-row, advisor)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multirow import MultiRowBROELL, split_rows
from repro.core.value_compression import (
    compress_value_block,
    decompress_value_block,
)
from tests.properties.test_format_props import sparse_matrices


@st.composite
def value_blocks(draw, max_h=12, max_l=10, max_palette=20):
    """Random (h, L) value block drawn from a small palette."""
    h = draw(st.integers(1, max_h))
    L = draw(st.integers(1, max_l))
    n_vals = draw(st.integers(1, max_palette))
    palette = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=n_vals, max_size=n_vals, unique=True,
        )
    )
    picks = draw(
        st.lists(st.integers(0, n_vals - 1), min_size=h * L, max_size=h * L)
    )
    return np.array(palette)[np.array(picks)].reshape(h, L)


@given(value_blocks(), st.sampled_from([4, 8]))
@settings(max_examples=100, deadline=None)
def test_value_compression_lossless(block, max_bits):
    cs = compress_value_block(block, max_bits=max_bits)
    out = decompress_value_block(cs, block.shape[0], block.shape[1])
    np.testing.assert_array_equal(out, block)
    # Compression never inflates storage (fallback guarantees it).
    assert cs.nbytes <= block.nbytes


@given(value_blocks())
@settings(max_examples=60, deadline=None)
def test_value_compression_dictionary_minimal(block):
    cs = compress_value_block(block, max_bits=8)
    if cs.raw is None:
        # Every dictionary entry is actually used by some code.
        codes = decompress_value_block(cs, *block.shape)
        assert set(np.unique(codes)) == set(np.unique(block))


@given(sparse_matrices(), st.integers(1, 5))
@settings(max_examples=80, deadline=None)
def test_split_rows_preserves_product(coo, t):
    x = np.random.default_rng(0).standard_normal(coo.shape[1])
    out = split_rows(coo, t)
    assert out.shape == (coo.shape[0] * t, coo.shape[1])
    assert out.nnz == coo.nnz
    partial = out.spmv(x)
    np.testing.assert_allclose(
        partial.reshape(coo.shape[0], t).sum(axis=1),
        coo.spmv(x),
        rtol=1e-9,
        atol=1e-9,
    )


@given(sparse_matrices(), st.sampled_from([1, 2, 4]))
@settings(max_examples=60, deadline=None)
def test_multirow_matches_reference(coo, t):
    mt = MultiRowBROELL.from_coo(coo, threads_per_row=t, h=8)
    x = np.random.default_rng(1).standard_normal(coo.shape[1])
    np.testing.assert_allclose(
        mt.spmv(x), coo.to_dense() @ x, rtol=1e-9, atol=1e-9
    )
    np.testing.assert_allclose(mt.to_dense(), coo.to_dense(), rtol=1e-12)
