"""Unit tests for the scalar BitWriter/BitReader and the SliceDecoder."""

import numpy as np
import pytest

from repro.bitstream.packing import pack_slice, row_stream_symbols
from repro.bitstream.reader import BitReader, SliceDecoder
from repro.bitstream.writer import BitWriter
from repro.errors import CompressionError, DecompressionError, ValidationError


class TestBitWriter:
    def test_single_symbol(self):
        w = BitWriter(sym_len=32)
        w.write(0b1011, 4)
        syms = w.finish()
        assert syms.shape == (1,)
        assert int(syms[0]) == 0b1011 << 28

    def test_exact_symbol_no_padding(self):
        w = BitWriter(sym_len=32)
        w.write(0xDEADBEEF, 32)
        syms = w.finish()
        assert int(syms[0]) == 0xDEADBEEF

    def test_straddle(self):
        w = BitWriter(sym_len=32)
        w.write(0xFFFFF, 20)
        w.write(0xFFFFF, 20)
        syms = w.finish()
        assert syms.shape == (2,)
        assert int(syms[0]) == 0xFFFFFFFF
        assert int(syms[1]) == 0xFF << 24

    def test_bits_written(self):
        w = BitWriter()
        w.write(1, 5)
        w.write(1, 30)
        assert w.bits_written == 35

    def test_value_too_big(self):
        w = BitWriter()
        with pytest.raises(CompressionError):
            w.write(16, 4)

    def test_write_after_finish_rejected(self):
        w = BitWriter()
        w.write(1, 1)
        w.finish()
        with pytest.raises(CompressionError):
            w.write(1, 1)

    def test_bad_nbits(self):
        w = BitWriter(sym_len=32)
        with pytest.raises(ValidationError):
            w.write(0, 0)
        with pytest.raises(ValidationError):
            w.write(0, 33)


class TestBitReader:
    def test_round_trip(self):
        w = BitWriter()
        pieces = [(5, 3), (0, 1), (1023, 10), (0xFFFFFFFF, 32), (1, 2)]
        for v, b in pieces:
            w.write(v, b)
        r = BitReader(w.finish())
        for v, b in pieces:
            assert r.read(b) == v

    def test_overread_rejected(self):
        w = BitWriter()
        w.write(1, 1)
        r = BitReader(w.finish())
        r.read(32)  # padded symbol is fully readable
        with pytest.raises(DecompressionError):
            r.read(1)

    def test_bits_remaining(self):
        w = BitWriter()
        w.write(1, 1)
        r = BitReader(w.finish())
        assert r.bits_remaining == 32
        r.read(5)
        assert r.bits_remaining == 27


class TestSliceDecoder:
    def _decode_all(self, stream, widths, h, sym_len=32):
        dec = SliceDecoder(stream, h=h, sym_len=sym_len)
        cols = [dec.decode(int(b)) for b in widths]
        return np.stack(cols, axis=1), dec

    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_matches_pack_slice(self, sym_len):
        rng = np.random.default_rng(7)
        h, L = 5, 12
        widths = rng.integers(1, 17, size=L)
        values = np.stack(
            [rng.integers(0, 1 << int(w), size=h) for w in widths], axis=1
        )
        stream = pack_slice(values, widths, sym_len=sym_len)
        out, _ = self._decode_all(stream, widths, h, sym_len)
        np.testing.assert_array_equal(out, values)

    def test_symbol_loads_counted(self):
        widths = np.array([16, 16, 16, 16])  # 64 bits/row -> 2 symbols
        values = np.ones((3, 4), dtype=np.int64)
        stream = pack_slice(values, widths)
        _, dec = self._decode_all(stream, widths, h=3)
        assert dec.symbol_loads == 2
        assert dec.remaining_symbols == 0

    def test_exact_fit_no_overrun(self):
        # Row stream exactly one symbol: must not try to load a second.
        widths = np.array([32])
        values = np.array([[123456]], dtype=np.int64)
        stream = pack_slice(values, widths)
        assert row_stream_symbols(widths, 32) == 1
        out, dec = self._decode_all(stream, widths, h=1)
        assert out[0, 0] == 123456
        assert dec.symbol_loads == 1

    def test_stream_exhaustion_raises(self):
        dec = SliceDecoder(np.zeros(2, dtype=np.uint32), h=2)
        dec.decode(32)
        with pytest.raises(DecompressionError):
            dec.decode(1)

    def test_bad_geometry(self):
        with pytest.raises(ValidationError):
            SliceDecoder(np.zeros(3, dtype=np.uint32), h=2)
        with pytest.raises(ValidationError):
            SliceDecoder(np.zeros(2, dtype=np.uint32), h=0)

    def test_bad_width(self):
        dec = SliceDecoder(np.zeros(2, dtype=np.uint32), h=2)
        with pytest.raises(ValidationError):
            dec.decode(0)
        with pytest.raises(ValidationError):
            dec.decode(33)
