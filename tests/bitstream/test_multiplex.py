"""Unit tests for the multi-slice stream container."""

import numpy as np
import pytest

from repro.bitstream.multiplex import MultiplexedStream, concat_slices
from repro.errors import ValidationError


class TestConcatSlices:
    def test_basic(self):
        a = np.arange(4, dtype=np.uint32)
        b = np.arange(6, dtype=np.uint32)
        ms = concat_slices([a, b], sym_len=32)
        assert ms.num_slices == 2
        np.testing.assert_array_equal(ms.slice_view(0), a)
        np.testing.assert_array_equal(ms.slice_view(1), b)
        np.testing.assert_array_equal(ms.slice_ptr, [0, 4, 10])

    def test_empty_list(self):
        ms = concat_slices([], sym_len=32)
        assert ms.num_slices == 0
        assert ms.data.shape == (0,)

    def test_empty_slice_allowed(self):
        ms = concat_slices([np.zeros(0, dtype=np.uint32), np.ones(2, dtype=np.uint32)])
        assert ms.num_slices == 2
        assert ms.slice_view(0).shape == (0,)

    def test_nbytes(self):
        ms = concat_slices([np.zeros(3, dtype=np.uint32)])
        assert ms.nbytes == 12
        ms64 = concat_slices([np.zeros(3, dtype=np.uint64)], sym_len=64)
        assert ms64.nbytes == 24

    def test_iteration(self):
        parts = [np.full(i, i, dtype=np.uint32) for i in (1, 2, 3)]
        ms = concat_slices(parts)
        for got, want in zip(ms, parts):
            np.testing.assert_array_equal(got, want)


class TestValidation:
    def test_dtype_mismatch(self):
        with pytest.raises(ValidationError, match="dtype"):
            MultiplexedStream(
                data=np.zeros(2, dtype=np.uint64),
                slice_ptr=np.array([0, 2]),
                sym_len=32,
            )

    def test_bad_ptr_end(self):
        with pytest.raises(ValidationError):
            MultiplexedStream(
                data=np.zeros(2, dtype=np.uint32),
                slice_ptr=np.array([0, 3]),
                sym_len=32,
            )

    def test_decreasing_ptr(self):
        with pytest.raises(ValidationError, match="non-decreasing"):
            MultiplexedStream(
                data=np.zeros(2, dtype=np.uint32),
                slice_ptr=np.array([0, 3, 2]),
                sym_len=32,
            )

    def test_out_of_range_view(self):
        ms = concat_slices([np.zeros(1, dtype=np.uint32)])
        with pytest.raises(ValidationError):
            ms.slice_view(1)
