"""Unit tests for the vectorized slice packer/unpacker."""

import numpy as np
import pytest

from repro.bitstream.packing import (
    column_bit_offsets,
    pack_slice,
    row_stream_symbols,
    unpack_slice,
)
from repro.errors import CompressionError, ValidationError


class TestLayoutHelpers:
    def test_column_bit_offsets(self):
        np.testing.assert_array_equal(
            column_bit_offsets(np.array([3, 1, 4])), np.array([0, 3, 4])
        )

    def test_row_stream_symbols_padding(self):
        # 3+1+4 = 8 bits -> one 32-bit symbol with b_p = 24.
        assert row_stream_symbols(np.array([3, 1, 4]), 32) == 1
        assert row_stream_symbols(np.array([30, 3]), 32) == 2
        assert row_stream_symbols(np.array([], dtype=np.int64), 32) == 0

    def test_row_stream_symbols_exact_multiple(self):
        assert row_stream_symbols(np.array([16, 16]), 32) == 1


class TestPackSlice:
    def test_paper_figure1_style_example(self):
        # Two rows, widths [3, 2, 3], sym_len = 8 -> 1 symbol per row.
        values = np.array([[5, 2, 7], [1, 0, 3]])
        # sym_len=8 is not supported; use 32 and check bit positions.
        stream = pack_slice(values, np.array([3, 2, 3]), sym_len=32)
        assert stream.shape == (2,)  # 1 symbol * 2 rows
        # Row 0: 101 10 111 -> 0b10110111 in the top 8 bits.
        assert int(stream[0]) >> 24 == 0b10110111
        # Row 1: 001 00 011
        assert int(stream[1]) >> 24 == 0b00100011

    def test_multiplexed_layout(self):
        # Force 2 symbols per row and check symbol-major ordering.
        h, widths = 3, np.array([32, 4])
        values = np.arange(h * 2).reshape(h, 2)
        stream = pack_slice(values, widths, sym_len=32)
        assert stream.shape == (2 * h,)
        # Symbol 0 of each row is that row's first (32-bit) value.
        np.testing.assert_array_equal(stream[:h].astype(np.int64), values[:, 0])

    def test_straddling_value(self):
        # Width-20 then width-20: the second value straddles symbol 0/1.
        values = np.array([[0xABCDE, 0x12345]])
        stream = pack_slice(values, np.array([20, 20]), sym_len=32)
        bits = (int(stream[0]) << 32) | int(stream[1])
        assert (bits >> 44) & 0xFFFFF == 0xABCDE
        assert (bits >> 24) & 0xFFFFF == 0x12345

    def test_value_too_wide_rejected(self):
        with pytest.raises(CompressionError, match="does not fit"):
            pack_slice(np.array([[8]]), np.array([3]), sym_len=32)

    def test_negative_value_rejected(self):
        with pytest.raises(CompressionError):
            pack_slice(np.array([[-1]]), np.array([3]), sym_len=32)

    def test_zero_width_rejected(self):
        with pytest.raises(CompressionError, match=">= 1"):
            pack_slice(np.array([[0]]), np.array([0]), sym_len=32)

    def test_width_exceeding_symbol_rejected(self):
        with pytest.raises(CompressionError, match="exceeds the symbol"):
            pack_slice(np.array([[0]]), np.array([33]), sym_len=32)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            pack_slice(np.zeros((2, 3), dtype=np.int64), np.array([1, 1]), sym_len=32)

    def test_empty_slice(self):
        out = pack_slice(np.zeros((4, 0), dtype=np.int64), np.array([], dtype=np.int64))
        assert out.shape == (0,)


class TestRoundTrip:
    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_random_round_trip(self, sym_len):
        rng = np.random.default_rng(42)
        for _ in range(20):
            h = int(rng.integers(1, 9))
            L = int(rng.integers(1, 17))
            widths = rng.integers(1, sym_len + 1, size=L)
            values = np.empty((h, L), dtype=np.uint64)
            for j, w in enumerate(widths):
                hi = np.uint64(1) << np.uint64(min(int(w), 63))
                values[:, j] = rng.integers(0, int(hi), size=h, dtype=np.uint64)
            stream = pack_slice(values, widths, sym_len=sym_len)
            out = unpack_slice(stream, widths, h, sym_len=sym_len)
            np.testing.assert_array_equal(out.astype(np.uint64), values)

    def test_full_width_64(self):
        values = np.array([[2**63 + 12345, 7]], dtype=np.uint64)
        widths = np.array([64, 3])
        stream = pack_slice(values, widths, sym_len=64)
        out = unpack_slice(stream, widths, 1, sym_len=64)
        np.testing.assert_array_equal(out.astype(np.uint64), values)

    def test_unpack_wrong_length_rejected(self):
        with pytest.raises(ValidationError, match="expected"):
            unpack_slice(np.zeros(3, dtype=np.uint32), np.array([4]), h=2)

    def test_unpack_bad_height(self):
        with pytest.raises(ValidationError, match="positive"):
            unpack_slice(np.zeros(0, dtype=np.uint32), np.array([], dtype=np.int64), h=0)
