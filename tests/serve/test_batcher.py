"""MicroBatcher semantics, pinned exactly as the module docstring
states: window-or-size flush, no key mixing, FIFO delivery, zero-window
same-iteration coalescing.
"""

import asyncio

import pytest


class Collector:
    """Async flush callback recording (key, items) in flush order."""

    def __init__(self):
        self.flushes = []

    async def __call__(self, key, items):
        self.flushes.append((key, list(items)))


def run(coro):
    return asyncio.run(coro)


def make(collector, **kwargs):
    from repro.serve.batcher import MicroBatcher

    return MicroBatcher(collector, **kwargs)


class TestFlushBounds:
    def test_window_flushes_everything_submitted_inside_it(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=0.01, max_batch=100)
            for i in range(5):
                b.submit("k", i)
            await asyncio.sleep(0.05)
            await b.join()
            return c.flushes

        flushes = run(scenario())
        assert flushes == [("k", [0, 1, 2, 3, 4])]

    def test_size_bound_flushes_immediately(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=10.0, max_batch=3)
            for i in range(7):
                b.submit("k", i)
            # No sleep long enough for the 10s window: only full batches
            # have flushed; the 7th item is still parked.
            await b.join()
            pending = b.pending_items
            b.flush_all()
            await b.join()
            return c.flushes, pending

        flushes, pending = run(scenario())
        assert pending == 1
        assert flushes == [("k", [0, 1, 2]), ("k", [3, 4, 5]), ("k", [6])]

    def test_zero_window_still_coalesces_one_iteration(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=0.0, max_batch=100)
            for i in range(4):
                b.submit("k", i)
            await asyncio.sleep(0.01)
            await b.join()
            return c.flushes

        flushes = run(scenario())
        assert flushes == [("k", [0, 1, 2, 3])]

    def test_late_arrivals_do_not_extend_the_window(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=0.03, max_batch=100)
            b.submit("k", "first")
            await asyncio.sleep(0.015)
            b.submit("k", "joined")  # inside the window: joins
            await asyncio.sleep(0.03)  # window expired: flushed
            b.submit("k", "next-window")
            await asyncio.sleep(0.05)
            await b.join()
            return c.flushes

        flushes = run(scenario())
        assert flushes == [
            ("k", ["first", "joined"]),
            ("k", ["next-window"]),
        ]


class TestKeysAndOrder:
    def test_keys_never_mix(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=0.01, max_batch=100)
            b.submit("a", 1)
            b.submit("b", 2)
            b.submit("a", 3)
            await asyncio.sleep(0.05)
            await b.join()
            return dict(c.flushes)

        by_key = run(scenario())
        assert by_key == {"a": [1, 3], "b": [2]}

    def test_fifo_within_key(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=0.01, max_batch=100)
            items = list(range(20))
            for i in items:
                b.submit("k", i)
            await asyncio.sleep(0.05)
            await b.join()
            return c.flushes

        flushes = run(scenario())
        assert [i for _, batch in flushes for i in batch] == list(range(20))


class TestAccounting:
    def test_occupancy_counters(self):
        async def scenario():
            c = Collector()
            b = make(c, window_s=0.0, max_batch=4)
            for i in range(8):
                b.submit("k", i)
            await asyncio.sleep(0.01)
            await b.join()
            return b.batches_flushed, b.items_flushed, b.mean_occupancy

        batches, items, occ = run(scenario())
        assert (batches, items, occ) == (2, 8, 4.0)

    def test_validation(self):
        from repro.serve.batcher import MicroBatcher

        async def noop(key, items):
            pass

        with pytest.raises(ValueError):
            MicroBatcher(noop, window_s=-1)
        with pytest.raises(ValueError):
            MicroBatcher(noop, max_batch=0)
