"""SpMVServer + ServeClient over a real TCP socket: protocol ops,
pipelined micro-batching, load-generator cleanliness, malformed frames
and graceful shutdown.
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.errors import ServeError
from repro.exec.policy import ExecutionPolicy
from repro.kernels.dispatch import run_spmv
from repro.serve import (
    MatrixPool,
    ServeClient,
    ServerConfig,
    SpMVRequest,
    SpMVServer,
    run_load,
)

from .conftest import MATRIX, SCALE


class ServerThread:
    """A running SpMVServer on a background event loop."""

    def __init__(self, pool, config=None):
        self.pool = pool
        self.config = config or ServerConfig()
        self.server = None
        self.port = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = SpMVServer(self.pool, self.config)
            await self.server.start()
            self.port = self.server.port
            self._started.set()
            await self.server.serve_until_stopped()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server failed to start")
        return self

    def __exit__(self, *exc):
        if self.server is not None:
            try:
                with ServeClient("127.0.0.1", self.port, timeout_s=10) as c:
                    c.shutdown_server()
            except (ServeError, OSError):
                pass  # already stopped by the test body
        self._thread.join(timeout=30)


@pytest.fixture(scope="module")
def server(pool):
    with ServerThread(pool) as st:
        yield st


class TestProtocolOps:
    def test_ping_list_stats_metrics(self, server):
        with ServeClient("127.0.0.1", server.port) as c:
            assert c.ping() is True
            (entry,) = c.list_matrices()
            assert entry["name"] == MATRIX
            stats = c.stats()
            assert stats["accepting"] is True
            assert stats["max_queue"] == server.config.max_queue
            assert "plan_cache" in stats
            assert isinstance(c.prometheus(), str)

    def test_unknown_op_is_an_error_frame(self, server):
        with ServeClient("127.0.0.1", server.port) as c:
            reply = c._roundtrip({"op": "dance"})
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]

    def test_malformed_json_line_gets_error_frame(self, server):
        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            f = sock.makefile("rwb")
            f.write(b"this is not json\n")
            f.flush()
            reply = json.loads(f.readline())
            assert reply["ok"] is False
            assert "malformed JSON" in reply["error"]
            # The connection survives a bad line: a good frame still works.
            f.write((json.dumps({"op": "ping"}) + "\n").encode())
            f.flush()
            assert json.loads(f.readline())["ok"] is True

    def test_bad_spmv_frame_keeps_request_id(self, server):
        with ServeClient("127.0.0.1", server.port) as c:
            reply = c._roundtrip({"op": "spmv", "id": "oops"})  # no matrix/x
            assert reply["id"] == "oops"
            assert reply["status"] == "error"


class TestSpmvOverSocket:
    def test_round_trip_is_bit_identical(self, server, pool, xs):
        expected = run_spmv(
            pool.get(MATRIX), xs[0], "k20",
            policy=ExecutionPolicy(plan_cache=pool.plan_cache),
        ).y
        with ServeClient("127.0.0.1", server.port) as c:
            resp = c.spmv(MATRIX, xs[0])
            prom = c.prometheus()
        assert resp.ok
        assert np.array_equal(resp.y, expected)
        # Traffic shows up in the Prometheus export.
        assert 'repro_serve_requests{status="ok"' in prom

    def test_pipeline_coalesces_and_returns_in_order(self, server, pool, xs):
        policy = ExecutionPolicy(plan_cache=pool.plan_cache)
        expected = [run_spmv(pool.get(MATRIX), x, "k20", policy=policy).y
                    for x in xs]
        reqs = [
            SpMVRequest(request_id=f"p{i}", matrix=MATRIX, x=xs[i % len(xs)])
            for i in range(12)
        ]
        with ServeClient("127.0.0.1", server.port) as c:
            responses = c.pipeline(reqs)
        assert [r.request_id for r in responses] == [r.request_id
                                                     for r in reqs]
        assert all(r.ok for r in responses)
        for i, resp in enumerate(responses):
            assert np.array_equal(resp.y, expected[i % len(xs)])
        # A pipelined burst on ONE connection must still micro-batch:
        # each spmv line runs in its own server task.
        assert max(r.batch_size for r in responses) > 1

    def test_unknown_matrix_over_the_wire(self, server, xs):
        with ServeClient("127.0.0.1", server.port) as c:
            resp = c.spmv("missing", xs[0])
        assert resp.status == "error"
        assert resp.error_type == "ServeError"

    def test_pipeline_rejects_duplicate_ids(self, server, xs):
        reqs = [SpMVRequest(request_id="dup", matrix=MATRIX, x=xs[0])] * 2
        with ServeClient("127.0.0.1", server.port) as c:
            with pytest.raises(ServeError, match="unique"):
                c.pipeline(reqs)


class TestLoadGenerator:
    def test_run_load_is_clean_and_batches(self, server, pool, xs):
        policy = ExecutionPolicy(plan_cache=pool.plan_cache)
        expected = [run_spmv(pool.get(MATRIX), x, "k20", policy=policy).y
                    for x in xs]
        report = run_load(
            "127.0.0.1", server.port,
            matrix=MATRIX, xs=xs, expected=expected,
            requests=48, concurrency=6,
            tenants=("acme", "globex"),
        )
        assert report.clean, report.error_samples
        assert report.ok == 48
        assert report.corrupted == 0
        assert report.mean_batch_size >= 1.0
        assert report.percentile(99) >= report.percentile(50) > 0
        desc = report.describe()
        assert desc["throughput_rps"] > 0
        assert json.dumps(desc)  # JSON-able


class TestShutdown:
    def test_graceful_shutdown_over_the_wire(self, pool):
        with ServerThread(pool) as st:
            with ServeClient("127.0.0.1", st.port) as c:
                assert c.shutdown_server() is True
            st._thread.join(timeout=30)
            assert not st._thread.is_alive()
            # The socket is gone: new connections are refused.
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", st.port), timeout=2)
