"""Shared fixtures for the serving-layer suite.

One small pooled matrix (qcd5_4 at scale 0.02, bro_ell h=16) is enough
to exercise admission, batching and the wire protocol; tests that need
a second matrix or a different format build their own pool.
"""

import numpy as np
import pytest

from repro.serve import MatrixPool

MATRIX = "qcd5_4"
SCALE = 0.02


@pytest.fixture(scope="module")
def pool():
    p = MatrixPool(device="k20")
    p.load_suite(MATRIX, scale=SCALE, format="bro_ell", seed=7, h=16)
    p.warm()
    return p


@pytest.fixture(scope="module")
def n(pool):
    return pool.get(MATRIX).shape[1]


@pytest.fixture(scope="module")
def xs(n):
    rng = np.random.default_rng(42)
    return [rng.standard_normal(n) for _ in range(4)]
