"""MatrixPool: named sealed containers sharing one warm PlanCache."""

import numpy as np
import pytest

from repro.errors import ServeError
from repro.formats.conversion import convert
from repro.integrity import verify_integrity
from repro.matrices.suite import generate
from repro.serialize import save_container
from repro.serve import MatrixPool


class TestPooling:
    def test_load_suite_pools_a_sealed_entry(self):
        pool = MatrixPool(device="k20")
        entry = pool.load_suite("qcd5_4", scale=0.02, format="bro_ell",
                                seed=7, h=16)
        assert entry.name == "qcd5_4"
        assert entry.matrix.format_name == "bro_ell"
        assert verify_integrity(entry.matrix)
        assert pool.get("qcd5_4") is entry.matrix
        assert len(pool) == 1

    def test_unknown_matrix_is_typed_and_lists_names(self):
        pool = MatrixPool(device="k20")
        pool.load_suite("qcd5_4", scale=0.02, format="csr", seed=7)
        with pytest.raises(ServeError, match="qcd5_4"):
            pool.get("nope")

    def test_add_requires_a_name(self):
        pool = MatrixPool(device="k20")
        mat = convert(generate("qcd5_4", scale=0.02, seed=7), "csr")
        with pytest.raises(ServeError, match="name"):
            pool.add("", mat)

    def test_remove_drops_entry_and_plans(self):
        pool = MatrixPool(device="k20")
        entry = pool.load_suite("qcd5_4", scale=0.02, format="bro_ell",
                                seed=7, h=16)
        pool.warm()
        assert entry.matrix in pool.plan_cache
        pool.remove("qcd5_4")
        assert entry.matrix not in pool.plan_cache
        with pytest.raises(ServeError):
            pool.get("qcd5_4")
        with pytest.raises(ServeError):
            pool.remove("qcd5_4")

    def test_load_brx_round_trip(self, tmp_path):
        mat = convert(generate("qcd5_4", scale=0.02, seed=7), "bro_ell", h=16)
        path = tmp_path / "qcd.brx"
        save_container(mat, path)

        pool = MatrixPool(device="k20")
        entry = pool.load("qcd", path)
        loaded = pool.get("qcd")
        assert loaded.format_name == "bro_ell"
        assert loaded.shape == mat.shape
        x = np.ones(mat.shape[1])
        assert np.array_equal(loaded.spmv(x), mat.spmv(x))
        assert entry.describe()["sealed"]


class TestWarm:
    def test_warm_builds_once_then_hits(self):
        pool = MatrixPool(device="k20")
        pool.load_suite("qcd5_4", scale=0.02, format="bro_ell", seed=7, h=16)
        assert pool.warm() == 1
        builds = pool.plan_cache.stats()["builds"]
        assert pool.warm() == 1  # idempotent: ensured, not rebuilt
        assert pool.plan_cache.stats()["builds"] == builds

    def test_describe_is_the_list_payload(self):
        pool = MatrixPool(device="k20")
        pool.load_suite("qcd5_4", scale=0.02, format="bro_ell", seed=7, h=16)
        (row,) = pool.describe()
        assert row["name"] == "qcd5_4"
        assert row["format"] == "bro_ell"
        assert row["nnz"] > 0 and len(row["shape"]) == 2
        assert row["plannable"] is True
