"""The typed request/response schema: wire round-trips, policy keys,
validation. One schema backs the socket protocol, the in-process path
and ``repro spmv --json`` — these tests pin its invariants.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.policy import ExecutionPolicy
from repro.serve import ServerConfig, SpMVRequest, SpMVResponse
from repro.serve.api import (
    POLICY_OVERRIDE_FIELDS,
    apply_policy_overrides,
    policy_key,
)


class TestRequest:
    def test_wire_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(37)
        req = SpMVRequest(request_id="r1", matrix="qcd5_4", x=x,
                          tenant="acme", policy={"engine": "fast"})
        # Through real JSON text, not just dict round-tripping: Python
        # float repr is shortest-round-trip, so bytes survive exactly.
        frame = json.loads(json.dumps(req.to_wire()))
        back = SpMVRequest.from_wire(frame)
        assert back.request_id == "r1"
        assert back.matrix == "qcd5_4"
        assert back.tenant == "acme"
        assert back.policy == {"engine": "fast"}
        assert np.array_equal(back.x, x)

    def test_batch_request_round_trips(self):
        X = np.arange(12, dtype=np.float64).reshape(4, 3)
        req = SpMVRequest(request_id="b", matrix="m", x=X)
        assert req.is_batch and req.n_vectors == 3
        back = SpMVRequest.from_wire(json.loads(json.dumps(req.to_wire())))
        assert np.array_equal(back.x, X)

    def test_validation_errors_are_typed(self):
        x = np.ones(4)
        with pytest.raises(ValidationError):
            SpMVRequest(request_id="", matrix="m", x=x)
        with pytest.raises(ValidationError):
            SpMVRequest(request_id="r", matrix="", x=x)
        with pytest.raises(ValidationError):
            SpMVRequest(request_id="r", matrix="m", x=np.ones((2, 2, 2)))
        with pytest.raises(ValidationError):
            SpMVRequest(request_id="r", matrix="m", x=np.empty(0))
        with pytest.raises(ValidationError, match="unknown policy"):
            SpMVRequest(request_id="r", matrix="m", x=x,
                        policy={"plan_cache": None})

    def test_from_wire_rejects_bad_frames(self):
        with pytest.raises(ValidationError):
            SpMVRequest.from_wire(["not", "a", "dict"])
        with pytest.raises(ValidationError, match="missing"):
            SpMVRequest.from_wire({"op": "spmv", "id": "r"})
        with pytest.raises(ValidationError, match="not numeric"):
            SpMVRequest.from_wire(
                {"id": "r", "matrix": "m", "x": ["a", "b"]}
            )

    def test_requests_are_frozen(self):
        req = SpMVRequest(request_id="r", matrix="m", x=np.ones(4))
        with pytest.raises(dataclasses.FrozenInstanceError):
            req.matrix = "other"


class TestResponse:
    def test_wire_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(1)
        req = SpMVRequest(request_id="r", matrix="m", x=rng.standard_normal(8))
        y = rng.standard_normal(8)
        resp = SpMVResponse.success(req, y, format="bro_ell", batch_size=4,
                                    queue_ms=1.5, execute_ms=0.25,
                                    meta={"device": "k20"})
        back = SpMVResponse.from_wire(json.loads(json.dumps(resp.to_wire())))
        assert back.ok and np.array_equal(back.y, y)
        assert back.batch_size == 4
        assert back.queue_ms == 1.5 and back.execute_ms == 0.25
        assert back.meta == {"device": "k20"}

    def test_summary_frame_elides_y(self):
        req = SpMVRequest(request_id="r", matrix="m", x=np.ones(4))
        resp = SpMVResponse.success(req, np.ones(4))
        frame = resp.to_wire(include_y=False)
        assert "y" not in frame
        back = SpMVResponse.from_wire(frame)
        assert back.ok and back.y is None

    def test_failure_carries_typed_error(self):
        req = SpMVRequest(request_id="r", matrix="m", x=np.ones(4))
        resp = SpMVResponse.failure(req, ValidationError("nope"))
        assert resp.status == "error" and not resp.ok
        assert resp.error_type == "ValidationError"
        back = SpMVResponse.from_wire(resp.to_wire())
        assert back.error == "nope" and back.error_type == "ValidationError"

    def test_rejected_status(self):
        req = SpMVRequest(request_id="r", matrix="m", x=np.ones(4))
        resp = SpMVResponse.failure(req, ValidationError("full"),
                                    status="rejected")
        assert resp.rejected and not resp.ok

    def test_unknown_status_rejected(self):
        with pytest.raises(ValidationError, match="status"):
            SpMVResponse(request_id="r", status="maybe")


class TestPolicyKey:
    def test_spelling_invariant(self):
        a = policy_key({"engine": "fast", "devices": 2})
        b = policy_key({"devices": 2, "engine": "fast"})
        assert a == b

    def test_empty_and_none_share_a_key(self):
        assert policy_key(None) == policy_key({}) == ()

    def test_unknown_field_is_typed_error(self):
        with pytest.raises(ValidationError, match="unknown policy"):
            policy_key({"fallback": "x"})

    def test_apply_overrides_revalidates(self):
        base = ExecutionPolicy()
        updated = apply_policy_overrides(base, {"devices": 2})
        assert updated.devices == 2
        assert apply_policy_overrides(base, None) is base

    def test_override_fields_are_all_policy_fields(self):
        names = {f.name for f in dataclasses.fields(ExecutionPolicy)}
        for field in POLICY_OVERRIDE_FIELDS:
            assert field in names


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ServerConfig(max_queue=0)
        with pytest.raises(ValidationError):
            ServerConfig(max_batch=0)
        with pytest.raises(ValidationError):
            ServerConfig(batch_window_ms=-1)
        with pytest.raises(ValidationError):
            ServerConfig(executor_threads=0)
        with pytest.raises(ValidationError):
            ServerConfig(port=70000)

    def test_with_revalidates(self):
        cfg = ServerConfig()
        assert cfg.with_(max_batch=8).max_batch == 8
        with pytest.raises(ValidationError):
            cfg.with_(max_queue=-1)

    def test_describe_is_jsonable(self):
        text = json.dumps(ServerConfig().describe())
        assert "max_queue" in text and "policy" in text
