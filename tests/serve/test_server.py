"""ServerCore: admission control, micro-batched execution, bit-identity
with the direct kernel path, per-tenant metrics and graceful shutdown —
all driven in-process (no sockets; the transport has its own suite).
"""

import asyncio

import numpy as np
import pytest

from repro.exec.policy import ExecutionPolicy
from repro.kernels.dispatch import run_spmm, run_spmv
from repro.serve import ServerConfig, SpMVRequest
from repro.serve.server import ServerCore

from .conftest import MATRIX


def run(coro):
    return asyncio.run(coro)


def make_core(pool, **overrides):
    defaults = dict(batch_window_ms=5.0, max_batch=8, max_queue=64)
    defaults.update(overrides)
    return ServerCore(pool, ServerConfig(**defaults))


async def submit_concurrently(core, requests):
    return await asyncio.gather(*[core.submit(r) for r in requests])


class TestExecution:
    def test_single_request_is_bit_identical_to_run_spmv(self, pool, xs):
        core = make_core(pool)

        async def scenario():
            resp = await core.submit(
                SpMVRequest(request_id="r0", matrix=MATRIX, x=xs[0])
            )
            await core.shutdown()
            return resp

        resp = run(scenario())
        assert resp.ok and resp.format == "bro_ell"
        expected = run_spmv(
            pool.get(MATRIX), xs[0], "k20",
            policy=ExecutionPolicy(plan_cache=pool.plan_cache),
        ).y
        assert np.array_equal(resp.y, expected)
        assert resp.meta["device"] == "Tesla K20"
        assert resp.execute_ms > 0

    def test_concurrent_requests_coalesce_and_stay_exact(self, pool, xs):
        core = make_core(pool)
        reqs = [
            SpMVRequest(request_id=f"r{i}", matrix=MATRIX,
                        x=xs[i % len(xs)], tenant=f"t{i % 2}")
            for i in range(8)
        ]

        async def scenario():
            responses = await submit_concurrently(core, reqs)
            await core.shutdown()
            return responses

        responses = run(scenario())
        policy = ExecutionPolicy(plan_cache=pool.plan_cache)
        expected = [run_spmv(pool.get(MATRIX), x, "k20", policy=policy).y
                    for x in xs]
        assert all(r.ok for r in responses)
        for i, resp in enumerate(responses):
            assert np.array_equal(resp.y, expected[i % len(xs)])
        # All eight arrived inside one window for one (matrix, policy)
        # key, so they shared one kernel call.
        assert {r.batch_size for r in responses} == {8}
        assert core.batch_occupancy() == 8.0

    def test_explicit_2d_batch_runs_spmm_directly(self, pool, xs):
        core = make_core(pool)
        X = np.stack(xs, axis=1)
        req = SpMVRequest(request_id="b", matrix=MATRIX, x=X)

        async def scenario():
            resp = await core.submit(req)
            await core.shutdown()
            return resp

        resp = run(scenario())
        assert resp.ok and resp.batch_size == len(xs)
        expected = run_spmm(
            pool.get(MATRIX), X, "k20",
            policy=ExecutionPolicy(plan_cache=pool.plan_cache),
        ).y
        assert np.array_equal(resp.y, expected)

    def test_distinct_policies_do_not_share_a_batch(self, pool, xs):
        core = make_core(pool)
        reqs = [
            SpMVRequest(request_id="plain", matrix=MATRIX, x=xs[0]),
            SpMVRequest(request_id="ref", matrix=MATRIX, x=xs[0],
                        policy={"engine": "reference"}),
        ]

        async def scenario():
            responses = await submit_concurrently(core, reqs)
            await core.shutdown()
            return responses

        responses = run(scenario())
        assert all(r.ok for r in responses)
        assert all(r.batch_size == 1 for r in responses)
        assert np.array_equal(responses[0].y, responses[1].y)


class TestAdmission:
    def test_unknown_matrix_is_an_error_response(self, pool, xs):
        core = make_core(pool)

        async def scenario():
            resp = await core.submit(
                SpMVRequest(request_id="r", matrix="nope", x=xs[0])
            )
            await core.shutdown()
            return resp

        resp = run(scenario())
        assert resp.status == "error"
        assert resp.error_type == "ServeError"
        assert "nope" in resp.error

    def test_shape_mismatch_rejected_before_batching(self, pool):
        core = make_core(pool)

        async def scenario():
            resp = await core.submit(
                SpMVRequest(request_id="r", matrix=MATRIX, x=np.ones(3))
            )
            await core.shutdown()
            return resp

        resp = run(scenario())
        assert resp.status == "error"
        assert resp.error_type == "ValidationError"

    def test_queue_full_rejects_in_band(self, pool, xs):
        # max_queue=2 with a wide window: the first two requests park in
        # the batch window holding the in-flight budget; the third must
        # be rejected (HTTP-429 analogue), not queued or dropped.
        core = make_core(pool, max_queue=2, batch_window_ms=50.0,
                         max_batch=16)

        async def scenario():
            t1 = asyncio.ensure_future(core.submit(
                SpMVRequest(request_id="a", matrix=MATRIX, x=xs[0])))
            t2 = asyncio.ensure_future(core.submit(
                SpMVRequest(request_id="b", matrix=MATRIX, x=xs[1])))
            await asyncio.sleep(0.01)  # both admitted, window still open
            overload = await core.submit(
                SpMVRequest(request_id="c", matrix=MATRIX, x=xs[2]))
            first_two = await asyncio.gather(t1, t2)
            await core.shutdown()
            return first_two, overload

        first_two, overload = run(scenario())
        assert all(r.ok for r in first_two)
        assert overload.rejected
        assert overload.error_type == "AdmissionError"
        assert "retry" in overload.error

    def test_draining_server_rejects_new_requests(self, pool, xs):
        core = make_core(pool)

        async def scenario():
            await core.shutdown()
            late = await core.submit(
                SpMVRequest(request_id="late", matrix=MATRIX, x=xs[0]))
            return late

        late = run(scenario())
        assert late.rejected
        assert late.error_type == "AdmissionError"
        assert "shutdown" in late.error


class TestObservability:
    def test_per_tenant_counters_and_histograms(self, pool, xs):
        core = make_core(pool)
        reqs = [
            SpMVRequest(request_id=f"r{i}", matrix=MATRIX, x=xs[0],
                        tenant=("acme" if i % 2 else "globex"))
            for i in range(4)
        ]

        async def scenario():
            await submit_concurrently(core, reqs)
            await core.shutdown()

        run(scenario())
        snap = core.metrics.snapshot()
        counters = snap["counters"]
        assert counters['serve.requests{status="ok",tenant="acme"}'] == 2
        assert counters['serve.requests{status="ok",tenant="globex"}'] == 2
        hists = snap["histograms"]
        for tenant in ("acme", "globex"):
            hist = hists[
                f'serve.request_latency_seconds{{tenant="{tenant}"}}'
            ]
            assert hist["count"] == 2

    def test_stats_and_prometheus(self, pool, xs):
        core = make_core(pool)

        async def scenario():
            await core.submit(
                SpMVRequest(request_id="r", matrix=MATRIX, x=xs[0]))
            await core.shutdown()

        run(scenario())
        stats = core.stats()
        assert stats["accepting"] is False  # after shutdown
        assert stats["batches"] == 1 and stats["batched_vectors"] == 1
        assert stats["pool"][0]["name"] == MATRIX
        assert "hits" in stats["plan_cache"]
        text = core.prometheus()
        assert "repro_serve_requests" in text
        assert "repro_serve_batch_occupancy" in text

    def test_shutdown_is_idempotent(self, pool):
        core = make_core(pool)

        async def scenario():
            await core.shutdown()
            await core.shutdown()

        run(scenario())
        assert not core.accepting
