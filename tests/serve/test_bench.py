"""serve_bench: the BENCH_serve report generator and its CI gate
plumbing. Small request counts keep this fast; the 2x acceptance gate
itself runs at full size in the serve-smoke CI job, not here.
"""

import json

import pytest

from repro.serve import serve_bench
from repro.telemetry.benchreport import (
    compare_reports,
    load_report,
    metric_direction,
    write_report,
)


@pytest.fixture(scope="module")
def result():
    return serve_bench(
        matrix="qcd5_4", scale=0.02, requests=32, concurrency=8,
        max_batch=8, distinct_vectors=4, h=16,
    )


class TestReportShape:
    def test_row_schema(self, result):
        (row,) = result["report"]["rows"]
        assert row["benchmark"] == "serve_microbatch"
        assert row["matrix"] == "qcd5_4"
        assert row["format"] == "bro_ell"
        assert row["requests"] == 32 and row["concurrency"] == 8
        assert row["corrupted"] == 0
        assert row["batch_speedup"] > 0
        assert row["p99_ms"] >= row["p50_ms"] > 0

    def test_occupancy_shows_coalescing(self, result):
        # 8 concurrent requests against max_batch=8: waves coalesce, so
        # the mean kernel-call occupancy must exceed one vector.
        assert result["summary"]["mean_occupancy"] > 1.0

    def test_gated_metric_direction(self, result):
        # batch_speedup is the ONLY direction-carrying metric in the row:
        # CI gates on it, while raw wall-clock columns stay informational
        # (machine-speed dependent, direction 0).
        (row,) = result["report"]["rows"]
        directed = [k for k, v in row.items()
                    if isinstance(v, (int, float)) and metric_direction(k)]
        assert directed == ["batch_speedup"]

    def test_meta_records_calibration(self, result):
        meta = result["report"]["meta"]
        assert meta["h"] == 16
        assert "batch_window_ms" in meta and "seed" in meta

    def test_summary_mirrors_row(self, result):
        (row,) = result["report"]["rows"]
        s = result["summary"]
        assert s["batch_speedup"] == row["batch_speedup"]
        assert s["corrupted"] == 0


class TestCIGatePlumbing:
    def test_report_round_trips_and_compares_clean(self, result, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        write_report(result["report"], str(path))
        baseline = load_report(str(path))
        comp = compare_reports(baseline, result["report"], threshold=0.05)
        assert comp.clean and not comp.deltas

    def test_speedup_regression_fails_the_gate(self, result, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        inflated = json.loads(json.dumps(result["report"], default=float))
        inflated["rows"][0]["batch_speedup"] *= 10
        write_report(inflated, str(path))
        comp = compare_reports(load_report(str(path)), result["report"],
                               threshold=0.05)
        assert not comp.clean
        assert any(d.metric == "batch_speedup" and d.regression
                   for d in comp.deltas)

    def test_committed_baseline_matches_schema(self, result):
        """The repo's committed baseline stays comparable to fresh runs."""
        from pathlib import Path

        baseline_path = (Path(__file__).resolve().parents[2]
                         / "benchmarks" / "baselines" / "BENCH_serve.json")
        baseline = load_report(str(baseline_path))
        (brow,) = baseline["rows"]
        (row,) = result["report"]["rows"]
        # Same column set; the committed gate value is the acceptance
        # floor (2x) so machine noise never trips the comparison.
        assert set(brow) == set(row)
        assert brow["batch_speedup"] >= 2.0
        assert brow["corrupted"] == 0
