"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_dtype,
    check_in_range,
    check_positive,
    check_sorted_rows,
)


class TestShapeChecks:
    def test_check_1d_accepts(self):
        arr = check_1d([1, 2, 3], "x")
        assert arr.shape == (3,)

    def test_check_1d_rejects_2d(self):
        with pytest.raises(ValidationError, match="x must be 1-D"):
            check_1d(np.zeros((2, 2)), "x")

    def test_check_2d_accepts(self):
        arr = check_2d(np.zeros((2, 3)), "m")
        assert arr.shape == (2, 3)

    def test_check_2d_rejects_1d(self):
        with pytest.raises(ValidationError, match="m must be 2-D"):
            check_2d(np.zeros(4), "m")


class TestScalarChecks:
    def test_check_dtype(self):
        arr = np.zeros(3, dtype=np.float64)
        assert check_dtype(arr, np.dtype(np.float64), "v") is arr
        with pytest.raises(ValidationError):
            check_dtype(arr, np.dtype(np.int32), "v")

    def test_check_positive(self):
        assert check_positive(5, "h") == 5
        for bad in (0, -1, 1.5, "x"):
            with pytest.raises(ValidationError):
                check_positive(bad, "h")

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0, "eta") == 0.5
        with pytest.raises(ValidationError):
            check_in_range(1.5, 0.0, 1.0, "eta")


class TestSortedRows:
    def test_strictly_increasing_ok(self):
        col = np.array([[1, 3, 5], [2, 4, 0]])
        valid = np.array([[True, True, True], [True, True, False]])
        check_sorted_rows(col, valid, "col_idx")  # no raise

    def test_padding_ignored(self):
        col = np.array([[1, 0, 0]])
        valid = np.array([[True, False, False]])
        check_sorted_rows(col, valid, "col_idx")  # padding may decrease

    def test_duplicate_rejected(self):
        col = np.array([[1, 1]])
        valid = np.ones((1, 2), dtype=bool)
        with pytest.raises(ValidationError, match="strictly increase"):
            check_sorted_rows(col, valid, "col_idx")

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            check_sorted_rows(np.zeros((2, 2)), np.ones((2, 3), dtype=bool), "col_idx")

    def test_single_column_trivially_ok(self):
        check_sorted_rows(np.array([[7]]), np.array([[True]]), "col_idx")
