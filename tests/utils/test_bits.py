"""Unit tests for repro.utils.bits."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.bits import bit_width, bit_width_array, ceil_div, mask, round_up


class TestBitWidth:
    def test_zero_takes_one_bit(self):
        assert bit_width(0) == 1

    def test_small_values(self):
        assert bit_width(1) == 1
        assert bit_width(2) == 2
        assert bit_width(3) == 2
        assert bit_width(4) == 3
        assert bit_width(7) == 3
        assert bit_width(8) == 4

    def test_powers_of_two_boundaries(self):
        for b in range(1, 63):
            assert bit_width(2**b - 1) == b
            assert bit_width(2**b) == b + 1

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            bit_width(-1)


class TestBitWidthArray:
    def test_matches_scalar(self):
        vals = np.array([0, 1, 2, 3, 4, 7, 8, 255, 256, 2**31 - 1, 2**40])
        expected = np.array([bit_width(int(v)) for v in vals])
        np.testing.assert_array_equal(bit_width_array(vals), expected)

    def test_2d_shape_preserved(self):
        vals = np.arange(12).reshape(3, 4)
        out = bit_width_array(vals)
        assert out.shape == (3, 4)
        assert out[0, 0] == 1  # Gamma(0) == 1

    def test_empty(self):
        out = bit_width_array(np.array([], dtype=np.int64))
        assert out.shape == (0,)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            bit_width_array(np.array([1, -2]))

    def test_large_uint64(self):
        assert bit_width_array(np.array([2**63], dtype=np.uint64))[0] == 64


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_inexact(self):
        assert ceil_div(9, 4) == 3

    def test_zero_dividend(self):
        assert ceil_div(0, 4) == 0

    def test_bad_args(self):
        with pytest.raises(ValidationError):
            ceil_div(4, 0)
        with pytest.raises(ValidationError):
            ceil_div(-1, 4)


class TestRoundUpAndMask:
    def test_round_up(self):
        assert round_up(0, 32) == 0
        assert round_up(1, 32) == 32
        assert round_up(32, 32) == 32
        assert round_up(33, 32) == 64

    def test_mask(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(8) == 255
        assert mask(32) == 0xFFFFFFFF
        assert mask(64) == (1 << 64) - 1

    def test_mask_negative(self):
        with pytest.raises(ValidationError):
            mask(-1)
