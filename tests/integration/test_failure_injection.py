"""Failure injection: corrupted streams and malformed inputs must fail
loudly, never silently produce wrong numbers."""

import numpy as np
import pytest

from repro.bitstream.multiplex import MultiplexedStream
from repro.bitstream.reader import SliceDecoder
from repro.core.bro_ell import BROELLMatrix
from repro.errors import (
    CompressionError,
    DecompressionError,
    ReproError,
    ValidationError,
)
from tests.conftest import random_coo


class TestCorruptedStreams:
    def test_truncated_stream_detected(self):
        coo = random_coo(64, 64, density=0.08, seed=1)
        bro = BROELLMatrix.from_coo(coo, h=16)
        truncated = MultiplexedStream(
            data=bro.stream.data[: bro.stream.data.shape[0] - 1],
            slice_ptr=np.append(
                bro.stream.slice_ptr[:-1], bro.stream.slice_ptr[-1] - 1
            ),
            sym_len=32,
        )
        with pytest.raises(ReproError):
            corrupt = BROELLMatrix(
                truncated, bro.bit_allocs, bro._vals, bro.row_lengths, 16,
                coo.shape,
            )
            corrupt.to_dense()

    def test_bit_flip_changes_output_not_crashes_silently(self):
        # A flipped bit inside a delta field must change the decoded matrix
        # (the format has no checksums — corruption is visible, not hidden).
        coo = random_coo(64, 64, density=0.08, seed=2)
        bro = BROELLMatrix.from_coo(coo, h=16)
        data = bro.stream.data.copy()
        data[0] ^= np.uint32(1 << 31)  # flip the very first packed bit
        tampered = BROELLMatrix(
            MultiplexedStream(data, bro.stream.slice_ptr, 32),
            bro.bit_allocs, bro._vals, bro.row_lengths, 16, coo.shape,
        )
        try:
            different = not np.array_equal(tampered.to_dense(), coo.to_dense())
        except ReproError:
            different = True  # decoding detected the inconsistency
        assert different

    def test_decoder_overrun_raises(self):
        dec = SliceDecoder(np.zeros(4, dtype=np.uint32), h=2)
        dec.decode(32)
        dec.decode(32)
        with pytest.raises(DecompressionError):
            dec.decode(1)


class TestMalformedConstruction:
    def test_bit_alloc_wider_than_symbol(self):
        from repro.bitstream.packing import pack_slice

        with pytest.raises(CompressionError):
            pack_slice(np.zeros((2, 1), np.int64), np.array([40]), sym_len=32)

    def test_vals_length_mismatch(self):
        coo = random_coo(32, 32, density=0.1, seed=3)
        bro = BROELLMatrix.from_coo(coo, h=8)
        with pytest.raises(ValidationError):
            BROELLMatrix(
                bro.stream, bro.bit_allocs, bro._vals[:-1], bro.row_lengths,
                8, coo.shape,
            )

    def test_row_lengths_mismatch(self):
        coo = random_coo(32, 32, density=0.1, seed=4)
        bro = BROELLMatrix.from_coo(coo, h=8)
        with pytest.raises(ValidationError):
            BROELLMatrix(
                bro.stream, bro.bit_allocs, bro._vals,
                bro.row_lengths[:-1], 8, coo.shape,
            )

    def test_unsorted_columns_rejected_at_compression(self):
        # Delta coding requires strictly increasing columns; the COO class
        # sorts on construction, so feed the encoder directly.
        from repro.core.delta import delta_encode_columns

        with pytest.raises(CompressionError):
            delta_encode_columns(
                np.array([[5, 3]]), np.ones((1, 2), dtype=bool)
            )


class TestKernelInputValidation:
    def test_wrong_x_length(self, paper_matrix):
        from repro.kernels import run_spmv

        with pytest.raises(ValidationError):
            run_spmv(paper_matrix, np.ones(4), "k20")

    def test_unknown_device(self, paper_matrix):
        from repro.errors import DeviceError
        from repro.kernels import run_spmv

        with pytest.raises(DeviceError):
            run_spmv(paper_matrix, np.ones(5), "h100")

    def test_format_kernel_mismatch(self, paper_matrix):
        from repro.gpu.device import TESLA_K20
        from repro.errors import KernelError
        from repro.kernels import get_kernel

        with pytest.raises(KernelError):
            get_kernel("bro_ell").run(paper_matrix, np.ones(5), TESLA_K20)
