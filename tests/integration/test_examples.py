"""Smoke-run every example script: they are part of the public surface."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize(
    "script,args,expect",
    [
        ("quickstart.py", [], "Space savings"),
        ("cg_solver.py", [], "converged=True"),
        ("format_explorer.py", ["epb3", "0.02"], "GFlop/s are modeled"),
        ("reordering_study.py", ["rim", "0.02"], "BAR"),
        ("autotune.py", [], "top format"),
    ],
)
def test_example_runs(script, args, expect):
    result = run_example(script, *args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert expect in result.stdout


def test_format_explorer_rejects_unknown_matrix():
    result = run_example("format_explorer.py", "not_a_matrix")
    assert result.returncode != 0
    assert "unknown matrix" in (result.stderr + result.stdout)


def test_profile_slices_example():
    result = run_example("profile_slices.py", "venkat01", "0.02")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "hottest slices" in result.stdout
    assert "worst-compressed" in result.stdout
