"""End-to-end pipelines across subsystems.

These tests exercise the flows a user of the library composes: suite
matrix -> format zoo -> simulated kernels -> solver, with reordering and
file I/O in the loop. They are the closest thing to the paper's actual
experimental procedure, at miniature scale.
"""

import io

import numpy as np
import pytest

from repro import (
    BROELLMatrix,
    BROHYBMatrix,
    SimulatedOperator,
    bar_permutation,
    conjugate_gradient,
    convert,
    gmres,
    index_compression_report,
    run_spmv,
)
from repro.formats.coo import COOMatrix
from repro.matrices import generate, read_matrix_market, write_matrix_market
from repro.matrices.suite import test_set_1 as set1_names


class TestPaperPipeline:
    """The Fig. 4 procedure on one matrix, miniature scale."""

    def test_generate_compress_run_verify(self):
        coo = generate("venkat01", scale=0.02)
        x = np.random.default_rng(0).standard_normal(coo.shape[1])
        reference = coo.spmv(x)

        ell = convert(coo, "ellpack")
        bro = convert(coo, "bro_ell", h=256)
        report = index_compression_report(bro, "venkat01")
        assert report.eta > 0.8  # Table 3 regime

        for device in ("c2070", "gtx680", "k20"):
            res_ell = run_spmv(ell, x, device)
            res_bro = run_spmv(bro, x, device)
            np.testing.assert_allclose(res_ell.y, reference, rtol=1e-9)
            np.testing.assert_allclose(res_bro.y, reference, rtol=1e-9)
            assert res_bro.gflops > res_ell.gflops  # Fig. 4 regime

    def test_reorder_then_compress_then_run(self):
        coo = generate("rim", scale=0.02)
        perm = bar_permutation(coo, h=256)
        reordered = coo.permute_rows(perm)
        bro_before = BROELLMatrix.from_coo(coo, h=256)
        bro_after = BROELLMatrix.from_coo(reordered, h=256)
        # Table 5 regime: BAR does not hurt, usually helps.
        eta_b = index_compression_report(bro_before, "rim").eta
        eta_a = index_compression_report(bro_after, "rim").eta
        assert eta_a > eta_b - 0.01
        x = np.random.default_rng(1).standard_normal(coo.shape[1])
        res = run_spmv(bro_after, x, "k20")
        np.testing.assert_allclose(res.y, coo.spmv(x)[perm], rtol=1e-9)

    @pytest.mark.parametrize("name", ["epb3", "qcd5_4"])
    def test_every_set1_format_agrees(self, name):
        coo = generate(name, scale=0.02)
        x = np.random.default_rng(2).standard_normal(coo.shape[1])
        reference = coo.spmv(x)
        for fmt in ("coo", "csr", "ellpack", "ellpack_r", "sliced_ellpack",
                    "hyb", "bro_ell", "bro_coo", "bro_hyb"):
            kwargs = {"h": 64} if fmt in ("sliced_ellpack", "bro_ell",
                                          "bro_hyb") else {}
            res = run_spmv(convert(coo, fmt, **kwargs), x, "gtx680")
            np.testing.assert_allclose(res.y, reference, rtol=1e-9,
                                       err_msg=fmt)


class TestSolverPipeline:
    def test_cg_through_simulated_bro_hyb(self):
        # SPD system solved over the compressed format on the device model.
        m = 512
        rng = np.random.default_rng(3)
        band = np.clip(np.arange(m)[:, None] + np.arange(-2, 3)[None, :], 0, m - 1)
        rows = np.repeat(np.arange(m), 5)
        vals = np.where(band.reshape(-1) == rows, 10.0, -1.0)
        coo = COOMatrix(rows, band.reshape(-1), vals, (m, m))
        b = coo.spmv(np.ones(m))
        op = SimulatedOperator(BROHYBMatrix.from_coo(coo, h=64), "k20")
        result = conjugate_gradient(op, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.x, np.ones(m), rtol=1e-6)
        assert op.device_time > 0

    def test_gmres_on_suite_matrix_plus_identity(self):
        coo = generate("scircuit", scale=0.003)
        m = coo.shape[0]
        # Shift to diagonal dominance so GMRES converges quickly.
        shift = float(np.abs(coo.vals).sum() / m + 1.0) * 10
        rows = np.concatenate([coo.row_idx, np.arange(m)])
        cols = np.concatenate([coo.col_idx, np.arange(m)])
        vals = np.concatenate([coo.vals, np.full(m, shift)])
        system = COOMatrix(rows, cols, vals, (m, m))
        b = np.ones(m)
        op = SimulatedOperator(convert(system, "bro_coo"), "c2070")
        result = gmres(op, b, tol=1e-8, restart=20, max_iter=400)
        assert result.converged
        np.testing.assert_allclose(system.spmv(result.x), b, atol=1e-6)


class TestFileRoundTrip:
    def test_matrix_market_through_compression(self):
        coo = generate("e40r5000", scale=0.02)
        buf = io.StringIO()
        write_matrix_market(coo, buf)
        buf.seek(0)
        back = read_matrix_market(buf)
        assert back.nnz == coo.nnz
        x = np.random.default_rng(4).standard_normal(coo.shape[1])
        bro_a = BROELLMatrix.from_coo(coo, h=128)
        bro_b = BROELLMatrix.from_coo(back, h=128)
        np.testing.assert_allclose(
            run_spmv(bro_a, x, "k20").y, run_spmv(bro_b, x, "k20").y
        )
        # Identical matrices compress identically.
        assert bro_a.stream.nbytes == bro_b.stream.nbytes


class TestSuiteCoverage:
    def test_all_set1_matrices_compress_and_run(self):
        x_cache = {}
        for name in set1_names():
            coo = generate(name, scale=0.01)
            bro = BROELLMatrix.from_coo(coo, h=256)
            x = x_cache.setdefault(
                coo.shape[1],
                np.random.default_rng(5).standard_normal(coo.shape[1]),
            )
            res = run_spmv(bro, x, "k20")
            np.testing.assert_allclose(res.y, coo.spmv(x), rtol=1e-8,
                                       err_msg=name)
            assert res.counters.dram_bytes > 0
