"""The pluggable executor-backend layer (PR 8 tentpole).

Three contracts, in order of importance:

* **bit-identity** — for every compiled format, suite matrix and symbol
  length, the ``"jit"`` replay produces the same ``y`` bits and the same
  :class:`KernelCounters` as the ``"numpy"`` replay. On this Numba-free
  host the compiled aliases *are* the pure-Python twins, so forcing
  ``set_backend("jit")`` drives the exact loops Numba would compile.
* **graceful resolution** — ``resolve_backend`` maps policy requests to
  concrete backends: ``"auto"`` degrades silently, an explicit ``"jit"``
  that cannot be honoured degrades with an ``exec.backend_fallback``
  counter, and nothing ever raises for a missing Numba.
* **plan wiring** — ``set_backend`` recurses through composite plans'
  ``_children()``, ``warm_compile`` records ``jit_compile_seconds`` at
  prepare() time, and legacy plans that override ``_replay`` directly
  keep working under any requested backend.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.exec.policy import ExecutionPolicy
from repro.formats.conversion import convert
from repro.kernels import backends, prepare, run_spmv
from repro.kernels.plan import SpMVPlan
from repro.kernels.plancache import PlanCache
from repro.matrices.suite import generate
from repro.telemetry import metrics as M
from tests.conftest import random_coo

#: A representative Table 2 slice — dense-ish, tall-sparse, and the QCD
#: lattice — small enough that the format x sym_len sweep stays quick.
SUITE = ("dense2", "epb3", "qcd5_4")
SUITE_SCALE = 0.01

BRO_FORMATS = ("bro_ell", "bro_ell_mt", "bro_ell_vc", "bro_coo", "bro_hyb", "bro_sell")
PLAIN_FORMATS = ("csr", "ellpack", "sliced_ellpack", "ellpack_r", "sell_c_sigma",
                 "cmrs", "hyb", "bellpack", "coo")


@lru_cache(maxsize=None)
def suite_mat(name, fmt, sym_len=None):
    kwargs = {}
    if sym_len is not None:
        kwargs["sym_len"] = sym_len
    if fmt in ("bro_ell", "bro_hyb"):
        kwargs["h"] = 64
    return convert(generate(name, scale=SUITE_SCALE), fmt, **kwargs)


def _x_for(mat, seed=11):
    return np.random.default_rng(seed).standard_normal(mat.shape[1])


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_numpy_always_numpy(self):
        assert backends.resolve_backend("numpy", "bro_ell") == "numpy"
        assert backends.resolve_backend("numpy") == "numpy"

    def test_bad_name_rejected(self):
        with pytest.raises(ValidationError, match="compute_backend"):
            backends.resolve_backend("cuda", "bro_ell")

    def test_auto_without_numba_is_silent(self):
        if backends.jit_available():  # container never has numba; CI may
            pytest.skip("host has Numba")
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            assert backends.resolve_backend("auto", "bro_ell") == "numpy"
        finally:
            M.stop_collecting()
        assert not any(
            k.startswith("exec.backend_fallback")
            for k in reg.snapshot()["counters"]
        )

    def test_explicit_jit_without_numba_counts_fallback(self):
        if backends.jit_available():
            pytest.skip("host has Numba")
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            assert backends.resolve_backend("jit", "bro_ell") == "numpy"
        finally:
            M.stop_collecting()
        key = 'exec.backend_fallback{format="bro_ell",reason="numba-missing"}'
        assert reg.snapshot()["counters"][key] == 1

    def test_jit_on_unsupported_format_counts_fallback(self, monkeypatch):
        monkeypatch.setattr(backends, "jit_available", lambda: True)
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            assert backends.resolve_backend("jit", "bro_ell_rowwise") == "numpy"
            assert backends.resolve_backend("auto", "bro_ell_rowwise") == "numpy"
        finally:
            M.stop_collecting()
        key = 'exec.backend_fallback{format="bro_ell_rowwise",reason="format-unsupported"}'
        assert reg.snapshot()["counters"][key] == 1  # auto stays silent

    def test_jit_resolves_when_available(self, monkeypatch):
        monkeypatch.setattr(backends, "jit_available", lambda: True)
        assert backends.resolve_backend("jit", "bro_ell") == "jit"
        assert backends.resolve_backend("auto", "csr") == "jit"

    def test_compiled_formats_sorted_and_complete(self):
        assert backends.compiled_formats() == tuple(sorted(backends.JIT_FORMATS))
        for fmt in BRO_FORMATS + PLAIN_FORMATS:
            assert backends.supports_jit(fmt), fmt
        assert not backends.supports_jit("bro_ell_rowwise")


# ----------------------------------------------------------------------
# Bit-identity: jit replay == numpy replay, bits and counters
# ----------------------------------------------------------------------
class TestBitIdentity:
    """Force ``set_backend("jit")`` so the jit code paths execute even
    without Numba (the aliases are then the interpreted twins, which pin
    the exact loop order the compiled functions share)."""

    @pytest.mark.parametrize("name", SUITE)
    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_bro_formats(self, name, sym_len):
        for fmt in BRO_FORMATS:
            mat = suite_mat(name, fmt, sym_len)
            x = _x_for(mat)
            plan = prepare(mat, "k20")
            y_numpy = plan.execute(x)
            plan.set_backend("jit")
            y_jit = plan.execute(x)
            assert np.array_equal(y_numpy.y, y_jit.y), (name, fmt, sym_len)
            assert y_numpy.counters == y_jit.counters

    @pytest.mark.parametrize("fmt", PLAIN_FORMATS)
    def test_plain_formats(self, fmt):
        for seed in (0, 1):
            mat = convert(random_coo(150, 130, density=0.07, seed=seed), fmt)
            x = _x_for(mat, seed)
            plan = prepare(mat, "k20")
            y_numpy = plan.execute(x)
            plan.set_backend("jit")
            y_jit = plan.execute(x)
            assert np.array_equal(y_numpy.y, y_jit.y)
            assert y_numpy.counters == y_jit.counters

    @pytest.mark.parametrize("fmt", BRO_FORMATS + PLAIN_FORMATS)
    def test_multi_rhs(self, fmt):
        mat = suite_mat("qcd5_4", fmt, 32 if fmt in BRO_FORMATS else None)
        X = np.random.default_rng(3).standard_normal((mat.shape[1], 5))
        plan = prepare(mat, "k20")
        Y_numpy = plan.execute_many(X)
        plan.set_backend("jit")
        Y_jit = plan.execute_many(X)
        assert np.array_equal(Y_numpy.y, Y_jit.y)
        assert Y_numpy.counters == Y_jit.counters
        # ... and each column matches a single-vector jit replay.
        for j in range(X.shape[1]):
            assert np.array_equal(Y_jit.y[:, j], plan.execute(X[:, j]).y)


# ----------------------------------------------------------------------
# Plan wiring: set_backend recursion, warm_compile, prepare() integration
# ----------------------------------------------------------------------
class TestPlanWiring:
    def test_set_backend_recurses_into_children(self):
        plan = prepare(suite_mat("dense2", "bro_hyb", 32), "k20")
        children = plan._children()
        assert children, "bro_hyb plan should have part plans"
        plan.set_backend("jit")
        assert plan.backend == "jit"
        assert all(c.backend == "jit" for c in children)
        plan.set_backend("numpy")
        assert all(c.backend == "numpy" for c in children)

    def test_set_backend_rejects_policy_names(self):
        plan = prepare(suite_mat("epb3", "bro_ell", 32), "k20")
        with pytest.raises(ValidationError, match="executor backend"):
            plan.set_backend("auto")

    def test_warm_compile_noop_on_numpy(self):
        plan = prepare(suite_mat("epb3", "bro_ell", 32), "k20")
        assert plan.warm_compile() == 0.0
        assert plan.jit_compile_seconds == 0.0

    def test_warm_compile_records_seconds_on_jit(self):
        plan = prepare(suite_mat("epb3", "bro_ell", 32), "k20")
        plan.set_backend("jit")
        seconds = plan.warm_compile()
        assert seconds > 0.0
        assert plan.jit_compile_seconds == seconds

    def test_prepare_jit_without_numba_builds_numpy_plan(self):
        if backends.jit_available():
            pytest.skip("host has Numba")
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            plan = prepare(suite_mat("epb3", "bro_ell", 32), "k20",
                           backend="jit")
        finally:
            M.stop_collecting()
        assert plan.backend == "numpy"
        assert plan.jit_compile_seconds == 0.0
        assert any(
            k.startswith("exec.backend_fallback")
            for k in reg.snapshot()["counters"]
        )

    def test_prepare_jit_with_numba_warm_compiles(self, monkeypatch):
        monkeypatch.setattr(backends, "jit_available", lambda: True)
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            plan = prepare(suite_mat("epb3", "bro_ell", 32), "k20",
                           backend="auto")
        finally:
            M.stop_collecting()
        assert plan.backend == "jit"
        assert plan.jit_compile_seconds > 0.0
        snap = reg.snapshot()["counters"]
        key = f'plan.jit_builds{{device="{plan.device.name}",format="bro_ell"}}'
        assert snap[key] == 1

    def test_legacy_replay_override_ignores_backend(self):
        """Plans that predate the backend layer override ``_replay``
        directly; any backend request must leave them untouched."""

        class _LegacyPlan(SpMVPlan):
            format_name = "legacy"

            def _replay(self, x):
                return np.zeros(self.matrix.shape[0])

        mat = convert(random_coo(10, 8, density=0.3, seed=0), "csr")
        donor = prepare(mat, "k20")
        plan = _LegacyPlan(mat, donor.device, donor.counters())
        plan.set_backend("jit")
        assert plan._replay(np.ones(8)).shape == (10,)
        with pytest.raises(NotImplementedError, match="_replay_numpy"):
            plan._replay_numpy(np.ones(8))


# ----------------------------------------------------------------------
# Policy-level graceful fallback (the satellite acceptance check)
# ----------------------------------------------------------------------
class TestPolicyFallback:
    def test_jit_policy_runs_unchanged_without_numba(self):
        if backends.jit_available():
            pytest.skip("host has Numba")
        mat = suite_mat("dense2", "bro_ell", 32)
        x = _x_for(mat)
        y_numpy = run_spmv(
            mat, x, "k20",
            policy=ExecutionPolicy(plan_cache=PlanCache(),
                                   compute_backend="numpy"),
        )
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            y_jit = run_spmv(
                mat, x, "k20",
                policy=ExecutionPolicy(plan_cache=PlanCache(),
                                       compute_backend="jit"),
            )
        finally:
            M.stop_collecting()
        assert np.array_equal(y_numpy.y, y_jit.y)
        assert y_numpy.counters == y_jit.counters
        assert any(
            k.startswith("exec.backend_fallback")
            for k in reg.snapshot()["counters"]
        )

    def test_auto_policy_is_default_and_silent(self):
        assert ExecutionPolicy().compute_backend == "auto"
        mat = suite_mat("dense2", "bro_ell", 32)
        x = _x_for(mat)
        reg = M.start_collecting(M.MetricsRegistry())
        try:
            res = run_spmv(mat, x, "k20",
                           policy=ExecutionPolicy(plan_cache=PlanCache()))
        finally:
            M.stop_collecting()
        assert res.y.shape == (mat.shape[0],)
        assert not any(
            k.startswith("exec.backend_fallback")
            for k in reg.snapshot()["counters"]
        )

    def test_policy_validates_backend_name(self):
        with pytest.raises(ValidationError, match="compute_backend"):
            ExecutionPolicy(compute_backend="cuda")
