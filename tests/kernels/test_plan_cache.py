"""Plan-cache correctness: LRU bounds, fingerprint invalidation, staleness.

The acceptance criterion: re-sealing or corrupting a container must
invalidate its cached plan — a mutated matrix can never be served stale
results.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.formats.conversion import convert
from repro.integrity.checksums import seal
from repro.kernels import PLAN_CACHE, PlanCache, run_spmv
from repro.kernels.plancache import fingerprint_token
from repro.telemetry import metrics as M
from repro.exec.policy import ExecutionPolicy
from tests.conftest import random_coo


def small_matrix(seed=0, fmt="bro_ell"):
    coo = random_coo(64, 64, density=0.08, seed=seed)
    kwargs = {"h": 16} if fmt in ("bro_ell", "bro_hyb") else {}
    return convert(coo, fmt, **kwargs)


class TestLookup:
    def test_miss_then_hit_returns_same_plan(self):
        cache = PlanCache()
        mat = small_matrix()
        p1 = cache.get_or_build(mat, "k20")
        p2 = cache.get_or_build(mat, "k20")
        assert p1 is p2
        s = cache.stats()
        assert s["misses"] == 1 and s["hits"] == 1 and s["builds"] == 1
        assert len(cache) == 1
        assert mat in cache

    def test_distinct_devices_get_distinct_plans(self):
        cache = PlanCache()
        mat = small_matrix()
        p_k20 = cache.get_or_build(mat, "k20")
        p_c2070 = cache.get_or_build(mat, "c2070")
        assert p_k20 is not p_c2070
        assert len(cache) == 2

    def test_invalid_validate_level_rejected(self):
        cache = PlanCache()
        with pytest.raises(ValueError, match="validate"):
            cache.get_or_build(small_matrix(), "k20", validate="paranoid")

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestLRUEviction:
    def test_oldest_entry_evicted_at_capacity(self):
        cache = PlanCache(maxsize=2)
        mats = [small_matrix(seed=s) for s in range(3)]
        for m in mats:
            cache.get_or_build(m, "k20")
        assert len(cache) == 2
        assert mats[0] not in cache
        assert mats[1] in cache and mats[2] in cache
        assert cache.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self):
        cache = PlanCache(maxsize=2)
        a, b, c = (small_matrix(seed=s) for s in range(3))
        cache.get_or_build(a, "k20")
        cache.get_or_build(b, "k20")
        cache.get_or_build(a, "k20")  # a becomes most-recent
        cache.get_or_build(c, "k20")  # evicts b, not a
        assert a in cache and c in cache and b not in cache

    def test_evicted_entry_rebuilds(self):
        cache = PlanCache(maxsize=1)
        a, b = small_matrix(seed=0), small_matrix(seed=1)
        p1 = cache.get_or_build(a, "k20")
        cache.get_or_build(b, "k20")
        p2 = cache.get_or_build(a, "k20")
        assert p1 is not p2
        assert cache.stats()["builds"] == 3


class TestInvalidation:
    def test_reseal_after_mutation_invalidates(self):
        """The acceptance case: mutate + re-seal => fresh plan, fresh results."""
        cache = PlanCache()
        coo = random_coo(48, 48, density=0.1, seed=3)
        mat = seal(convert(coo, "coo"))
        x = np.random.default_rng(0).standard_normal(48)

        p1 = cache.get_or_build(mat, "k20")
        y1 = p1.execute(x).y

        mat.vals[:] *= 2.0
        seal(mat)
        p2 = cache.get_or_build(mat, "k20")
        y2 = p2.execute(x).y

        assert p1 is not p2
        assert cache.stats()["invalidations"] == 1
        np.testing.assert_allclose(y2, 2.0 * y1)

    def test_unsealed_header_validation_cannot_see_silent_mutation(self):
        # Documents the contract: without a seal the header token is None
        # before and after, so "header" validation serves the cached plan.
        cache = PlanCache()
        mat = small_matrix(fmt="coo")
        p1 = cache.get_or_build(mat, "k20")
        mat.vals[:] *= 2.0
        p2 = cache.get_or_build(mat, "k20")
        assert p1 is p2

    def test_full_validation_catches_silent_mutation(self):
        cache = PlanCache()
        mat = small_matrix(fmt="coo")
        p1 = cache.get_or_build(mat, "k20", validate="full")
        mat.vals[:] *= 2.0
        p2 = cache.get_or_build(mat, "k20", validate="full")
        assert p1 is not p2
        assert cache.stats()["invalidations"] == 1

    def test_validate_none_trusts_the_key(self):
        cache = PlanCache()
        mat = seal(small_matrix(fmt="coo"))
        p1 = cache.get_or_build(mat, "k20")
        mat.vals[:] *= 2.0
        seal(mat)
        assert cache.get_or_build(mat, "k20", validate="none") is p1

    def test_explicit_invalidate_drops_all_devices(self):
        cache = PlanCache()
        mat = small_matrix()
        cache.get_or_build(mat, "k20")
        cache.get_or_build(mat, "c2070")
        assert cache.invalidate(mat) == 2
        assert len(cache) == 0
        assert cache.invalidate(mat) == 0

    def test_clear_keeps_stats(self):
        cache = PlanCache()
        cache.get_or_build(small_matrix(), "k20")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["builds"] == 1

    def test_fingerprint_token_none_for_unsealed(self):
        assert fingerprint_token(None) is None


class TestBackendKeying:
    """The cache key includes the resolved executor backend: a numpy plan
    is never served to a jit request and vice versa (satellite 1)."""

    def test_numpy_and_jit_plans_cached_separately(self, monkeypatch):
        from repro.kernels import backends

        monkeypatch.setattr(backends, "jit_available", lambda: True)
        cache = PlanCache()
        mat = small_matrix()
        p_numpy = cache.get_or_build(mat, "k20", backend="numpy")
        p_jit = cache.get_or_build(mat, "k20", backend="jit")
        assert p_numpy is not p_jit
        assert p_numpy.backend == "numpy"
        assert p_jit.backend == "jit"
        assert len(cache) == 2
        # Repeat requests hit their own entry, never the other backend's.
        assert cache.get_or_build(mat, "k20", backend="numpy") is p_numpy
        assert cache.get_or_build(mat, "k20", backend="jit") is p_jit
        assert cache.stats()["builds"] == 2
        assert cache.stats()["hits"] == 2

    def test_auto_and_honoured_jit_share_an_entry(self, monkeypatch):
        # "auto" resolves before keying, so it lands on the same entry as
        # an explicit (honourable) "jit" request — no double builds.
        from repro.kernels import backends

        monkeypatch.setattr(backends, "jit_available", lambda: True)
        cache = PlanCache()
        mat = small_matrix()
        p_auto = cache.get_or_build(mat, "k20", backend="auto")
        assert p_auto.backend == "jit"
        assert cache.get_or_build(mat, "k20", backend="jit") is p_auto
        assert cache.stats()["builds"] == 1

    def test_unfulfillable_jit_shares_the_numpy_entry(self):
        from repro.kernels import backends

        if backends.jit_available():
            pytest.skip("host has Numba")
        cache = PlanCache()
        mat = small_matrix()
        p_numpy = cache.get_or_build(mat, "k20", backend="numpy")
        # Without Numba, "jit" resolves to numpy — same key, zero rebuilds.
        assert cache.get_or_build(mat, "k20", backend="jit") is p_numpy
        assert cache.stats()["builds"] == 1

    def test_eviction_is_per_backend_entry(self, monkeypatch):
        from repro.kernels import backends

        monkeypatch.setattr(backends, "jit_available", lambda: True)
        cache = PlanCache(maxsize=2)
        mat = small_matrix()
        p_numpy = cache.get_or_build(mat, "k20", backend="numpy")
        p_jit = cache.get_or_build(mat, "k20", backend="jit")
        other = small_matrix(seed=5)
        cache.get_or_build(other, "k20", backend="numpy")  # evicts p_numpy
        assert cache.stats()["evictions"] == 1
        # The jit entry survived; only the numpy plan rebuilds.
        assert cache.get_or_build(mat, "k20", backend="jit") is p_jit
        rebuilt = cache.get_or_build(mat, "k20", backend="numpy")
        assert rebuilt is not p_numpy
        assert rebuilt.backend == "numpy"

    def test_invalidate_drops_every_backend_entry(self, monkeypatch):
        from repro.kernels import backends

        monkeypatch.setattr(backends, "jit_available", lambda: True)
        cache = PlanCache()
        mat = small_matrix()
        cache.get_or_build(mat, "k20", backend="numpy")
        cache.get_or_build(mat, "k20", backend="jit")
        cache.get_or_build(mat, "c2070", backend="numpy")
        assert cache.invalidate(mat) == 3
        assert len(cache) == 0


class TestWarmSessionRebuilds:
    """Satellite 6: a warm Session replays with zero plan rebuilds and a
    memoized counters prototype (no per-call re-derivation)."""

    def test_zero_rebuilds_on_warm_session(self):
        from repro.pipeline import Session

        cache = PlanCache()
        sess = Session(
            "k20",
            policy=ExecutionPolicy(plan_cache=cache, compute_backend="numpy"),
        )
        sess.use(small_matrix())
        sess.prepare()
        assert cache.stats()["builds"] == 1
        x = np.ones(sess.matrix.shape[1])
        for _ in range(4):
            sess.run(x)
        stats = cache.stats()
        assert stats["builds"] == 1, "warm session must not rebuild plans"
        assert stats["misses"] == 1

    def test_counters_prototype_memoized_per_k(self):
        cache = PlanCache()
        plan = cache.get_or_build(small_matrix(), "k20")
        c1 = plan.counters()
        c2 = plan.counters()
        assert c1 == c2 and c1 is not c2  # copies of one memoized proto
        assert plan._counters_memo[1] is plan._counters
        k1 = plan.counters(4)
        k2 = plan.counters(4)
        assert k1 == k2 and k1 is not k2
        assert len(plan._counters_memo) == 2
        assert k1.launches == 4 * c1.launches
        assert k1.threads == c1.threads


class TestRunSpmvIntegration:
    def test_corrupt_then_reseal_never_serves_stale_y(self):
        cache = PlanCache()
        coo = random_coo(40, 40, density=0.1, seed=9)
        mat = seal(convert(coo, "coo"))
        x = np.ones(40)
        y1 = run_spmv(mat, x, "k20",
                      policy=ExecutionPolicy(engine="fast", plan_cache=cache)).y
        mat.vals[:] += 1.0
        seal(mat)
        y2 = run_spmv(mat, x, "k20",
                      policy=ExecutionPolicy(engine="fast", plan_cache=cache)).y
        np.testing.assert_allclose(y2, mat.spmv(x))
        assert not np.allclose(y1, y2)

    def test_global_cache_is_the_default(self):
        mat = small_matrix(seed=42)
        x = np.ones(mat.shape[1])
        before = PLAN_CACHE.stats()["builds"]
        run_spmv(mat, x, "k20", policy=ExecutionPolicy(engine="fast"))
        run_spmv(mat, x, "k20", policy=ExecutionPolicy(engine="fast"))
        after = PLAN_CACHE.stats()
        assert after["builds"] == before + 1
        assert after["hits"] >= 1

    def test_cache_metrics_emitted(self):
        reg = M.MetricsRegistry()
        cache = PlanCache()
        mat = small_matrix(seed=11)
        with telemetry.tracing(registry=reg):
            cache.get_or_build(mat, "k20")
            cache.get_or_build(mat, "k20")
        telemetry.disable()
        snap = reg.snapshot()["counters"]
        assert snap["plan_cache.misses"] == 1
        assert snap["plan_cache.hits"] == 1
        assert snap["plan_cache.builds"] == 1
