"""Multi-RHS (SpMM) batching: every column bit-identical to its SpMV,
counters equal to the sum of the k single-vector records.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.formats.conversion import convert
from repro.kernels import prepare, run_spmm, run_spmv
from repro.kernels.plan import check_multi_x
from repro.kernels.plancache import PlanCache
from repro.exec.policy import ExecutionPolicy
from tests.conftest import random_coo

_REF = ExecutionPolicy(engine="reference")

FORMATS = ("bro_ell", "bro_ell_mt", "bro_ell_vc", "bro_coo", "bro_hyb",
           "ellpack", "coo", "csr")


def make(fmt, seed=0):
    coo = random_coo(96, 80, density=0.07, seed=seed)
    kwargs = {"h": 32} if fmt in ("bro_ell", "bro_hyb") else {}
    return coo, convert(coo, fmt, **kwargs)


class TestColumnEquivalence:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_each_column_bit_identical_to_spmv(self, fmt):
        coo, mat = make(fmt)
        X = np.random.default_rng(5).standard_normal((80, 4))
        res = run_spmm(mat, X, "k20")
        assert res.y.shape == (96, 4)
        for j in range(4):
            ref = run_spmv(mat, X[:, j], "k20", policy=_REF)
            assert np.array_equal(res.y[:, j], ref.y), (fmt, j)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_counters_equal_sum_of_columns(self, fmt):
        _, mat = make(fmt)
        X = np.random.default_rng(6).standard_normal((80, 3))
        res = run_spmm(mat, X, "k20")
        expected = sum(
            run_spmv(mat, X[:, j], "k20", policy=_REF).counters
            for j in range(3)
        )
        assert res.counters == expected

    def test_fast_and_reference_spmm_agree(self):
        _, mat = make("bro_ell")
        X = np.random.default_rng(7).standard_normal((80, 5))
        fast = run_spmm(mat, X, "k20",
                        policy=ExecutionPolicy(engine="fast", plan_cache=PlanCache()))
        ref = run_spmm(mat, X, "k20", policy=_REF)
        assert np.array_equal(fast.y, ref.y)
        assert fast.counters == ref.counters

    def test_single_column_block(self):
        _, mat = make("bro_ell")
        X = np.random.default_rng(8).standard_normal((80, 1))
        res = run_spmm(mat, X, "k20")
        ref = run_spmv(mat, X[:, 0], "k20", policy=_REF)
        assert np.array_equal(res.y[:, 0], ref.y)
        assert res.counters == ref.counters

    def test_plan_execute_many_matches_run_spmm(self):
        _, mat = make("bro_coo")
        plan = prepare(mat, "k20")
        X = np.random.default_rng(9).standard_normal((80, 6))
        a = plan.execute_many(X)
        b = run_spmm(mat, X, "k20", policy=_REF)
        assert np.array_equal(a.y, b.y)
        assert a.counters == b.counters


class TestValidation:
    def test_vector_rejected(self):
        _, mat = make("bro_ell")
        with pytest.raises(ValidationError, match="shape"):
            run_spmm(mat, np.ones(80), "k20")

    def test_wrong_row_count_rejected(self):
        _, mat = make("bro_ell")
        with pytest.raises(ValidationError, match="shape"):
            run_spmm(mat, np.ones((79, 2)), "k20")

    def test_empty_block_rejected(self):
        _, mat = make("bro_ell")
        with pytest.raises(ValidationError, match="k >= 1"):
            check_multi_x(mat, np.ones((80, 0)))

    def test_verified_fallback_path(self):
        import copy

        from repro.formats.csr import CSRMatrix

        coo, mat = make("bro_ell")
        mat = copy.deepcopy(mat)
        mat.stream.data[:] = np.iinfo(mat.stream.data.dtype).max
        fb = CSRMatrix.from_coo(coo)
        X = np.random.default_rng(10).standard_normal((80, 3))
        res = run_spmm(mat, X, "k20",
                       policy=ExecutionPolicy(verify="structure", fallback=fb))
        assert res.fallback_used
        for j in range(3):
            np.testing.assert_allclose(res.y[:, j], coo.spmv(X[:, j]))
