"""The prepared-plan (fast) engine must be indistinguishable from the
stepwise reference engine: bit-identical ``y`` (no tolerance) and equal
``KernelCounters`` for every suite matrix, every BRO format, and both
symbol lengths — the tentpole acceptance criterion.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro import telemetry
from repro.errors import KernelError, ValidationError
from repro.formats.conversion import convert
from repro.kernels import (
    has_planner,
    plannable_formats,
    prepare,
    run_spmv,
)
from repro.kernels.plancache import PlanCache
from repro.matrices.suite import TABLE2, generate
from repro.telemetry import metrics as M
from repro.exec.policy import ExecutionPolicy
from tests.conftest import random_coo

_REF = ExecutionPolicy(engine="reference")

#: Scale small enough that the full 31-matrix suite sweep stays fast.
SUITE_SCALE = 0.004

BRO_FORMATS = ("bro_ell", "bro_ell_mt", "bro_ell_vc", "bro_coo", "bro_hyb", "bro_sell")
BASELINE_FORMATS = ("ellpack", "coo", "csr", "sliced_ellpack", "ellpack_r",
                    "sell_c_sigma", "cmrs", "hyb", "bellpack")


@lru_cache(maxsize=None)
def suite_coo(name):
    return generate(name, scale=SUITE_SCALE)


@lru_cache(maxsize=None)
def suite_format(name, fmt, sym_len):
    kwargs = {"sym_len": sym_len}
    if fmt in ("bro_ell", "bro_hyb"):
        kwargs["h"] = 64
    return convert(suite_coo(name), fmt, **kwargs)


def _x_for(mat, seed=7):
    return np.random.default_rng(seed).standard_normal(mat.shape[1])


class TestRegistry:
    def test_all_target_formats_plannable(self):
        for fmt in BRO_FORMATS + BASELINE_FORMATS:
            assert has_planner(fmt)
        assert set(BRO_FORMATS + BASELINE_FORMATS) <= set(plannable_formats())

    def test_unplannable_format_raises(self, random_matrix, monkeypatch):
        # Every format with a reference kernel now ships a planner, so
        # simulate a missing builder by unbinding one temporarily.
        from repro import registry as _registry

        monkeypatch.setattr(_registry.get_spec("ellpack_r"), "planner", None)
        mat = convert(random_matrix, "ellpack_r")
        assert not has_planner("ellpack_r")
        with pytest.raises(KernelError, match="no prepared-plan builder"):
            prepare(mat, "k20")
        with pytest.raises(KernelError, match="engine='fast'"):
            run_spmv(mat, _x_for(mat), "k20",
                     policy=ExecutionPolicy(engine="fast"))

    def test_auto_engine_falls_back_to_reference(self, random_matrix, monkeypatch):
        # auto + unplannable format must still work (reference engine).
        from repro import registry as _registry

        monkeypatch.setattr(_registry.get_spec("ellpack_r"), "planner", None)
        mat = convert(random_matrix, "ellpack_r")
        res = run_spmv(mat, _x_for(mat), "k20",
                       policy=ExecutionPolicy(plan_cache=PlanCache()))
        np.testing.assert_allclose(res.y, random_matrix.spmv(_x_for(mat)))


class TestSuiteEquivalence:
    """The headline sweep: every Table 2 matrix x BRO format x sym_len."""

    @pytest.mark.parametrize("name", sorted(TABLE2))
    @pytest.mark.parametrize("sym_len", [32, 64])
    def test_suite_matrix_bit_identical(self, name, sym_len):
        for fmt in BRO_FORMATS:
            mat = suite_format(name, fmt, sym_len)
            x = _x_for(mat)
            ref = run_spmv(mat, x, "k20", policy=_REF)
            plan = prepare(mat, "k20")
            fast = plan.execute(x)
            assert np.array_equal(ref.y, fast.y), (name, fmt, sym_len)
            assert ref.counters == fast.counters, (name, fmt, sym_len)

    @pytest.mark.parametrize("fmt", BASELINE_FORMATS)
    def test_baseline_formats_bit_identical(self, fmt):
        for seed in (0, 1, 2):
            coo = random_coo(140, 120, density=0.06, seed=seed)
            mat = convert(coo, fmt)
            x = _x_for(mat, seed)
            ref = run_spmv(mat, x, "k20", policy=_REF)
            fast = prepare(mat, "k20").execute(x)
            assert np.array_equal(ref.y, fast.y)
            assert ref.counters == fast.counters

    @pytest.mark.parametrize("device", ["c2070", "gtx680", "k20"])
    def test_counters_match_on_every_device(self, device):
        mat = suite_format("sme3Da", "bro_ell", 32)
        x = _x_for(mat)
        ref = run_spmv(mat, x, device, policy=_REF)
        fast = prepare(mat, device).execute(x)
        assert np.array_equal(ref.y, fast.y)
        assert ref.counters == fast.counters

    def test_empty_row_and_single_entry_edge_cases(self):
        from repro.formats.coo import COOMatrix

        for coo in (
            COOMatrix([0, 7], [1, 2], [1.0, 2.0], (9, 4)),
            COOMatrix([2], [3], [5.0], (5, 5)),
        ):
            for fmt in BRO_FORMATS:
                kwargs = {"h": 4} if fmt in ("bro_ell", "bro_hyb") else {}
                mat = convert(coo, fmt, **kwargs)
                x = np.ones(coo.shape[1])
                ref = run_spmv(mat, x, "k20", policy=_REF)
                fast = prepare(mat, "k20").execute(x)
                assert np.array_equal(ref.y, fast.y)
                assert ref.counters == fast.counters


class TestDispatchEngines:
    def test_run_spmv_engine_fast_equals_reference(self):
        mat = suite_format("epb3", "bro_ell", 32)
        x = _x_for(mat)
        cache = PlanCache()
        ref = run_spmv(mat, x, "k20", policy=_REF)
        fast = run_spmv(mat, x, "k20",
                        policy=ExecutionPolicy(engine="fast", plan_cache=cache))
        again = run_spmv(mat, x, "k20",
                        policy=ExecutionPolicy(engine="fast", plan_cache=cache))
        assert np.array_equal(ref.y, fast.y)
        assert np.array_equal(ref.y, again.y)
        assert ref.counters == fast.counters == again.counters
        assert cache.stats()["builds"] == 1
        assert cache.stats()["hits"] == 1

    def test_explicit_plan_argument(self):
        mat = suite_format("rim", "bro_coo", 32)
        x = _x_for(mat)
        plan = prepare(mat, "k20")
        ref = run_spmv(mat, x, "k20", policy=_REF)
        fast = run_spmv(mat, x, "k20", policy=ExecutionPolicy(plan=plan))
        assert np.array_equal(ref.y, fast.y)
        assert ref.counters == fast.counters

    def test_plan_for_wrong_matrix_rejected(self):
        a = suite_format("rim", "bro_ell", 32)
        b = suite_format("epb3", "bro_ell", 32)
        plan = prepare(a, "k20")
        with pytest.raises(ValidationError, match="different matrix"):
            run_spmv(b, _x_for(b), "k20", policy=ExecutionPolicy(plan=plan))

    def test_plan_for_wrong_device_rejected(self):
        mat = suite_format("rim", "bro_ell", 32)
        plan = prepare(mat, "c2070")
        with pytest.raises(ValidationError, match="device"):
            run_spmv(mat, _x_for(mat), "k20", policy=ExecutionPolicy(plan=plan))

    def test_plan_conflicts_with_reference_engine(self):
        mat = suite_format("rim", "bro_ell", 32)
        plan = prepare(mat, "k20")
        with pytest.raises(ValidationError, match="engine='reference'"):
            run_spmv(mat, _x_for(mat), "k20",
                     policy=ExecutionPolicy(plan=plan, engine="reference"))

    def test_verified_fallback_path_with_fast_engine(self):
        """A corrupted container degrades to the fallback on the fast path
        exactly as on the reference path (plan build is inside the guard)."""
        import copy

        from repro.formats.csr import CSRMatrix

        coo = suite_coo("rim")
        mat = copy.deepcopy(suite_format("rim", "bro_ell", 32))
        # Corrupt the packed stream so decoding produces garbage widths.
        mat.stream.data[:] = np.iinfo(mat.stream.data.dtype).max
        fb = CSRMatrix.from_coo(coo)
        x = _x_for(mat)
        res = run_spmv(
            mat, x, "k20",
            policy=ExecutionPolicy(verify="structure", fallback=fb,
                                   engine="fast", plan_cache=PlanCache()),
        )
        assert res.fallback_used
        np.testing.assert_allclose(res.y, coo.spmv(x))


class TestTelemetryParity:
    @pytest.fixture(autouse=True)
    def telemetry_off(self):
        telemetry.disable()
        yield
        telemetry.disable()

    def test_fast_replay_emits_kernel_span_and_metrics(self):
        mat = suite_format("epb3", "bro_ell", 32)
        x = _x_for(mat)
        plan = prepare(mat, "k20")
        reg = M.MetricsRegistry()
        with telemetry.tracing(registry=reg) as t:
            result = plan.execute(x)
        (kspan,) = t.find("kernel.bro_ell")
        assert kspan.attrs["engine"] == "fast"
        assert kspan.counters is not None
        assert kspan.counters.dram_bytes == result.counters.dram_bytes
        key = f'kernel.dram_bytes{{device="{result.device.name}",format="bro_ell"}}'
        assert reg.snapshot()["counters"][key] == result.counters.dram_bytes

    def test_prepare_emits_plan_span_and_build_metrics(self):
        mat = suite_format("epb3", "bro_ell", 32)
        reg = M.MetricsRegistry()
        with telemetry.tracing(registry=reg) as t:
            plan = prepare(mat, "k20")
        assert t.find("spmv.plan")
        assert plan.build_seconds > 0.0
        snap = reg.snapshot()["counters"]
        key = f'plan.builds{{device="{plan.device.name}",format="bro_ell"}}'
        assert snap[key] == 1

    def test_fast_result_identical_with_and_without_telemetry(self):
        mat = suite_format("epb3", "bro_ell", 32)
        x = _x_for(mat)
        plan = prepare(mat, "k20")
        plain = plan.execute(x)
        with telemetry.tracing():
            traced = plan.execute(x)
        assert np.array_equal(plain.y, traced.y)
        assert plain.counters == traced.counters
