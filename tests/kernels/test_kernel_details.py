"""Per-kernel counter details not covered by the cross-format tests."""

import numpy as np

from repro.formats import convert
from repro.formats.coo import COOMatrix
from repro.gpu.device import TESLA_K20
from repro.kernels import get_kernel, run_spmv


def uniform_band(m=2048, k=8):
    cols = np.minimum(np.arange(k) + np.maximum(0, np.arange(m)[:, None] - k),
                      m - 1)
    return COOMatrix(np.repeat(np.arange(m), k), cols.reshape(-1),
                     np.ones(m * k), (m, m))


class TestELLPACKCounters:
    def test_exact_streaming_traffic(self):
        coo = uniform_band()
        res = run_spmv(convert(coo, "ellpack"), np.ones(2048), "k20")
        m, k = 2048, 8
        # Column-major streaming: exactly m*k int32 + m*k float64.
        assert res.counters.index_bytes == m * k * 4
        assert res.counters.value_bytes == m * k * 8
        assert res.counters.issued_flops == 2 * m * k
        assert res.counters.useful_flops == 2 * coo.nnz

    def test_padding_inflates_issued_flops(self):
        # One long row forces k=32 for everyone.
        rows = np.concatenate([np.repeat(np.arange(100), 2), np.zeros(30)])
        cols = np.concatenate(
            [np.tile([0, 50], 100), np.arange(10, 40)]  # distinct from 0, 50
        )
        coo = COOMatrix(rows, cols, np.ones(rows.size), (100, 100))
        res = run_spmv(convert(coo, "ellpack"), np.ones(100), "k20")
        assert res.counters.issued_flops == 2 * 100 * 32
        assert res.counters.useful_flops == 2 * coo.nnz


class TestELLPACKRCounters:
    def test_warp_granularity(self):
        # 64 rows: first warp rows all length 2, second warp has one
        # length-30 row -> warp iterations 2 + 30.
        lengths = np.full(64, 2)
        lengths[40] = 30
        rows = np.repeat(np.arange(64), lengths)
        cols = np.concatenate([np.arange(k) for k in lengths])
        coo = COOMatrix(rows, cols, np.ones(rows.size), (64, 64))
        res = run_spmv(convert(coo, "ellpack_r"), np.ones(64), "k20")
        # index traffic = (2 + 30) warp-iterations x 128 B.
        assert res.counters.index_bytes == (2 + 30) * 128
        assert res.counters.value_bytes == (2 + 30) * 256
        assert res.counters.aux_bytes > 0  # row_length array


class TestCSRCounters:
    def test_warp_per_row_reduction_flops(self):
        coo = uniform_band(m=256, k=8)
        res = run_spmv(convert(coo, "csr"), np.ones(256), "k20")
        # 2 flops/entry + a 5-step warp tree per row.
        assert res.counters.issued_flops == 2 * coo.nnz + 5 * 32 * 256

    def test_empty_rows_cost_nothing_per_entry(self):
        coo = COOMatrix([5], [5], [1.0], (64, 64))
        res = run_spmv(convert(coo, "csr"), np.ones(64), "k20")
        assert res.counters.index_bytes <= 2 * 128


class TestHYBCounters:
    def test_sum_of_parts_plus_two_launches(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(1, 6, size=512)
        lengths[::64] = 60
        rows = np.repeat(np.arange(512), lengths)
        cols = np.concatenate(
            [np.sort(rng.choice(512, k, replace=False)) for k in lengths]
        )
        coo = COOMatrix(rows, cols, np.ones(rows.size), (512, 512))
        hyb = convert(coo, "hyb")
        assert hyb.coo.nnz > 0
        res = run_spmv(hyb, np.ones(512), "k20")
        assert res.counters.launches == 3  # ELL + COO main + COO carry
        ell_res = get_kernel("ellpack").run(hyb.ell, np.ones(512), TESLA_K20)
        assert res.counters.index_bytes > ell_res.counters.index_bytes

    def test_pure_ell_single_launch(self):
        coo = uniform_band(m=512, k=4)
        hyb = convert(coo, "hyb")
        assert hyb.coo.nnz == 0
        res = run_spmv(hyb, np.ones(512), "k20")
        assert res.counters.launches == 1


class TestSlicedELLCounters:
    def test_traffic_below_full_ellpack_on_variable_rows(self):
        rng = np.random.default_rng(1)
        lengths = np.where(np.arange(1024) < 512, 2, 20)
        rows = np.repeat(np.arange(1024), lengths)
        cols = np.concatenate(
            [np.sort(rng.choice(1024, k, replace=False)) for k in lengths]
        )
        coo = COOMatrix(rows, cols, np.ones(rows.size), (1024, 1024))
        x = np.ones(1024)
        full = run_spmv(convert(coo, "ellpack"), x, "k20")
        sliced = run_spmv(convert(coo, "sliced_ellpack", h=256), x, "k20")
        assert sliced.counters.value_bytes < full.counters.value_bytes
        assert sliced.counters.issued_flops < full.counters.issued_flops


class TestBROELLDetails:
    def test_stream_bytes_equal_symbol_loads(self):
        coo = uniform_band(m=512, k=8)
        bro = convert(coo, "bro_ell", h=128)
        res = run_spmv(bro, np.ones(512), "k20")
        # Every packed symbol is loaded exactly once, coalesced.
        assert res.counters.index_bytes >= bro.stream.nbytes
        # Transaction rounding can only add, never drop, bytes.
        assert res.counters.index_bytes <= 2 * bro.stream.nbytes + 4 * 128

    def test_x_gather_respects_validity(self):
        # A single valid entry per row: x traffic must be tiny even though
        # slices are padded to the max width.
        coo = COOMatrix(np.arange(256), np.zeros(256), np.ones(256), (256, 256))
        res = run_spmv(convert(coo, "bro_ell", h=64), np.ones(256), "k20")
        assert res.counters.x_bytes <= 64 * TESLA_K20.tex_line_bytes
