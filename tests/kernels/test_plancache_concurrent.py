"""Concurrent-access guarantees of the PlanCache.

The serving layer points many executor threads at one shared cache, so
``get_or_build`` must be single-flight: concurrent lookups of the same
key produce exactly one build (everyone shares the one plan object), and
concurrent lookups of different keys neither serialize on each other's
builds nor tear the LRU bookkeeping.
"""

import threading
import time

import numpy as np
import pytest

import repro.kernels.plancache as plancache_mod
from repro.errors import KernelError
from repro.formats.conversion import convert
from repro.gpu.device import get_device
from repro.kernels.plancache import PlanCache
from repro.matrices.generators import random_uniform


def _matrix(seed=0, n=64):
    coo = random_uniform(n, n, mu=4.0, sigma=1.0, seed=seed)
    return convert(coo, "bro_ell", h=16)


class CountingPrepare:
    """Wraps the real ``prepare`` with call counting and a slow window."""

    def __init__(self, delay_s=0.05, fail_first=False):
        self.calls = 0
        self.concurrent = 0
        self.max_concurrent = 0
        self.delay_s = delay_s
        self.fail_first = fail_first
        self._lock = threading.Lock()
        self._real = plancache_mod.prepare

    def __call__(self, matrix, device, backend="numpy"):
        with self._lock:
            self.calls += 1
            call_no = self.calls
            self.concurrent += 1
            self.max_concurrent = max(self.max_concurrent, self.concurrent)
        try:
            time.sleep(self.delay_s)
            if self.fail_first and call_no == 1:
                raise KernelError("injected build failure")
            return self._real(matrix, device, backend=backend)
        finally:
            with self._lock:
                self.concurrent -= 1


class TestSingleFlight:
    def test_same_key_races_build_exactly_once(self, monkeypatch):
        cache = PlanCache()
        matrix = _matrix()
        device = get_device("k20")
        counting = CountingPrepare(delay_s=0.05)
        monkeypatch.setattr(plancache_mod, "prepare", counting)

        n_threads = 8
        barrier = threading.Barrier(n_threads)
        plans = [None] * n_threads
        errors = []

        def worker(i):
            try:
                barrier.wait()
                plans[i] = cache.get_or_build(matrix, device)
            except Exception as exc:  # pragma: no cover - fail loudly below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        assert not errors
        assert counting.calls == 1, "concurrent same-key lookups must coalesce"
        assert all(p is plans[0] for p in plans), "all callers share one plan"
        stats = cache.stats()
        assert stats["builds"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == n_threads - 1
        assert stats["single_flight_waits"] == n_threads - 1
        assert len(cache) == 1

    def test_distinct_keys_build_in_parallel(self, monkeypatch):
        """Different keys must not serialize on one build latch."""
        cache = PlanCache()
        device = get_device("k20")
        matrices = [_matrix(seed=s) for s in range(4)]
        counting = CountingPrepare(delay_s=0.05)
        monkeypatch.setattr(plancache_mod, "prepare", counting)

        barrier = threading.Barrier(len(matrices))
        results = {}
        lock = threading.Lock()

        def worker(mat):
            barrier.wait()
            plan = cache.get_or_build(mat, device)
            with lock:
                results[id(mat)] = plan

        threads = [
            threading.Thread(target=worker, args=(m,)) for m in matrices
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        assert counting.calls == len(matrices)
        assert counting.max_concurrent > 1, (
            "distinct-key builds must overlap, not queue behind one latch"
        )
        # No torn LRU state: every matrix resolves to its own plan and
        # the follow-up lookups are pure identity hits.
        for mat in matrices:
            assert results[id(mat)].matrix is mat
            assert cache.get_or_build(mat, device) is results[id(mat)]
        stats = cache.stats()
        assert stats["builds"] == len(matrices)
        assert len(cache) == len(matrices)

    def test_failed_build_releases_the_latch(self, monkeypatch):
        """A builder that raises must not wedge subsequent callers."""
        cache = PlanCache()
        matrix = _matrix()
        device = get_device("k20")
        counting = CountingPrepare(delay_s=0.0, fail_first=True)
        monkeypatch.setattr(plancache_mod, "prepare", counting)

        with pytest.raises(KernelError, match="injected"):
            cache.get_or_build(matrix, device)
        # The claim was released: the next caller becomes the builder.
        plan = cache.get_or_build(matrix, device)
        assert plan.matrix is matrix
        assert counting.calls == 2
        assert cache.stats()["builds"] == 1  # only the successful one landed

    def test_waiter_rebuilds_after_builder_failure(self, monkeypatch):
        """A waiter blocked on a failing build claims the next build."""
        cache = PlanCache()
        matrix = _matrix()
        device = get_device("k20")
        counting = CountingPrepare(delay_s=0.05, fail_first=True)
        monkeypatch.setattr(plancache_mod, "prepare", counting)

        barrier = threading.Barrier(2)
        outcomes = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                plan = cache.get_or_build(matrix, device)
                with lock:
                    outcomes.append(plan)
            except KernelError as exc:
                with lock:
                    outcomes.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        kinds = sorted(type(o).__name__ for o in outcomes)
        # Exactly one thread saw the injected failure; the other (either
        # the second racer or a retry of the latch) built successfully.
        assert "KernelError" in kinds
        assert any(not isinstance(o, Exception) for o in outcomes)
        assert cache.stats()["builds"] == 1

    def test_eviction_pressure_stays_consistent(self, monkeypatch):
        """Bounded cache under concurrent distinct-key traffic: the LRU
        bound holds and every returned plan matches its matrix."""
        cache = PlanCache(maxsize=3)
        device = get_device("k20")
        matrices = [_matrix(seed=s) for s in range(8)]
        counting = CountingPrepare(delay_s=0.005)
        monkeypatch.setattr(plancache_mod, "prepare", counting)

        barrier = threading.Barrier(len(matrices))
        errors = []

        def worker(mat):
            try:
                barrier.wait()
                for _ in range(3):
                    plan = cache.get_or_build(mat, device)
                    assert plan.matrix is mat
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(m,)) for m in matrices
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        assert not errors
        assert len(cache) <= 3
        stats = cache.stats()
        assert stats["evictions"] >= len(matrices) - 3
