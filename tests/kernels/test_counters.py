"""Counter-level behaviour: the traffic model must show the paper's effects."""

import numpy as np
import pytest

from repro.formats import convert
from repro.formats.coo import COOMatrix
from repro.gpu.device import DEVICES
from repro.kernels import run_spmv
from tests.conftest import random_coo


def banded_matrix(m=4096, k=16):
    """Uniform banded matrix: maximally compressible index data."""
    cols = np.minimum(
        np.arange(k) + np.maximum(0, np.arange(m)[:, None] - k // 2), m - 1
    )
    rows = np.repeat(np.arange(m), k)
    return COOMatrix(rows, cols.reshape(-1), np.ones(m * k), (m, m))


def skewed_matrix(m=2048, seed=0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 8, size=m)
    lengths[:: m // 16] = 64
    rows = np.repeat(np.arange(m), lengths)
    cols = np.concatenate(
        [np.sort(rng.choice(m, size=int(k), replace=False)) for k in lengths]
    )
    return COOMatrix(rows, cols, np.ones(rows.size), (m, m))


@pytest.fixture(scope="module")
def banded():
    return banded_matrix()


class TestBROELLTraffic:
    def test_index_traffic_shrinks(self, banded):
        x = np.ones(banded.shape[1])
        ell = run_spmv(convert(banded, "ellpack"), x, "k20")
        bro = run_spmv(convert(banded, "bro_ell"), x, "k20")
        # Small deltas: packed stream must be far below 4 B/entry.
        assert bro.counters.index_bytes < ell.counters.index_bytes / 4

    def test_value_traffic_comparable(self, banded):
        x = np.ones(banded.shape[1])
        ell = run_spmv(convert(banded, "ellpack"), x, "k20")
        bro = run_spmv(convert(banded, "bro_ell"), x, "k20")
        assert bro.counters.value_bytes == pytest.approx(
            ell.counters.value_bytes, rel=0.05
        )

    def test_decode_ops_charged(self, banded):
        bro = run_spmv(convert(banded, "bro_ell"), np.ones(banded.shape[1]), "k20")
        assert bro.counters.decode_ops > banded.nnz  # several ops per entry

    def test_bro_ell_faster_on_compressible_matrix(self, banded):
        x = np.ones(banded.shape[1])
        ell = run_spmv(convert(banded, "ellpack"), x, "k20")
        bro = run_spmv(convert(banded, "bro_ell"), x, "k20")
        assert bro.gflops > ell.gflops

    def test_higher_eai_than_ellpack(self, banded):
        # Fig. 5: BRO-ELL achieves higher effective arithmetic intensity.
        x = np.ones(banded.shape[1])
        ell = run_spmv(convert(banded, "ellpack"), x, "k20")
        bro = run_spmv(convert(banded, "bro_ell"), x, "k20")
        assert (
            bro.counters.effective_arithmetic_intensity
            > ell.counters.effective_arithmetic_intensity
        )


class TestELLPACKRPayoff:
    def test_skewed_rows_cut_traffic(self):
        coo = skewed_matrix()
        x = np.ones(coo.shape[1])
        ell = run_spmv(convert(coo, "ellpack"), x, "k20")
        ellr = run_spmv(convert(coo, "ellpack_r"), x, "k20")
        assert ellr.counters.value_bytes < ell.counters.value_bytes
        assert ellr.counters.issued_flops < ell.counters.issued_flops

    def test_uniform_rows_no_penalty_beyond_aux(self, banded):
        x = np.ones(banded.shape[1])
        ell = run_spmv(convert(banded, "ellpack"), x, "k20")
        ellr = run_spmv(convert(banded, "ellpack_r"), x, "k20")
        assert ellr.counters.index_bytes == ell.counters.index_bytes
        assert ellr.counters.aux_bytes > 0


class TestCOOFamily:
    def test_bro_coo_compresses_row_stream_only(self):
        coo = random_coo(2048, 2048, density=0.004, seed=3)
        x = np.ones(2048)
        plain = run_spmv(coo, x, "k20")
        bro = run_spmv(convert(coo, "bro_coo"), x, "k20")
        assert bro.counters.index_bytes < plain.counters.index_bytes
        # Values are identical streams.
        assert bro.counters.value_bytes == pytest.approx(
            plain.counters.value_bytes, rel=0.05
        )

    def test_two_launches(self):
        coo = random_coo(256, 256, density=0.02, seed=4)
        res = run_spmv(coo, np.ones(256), "k20")
        assert res.counters.launches == 2

    def test_coo_gains_smaller_than_ell_gains(self, banded):
        # Fig. 7 vs Fig. 4: BRO-COO's speedup is weaker than BRO-ELL's.
        x = np.ones(banded.shape[1])
        ell_speedup = (
            run_spmv(convert(banded, "bro_ell"), x, "k20").gflops
            / run_spmv(convert(banded, "ellpack"), x, "k20").gflops
        )
        coo_speedup = (
            run_spmv(convert(banded, "bro_coo"), x, "k20").gflops
            / run_spmv(convert(banded, "coo"), x, "k20").gflops
        )
        assert ell_speedup > coo_speedup


class TestOccupancyEffect:
    def test_small_matrix_underutilizes_bandwidth(self):
        # The e40r5000 effect (Fig. 6): too few rows to fill the device.
        small = banded_matrix(m=1024, k=16)
        big = banded_matrix(m=65536, k=16)
        x_s, x_b = np.ones(1024), np.ones(65536)
        util_small = run_spmv(convert(small, "bro_ell"), x_s, "k20").timing
        util_big = run_spmv(convert(big, "bro_ell"), x_b, "k20").timing
        assert util_small.occupancy < util_big.occupancy
        assert util_small.bandwidth_utilization < util_big.bandwidth_utilization


class TestDeviceScaling:
    def test_gflops_follow_bandwidth(self, banded):
        # Fig. 3 ordering: K20 > GTX680 > C2070 on a big uniform matrix.
        big = banded_matrix(m=131072, k=8)
        x = np.ones(big.shape[1])
        mat = convert(big, "bro_ell")
        perf = {d: run_spmv(mat, x, d).gflops for d in DEVICES}
        assert perf["k20"] > perf["gtx680"] > perf["c2070"]


class TestCounterArithmetic:
    def make(self, launches=1, threads=0, **kw):
        from repro.gpu.counters import KernelCounters

        return KernelCounters(launches=launches, threads=threads, **kw)

    def test_add_is_fieldwise_except_threads(self):
        a = self.make(index_bytes=100, useful_flops=10, threads=256)
        b = self.make(index_bytes=50, useful_flops=5, threads=512)
        total = a + b
        assert total.index_bytes == 150
        assert total.useful_flops == 15
        assert total.launches == 2
        # Sequential launches: the occupancy model sees the larger grid.
        assert total.threads == 512

    def test_radd_absorbs_int_zero(self):
        a = self.make(index_bytes=100)
        total = 0 + a
        assert total == a
        assert total is not a  # a fresh record, not an alias

    def test_builtin_sum_is_exact(self):
        parts = [self.make(launches=1, index_bytes=10) for _ in range(3)]
        total = sum(parts)
        # The int-0 start value must not inject a phantom launch.
        assert total.launches == 3
        assert total.index_bytes == 30

    def test_classmethod_sum_matches_builtin(self):
        from repro.gpu.counters import KernelCounters

        parts = [self.make(launches=2, value_bytes=7) for _ in range(4)]
        assert KernelCounters.sum(parts) == sum(parts)

    def test_classmethod_sum_empty_has_zero_launches(self):
        from repro.gpu.counters import KernelCounters

        total = KernelCounters.sum([])
        assert total.launches == 0
        assert total.dram_bytes == 0

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            self.make() + 1
