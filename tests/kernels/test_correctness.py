"""Every simulated kernel must compute exactly the reference product."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.formats import convert
from repro.gpu.device import DEVICES
from repro.kernels import available_kernels, get_kernel, run_spmv
from tests.conftest import PAPER_A, random_coo

ALL_KERNELS = [
    "coo",
    "csr",
    "ellpack",
    "ellpack_r",
    "sliced_ellpack",
    "hyb",
    "bro_ell",
    "bro_coo",
    "bro_hyb",
]


class TestRegistry:
    def test_every_format_has_a_kernel(self):
        assert set(ALL_KERNELS) <= set(available_kernels())

    def test_unknown_kernel(self):
        with pytest.raises(KernelError):
            get_kernel("nope")

    def test_wrong_format_rejected(self, paper_matrix):
        with pytest.raises(KernelError, match="needs a"):
            get_kernel("ellpack").run(paper_matrix, np.ones(5), DEVICES["k20"])


class TestPaperExample:
    @pytest.mark.parametrize("fmt", ALL_KERNELS)
    def test_kernel_matches_dense(self, fmt, paper_matrix):
        kwargs = {"h": 2} if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb") else {}
        mat = convert(paper_matrix, fmt, **kwargs)
        x = np.arange(1.0, 6.0)
        res = run_spmv(mat, x, "k20")
        np.testing.assert_allclose(res.y, PAPER_A @ x)


class TestRandomMatrices:
    @pytest.mark.parametrize("fmt", ALL_KERNELS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_kernel_matches_reference(self, fmt, seed):
        coo = random_coo(130, 110, density=0.05, seed=seed)
        kwargs = {"h": 32} if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb") else {}
        mat = convert(coo, fmt, **kwargs)
        x = np.random.default_rng(seed + 100).standard_normal(110)
        res = run_spmv(mat, x, "c2070")
        np.testing.assert_allclose(res.y, coo.spmv(x), rtol=1e-10)

    @pytest.mark.parametrize("device", list(DEVICES))
    def test_result_independent_of_device(self, device):
        coo = random_coo(90, 90, density=0.06, seed=5)
        mat = convert(coo, "bro_ell", h=16)
        x = np.random.default_rng(6).standard_normal(90)
        res = run_spmv(mat, x, device)
        np.testing.assert_allclose(res.y, coo.spmv(x), rtol=1e-10)


class TestEdgeCases:
    def test_matrix_with_empty_rows(self):
        from repro.formats.coo import COOMatrix

        coo = COOMatrix([0, 7], [1, 2], [1.0, 2.0], (9, 4))
        x = np.ones(4)
        for fmt in ALL_KERNELS:
            kwargs = {"h": 4} if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb") else {}
            res = run_spmv(convert(coo, fmt, **kwargs), x, "k20")
            np.testing.assert_allclose(res.y, coo.spmv(x))

    def test_single_entry_matrix(self):
        from repro.formats.coo import COOMatrix

        coo = COOMatrix([2], [3], [5.0], (4, 4))
        for fmt in ALL_KERNELS:
            res = run_spmv(convert(coo, fmt), np.ones(4), "gtx680")
            np.testing.assert_allclose(res.y, [0, 0, 5.0, 0])

    def test_dense_matrix(self):
        rng = np.random.default_rng(11)
        dense = rng.standard_normal((40, 24))
        from repro.formats.coo import COOMatrix

        coo = COOMatrix.from_dense(dense)
        x = rng.standard_normal(24)
        for fmt in ("ellpack", "bro_ell", "bro_coo"):
            res = run_spmv(convert(coo, fmt, **({"h": 8} if fmt == "bro_ell" else {})),
                           x, "k20")
            np.testing.assert_allclose(res.y, dense @ x, rtol=1e-10)

    def test_run_spmv_accepts_device_spec(self, paper_matrix):
        res = run_spmv(paper_matrix, np.ones(5), DEVICES["k20"])
        assert res.device is DEVICES["k20"]
