"""Fig. 7: BRO-COO vs COO across all thirty matrices, three GPUs.

Shape to hold: gains exist but are modest (only the row-index stream is
compressed and the scan machinery is unchanged), clearly below BRO-ELL's
gains; and the Fermi C2070 benefits at least as much as the Kepler parts
on average (the paper's architectural observation).
"""

from conftest import save_table

from repro.bench.experiments import fig4_bro_ell, fig7_bro_coo
from repro.bench.harness import bench_scale, cached_format, spmv_once
from repro.bench.reporting import geomean

COLUMNS = ["matrix", "device", "gflops_coo", "gflops_bro_coo", "speedup_vs_coo"]


def test_fig7_bro_coo(benchmark):
    scale = bench_scale()
    rows = fig7_bro_coo(scale=scale)
    save_table("fig7_bro_coo", rows, COLUMNS, "Fig. 7: BRO-COO vs COO")

    avg = {
        dev: geomean(
            r["speedup_vs_coo"] for r in rows if r["device_key"] == dev
        )
        for dev in ("c2070", "gtx680", "k20")
    }
    save_table(
        "fig7_summary",
        [{"device": d, "avg_speedup": v} for d, v in avg.items()],
        ["device", "avg_speedup"],
        "Fig. 7 summary (modest gains; strongest on Fermi)",
    )

    # Gains are positive on average but modest (< 1.35x).
    for dev, v in avg.items():
        assert 1.0 <= v < 1.35, dev
    # Weaker than BRO-ELL's gains (paper Sec. 4.2.3, K20 comparison).
    ell_rows = fig4_bro_ell(scale=scale, devices=("k20",))
    ell_avg = geomean(r["speedup_vs_ellpack"] for r in ell_rows)
    assert avg["k20"] < ell_avg

    mat = cached_format("stomach", scale, "bro_coo")
    benchmark.pedantic(lambda: spmv_once(mat, "c2070"), rounds=3, iterations=1)
