"""Extension: end-to-end solver study (the paper's Section 1 motivation).

The paper motivates BRO with CG/GMRES whose runtime is dominated by
SpMV. This benchmark runs the same CG solve over HYB and BRO-HYB through
the simulated device and compares the *predicted device time* spent in
SpMV — turning Fig. 8's kernel-level speedup into a solver-level one.
"""

import numpy as np
from conftest import save_table

from repro.core.bro_hyb import BROHYBMatrix
from repro.formats.coo import COOMatrix
from repro.formats.hyb import HYBMatrix
from repro.solvers import SimulatedOperator, conjugate_gradient

COLUMNS = ["format", "iterations", "spmv_calls", "device_ms", "dram_gb",
           "solver_speedup"]


def spd_system(m=6000, seed=11):
    rng = np.random.default_rng(seed)
    k = 9
    offs = np.arange(k) - k // 2
    cols = np.clip(np.arange(m)[:, None] + offs[None, :], 0, m - 1)
    rows = np.repeat(np.arange(m), k)
    vals = np.where(offs[None, :].repeat(m, axis=0).reshape(-1) == 0, 12.0,
                    -1.0 + 0.1 * rng.standard_normal(m * k))
    return COOMatrix(rows, cols.reshape(-1), vals, (m, m))


def test_extension_solver(benchmark):
    coo = spd_system()
    b = coo.spmv(np.ones(coo.shape[0]))
    rows = []
    base_time = None
    for label, fmt in (
        ("hyb", HYBMatrix.from_coo(coo)),
        ("bro_hyb", BROHYBMatrix.from_coo(coo, h=256)),
    ):
        op = SimulatedOperator(fmt, "k20")
        result = conjugate_gradient(op, b, tol=1e-10, max_iter=500)
        assert result.converged
        np.testing.assert_allclose(result.x, np.ones(coo.shape[0]), rtol=1e-6)
        if base_time is None:
            base_time = op.device_time
        rows.append(
            {
                "format": label,
                "iterations": result.iterations,
                "spmv_calls": op.spmv_calls,
                "device_ms": op.device_time * 1e3,
                "dram_gb": op.dram_bytes / 1e9,
                "solver_speedup": base_time / op.device_time,
            }
        )
    save_table("extension_solver", rows, COLUMNS,
               "Extension: CG device time, HYB vs BRO-HYB (K20)")

    # Identical iterate trajectory (lossless decode), fewer device seconds.
    assert rows[0]["iterations"] == rows[1]["iterations"]
    assert rows[1]["solver_speedup"] > 1.05
    assert rows[1]["dram_gb"] < rows[0]["dram_gb"]

    op = SimulatedOperator(BROHYBMatrix.from_coo(coo, h=256), "k20")
    benchmark.pedantic(
        lambda: conjugate_gradient(op, b, tol=1e-6, max_iter=50),
        rounds=1, iterations=1,
    )
