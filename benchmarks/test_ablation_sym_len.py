"""Ablation: symbol length 32 vs 64 bits (Section 3.1 leaves it a knob).

A 64-bit symbol halves the number of coalesced stream loads but doubles
per-row padding (b_p rounds to a bigger boundary); for the short rows of
Test Set 1, 32-bit symbols should compress at least as well.
"""

from conftest import save_table

from repro.bench.harness import bench_scale, cached_matrix, spmv_once
from repro.core.bro_ell import BROELLMatrix
from repro.core.compression import index_compression_report

MATRICES = ["cage12", "shipsec1", "mc2depi", "rim", "stomach"]

COLUMNS = ["matrix", "eta32_pct", "eta64_pct", "gflops32", "gflops64"]


def test_ablation_sym_len(benchmark):
    scale = bench_scale()
    rows = []
    for name in MATRICES:
        coo = cached_matrix(name, scale)
        row = {"matrix": name}
        for sym_len in (32, 64):
            bro = BROELLMatrix.from_coo(coo, h=256, sym_len=sym_len)
            row[f"eta{sym_len}_pct"] = 100.0 * index_compression_report(
                bro, name
            ).eta
            row[f"gflops{sym_len}"] = spmv_once(bro, "k20").gflops
        rows.append(row)
    save_table("ablation_sym_len", rows, COLUMNS,
               "Ablation: BRO-ELL symbol length 32 vs 64 bits (K20)")

    # 32-bit symbols never compress materially worse (padding dominates the
    # short-row matrices at 64 bits).
    for r in rows:
        assert r["eta32_pct"] >= r["eta64_pct"] - 1.0, r["matrix"]
    # And at least one matrix shows a real gap.
    assert any(r["eta32_pct"] > r["eta64_pct"] + 2.0 for r in rows)

    coo = cached_matrix("rim", scale)
    benchmark.pedantic(
        lambda: BROELLMatrix.from_coo(coo, h=256, sym_len=64),
        rounds=3, iterations=1,
    )
