"""Table 4: BRO-HYB partitioning (% of nnz in the BRO-ELL part) and
index space savings, Test Set 2.

Shape to hold: FEM-like matrices (pwtk, bcsstk32, ohne2) put almost
everything in the ELL part; rail4284 (a few enormous rows) is almost pure
COO; webbase-1M compresses worst.
"""

from conftest import save_table

from repro.bench.experiments import table4_hyb_split
from repro.bench.harness import bench_scale, cached_matrix

#: Published Table 4 (% BRO-ELL, eta %).
PAPER_TABLE4 = {
    "bcsstk32": (96.6, 60.4), "cop20k_A": (82.3, 46.7), "ct20stif": (90.7, 55.9),
    "gupta2": (50.0, 43.8), "hvdc2": (86.9, 45.5), "mac_econ": (81.1, 51.6),
    "ohne2": (96.5, 49.5), "pwtk": (99.4, 78.7), "rail4284": (0.85, 45.2),
    "rajat30": (68.1, 34.5), "scircuit": (78.2, 36.6), "sme3Da": (83.6, 55.6),
    "twotone": (61.8, 48.8), "webbase-1M": (64.2, 13.4),
}

COLUMNS = ["matrix", "pct_bro_ell", "pct_paper", "eta_pct", "eta_paper"]


def test_table4_hyb_split(benchmark):
    rows = table4_hyb_split()
    for row in rows:
        row["pct_paper"], row["eta_paper"] = PAPER_TABLE4[row["matrix"]]
    save_table("table4_hyb_split", rows, COLUMNS,
               "Table 4: BRO-HYB partition and savings (measured vs paper)")

    by = {r["matrix"]: r for r in rows}
    # Near-uniform FEM matrices stay almost entirely in the ELL part.
    assert by["pwtk"]["pct_bro_ell"] > 90
    assert by["bcsstk32"]["pct_bro_ell"] > 85
    # rail4284's huge rows overflow to COO almost completely.
    assert by["rail4284"]["pct_bro_ell"] < 25
    # Power-law matrices sit in between.
    assert 30 < by["rajat30"]["pct_bro_ell"] < 95
    # Savings are positive everywhere and ordered sanely.
    for r in rows:
        assert r["eta_pct"] > 0, r["matrix"]
    assert by["pwtk"]["eta_pct"] == max(r["eta_pct"] for r in rows)

    coo = cached_matrix("scircuit", bench_scale())
    from repro.core.bro_hyb import BROHYBMatrix

    benchmark.pedantic(
        lambda: BROHYBMatrix.from_coo(coo, h=256), rounds=3, iterations=1
    )
