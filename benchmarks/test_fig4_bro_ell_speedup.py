"""Fig. 4: BRO-ELL vs ELLPACK and ELLPACK-R on Test Set 1, three GPUs.

Shape to hold: speedups over ELLPACK in the 1.1x-2.1x band with averages
near the paper's 1.5x/1.6x/1.4x (C2070/GTX680/K20); BRO-ELL also beats
the state-of-the-art ELLPACK-R on average (paper: +13%).
"""

from conftest import save_table

from repro.bench.experiments import fig4_bro_ell
from repro.bench.harness import bench_scale, cached_format, spmv_once
from repro.bench.reporting import geomean

COLUMNS = [
    "matrix", "device", "gflops_ellpack", "gflops_ellpack_r",
    "gflops_bro_ell", "speedup_vs_ellpack", "speedup_vs_ellpack_r",
]


def test_fig4_bro_ell_speedup(benchmark):
    rows = fig4_bro_ell()
    save_table("fig4_bro_ell", rows, COLUMNS,
               "Fig. 4: BRO-ELL vs ELLPACK / ELLPACK-R")

    summary = []
    for dev in ("c2070", "gtx680", "k20"):
        sel = [r for r in rows if r["device_key"] == dev]
        summary.append(
            {
                "device": sel[0]["device"],
                "avg_speedup_vs_ellpack": geomean(
                    r["speedup_vs_ellpack"] for r in sel
                ),
                "avg_speedup_vs_ellpack_r": geomean(
                    r["speedup_vs_ellpack_r"] for r in sel
                ),
            }
        )
    save_table("fig4_summary", summary,
               ["device", "avg_speedup_vs_ellpack", "avg_speedup_vs_ellpack_r"],
               "Fig. 4 summary (paper: 1.5/1.6/1.4 vs ELL, ~1.13 vs ELL-R)")

    # Per-matrix: BRO-ELL never slower than ELLPACK, within the paper band.
    for r in rows:
        assert r["speedup_vs_ellpack"] > 1.0, r["matrix"]
        assert r["speedup_vs_ellpack"] < 2.5, r["matrix"]
    # Averages in the paper's neighbourhood.
    for s in summary:
        assert 1.25 < s["avg_speedup_vs_ellpack"] < 1.8
        assert s["avg_speedup_vs_ellpack_r"] > 1.05

    mat = cached_format("shipsec1", bench_scale(), "bro_ell")
    benchmark.pedantic(lambda: spmv_once(mat, "k20"), rounds=3, iterations=1)
