"""Extension: multiple threads per row (paper Section 6 future work).

Row splitting multiplies the thread count, which pays exactly where the
paper's Fig. 6 discussion predicts: matrices with too few rows to fill
the device (e40r5000, rim). On large matrices the occupancy is already
saturated and splitting only widens the delta codes.
"""

import numpy as np
from conftest import save_table

from repro.bench.harness import bench_scale, cached_matrix, spmv_once
from repro.core.bro_ell import BROELLMatrix
from repro.core.multirow import MultiRowBROELL

COLUMNS = ["matrix", "t", "occupancy", "gflops_k20", "speedup_vs_t1"]


def test_ablation_multirow(benchmark):
    scale = bench_scale()
    rows = []
    for name in ("e40r5000", "rim", "shipsec1"):
        coo = cached_matrix(name, scale)
        x = np.random.default_rng(0).standard_normal(coo.shape[1])
        base = spmv_once(BROELLMatrix.from_coo(coo, h=256), "k20", x)
        rows.append(
            {
                "matrix": name, "t": 1,
                "occupancy": base.timing.occupancy,
                "gflops_k20": base.gflops, "speedup_vs_t1": 1.0,
            }
        )
        for t in (2, 4):
            mt = MultiRowBROELL.from_coo(coo, threads_per_row=t, h=256)
            res = spmv_once(mt, "k20", x)
            np.testing.assert_allclose(res.y, base.y, rtol=1e-9)
            rows.append(
                {
                    "matrix": name, "t": t,
                    "occupancy": res.timing.occupancy,
                    "gflops_k20": res.gflops,
                    "speedup_vs_t1": res.gflops / base.gflops,
                }
            )
    save_table("ablation_multirow", rows, COLUMNS,
               "Extension: multiple threads per row (K20)")

    by = {(r["matrix"], r["t"]): r for r in rows}
    # Occupancy-starved matrices gain...
    assert by[("e40r5000", 4)]["speedup_vs_t1"] > 1.3
    # ...and occupancy strictly improves with t on them.
    assert by[("e40r5000", 4)]["occupancy"] > by[("e40r5000", 1)]["occupancy"]
    # Saturated matrices gain little or lose (wider codes, fold flops).
    assert by[("shipsec1", 4)]["speedup_vs_t1"] < 1.15

    coo = cached_matrix("e40r5000", scale)
    benchmark.pedantic(
        lambda: MultiRowBROELL.from_coo(coo, threads_per_row=4, h=256),
        rounds=3, iterations=1,
    )
