"""Fig. 6: BRO-ELL DRAM bandwidth utilization across GPUs (first six
matrices of Table 2).

Shape to hold: utilization is high (bandwidth-bound kernel) for the large
matrices and drops for e40r5000, which is too small to fill the newer
devices — the paper's occupancy observation.
"""

from conftest import save_table

from repro.bench.experiments import fig6_bandwidth
from repro.bench.harness import bench_scale, cached_format, spmv_once

COLUMNS = ["matrix", "device", "bw_utilization"]


def test_fig6_bandwidth(benchmark):
    rows = fig6_bandwidth()
    save_table("fig6_bandwidth", rows, COLUMNS,
               "Fig. 6: DRAM bandwidth utilization of BRO-ELL")

    by = {(r["matrix"], r["device_key"]): r["bw_utilization"] for r in rows}
    matrices = {r["matrix"] for r in rows}
    assert matrices == {"cage12", "cant", "consph", "e40r5000", "epb3", "lhr71"}

    # e40r5000 (17k rows at full scale) underutilizes the big Kepler parts
    # relative to the large matrices.
    for dev in ("gtx680", "k20"):
        assert by[("e40r5000", dev)] < by[("cant", dev)]
        assert by[("e40r5000", dev)] < by[("consph", dev)]

    # Utilization never exceeds 1 and large matrices sustain > 40% of pin
    # bandwidth.
    for (mat, dev), util in by.items():
        assert 0.0 < util <= 1.0
    assert by[("consph", "c2070")] > 0.4

    mat = cached_format("cant", bench_scale(), "bro_ell")
    benchmark.pedantic(
        lambda: spmv_once(mat, "c2070").timing.bandwidth_utilization,
        rounds=3, iterations=1,
    )
