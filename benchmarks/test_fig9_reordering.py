"""Fig. 9: BRO-aware reordering (BAR) vs RCM and AMD on Test Set 1.

Shape to hold (Section 4.2.4): BAR improves BRO-ELL performance on
average (paper: +7%) while the non-BRO-aware RCM and AMD hover around
zero or slightly negative (paper: about -4%); BAR wins on the majority of
matrices, though not necessarily on every one (the paper's own BAR loses
on cant).

Reordering is expensive (AMD especially), so this figure runs at a
smaller default scale; override with REPRO_BENCH_SCALE.
"""

import os

from conftest import save_table

from repro.bench.experiments import fig9_reordering
from repro.bench.harness import cached_matrix
from repro.reorder import bar_permutation

COLUMNS = [
    "matrix", "gflops_ellpack", "gflops_bro_ell",
    "gflops_bar", "bar_gain_pct",
    "gflops_rcm", "rcm_gain_pct",
    "gflops_amd", "amd_gain_pct",
]

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 0.02))


def test_fig9_reordering(benchmark):
    rows = fig9_reordering(scale=_SCALE)
    save_table("fig9_reordering", rows, COLUMNS,
               "Fig. 9: BAR vs RCM vs AMD (BRO-ELL GFlop/s)")

    bar_gains = [r["bar_gain_pct"] for r in rows]
    rcm_gains = [r["rcm_gain_pct"] for r in rows]
    amd_gains = [r["amd_gain_pct"] for r in rows]
    summary = [{
        "avg_bar_gain_pct": sum(bar_gains) / len(bar_gains),
        "avg_rcm_gain_pct": sum(rcm_gains) / len(rcm_gains),
        "avg_amd_gain_pct": sum(amd_gains) / len(amd_gains),
    }]
    save_table("fig9_summary", summary, list(summary[0]),
               "Fig. 9 summary (paper: BAR +7%, RCM/AMD about -4%)")

    # BAR helps on average and beats both non-BRO-aware orderings.
    assert summary[0]["avg_bar_gain_pct"] > 0.0
    assert summary[0]["avg_bar_gain_pct"] > summary[0]["avg_rcm_gain_pct"]
    assert summary[0]["avg_bar_gain_pct"] > summary[0]["avg_amd_gain_pct"]
    # BAR wins (or ties within 1%) on a clear majority of matrices.
    wins = sum(
        r["bar_gain_pct"] >= max(r["rcm_gain_pct"], r["amd_gain_pct"]) - 1.0
        for r in rows
    )
    assert wins >= 0.6 * len(rows)

    coo = cached_matrix("venkat01", _SCALE)
    benchmark.pedantic(
        lambda: bar_permutation(coo, h=256), rounds=3, iterations=1
    )
