"""Fig. 3: BRO-ELL kernel GFlop/s vs index space savings on a dense matrix.

Shape to hold (Section 4.2.1): performance scales ~linearly with space
savings; the device curves order K20 > GTX680 > C2070; and the break-even
savings against ELLPACK land near the paper's 17% / 9% / 23%.
"""

import numpy as np
from conftest import save_table

from repro.bench.experiments import fig3_break_even, fig3_savings_sweep
from repro.bench.harness import spmv_once
from repro.core.bro_ell import BROELLMatrix
from repro.formats.coo import COOMatrix

#: Break-even space savings the paper reports per device (percent).
PAPER_BREAK_EVEN = {"c2070": 17.0, "gtx680": 9.0, "k20": 23.0}

COLUMNS = ["device", "bits", "eta_pct", "gflops", "ellpack_gflops", "speedup"]


def test_fig3_savings_sweep(benchmark):
    rows = fig3_savings_sweep(m=16384, k=64)
    save_table("fig3_savings_sweep", rows, COLUMNS,
               "Fig. 3: BRO-ELL GFlop/s vs space savings (dense matrix)")

    # (a) Monotone scaling with savings, per device.
    for dev in PAPER_BREAK_EVEN:
        series = sorted(
            (r for r in rows if r["device_key"] == dev), key=lambda r: r["eta_pct"]
        )
        gf = [r["gflops"] for r in series]
        assert all(b >= a for a, b in zip(gf, gf[1:])), dev
        # ~linear: endpoints slope vs midpoint deviation below 15%.
        eta = np.array([r["eta_pct"] for r in series])
        fit = np.polyfit(eta, gf, 1)
        resid = np.abs(np.polyval(fit, eta) - gf) / np.mean(gf)
        assert resid.max() < 0.15, dev

    # (b) Device ordering by bandwidth.
    tops = {
        dev: max(r["gflops"] for r in rows if r["device_key"] == dev)
        for dev in PAPER_BREAK_EVEN
    }
    assert tops["k20"] > tops["gtx680"] > tops["c2070"]

    # (c) Break-even within 3 percentage points of the paper's annotations.
    measured = fig3_break_even(rows)
    be_rows = [
        {"device": d, "break_even_pct": measured[d], "paper_pct": PAPER_BREAK_EVEN[d]}
        for d in PAPER_BREAK_EVEN
    ]
    save_table("fig3_break_even", be_rows,
               ["device", "break_even_pct", "paper_pct"],
               "Fig. 3 annotations: break-even space savings vs ELLPACK")
    for dev, paper in PAPER_BREAK_EVEN.items():
        assert abs(measured[dev] - paper) < 3.0, dev

    # Benchmark the decompress-and-multiply kernel itself.
    rng = np.random.default_rng(0)
    m, k = 4096, 32
    dense = COOMatrix(
        np.repeat(np.arange(m), k), np.tile(np.arange(k), m),
        rng.standard_normal(m * k), (m, k),
    )
    bro = BROELLMatrix.from_coo(dense, h=256).with_uniform_width(4)
    x = rng.standard_normal(k)
    benchmark(lambda: spmv_once(bro, "k20", x))
