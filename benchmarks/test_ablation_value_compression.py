"""Extension: value compression (the paper's Section 6 future work).

On matrices with few distinct values (pattern matrices, lattice QCD),
dictionary-compressing the value channel on top of BRO-ELL removes most
of the remaining traffic; on generic float matrices the per-slice
fallback keeps it harmless.
"""

import numpy as np
from conftest import save_table

from repro.bench.harness import bench_scale, cached_matrix, spmv_once
from repro.core.bro_ell import BROELLMatrix
from repro.core.value_compression import BROELLVCMatrix
from repro.formats.coo import COOMatrix

COLUMNS = [
    "matrix", "distinct_vals", "value_savings_pct",
    "gflops_bro", "gflops_vc", "speedup",
]


def _with_quantized_values(coo: COOMatrix, levels: int, seed: int) -> COOMatrix:
    """Replace values with `levels` distinct ones (pattern-matrix style)."""
    rng = np.random.default_rng(seed)
    palette = rng.standard_normal(levels)
    vals = palette[rng.integers(0, levels, size=coo.nnz)]
    return COOMatrix(coo.row_idx, coo.col_idx, vals, coo.shape)


def test_ablation_value_compression(benchmark):
    scale = bench_scale()
    rows = []
    cases = [
        ("qcd5_4/3vals", cached_matrix("qcd5_4", scale), 3),
        ("shipsec1/16vals", cached_matrix("shipsec1", scale), 16),
        ("shipsec1/float", cached_matrix("shipsec1", scale), 0),
    ]
    for label, base, levels in cases:
        coo = _with_quantized_values(base, levels, 5) if levels else base
        x = np.random.default_rng(0).standard_normal(coo.shape[1])
        bro = BROELLMatrix.from_coo(coo, h=256)
        vc = BROELLVCMatrix.from_coo(coo, h=256)
        res_b = spmv_once(bro, "k20", x)
        res_v = spmv_once(vc, "k20", x)
        np.testing.assert_allclose(res_v.y, res_b.y)  # lossless
        rows.append(
            {
                "matrix": label,
                "distinct_vals": levels if levels else "all",
                "value_savings_pct": 100.0 * vc.value_space_savings(),
                "gflops_bro": res_b.gflops,
                "gflops_vc": res_v.gflops,
                "speedup": res_v.gflops / res_b.gflops,
            }
        )
    save_table("ablation_value_compression", rows, COLUMNS,
               "Extension: BRO-ELL + value compression (K20)")

    by = {r["matrix"]: r for r in rows}
    # Few-valued matrices gain a lot; generic floats lose nothing.
    assert by["qcd5_4/3vals"]["speedup"] > 1.3
    assert by["shipsec1/16vals"]["speedup"] > 1.2
    assert by["shipsec1/float"]["speedup"] > 0.98
    assert by["shipsec1/float"]["value_savings_pct"] <= 0.5

    coo = _with_quantized_values(cached_matrix("qcd5_4", scale), 3, 5)
    benchmark.pedantic(
        lambda: BROELLVCMatrix.from_coo(coo, h=256), rounds=3, iterations=1
    )
