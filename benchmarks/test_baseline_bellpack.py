"""Baseline study: explicit bit compression (BRO) vs implicit block
compression (BELLPACK, Choi et al.) — the paper's Section 5 argument.

Blocked formats "can be considered to be compressed in the general sense
because only the block index needs to be kept ... they still do not fully
exploit the redundancy in the index data". On a perfectly 3x3-blocked FEM
matrix BELLPACK closes part of the gap; off the blocked sweet spot its
fill-in makes it worse than plain ELLPACK, while BRO-ELL wins throughout.
"""

import numpy as np
from conftest import save_table

from repro.bench.harness import spmv_once
from repro.formats import convert
from repro.formats.bellpack import BELLPACKMatrix
from repro.matrices.generators import banded_random, block_band

COLUMNS = ["workload", "fill_ratio", "gflops_ellpack", "gflops_bellpack",
           "gflops_bro_ell"]


def test_baseline_bellpack(benchmark):
    workloads = [
        ("aligned 3x3 FEM",
         block_band(12288, 42.0, 6.0, run=3, bandwidth=400, seed=1,
                    aligned=True)),
        ("unaligned runs",
         block_band(12288, 42.0, 6.0, run=3, bandwidth=400, seed=2)),
        ("random band",
         banded_random(12288, 40.0, 8.0, bandwidth=400, seed=3)),
    ]
    rows = []
    for label, coo in workloads:
        x = np.random.default_rng(0).standard_normal(coo.shape[1])
        bell = BELLPACKMatrix.from_coo(coo, r=3, c=3)
        row = {
            "workload": label,
            "fill_ratio": bell.fill_ratio,
            "gflops_bellpack": spmv_once(bell, "k20", x).gflops,
        }
        for fmt in ("ellpack", "bro_ell"):
            row[f"gflops_{fmt}"] = spmv_once(convert(coo, fmt), "k20", x).gflops
        rows.append(row)
    save_table("baseline_bellpack", rows, COLUMNS,
               "Baseline: BELLPACK vs BRO-ELL (K20)")

    by = {r["workload"]: r for r in rows}
    # On its sweet spot, blocking beats plain ELLPACK...
    assert (by["aligned 3x3 FEM"]["gflops_bellpack"]
            > by["aligned 3x3 FEM"]["gflops_ellpack"])
    # ...but BRO-ELL still wins everywhere (Section 5's claim).
    for r in rows:
        assert r["gflops_bro_ell"] > r["gflops_bellpack"], r["workload"]
    # Off the sweet spot fill-in erodes the blocked advantage.
    assert (by["random band"]["fill_ratio"]
            > by["aligned 3x3 FEM"]["fill_ratio"] + 0.5)

    coo = workloads[0][1]
    benchmark.pedantic(
        lambda: BELLPACKMatrix.from_coo(coo, r=3, c=3), rounds=3, iterations=1
    )
