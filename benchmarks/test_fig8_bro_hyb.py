"""Fig. 8: BRO-HYB vs HYB on Test Set 2 (the paper plots Tesla K20).

Shape to hold: speedups track the BRO-ELL fraction and compressibility —
bcsstk32/pwtk-class matrices gain the most, rail4284/rajat30 the least;
averages near the paper's 1.6x/1.3x/1.4x (C2070/GTX680/K20).
"""

from conftest import save_table

from repro.bench.experiments import fig8_bro_hyb
from repro.bench.harness import bench_scale, cached_format, spmv_once
from repro.bench.reporting import geomean

COLUMNS = ["matrix", "device", "gflops_hyb", "gflops_bro_hyb", "speedup_vs_hyb"]


def test_fig8_bro_hyb(benchmark):
    rows = fig8_bro_hyb(devices=("c2070", "gtx680", "k20"))
    save_table("fig8_bro_hyb", rows, COLUMNS, "Fig. 8: BRO-HYB vs HYB")

    avg = {
        dev: geomean(r["speedup_vs_hyb"] for r in rows if r["device_key"] == dev)
        for dev in ("c2070", "gtx680", "k20")
    }
    save_table(
        "fig8_summary",
        [{"device": d, "avg_speedup": v} for d, v in avg.items()],
        ["device", "avg_speedup"],
        "Fig. 8 summary (paper averages: 1.6/1.3/1.4)",
    )
    # BRO-HYB wins everywhere; the magnitude is bounded by the pure
    # roofline ceiling (~1.45x when index bytes vanish entirely), so the
    # paper's 1.6x C2070 average is not reachable in a pure-bandwidth
    # model — see EXPERIMENTS.md for the ceiling analysis.
    for dev, v in avg.items():
        assert 1.02 < v < 1.8, dev
    for r in rows:
        assert r["speedup_vs_hyb"] > 0.98, (r["matrix"], r["device"])

    # Speedup correlates with the BRO-ELL fraction (paper's explanation):
    # the high-ELL FEM matrices beat the low-ELL rail4284.
    k20 = {r["matrix"]: r["speedup_vs_hyb"] for r in rows if r["device_key"] == "k20"}
    assert k20["pwtk"] > k20["rail4284"]
    assert k20["bcsstk32"] > k20["rail4284"]

    mat = cached_format("pwtk", bench_scale(), "bro_hyb")
    benchmark.pedantic(lambda: spmv_once(mat, "k20"), rounds=3, iterations=1)
