"""Table 5: index space savings after BAR reordering, Test Set 1.

Shape to hold: BAR adds space savings on top of Table 3's values (paper:
+4 percentage points on average, never negative, mc2depi unchanged at
50.7% because its stencil is already order-invariant).
"""

import os

from conftest import save_table

from repro.bench.experiments import table5_bar_savings

#: Published Table 5 (eta % after BAR).
PAPER_TABLE5 = {
    "cage12": 81.1, "cant": 92.7, "consph": 91.7, "e40r5000": 95.4,
    "epb3": 83.2, "lhr71": 95.7, "mc2depi": 50.7, "pdb1HYS": 90.8,
    "qcd5_4": 88.9, "rim": 96.0, "rma10": 94.9, "shipsec1": 94.8,
    "stomach": 82.3, "torso3": 83.6, "venkat01": 92.3, "xenon2": 87.3,
}

COLUMNS = ["matrix", "eta_before_pct", "eta_after_pct", "eta_after_paper",
           "delta_pp"]

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 0.02))


def test_table5_bar_savings(benchmark):
    rows = table5_bar_savings(scale=_SCALE)
    for row in rows:
        row["eta_after_paper"] = PAPER_TABLE5[row["matrix"]]
    save_table("table5_bar_savings", rows, COLUMNS,
               "Table 5: space savings after BAR (measured vs paper)")

    gains = [r["delta_pp"] for r in rows]
    # BAR helps on average (paper: +4pp) and any individual regression is
    # small — the paper itself reports one matrix (cant) where the greedy
    # loses to the baselines.
    assert min(gains) > -2.5
    assert sum(gains) / len(gains) > 0.5

    # mc2depi's regular stencil leaves almost nothing for reordering.
    by = {r["matrix"]: r["delta_pp"] for r in rows}
    assert abs(by["mc2depi"]) < 2.0

    from repro.bench.harness import cached_matrix
    from repro.core.bro_ell import BROELLMatrix

    coo = cached_matrix("rim", _SCALE)
    benchmark.pedantic(
        lambda: BROELLMatrix.from_coo(coo, h=256), rounds=3, iterations=1
    )
