"""Table 2: the thirty-matrix evaluation suite.

Regenerates the suite statistics (scaled) and checks the generated
row-length moments track the published targets; benchmarks generation.
"""

from conftest import save_table

from repro.bench.experiments import table2_suite
from repro.bench.harness import bench_scale
from repro.matrices.suite import generate

COLUMNS = [
    "matrix", "test_set", "rows", "cols", "nnz",
    "mu", "mu_paper", "sigma", "sigma_paper",
]


def test_table2_suite(benchmark):
    rows = table2_suite()
    save_table(
        "table2_suite", rows, COLUMNS,
        f"Table 2: matrix suite at scale={bench_scale()} (mu/sigma vs paper)",
    )
    assert len(rows) == 31
    from repro.matrices.suite import TABLE2

    for row in rows:
        target = row["mu_paper"]
        family = TABLE2[row["matrix"]].family
        if family == "dense_rows":
            # rail4284's enormous rows scale with the matrix width by
            # design (a 2633-entry row cannot exist in a scaled-down n).
            target = max(1.0, target * bench_scale())
        elif family == "dense":
            # dense2's mean row length is exactly the scaled width.
            target = row["cols"]
        # Within 30% of the target (power-law duplicate merging and
        # boundary clipping account for the slack).
        assert abs(row["mu"] - target) / target < 0.30, row["matrix"]

    benchmark.pedantic(
        lambda: generate("cage12", scale=0.02), rounds=3, iterations=1
    )
