"""Design-choice ablation: why bit widths per COLUMN of a slice?

The paper's Section 3 argues CPU compression schemes "cannot be directly
applied on GPUs" (divergence, uncoalesced access) and picks one shared
width per slice column. This ablation prices the alternatives on real
suite matrices:

* **per-column** (the paper): provably divergence-free (all lanes consume
  the same bits per iteration) and coalesced by construction;
* **per-row** (`RowwiseBROELL`): each row at its own width — a quarter of
  warp iterations diverge, loads scatter, and compression is *worse*
  because one wide first delta poisons the row's entire stream;
* **per-entry varint** (the CPU-scheme limit, computed analytically as a
  4-bit-nibble continuation code): the best compression, but every lane
  consumes a data-dependent bit count every iteration — the maximally
  divergent design the paper rejects.
"""

import numpy as np
from conftest import save_table

from repro.bench.harness import bench_scale, cached_matrix
from repro.core.bro_ell import BROELLMatrix
from repro.core.delta import delta_encode_columns
from repro.core.rowwise_codec import RowwiseBROELL
from repro.formats.ellpack import ellpack_arrays_from_coo
from repro.utils.bits import bit_width_array

COLUMNS = [
    "matrix",
    "bytes_per_column", "bytes_per_row", "bytes_varint",
    "divergent_iter_pct", "mean_load_offsets",
]


def varint_bytes(coo) -> int:
    """Size of a 4-bit-nibble continuation varint over the delta stream."""
    col_idx, _v, stored = ellpack_arrays_from_coo(coo)
    valid = np.arange(col_idx.shape[1])[None, :] < stored[:, None]
    deltas = delta_encode_columns(col_idx, valid)[valid]
    bits = bit_width_array(deltas)
    nibbles = np.maximum(1, -(-bits // 3))  # 3 payload bits + 1 continuation
    return int(nibbles.sum() * 4 // 8)


def test_ablation_divergence(benchmark):
    scale = bench_scale()
    rows = []
    for name in ("lhr71", "venkat01", "stomach"):
        coo = cached_matrix(name, scale)
        per_col = BROELLMatrix.from_coo(coo, h=256)
        per_row = RowwiseBROELL.from_coo(coo, h=256)
        np.testing.assert_allclose(per_row.to_dense(), coo.to_dense())
        profile = per_row.divergence_profile()
        rows.append(
            {
                "matrix": name,
                "bytes_per_column": per_col.device_bytes()["index"],
                "bytes_per_row": per_row.device_bytes()["index"],
                "bytes_varint": varint_bytes(coo),
                "divergent_iter_pct": 100.0 * profile["divergent_fraction"],
                "mean_load_offsets": profile["mean_distinct_offsets"],
            }
        )
    save_table("ablation_divergence", rows, COLUMNS,
               "Ablation: per-column vs per-row vs per-entry index coding")

    for r in rows:
        # Per-column beats per-row on compression too (the wide first
        # delta poisons a whole per-row stream)...
        assert r["bytes_per_column"] < r["bytes_per_row"], r["matrix"]
        # ...while per-entry varints compress best of all (why CPU papers
        # use them) but the execution proxies show the cost:
        assert r["bytes_varint"] < r["bytes_per_column"] * 1.6
        # per-row decoding diverges on a substantial share of iterations
        # (per-column is 0% by construction) ...
        assert r["divergent_iter_pct"] > 5.0, r["matrix"]
        # ... and its loads scatter far from the 1-2 coalesced word groups
        # the multiplexed layout guarantees.
        assert r["mean_load_offsets"] > 4.0, r["matrix"]

    coo = cached_matrix("venkat01", scale)
    benchmark.pedantic(
        lambda: RowwiseBROELL.from_coo(coo, h=256), rounds=1, iterations=1
    )
