"""Micro-benchmark: the executor's fused inner loops vs their NumPy replays.

PR 8 gave every plan a compiled fast path: one fused gather+mask+
segmented-reduce loop per kernel family (ELL slice, COO scatter, CSR row
sums, ELLPACK column accumulation), compiled with Numba when it is
importable and interpreted otherwise.  This file pins two things:

* **bit-identity** — each kernel accumulates in exactly the order of the
  vectorized NumPy replay, so swapping backends can never change ``y``
  by even one ulp; and
* **the reporting contract** — ``microbench_exec()`` (the rows folded
  into ``repro bench wallclock``) uses a ``ratio`` column rather than
  ``speedup`` so the ``--min-speedup`` gate ignores the interpreted
  twins on Numba-free hosts, where they lose to NumPy by construction.

On a host with Numba the timed rows exercise the real compiled loops and
the ratio is the compiled-path win; without it they time the pure-Python
twins on a shrunken problem.
"""

import numpy as np
from conftest import save_table

from repro.bench.experiments import microbench_exec
from repro.kernels import backends as _bk
from repro.types import VALUE_DTYPE

COLUMNS = ["format", "mode", "backend", "ref_time_ms", "fast_time_ms", "ratio"]

MICRO_MODES = {
    "micro:gather_reduce",
    "micro:scatter",
    "micro:row_sums",
    "micro:column_acc",
}


def _operands(m=96, k=5, seed=3):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(m)
    return rng, m, k, x


class TestKernelBitIdentity:
    """Each fused loop reproduces its NumPy replay bit for bit.

    These run the *interpreted* twins from ``PY_KERNELS`` so the loop
    order is pinned on every host; with Numba present the compiled
    aliases execute the same source and tests/kernels/test_backends.py
    covers them through the plan layer.
    """

    def test_ell_slice_gather_reduce(self):
        rng, m, k, x = _operands()
        vals_t = rng.standard_normal((k, m))
        gather_t = rng.integers(0, m, size=(k, m))
        valid_t = rng.random((k, m)) < 0.7
        vals_t[~valid_t] = 0.0

        expected = np.zeros(m, dtype=VALUE_DTYPE)
        for c in range(k):
            expected += np.where(valid_t[c], vals_t[c] * x[gather_t[c]], 0.0)

        y = np.zeros(m, dtype=VALUE_DTYPE)
        _bk.PY_KERNELS["ell_slice_spmv"](vals_t, gather_t, valid_t, x, y)
        assert np.array_equal(y, expected)

    def test_coo_scatter(self):
        rng, m, _, x = _operands()
        nnz = 4 * m
        rows = np.sort(rng.integers(0, m, size=nnz))
        cols = rng.integers(0, m, size=nnz)
        vals = rng.standard_normal(nnz)

        expected = np.zeros(m, dtype=VALUE_DTYPE)
        np.add.at(expected, rows, vals * x[cols])

        y = np.zeros(m, dtype=VALUE_DTYPE)
        _bk.PY_KERNELS["coo_scatter_spmv"](rows, cols, vals, x, y)
        assert np.array_equal(y, expected)

    def test_csr_row_sums_match_column_schedule(self):
        rng, m, _, x = _operands()
        lengths = rng.integers(0, 9, size=m)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = rng.integers(0, m, size=int(indptr[-1]))
        vals = rng.standard_normal(int(indptr[-1]))

        schedule = _bk.csr_column_schedule(indptr)
        expected = _bk.csr_spmv_columns(indices, vals, x, schedule, m)

        y = np.empty(m, dtype=VALUE_DTYPE)
        _bk.PY_KERNELS["csr_spmv"](indptr, indices, vals, x, y)
        assert np.array_equal(y, expected)

    def test_ellpack_column_accumulation(self):
        rng, m, k, x = _operands()
        col_idx_t = rng.integers(0, m, size=(k, m))
        vals_t = rng.standard_normal((k, m))

        expected = np.zeros(m, dtype=VALUE_DTYPE)
        for c in range(k):
            expected += vals_t[c] * x[col_idx_t[c]]

        y = np.zeros(m, dtype=VALUE_DTYPE)
        _bk.PY_KERNELS["ellpack_spmv"](col_idx_t, vals_t, x, y)
        assert np.array_equal(y, expected)


class TestMicrobenchRows:
    def test_row_shape_and_gate_exemption(self):
        rows = microbench_exec(m=256, k=4, repeats=2)
        assert {r["mode"] for r in rows} == MICRO_MODES
        expect_backend = "jit" if _bk.jit_available() else "python"
        for r in rows:
            assert r["matrix"] == "synthetic"
            assert r["backend"] == expect_backend
            assert r["ratio"] > 0.0
            # `ratio`, never `speedup`: the wallclock --min-speedup gate
            # only inspects rows carrying a "speedup" key, and the
            # interpreted twins must not trip it on Numba-free hosts.
            assert "speedup" not in r

    def test_compiled_loops_beat_numpy_when_jit(self):
        if not _bk.jit_available():
            return  # interpreted twins lose to NumPy by construction
        rows = microbench_exec(repeats=3)
        assert max(r["ratio"] for r in rows) > 1.0


def test_microbench_exec_table(benchmark):
    rows = microbench_exec(repeats=3)
    save_table(
        "microbench_exec", rows, COLUMNS,
        "executor inner loops: NumPy replay vs fused kernel "
        f"(backend={rows[0]['backend']})",
    )

    rng, m, k, x = _operands(m=256, k=6)
    vals_t = rng.standard_normal((k, m))
    gather_t = rng.integers(0, m, size=(k, m))
    valid_t = rng.random((k, m)) < 0.7
    vals_t[~valid_t] = 0.0
    y = np.zeros(m, dtype=VALUE_DTYPE)
    benchmark.pedantic(
        lambda: _bk.ell_slice_spmv(vals_t, gather_t, valid_t, x, y),
        rounds=3, iterations=1,
    )
