"""Micro-benchmark: grouped ``bitwise_or.reduceat`` vs the old ``.at`` scatter.

``pack_slice`` used ``np.bitwise_or.at`` to OR each column's bit pattern
into its target symbol — an unbuffered ufunc scatter with a Python-level
inner loop, quadratic-feeling on wide slices. Columns destined for the
same symbol are contiguous (offsets are cumulative), so one
``bitwise_or.reduceat`` per symbol run computes the same ORs vectorized.
This file pins the equivalence and records the encode speedup.
"""

import time

import numpy as np
from conftest import save_table

from repro.bitstream.packing import (
    _grouped_or,
    _validate_pack_args,
    column_bit_offsets,
    pack_slice,
    row_stream_symbols,
    unpack_slice,
)

COLUMNS = ["h", "L", "at_ms", "grouped_ms", "speedup", "pack_ms"]


def _legacy_pack_slice(values, bit_alloc, sym_len=32):
    """The pre-optimization implementation, kept inline as the yardstick."""
    from repro.types import symbol_dtype

    values = np.asarray(values)
    bit_alloc = np.asarray(bit_alloc, dtype=np.int64)
    dtype = symbol_dtype(sym_len)
    h, L = values.shape
    n_sym = row_stream_symbols(bit_alloc, sym_len)
    _validate_pack_args(values, bit_alloc, sym_len)
    if n_sym == 0 or h == 0:
        return np.zeros(0, dtype=dtype)

    vals = values.astype(np.uint64, copy=False)
    offsets = column_bit_offsets(bit_alloc)
    widths = bit_alloc
    sym_idx = offsets // sym_len
    bit_in_sym = offsets % sym_len
    n_first = np.minimum(widths, sym_len - bit_in_sym)
    n_second = widths - n_first

    acc = np.zeros((n_sym, h), dtype=np.uint64)
    shift_down = (widths - n_first).astype(np.uint64)[:, None]
    shift_up = (sym_len - bit_in_sym - n_first).astype(np.uint64)[:, None]
    first_part = ((vals.T >> shift_down) << shift_up).astype(np.uint64)
    np.bitwise_or.at(acc, sym_idx, first_part)

    straddle = n_second > 0
    if np.any(straddle):
        lo_mask = ((np.uint64(1) << n_second[straddle].astype(np.uint64))
                   - np.uint64(1))[:, None]
        up2 = (sym_len - n_second[straddle]).astype(np.uint64)[:, None]
        second_part = ((vals.T[straddle] & lo_mask) << up2).astype(np.uint64)
        np.bitwise_or.at(acc, sym_idx[straddle] + 1, second_part)
    return acc.reshape(-1).astype(dtype)


def _random_slice(h, L, seed, max_bits=12):
    rng = np.random.default_rng(seed)
    bit_alloc = rng.integers(1, max_bits + 1, size=L)
    values = np.zeros((h, L), dtype=np.int64)
    for j, b in enumerate(bit_alloc):
        values[:, j] = rng.integers(0, 2 ** int(b), size=h)
    return values, bit_alloc


def _time_it(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_grouped_or_matches_scatter():
    for seed in range(5):
        values, bit_alloc = _random_slice(128, 200, seed)
        for sym_len in (32, 64):
            new = pack_slice(values, bit_alloc, sym_len)
            old = _legacy_pack_slice(values, bit_alloc, sym_len)
            assert np.array_equal(new, old), (seed, sym_len)
            # ... and the stream still round-trips.
            back = unpack_slice(new, bit_alloc, 128, sym_len)
            assert np.array_equal(back, values)


def test_grouped_or_unit():
    acc = np.zeros((3, 2), dtype=np.uint64)
    parts = np.array([[1, 2], [4, 8], [16, 32], [64, 128]], dtype=np.uint64)
    _grouped_or(acc, np.array([0, 0, 2, 2]), parts)
    assert acc.tolist() == [[5, 10], [0, 0], [80, 160]]


def test_encode_speedup(benchmark):
    """Time the OR-scatter stage itself — the part the optimization
    replaced. (End-to-end ``pack_slice`` time is reported for context; it
    also pays width validation, which both implementations share.)"""
    rng = np.random.default_rng(0)
    rows = []
    for h, L in ((64, 256), (256, 512), (256, 2048)):
        bit_alloc = rng.integers(1, 13, size=L)
        sym_idx = column_bit_offsets(bit_alloc) // 32
        n_sym = row_stream_symbols(bit_alloc, 32)
        parts = rng.integers(0, 2**32, size=(L, h), dtype=np.uint64)

        def run_at():
            acc = np.zeros((n_sym, h), dtype=np.uint64)
            np.bitwise_or.at(acc, sym_idx, parts)
            return acc

        def run_grouped():
            acc = np.zeros((n_sym, h), dtype=np.uint64)
            _grouped_or(acc, sym_idx, parts)
            return acc

        assert np.array_equal(run_at(), run_grouped())
        t_at = _time_it(run_at)
        t_grouped = _time_it(run_grouped)
        values, alloc = _random_slice(h, L, seed=h + L)
        t_pack = _time_it(lambda: pack_slice(values, alloc, 32))
        rows.append(
            {
                "h": h,
                "L": L,
                "at_ms": 1e3 * t_at,
                "grouped_ms": 1e3 * t_grouped,
                "speedup": t_at / t_grouped,
                "pack_ms": 1e3 * t_pack,
            }
        )
    save_table("microbench_pack", rows, COLUMNS,
               "pack_slice OR-scatter: bitwise_or.at vs grouped reduction")

    # The grouped scatter must not be slower anywhere, and the mid-size
    # slices (the common case in suite conversions) must show a clear win.
    assert all(r["speedup"] > 0.9 for r in rows)
    assert max(r["speedup"] for r in rows) > 1.4

    values, bit_alloc = _random_slice(256, 2048, seed=0)
    benchmark.pedantic(
        lambda: pack_slice(values, bit_alloc, 32), rounds=3, iterations=1
    )
