"""Extension: the format advisor vs exhaustive search (clSpMV direction).

The advisor must agree with brute force: for every suite matrix, the
format it recommends (on a row sample) must be within a small factor of
the best format found by exhaustively running the model on the full
matrix — i.e. sampling plus the per-nnz figure of merit transfer.
"""

import numpy as np
from conftest import save_table

from repro.bench.harness import bench_scale, cached_matrix
from repro.formats.conversion import convert
from repro.kernels.base import get_kernel
from repro.gpu.device import TESLA_K20
from repro.tuner.advisor import DEFAULT_CANDIDATES, rank_formats

COLUMNS = ["matrix", "advisor_pick", "exhaustive_best", "agreement",
           "pick_penalty_pct"]

MATRICES = ("shipsec1", "epb3", "lhr71", "scircuit", "rail4284")


def exhaustive_best(coo) -> dict:
    """Run every candidate on the full matrix; return name -> time/nnz."""
    x = np.random.default_rng(1).standard_normal(coo.shape[1])
    lengths = coo.row_lengths()
    padding = float(lengths.max()) / max(float(lengths.mean()), 1e-9)
    out = {}
    for fmt in DEFAULT_CANDIDATES:
        if fmt in ("ellpack", "ellpack_r", "bellpack") and padding > 20.0:
            continue
        kwargs = {"h": 256} if fmt in ("sliced_ellpack", "bro_ell",
                                       "bro_hyb") else {}
        mat = convert(coo, fmt, **kwargs)
        res = get_kernel(fmt).run(mat, x, TESLA_K20)
        out[fmt] = res.timing.time / coo.nnz
    return out


def test_extension_advisor(benchmark):
    scale = bench_scale()
    rows = []
    for name in MATRICES:
        coo = cached_matrix(name, scale)
        pick = rank_formats(coo, "k20", sample_rows_limit=4096)[0].format_name
        full = exhaustive_best(coo)
        best = min(full, key=full.get)
        penalty = 100.0 * (full[pick] / full[best] - 1.0)
        rows.append(
            {
                "matrix": name,
                "advisor_pick": pick,
                "exhaustive_best": best,
                "agreement": pick == best,
                "pick_penalty_pct": penalty,
            }
        )
    save_table("extension_advisor", rows, COLUMNS,
               "Extension: advisor (sampled) vs exhaustive model search (K20)")

    # The sampled pick is never more than 15% off the exhaustive optimum,
    # and agrees outright on the majority of matrices.
    for r in rows:
        assert r["pick_penalty_pct"] < 15.0, r["matrix"]
    assert sum(r["agreement"] for r in rows) >= 3

    coo = cached_matrix("epb3", scale)
    benchmark.pedantic(
        lambda: rank_formats(coo, "k20", sample_rows_limit=4096),
        rounds=1, iterations=1,
    )
