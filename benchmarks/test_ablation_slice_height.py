"""Ablation: slice height h (the paper fixes h = 256 = thread-block size).

Smaller slices adapt ``num_col`` and the per-column bit widths to fewer
rows (better compression) but launch more blocks and amortize the
``bit_alloc`` table over fewer threads; larger slices do the opposite.
The sweep exposes the trade-off the paper's fixed choice sits on, and the
small-h end approximates the "multiple threads per row" future-work
direction (more, narrower work units per matrix region).
"""

from conftest import save_table

from repro.bench.harness import bench_scale, cached_matrix, spmv_once
from repro.core.bro_ell import BROELLMatrix
from repro.core.compression import index_compression_report

HEIGHTS = (32, 64, 128, 256, 512)
COLUMNS = ["matrix", "h", "eta_pct", "gflops_k20"]


def test_ablation_slice_height(benchmark):
    scale = bench_scale()
    rows = []
    for name in ("lhr71", "rim", "venkat01"):
        coo = cached_matrix(name, scale)
        for h in HEIGHTS:
            bro = BROELLMatrix.from_coo(coo, h=h)
            rows.append(
                {
                    "matrix": name,
                    "h": h,
                    "eta_pct": 100.0 * index_compression_report(bro, name).eta,
                    "gflops_k20": spmv_once(bro, "k20").gflops,
                }
            )
    save_table("ablation_slice_height", rows, COLUMNS,
               "Ablation: BRO-ELL slice height sweep (K20)")

    # Compression improves monotonically (within noise) as slices shrink:
    # per-column maxima are taken over fewer rows.
    for name in ("lhr71", "rim", "venkat01"):
        series = [r for r in rows if r["matrix"] == name]
        series.sort(key=lambda r: r["h"])
        etas = [r["eta_pct"] for r in series]
        assert etas[0] >= etas[-1] - 0.5, name

    coo = cached_matrix("rim", scale)
    benchmark.pedantic(
        lambda: BROELLMatrix.from_coo(coo, h=64), rounds=3, iterations=1
    )
