"""Robustness: the headline Fig. 4 result must not hinge on generator seeds.

Regenerates a subset of Test Set 1 under three different seeds and checks
the BRO-ELL-vs-ELLPACK speedup stays inside a tight band — i.e. the
reproduction's conclusions follow from matrix *structure*, not from one
lucky random draw.
"""

import numpy as np
from conftest import save_table

from repro.bench.harness import bench_scale, spmv_once
from repro.bench.reporting import geomean
from repro.core.bro_ell import BROELLMatrix
from repro.formats.ellpack import ELLPACKMatrix
from repro.matrices.suite import generate

MATRICES = ("cage12", "shipsec1", "stomach", "lhr71")
SEEDS = (None, 101, 202)  # None = the registry's stable per-name seed

COLUMNS = ["matrix", "seed", "speedup", "spread_pct"]


def test_sensitivity_seeds(benchmark):
    scale = bench_scale()
    rows = []
    for name in MATRICES:
        speedups = []
        for seed in SEEDS:
            coo = generate(name, scale=scale, seed=seed)
            x = np.random.default_rng(3).standard_normal(coo.shape[1])
            ell = spmv_once(ELLPACKMatrix.from_coo(coo), "k20", x)
            bro = spmv_once(BROELLMatrix.from_coo(coo, h=256), "k20", x)
            speedups.append(bro.gflops / ell.gflops)
        spread = 100.0 * (max(speedups) / min(speedups) - 1.0)
        for seed, s in zip(SEEDS, speedups):
            rows.append(
                {
                    "matrix": name,
                    "seed": "default" if seed is None else seed,
                    "speedup": s,
                    "spread_pct": spread,
                }
            )
    save_table("sensitivity_seeds", rows, COLUMNS,
               "Sensitivity: Fig. 4 speedup across generator seeds (K20)")

    # Conclusions hold for every seed, and the seed-to-seed spread of any
    # matrix's speedup stays below 10%.
    for r in rows:
        assert r["speedup"] > 1.0, (r["matrix"], r["seed"])
        assert r["spread_pct"] < 10.0, r["matrix"]
    avg = geomean(r["speedup"] for r in rows)
    assert 1.2 < avg < 1.8

    benchmark.pedantic(
        lambda: generate("cage12", scale=scale, seed=404),
        rounds=3, iterations=1,
    )
