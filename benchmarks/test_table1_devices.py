"""Table 1: specifications of the simulated GPUs.

Regenerates the device table and benchmarks the timing-model hot path.
"""

from conftest import save_table

from repro.bench.experiments import table1_devices
from repro.gpu.counters import KernelCounters
from repro.gpu.device import TESLA_K20
from repro.gpu.timing import predict

COLUMNS = [
    "device",
    "compute_capability",
    "cores",
    "mem_bw_gbps",
    "dp_gflops",
    "measured_bw_gbps",
    "decode_gops",
]


def test_table1_devices(benchmark):
    rows = table1_devices()
    save_table("table1_devices", rows, COLUMNS, "Table 1: simulated GPU specs")

    # Published Table 1 values must be reproduced exactly.
    by_name = {r["device"]: r for r in rows}
    assert by_name["Tesla C2070"]["cores"] == 448
    assert by_name["Tesla C2070"]["mem_bw_gbps"] == 144.0
    assert by_name["GTX680"]["cores"] == 1536
    assert by_name["GTX680"]["dp_gflops"] == 129.0
    assert by_name["Tesla K20"]["cores"] == 2496
    assert by_name["Tesla K20"]["mem_bw_gbps"] == 208.0
    assert by_name["Tesla K20"]["dp_gflops"] == 1170.0

    counters = KernelCounters(
        value_bytes=10**8, useful_flops=10**7, issued_flops=10**7,
        decode_ops=10**7, threads=10**6,
    )
    benchmark(lambda: predict(counters, TESLA_K20).gflops)
