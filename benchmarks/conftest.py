"""Shared fixtures/helpers for the paper-reproduction benchmark suite.

Each ``test_table*.py`` / ``test_fig*.py`` file regenerates one table or
figure of the paper: it computes the experiment rows, persists them under
``benchmarks/results/`` (ASCII table + CSV), asserts the paper's
qualitative shape, and benchmarks a representative kernel with
pytest-benchmark.

Matrix scale defaults to ``REPRO_BENCH_SCALE`` (0.06); set it to 1.0 to
run full Table 2 sizes.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # noqa: E402 - allow helpers import

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name, rows, columns, title=""):
    """Persist experiment rows as an ASCII table and a CSV file."""
    from repro.bench.reporting import format_table, write_csv

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = format_table(rows, columns, title=title)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    write_csv(rows, os.path.join(RESULTS_DIR, f"{name}.csv"), columns)
    print("\n" + text)
    return text


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
