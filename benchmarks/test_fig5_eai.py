"""Fig. 5: effective arithmetic intensity, ELLPACK vs BRO-ELL on the K20.

Shape to hold: BRO-ELL achieves a higher EAI (flops per DRAM byte) than
ELLPACK on every Test Set 1 matrix, because compression removes index
traffic without removing flops.
"""

from conftest import save_table

from repro.bench.experiments import fig5_eai
from repro.bench.harness import bench_scale, cached_format

COLUMNS = ["matrix", "eai_ellpack", "eai_bro_ell", "eai_ratio"]


def test_fig5_eai(benchmark):
    rows = fig5_eai()
    save_table("fig5_eai", rows, COLUMNS,
               "Fig. 5: effective arithmetic intensity on Tesla K20",
               )

    for r in rows:
        assert r["eai_bro_ell"] > r["eai_ellpack"], r["matrix"]
    # Theoretical ceiling: dropping ALL index traffic from ELLPACK's
    # 12 B/entry floor caps the ratio well below 2.
    for r in rows:
        assert r["eai_ratio"] < 2.2, r["matrix"]

    mat = cached_format("consph", bench_scale(), "bro_ell")

    def eai():
        from repro.bench.harness import spmv_once

        return spmv_once(mat, "k20").counters.effective_arithmetic_intensity

    benchmark.pedantic(eai, rounds=3, iterations=1)
