"""Table 3: index space savings of BRO-ELL compression on Test Set 1.

Paper values range from 50.7% (mc2depi) to 92.9% (shipsec1); the shape to
hold is which matrices compress well and which do not.
"""

from conftest import save_table

from repro.bench.experiments import table3_savings
from repro.bench.harness import bench_scale, cached_format

#: Published Table 3 (percent space savings).
PAPER_TABLE3 = {
    "cage12": 78.0, "cant": 85.9, "consph": 85.3, "e40r5000": 92.5,
    "epb3": 83.2, "lhr71": 92.1, "mc2depi": 50.7, "pdb1HYS": 89.2,
    "qcd5_4": 87.7, "rim": 92.7, "rma10": 90.8, "shipsec1": 92.9,
    "stomach": 70.7, "torso3": 75.9, "venkat01": 90.2, "xenon2": 74.0,
}

COLUMNS = ["matrix", "eta_pct", "eta_paper", "kappa",
           "original_bytes", "compressed_bytes"]


def test_table3_savings(benchmark):
    rows = table3_savings()
    for row in rows:
        row["eta_paper"] = PAPER_TABLE3[row["matrix"]]
    save_table("table3_savings", rows, COLUMNS,
               "Table 3: BRO-ELL index space savings (measured vs paper)")

    # mc2depi's eta converges to the paper's 50.7% only at full scale (its
    # first-column delta width grows with the grid side), so the per-matrix
    # bound is looser than the average bound. Assumes scale >= 0.05.
    errors = [abs(r["eta_pct"] - r["eta_paper"]) for r in rows]
    assert max(errors) < 13.0  # every matrix in the right regime
    assert sum(errors) / len(errors) < 5.0  # and close on average

    # Qualitative shape: mc2depi is the least compressible, shipsec1-class
    # FEM matrices the most.
    by_name = {r["matrix"]: r["eta_pct"] for r in rows}
    assert by_name["mc2depi"] == min(by_name.values())
    assert by_name["shipsec1"] > 88.0

    scale = bench_scale()
    coo = cached_format("venkat01", scale, "coo")
    from repro.core.bro_ell import BROELLMatrix

    benchmark.pedantic(
        lambda: BROELLMatrix.from_coo(coo, h=256), rounds=3, iterations=1
    )
