"""Ablation: BAR's objective with the x-cacheline term (Eqn. 3) removed.

Eqn. (1) sums a bit-width (stream-transaction) term and a cacheline term.
Dropping the cacheline term (cache_weight = 0) should compress at least
as well — it optimizes compression alone — but may touch more x lines;
this quantifies what each term buys, the design question behind the
paper's Section 3.4 limitation note.
"""

from conftest import save_table

from repro.bench.harness import cached_matrix, spmv_once
from repro.core.bro_ell import BROELLMatrix
from repro.core.compression import index_compression_report
from repro.reorder.bar import bar_permutation

import os

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 0.02))

COLUMNS = [
    "matrix",
    "eta_full_pct", "eta_nocache_pct",
    "x_bytes_full", "x_bytes_nocache",
    "gflops_full", "gflops_nocache",
]


def test_ablation_bar_objective(benchmark):
    rows = []
    for name in ("cage12", "rim", "stomach"):
        coo = cached_matrix(name, _SCALE)
        row = {"matrix": name}
        for label, weight in (("full", 1.0), ("nocache", 0.0)):
            perm = bar_permutation(coo, h=256, cache_weight=weight)
            bro = BROELLMatrix.from_coo(coo.permute_rows(perm), h=256)
            res = spmv_once(bro, "k20")
            row[f"eta_{label}_pct"] = 100.0 * index_compression_report(
                bro, name
            ).eta
            row[f"x_bytes_{label}"] = res.counters.x_bytes
            row[f"gflops_{label}"] = res.gflops
        rows.append(row)
    save_table("ablation_bar_objective", rows, COLUMNS,
               "Ablation: BAR with/without the Eqn. (3) cacheline term")

    # Compression-only BAR compresses at least as well...
    for r in rows:
        assert r["eta_nocache_pct"] >= r["eta_full_pct"] - 1.0, r["matrix"]
    # ...but the cache term never *hurts* x traffic on these matrices.
    for r in rows:
        assert r["x_bytes_full"] <= 1.1 * r["x_bytes_nocache"], r["matrix"]

    coo = cached_matrix("rim", _SCALE)
    benchmark.pedantic(
        lambda: bar_permutation(coo, h=256, cache_weight=0.0),
        rounds=3, iterations=1,
    )
