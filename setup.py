"""Legacy shim so `pip install -e .` / `setup.py develop` work offline
(the sandbox has setuptools but no `wheel`, so PEP-660 editable builds
are unavailable)."""
from setuptools import setup

setup()
