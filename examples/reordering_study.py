#!/usr/bin/env python
"""Reordering study: BRO-aware reordering (BAR) vs RCM and AMD.

Reproduces the Section 3.4 / Fig. 9 story on one matrix: reorder its rows
with BAR (Algorithm 2), Reverse Cuthill-McKee and approximate minimum
degree, then compare the BRO-ELL space savings and the modeled SpMV
throughput of each ordering.

Run:  python examples/reordering_study.py [matrix] [scale]
"""

import sys

import numpy as np

from repro.core import BROELLMatrix, index_compression_report
from repro.kernels import run_spmv
from repro.matrices import generate
from repro.reorder import (
    amd_permutation,
    bar_permutation,
    identity_permutation,
    rcm_permutation,
    rowsort_permutation,
)


def main(name: str = "rim", scale: float = 0.05) -> None:
    print(f"Generating {name} at scale {scale} ...")
    coo = generate(name, scale=scale)
    x = np.random.default_rng(0).standard_normal(coo.shape[1])
    print(f"  {coo.shape[0]} rows, {coo.nnz} non-zeros")

    orderings = [
        ("original", lambda c: identity_permutation(c.shape[0])),
        ("BAR", lambda c: bar_permutation(c, h=256)),
        ("RCM", rcm_permutation),
        ("AMD", amd_permutation),
        ("row-sort", rowsort_permutation),
    ]

    print(f"\n{'ordering':<10s} {'eta %':>7s} {'K20 GFlop/s':>12s} {'gain':>7s}")
    base_gflops = None
    for label, fn in orderings:
        perm = fn(coo)
        reordered = coo.permute_rows(perm)
        bro = BROELLMatrix.from_coo(reordered, h=256)
        eta = 100.0 * index_compression_report(bro, name).eta
        res = run_spmv(bro, x, "k20")
        # Verify: the reordered product is the permuted original product.
        assert np.allclose(res.y, coo.spmv(x)[perm])
        if base_gflops is None:
            base_gflops = res.gflops
        gain = 100.0 * (res.gflops / base_gflops - 1.0)
        print(f"{label:<10s} {eta:>7.1f} {res.gflops:>12.2f} {gain:>+6.1f}%")

    print("\nBAR clusters rows with similar delta-width patterns into the "
          "same slice (Eqn. 1), which is what the packed stream rewards; "
          "bandwidth-oriented RCM/AMD are blind to that objective.")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "rim", float(args[1]) if len(args) > 1 else 0.05)
