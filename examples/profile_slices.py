#!/usr/bin/env python
"""Slice-level profiling: where do a matrix's bytes and decode work live?

Uses the per-slice trace (`repro.gpu.trace`) to find the hot slices of a
BRO-ELL matrix — wide slices, poorly compressed slices, slices with bad
x locality — the view a CUDA profiler timeline would give, and the first
thing to look at when a matrix underperforms.

Run:  python examples/profile_slices.py [matrix] [scale]
"""

import sys

from repro.core import BROELLMatrix
from repro.gpu import get_device, trace_bro_ell
from repro.gpu.trace import SliceTrace
from repro.matrices import generate


def main(name: str = "lhr71", scale: float = 0.04) -> None:
    print(f"Generating {name} at scale {scale} ...")
    coo = generate(name, scale=scale)
    bro = BROELLMatrix.from_coo(coo, h=256)
    device = get_device("k20")
    traces = trace_bro_ell(bro, device)

    total_bytes = sum(t.stream_bytes + t.value_bytes + t.x_bytes for t in traces)
    print(f"  {bro.num_slices} slices, {coo.nnz} nnz, "
          f"{total_bytes / 1e6:.2f} MB total slice traffic\n")

    # The five most expensive slices by total traffic.
    hot = sorted(
        traces,
        key=lambda t: t.stream_bytes + t.value_bytes + t.x_bytes,
        reverse=True,
    )[:5]
    print("hottest slices by traffic:")
    print(SliceTrace.header())
    for t in hot:
        print(t.row())

    # The five worst-compressed slices (widest average codes).
    wide = sorted(traces, key=lambda t: -t.mean_bits)[:5]
    print("\nworst-compressed slices (mean bit width):")
    print(SliceTrace.header())
    for t in wide:
        print(t.row())

    pad_heavy = max(traces, key=lambda t: t.padding_fraction)
    print(f"\nmost padded slice: #{pad_heavy.slice_id} "
          f"({100 * pad_heavy.padding_fraction:.1f}% padded iterations) — "
          f"a BAR reordering target (see examples/reordering_study.py).")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "lhr71",
         float(args[1]) if len(args) > 1 else 0.04)
