#!/usr/bin/env python
"""Quickstart: compress a sparse matrix with BRO-ELL and run simulated SpMV.

Builds a FEM-like sparse matrix, stores it as ELLPACK and as BRO-ELL,
executes the simulated GPU kernels on the paper's three devices, and
reports the compression and the modeled speedup — a miniature of the
paper's Fig. 4 experiment.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BROELLMatrix, index_compression_report
from repro.formats import ELLPACKMatrix
from repro.kernels import run_spmv
from repro.matrices import block_band

def main() -> None:
    # A 20k-row structural-mechanics-style matrix (runs of 3 columns in a
    # diagonal band), the structure the paper's Test Set 1 is full of.
    print("Generating a 20k x 20k FEM-like matrix ...")
    matrix = block_band(m=20_000, mu=40.0, sigma=10.0, run=3, bandwidth=600, seed=7)
    print(f"  shape={matrix.shape}, nnz={matrix.nnz}")

    # Store it classically and compressed.
    ell = ELLPACKMatrix.from_coo(matrix)
    bro = BROELLMatrix.from_coo(matrix, h=256)  # h = thread-block size

    report = index_compression_report(bro, "fem")
    print(f"\nIndex data: {report.original_index_bytes / 1e6:.2f} MB (ELLPACK) "
          f"-> {report.compressed_index_bytes / 1e6:.2f} MB (BRO-ELL)")
    print(f"Space savings eta = {100 * report.eta:.1f}%  "
          f"(compression ratio {report.kappa:.1f}x)")

    # One SpMV on each simulated GPU of paper Table 1.
    x = np.random.default_rng(0).standard_normal(matrix.shape[1])
    reference = matrix.spmv(x)
    print(f"\n{'device':<12s} {'ELLPACK':>10s} {'BRO-ELL':>10s} {'speedup':>8s}")
    for device in ("c2070", "gtx680", "k20"):
        res_ell = run_spmv(ell, x, device)
        res_bro = run_spmv(bro, x, device)
        assert np.allclose(res_bro.y, reference)  # bit-exact decode
        print(f"{device:<12s} {res_ell.gflops:>8.2f} GF {res_bro.gflops:>8.2f} GF "
              f"{res_bro.gflops / res_ell.gflops:>7.2f}x")

    print("\nThe BRO-ELL kernel decodes the real packed bit stream "
          "(Algorithm 1) and the timing model converts the measured "
          "memory transactions into the GFlop/s above.")


if __name__ == "__main__":
    main()
