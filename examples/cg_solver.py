#!/usr/bin/env python
"""Conjugate-Gradient case study: how much solver time does BRO save?

The paper motivates BRO with iterative solvers (CG / GMRES) whose runtime
is dominated by SpMV. This example builds an SPD system, solves it with CG
through the *simulated-GPU* operator for HYB and BRO-HYB storage, and
reports the predicted device seconds spent in SpMV for each format — the
end-to-end view of Fig. 8's kernel-level speedups.

Run:  python examples/cg_solver.py
"""

import numpy as np

from repro.core import BROHYBMatrix
from repro.formats import HYBMatrix
from repro.formats.coo import COOMatrix
from repro.matrices import banded_random
from repro.solvers import SimulatedOperator, conjugate_gradient


def spd_system(m: int = 8_000, seed: int = 3):
    """An SPD matrix A = B + B^T + diag(dominance) from a banded pattern."""
    b = banded_random(m, mu=12.0, sigma=3.0, bandwidth=300, seed=seed)
    rows = np.concatenate([b.row_idx, b.col_idx, np.arange(m)])
    cols = np.concatenate([b.col_idx, b.row_idx, np.arange(m)])
    vals = np.concatenate([np.abs(b.vals), np.abs(b.vals), np.zeros(m)])
    coo = COOMatrix(rows, cols, vals, (m, m))
    # Diagonal dominance makes it SPD and well conditioned.
    diag_bonus = 2.0 * np.abs(coo.vals).sum() / m
    rows = np.concatenate([coo.row_idx, np.arange(m)])
    cols = np.concatenate([coo.col_idx, np.arange(m)])
    vals = np.concatenate([coo.vals, np.full(m, diag_bonus)])
    return COOMatrix(rows, cols, vals, (m, m))


def main() -> None:
    print("Building an SPD system (8k unknowns) ...")
    coo = spd_system()
    rng = np.random.default_rng(11)
    x_true = rng.standard_normal(coo.shape[0])
    b = coo.spmv(x_true)

    print(f"  nnz = {coo.nnz}, mean row length = {coo.row_lengths().mean():.1f}")

    for fmt_name, fmt in (
        ("HYB", HYBMatrix.from_coo(coo)),
        ("BRO-HYB", BROHYBMatrix.from_coo(coo, h=256)),
    ):
        op = SimulatedOperator(fmt, device="k20")
        result = conjugate_gradient(op, b, tol=1e-10, max_iter=2000)
        err = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        print(
            f"\n{fmt_name:>8s}: converged={result.converged} "
            f"in {result.iterations} iterations (rel.err {err:.2e})"
        )
        print(f"          SpMV calls: {op.spmv_calls}")
        print(f"          predicted device time in SpMV: "
              f"{op.device_time * 1e3:.2f} ms")
        print(f"          predicted DRAM traffic: {op.dram_bytes / 1e9:.3f} GB")

    print("\nSame iterate trajectory (the decode is exact), less device "
          "time: compression only changes how fast each SpMV runs.")


if __name__ == "__main__":
    main()
