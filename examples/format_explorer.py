#!/usr/bin/env python
"""Format explorer: compare every storage format on a Table 2 matrix.

For a named matrix of the paper's evaluation suite (Table 2), prints the
device bytes, compression, and modeled SpMV GFlop/s of every registered
format on every simulated GPU — the decision view a downstream user needs
when picking a format.

Run:  python examples/format_explorer.py [matrix] [scale]
      python examples/format_explorer.py shipsec1 0.08
"""

import sys

import numpy as np

from repro.formats import available_formats, convert
from repro.kernels import available_kernels, run_spmv
from repro.matrices import TABLE2, analyze, generate


def main(name: str = "shipsec1", scale: float = 0.08) -> None:
    if name not in TABLE2:
        raise SystemExit(f"unknown matrix {name!r}; pick one of {sorted(TABLE2)}")
    spec = TABLE2[name]
    print(f"Generating {name} at scale {scale} "
          f"(paper: {spec.rows}x{spec.cols}, nnz={spec.nnz}, mu={spec.mu}) ...")
    coo = generate(name, scale=scale)
    stats = analyze(coo, name)
    print(f"  generated: {stats.rows}x{stats.cols}, nnz={stats.nnz}, "
          f"mu={stats.mu:.1f}, sigma={stats.sigma:.1f}, "
          f"mean delta width {stats.mean_delta_bits:.2f} bits")

    x = np.random.default_rng(0).standard_normal(coo.shape[1])
    reference = coo.spmv(x)

    header = (f"{'format':<16s} {'index MB':>9s} {'total MB':>9s} "
              f"{'C2070':>8s} {'GTX680':>8s} {'K20':>8s}")
    print("\n" + header)
    print("-" * len(header))
    for fmt in sorted(set(available_formats()) & set(available_kernels())):
        kwargs = {"h": 256} if fmt in ("sliced_ellpack", "bro_ell", "bro_hyb") else {}
        try:
            mat = convert(coo, fmt, **kwargs)
        except Exception as exc:  # e.g. ELLPACK blow-up on a huge-row matrix
            print(f"{fmt:<16s} (skipped: {exc})")
            continue
        gflops = []
        for device in ("c2070", "gtx680", "k20"):
            res = run_spmv(mat, x, device)
            assert np.allclose(res.y, reference, rtol=1e-8)
            gflops.append(res.gflops)
        db = mat.device_bytes()
        print(
            f"{fmt:<16s} {db['index'] / 1e6:>9.2f} {mat.total_bytes / 1e6:>9.2f} "
            f"{gflops[0]:>8.2f} {gflops[1]:>8.2f} {gflops[2]:>8.2f}"
        )

    print("\nGFlop/s are modeled from counted memory transactions, decode "
          "work and occupancy (see repro.gpu.timing).")


if __name__ == "__main__":
    args = sys.argv[1:]
    main(
        args[0] if args else "shipsec1",
        float(args[1]) if len(args) > 1 else 0.08,
    )
