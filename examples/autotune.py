#!/usr/bin/env python
"""Autotuning: pick the best storage format per matrix, per device.

The paper's related work (clSpMV, Grewe-Lokhmotov) autotunes format
choice empirically; with a counter-driven performance model the same
decision is a cheap query. This example asks the advisor for its top
pick across structurally different matrices and all three simulated
GPUs, and confirms the pick against an exhaustive model sweep.

Run:  python examples/autotune.py
"""

from repro.matrices import generate
from repro.tuner import rank_formats


def main() -> None:
    matrices = [
        ("shipsec1", "uniform FEM block band"),
        ("lhr71", "skewed chemical-process rows"),
        ("rajat30", "bimodal circuit (huge tail rows)"),
        ("webbase-1M", "power-law web graph"),
    ]
    print(f"{'matrix':<12s} {'structure':<32s} "
          f"{'C2070':<18s} {'GTX680':<18s} {'K20':<18s}")
    print("-" * 100)
    for name, structure in matrices:
        coo = generate(name, scale=0.05)
        picks = []
        for device in ("c2070", "gtx680", "k20"):
            ranking = rank_formats(coo, device, h_candidates=(128, 256))
            best = ranking[0]
            runner_up = ranking[1]
            margin = runner_up.time_per_nnz / best.time_per_nnz
            picks.append(f"{best.format_name} (+{100 * (margin - 1):.0f}%)")
        print(f"{name:<12s} {structure:<32s} "
              f"{picks[0]:<18s} {picks[1]:<18s} {picks[2]:<18s}")

    print("\nEach cell: the model's top format and its margin over the "
          "runner-up. Structure, not size, drives the choice — exactly "
          "the premise of the paper's format taxonomy.")


if __name__ == "__main__":
    main()
