"""The typed execution contract: one frozen object instead of five kwargs.

Before this module, every execution entry point — ``run_spmv``,
``run_spmm``, :meth:`Session.execute`, ``SimulatedOperator`` — grew the
same five loose keywords (``verify=``, ``fallback=``, ``engine=``,
``plan=``, ``plan_cache=``), each call site re-documenting and
re-validating them. :class:`ExecutionPolicy` replaces the sprawl with a
single frozen dataclass that also carries the *new* multi-device knobs
(``devices``, ``partitioner``), so every execution target — single
device or sharded — is configured the same way::

    from repro import ExecutionPolicy, run_spmv

    policy = ExecutionPolicy(verify="checksum", devices=4,
                             partitioner="greedy-nnz")
    result = run_spmv(matrix, x, "k20", policy=policy)

The legacy keywords keep working for one release as deprecated shims
(:func:`coerce_policy` folds them into a policy and emits a
``DeprecationWarning``); mixing ``policy=`` with a legacy keyword is an
error so a call never has two sources of truth.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional, Union

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from ..formats.base import SparseFormat
    from ..kernels.plan import SpMVPlan
    from ..kernels.plancache import PlanCache

__all__ = ["ExecutionPolicy", "coerce_policy", "UNSET"]

#: Accepted ``verify`` levels, in increasing strictness.
VERIFY_LEVELS = (False, "structure", "checksum", "full")

#: Accepted ``engine`` selectors.
ENGINES = ("auto", "fast", "reference")

#: Registered row-partitioner names (mirrored by repro.exec.partition).
PARTITIONERS = ("contiguous", "greedy-nnz", "slice-aligned")


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


#: Singleton default for the deprecated keyword shims.
UNSET = _Unset()


def normalize_verify(verify: Union[bool, str, None]) -> Union[bool, str]:
    """Map the accepted ``verify`` spellings onto their canonical level."""
    if verify is None or verify is False:
        return False
    if verify is True:
        return "checksum"
    if verify in ("structure", "checksum", "full"):
        return verify
    raise ValidationError(
        f"verify must be one of {VERIFY_LEVELS}, got {verify!r}"
    )


@dataclass(frozen=True)
class ExecutionPolicy:
    """Complete configuration of one SpMV/SpMM execution path.

    Parameters
    ----------
    engine:
        ``"auto"`` (default) — fast engine when a plan source is present
        and the format has a plan builder; ``"fast"`` — prepared-plan
        replay; ``"reference"`` — always the stepwise kernels.
    verify:
        Integrity level applied before dispatch: ``False`` (default),
        ``"structure"``, ``True``/``"checksum"`` or ``"full"``.
    fallback:
        Trusted container served when the primary fails verification or
        decode (typically the pristine CSR); ``None`` propagates errors.
    plan:
        Explicit :class:`~repro.kernels.plan.SpMVPlan` to replay.
    plan_cache:
        :class:`~repro.kernels.plancache.PlanCache` to build/reuse plans
        from; ``None`` falls back to the process-wide cache when the
        fast engine is selected.
    devices:
        Number of simulated devices. ``1`` (default) executes exactly as
        before; ``> 1`` routes through the sharded engine
        (:mod:`repro.exec.engine`): rows are partitioned, each shard runs
        on its own device, partial products are reduced, and the timing
        model adds the interconnect term.
    partitioner:
        Row-partitioning strategy for ``devices > 1``: ``"greedy-nnz"``
        (default, balances non-zeros), ``"contiguous"`` (balances rows)
        or ``"slice-aligned"`` (greedy-nnz with boundaries snapped to
        BRO-ELL slice multiples so shard bitstreams re-encode without
        cross-shard slices).
    comms:
        Interconnect strategy modeled for the x-vector distribution:
        ``"auto"`` (default, cheaper of the two), ``"broadcast"`` (full x
        to every device) or ``"halo"`` (each device fetches only the
        remote cachelines its columns reach).
    """

    engine: str = "auto"
    verify: Union[bool, str] = False
    fallback: Optional["SparseFormat"] = field(default=None, compare=False)
    plan: Optional["SpMVPlan"] = field(default=None, compare=False)
    plan_cache: Optional["PlanCache"] = field(default=None, compare=False)
    devices: int = 1
    partitioner: str = "greedy-nnz"
    comms: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValidationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        object.__setattr__(self, "verify", normalize_verify(self.verify))
        if not isinstance(self.devices, int) or self.devices < 1:
            raise ValidationError(
                f"devices must be a positive integer, got {self.devices!r}"
            )
        if self.partitioner not in PARTITIONERS:
            raise ValidationError(
                f"partitioner must be one of {PARTITIONERS}, "
                f"got {self.partitioner!r}"
            )
        if self.comms not in ("auto", "broadcast", "halo"):
            raise ValidationError(
                f"comms must be 'auto', 'broadcast' or 'halo', "
                f"got {self.comms!r}"
            )
        if self.devices > 1 and self.plan is not None:
            raise ValidationError(
                "an explicit plan= cannot drive a multi-device execution; "
                "shards build their own plans (pass plan_cache= instead)"
            )

    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """Whether this policy routes through the multi-device engine."""
        return self.devices > 1

    def with_(self, **updates: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **updates)

    def describe(self) -> dict:
        """JSON-able summary (objects reduced to presence flags)."""
        return {
            "engine": self.engine,
            "verify": self.verify,
            "fallback": (
                self.fallback.format_name if self.fallback is not None else None
            ),
            "plan": self.plan is not None,
            "plan_cache": self.plan_cache is not None,
            "devices": self.devices,
            "partitioner": self.partitioner,
            "comms": self.comms,
        }


#: The library-wide default policy (single device, reference-compatible).
_DEFAULT = ExecutionPolicy()

#: Legacy keyword names folded by :func:`coerce_policy`, in the order the
#: old signatures declared them.
_LEGACY_KEYS = ("verify", "fallback", "engine", "plan", "plan_cache")


def coerce_policy(
    policy: Optional[ExecutionPolicy],
    *,
    caller: str,
    verify: Any = UNSET,
    fallback: Any = UNSET,
    engine: Any = UNSET,
    plan: Any = UNSET,
    plan_cache: Any = UNSET,
) -> ExecutionPolicy:
    """Fold the deprecated loose keywords into an :class:`ExecutionPolicy`.

    * Neither given — the default policy.
    * ``policy=`` only — returned as-is.
    * Legacy keywords only — folded into a fresh policy, with one
      ``DeprecationWarning`` naming the keywords and the caller.
    * Both — :class:`~repro.errors.ValidationError`; a call must have a
      single source of truth.
    """
    passed = {
        name: value
        for name, value in zip(
            _LEGACY_KEYS, (verify, fallback, engine, plan, plan_cache)
        )
        if value is not UNSET
    }
    if policy is not None:
        if not isinstance(policy, ExecutionPolicy):
            raise ValidationError(
                f"policy must be an ExecutionPolicy, got {type(policy).__name__}"
            )
        if passed:
            raise ValidationError(
                f"{caller}: pass either policy= or the legacy keyword(s) "
                f"{sorted(passed)}, not both"
            )
        return policy
    if not passed:
        return _DEFAULT
    warnings.warn(
        f"{caller}: the {sorted(passed)} keyword(s) are deprecated; pass "
        f"policy=ExecutionPolicy({', '.join(sorted(passed))}=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    defaults = {"verify": False, "fallback": None, "engine": "auto",
                "plan": None, "plan_cache": None}
    defaults.update(passed)
    return ExecutionPolicy(**defaults)
