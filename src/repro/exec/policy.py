"""The typed execution contract: one frozen object instead of five kwargs.

Every execution entry point — ``run_spmv``, ``run_spmm``,
:meth:`Session.execute`, ``SimulatedOperator`` — is configured by a
single frozen :class:`ExecutionPolicy`. The policy carries the
single-device knobs (``engine``, ``verify``, ``fallback``, plan
sourcing), the multi-device knobs (``devices``, ``partitioner``,
``comms``) and the fault-tolerance knobs (``backend``,
``shard_timeout_s``, ``max_retries``, ``elastic``, ``chaos``)::

    from repro import ExecutionPolicy, run_spmv

    policy = ExecutionPolicy(verify="checksum", devices=4,
                             backend="process", partitioner="greedy-nnz")
    result = run_spmv(matrix, x, "k20", policy=policy)

The pre-policy loose keywords (``verify=``/``fallback=``/``engine=``/
``plan=``/``plan_cache=``) were deprecated shims for one release and
have been removed; ``policy=`` is the only spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional, Union

from ..errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (cycle guard)
    from ..formats.base import SparseFormat
    from ..kernels.plan import SpMVPlan
    from ..kernels.plancache import PlanCache
    from .chaos import ChaosPolicy

__all__ = ["ExecutionPolicy"]

#: Accepted ``verify`` levels, in increasing strictness.
VERIFY_LEVELS = (False, "structure", "checksum", "full")

#: Accepted ``engine`` selectors.
ENGINES = ("auto", "fast", "reference")

#: Accepted sharded-execution backends.
BACKENDS = ("thread", "process")

#: Accepted executor (compute) backend requests for plan replay.
COMPUTE_BACKENDS = ("auto", "numpy", "jit")

#: Registered row-partitioner names (mirrored by repro.exec.partition).
PARTITIONERS = ("contiguous", "greedy-nnz", "slice-aligned")


def normalize_verify(verify: Union[bool, str, None]) -> Union[bool, str]:
    """Map the accepted ``verify`` spellings onto their canonical level."""
    if verify is None or verify is False:
        return False
    if verify is True:
        return "checksum"
    if verify in ("structure", "checksum", "full"):
        return verify
    raise ValidationError(
        f"verify must be one of {VERIFY_LEVELS}, got {verify!r}"
    )


@dataclass(frozen=True)
class ExecutionPolicy:
    """Complete configuration of one SpMV/SpMM execution path.

    Parameters
    ----------
    engine:
        ``"auto"`` (default) — fast engine when a plan source is present
        and the format has a plan builder; ``"fast"`` — prepared-plan
        replay; ``"reference"`` — always the stepwise kernels.
    verify:
        Integrity level applied before dispatch: ``False`` (default),
        ``"structure"``, ``True``/``"checksum"`` or ``"full"``.
    fallback:
        Trusted container served when the primary fails verification or
        decode (typically the pristine CSR); ``None`` propagates errors.
    plan:
        Explicit :class:`~repro.kernels.plan.SpMVPlan` to replay.
    plan_cache:
        :class:`~repro.kernels.plancache.PlanCache` to build/reuse plans
        from; ``None`` falls back to the process-wide cache when the
        fast engine is selected.
    devices:
        Number of simulated devices. ``1`` (default) executes exactly as
        before; ``> 1`` routes through the sharded engine
        (:mod:`repro.exec.engine`): rows are partitioned, each shard runs
        on its own device, partial products are reduced, and the timing
        model adds the interconnect term.
    partitioner:
        Row-partitioning strategy for ``devices > 1``: ``"greedy-nnz"``
        (default, balances non-zeros), ``"contiguous"`` (balances rows)
        or ``"slice-aligned"`` (greedy-nnz with boundaries snapped to
        BRO-ELL slice multiples so shard bitstreams re-encode without
        cross-shard slices).
    comms:
        Interconnect strategy modeled for the x-vector distribution:
        ``"auto"`` (default, cheaper of the two), ``"broadcast"`` (full x
        to every device) or ``"halo"`` (each device fetches only the
        remote cachelines its columns reach).
    backend:
        How shards execute: ``"thread"`` (default, in-process thread
        pool) or ``"process"`` — a coordinator plus ``multiprocessing``
        workers that each mmap their own ``.brx`` shard container, with
        heartbeats, shard failover and elastic respawn
        (:mod:`repro.exec.workers`).
    shard_timeout_s:
        Per-shard execution deadline in seconds (``None`` disables).
        The thread backend raises a typed
        :class:`~repro.errors.ShardTimeoutError` on a miss; the process
        backend treats a miss as a stalled worker and fails the shard
        over to a surviving worker before giving up.
    max_retries:
        Process-backend retry budget per shard and call: how many times
        a shard may be re-executed (with backoff and reassignment) after
        a worker death, a stall or a corrupt result before the engine
        raises a typed error.
    elastic:
        Whether the process pool respawns a replacement worker after a
        death or a forced stall termination (default ``True``). With
        ``False`` the pool shrinks and shards pile onto the survivors.
    chaos:
        Optional seeded :class:`~repro.exec.chaos.ChaosPolicy` injecting
        faults into the sharded engines — worker kills, stalls and
        corrupted shard results — for failover testing.
    compute_backend:
        Executor backend for prepared-plan replay
        (:mod:`repro.kernels.backends`): ``"auto"`` (default) uses the
        Numba-compiled loops when Numba is importable and the format has
        them, else interpreted NumPy; ``"numpy"`` forces the interpreted
        path; ``"jit"`` requests compiled loops and falls back to NumPy
        (counter-visible, never an exception) when they are unavailable.
        Results are bit-identical across backends.
    """

    engine: str = "auto"
    verify: Union[bool, str] = False
    fallback: Optional["SparseFormat"] = field(default=None, compare=False)
    plan: Optional["SpMVPlan"] = field(default=None, compare=False)
    plan_cache: Optional["PlanCache"] = field(default=None, compare=False)
    devices: int = 1
    partitioner: str = "greedy-nnz"
    comms: str = "auto"
    backend: str = "thread"
    shard_timeout_s: Optional[float] = None
    max_retries: int = 2
    elastic: bool = True
    chaos: Optional["ChaosPolicy"] = field(default=None, compare=False)
    compute_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValidationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        object.__setattr__(self, "verify", normalize_verify(self.verify))
        if not isinstance(self.devices, int) or self.devices < 1:
            raise ValidationError(
                f"devices must be a positive integer, got {self.devices!r}"
            )
        if self.partitioner not in PARTITIONERS:
            raise ValidationError(
                f"partitioner must be one of {PARTITIONERS}, "
                f"got {self.partitioner!r}"
            )
        if self.comms not in ("auto", "broadcast", "halo"):
            raise ValidationError(
                f"comms must be 'auto', 'broadcast' or 'halo', "
                f"got {self.comms!r}"
            )
        if self.backend not in BACKENDS:
            raise ValidationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.compute_backend not in COMPUTE_BACKENDS:
            raise ValidationError(
                f"compute_backend must be one of {COMPUTE_BACKENDS}, "
                f"got {self.compute_backend!r}"
            )
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValidationError(
                f"shard_timeout_s must be positive or None, "
                f"got {self.shard_timeout_s!r}"
            )
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValidationError(
                f"max_retries must be a non-negative integer, "
                f"got {self.max_retries!r}"
            )
        if self.chaos is not None:
            from .chaos import ChaosPolicy  # local: avoid import cycle

            if not isinstance(self.chaos, ChaosPolicy):
                raise ValidationError(
                    f"chaos must be a ChaosPolicy, "
                    f"got {type(self.chaos).__name__}"
                )
        if self.devices > 1 and self.plan is not None:
            raise ValidationError(
                "an explicit plan= cannot drive a multi-device execution; "
                "shards build their own plans (pass plan_cache= instead)"
            )

    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """Whether this policy routes through the multi-device engine."""
        return self.devices > 1

    def with_(self, **updates: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **updates)

    def describe(self) -> dict:
        """JSON-able summary (objects reduced to presence flags)."""
        return {
            "engine": self.engine,
            "verify": self.verify,
            "fallback": (
                self.fallback.format_name if self.fallback is not None else None
            ),
            "plan": self.plan is not None,
            "plan_cache": self.plan_cache is not None,
            "devices": self.devices,
            "partitioner": self.partitioner,
            "comms": self.comms,
            "backend": self.backend,
            "shard_timeout_s": self.shard_timeout_s,
            "max_retries": self.max_retries,
            "elastic": self.elastic,
            "chaos": self.chaos is not None,
            "compute_backend": self.compute_backend,
        }
