"""Row partitioning of sparse matrices across simulated devices.

The sharded engine follows the standard distributed-SpMV decomposition
(Kreutzer et al., arXiv:1112.5588): the matrix is split into *contiguous
row blocks*, one per device, each re-encoded in the original storage
format. Contiguity is what keeps the result bit-identical to the
single-device kernel — every kernel in this library accumulates each row
in ascending-column order, so concatenating per-shard ``y`` blocks
reproduces the exact floating-point sequence of the unsharded run.

Three balancers choose the block boundaries:

* ``"contiguous"`` — equal row counts (the naive split);
* ``"greedy-nnz"`` — boundaries placed on the nnz prefix sum so every
  device receives ~``nnz/N`` non-zeros (work balance for SpMV);
* ``"slice-aligned"`` — greedy-nnz with boundaries snapped to multiples
  of the BRO-ELL slice height ``h``, so shard bitstreams re-encode
  without splitting a slice across devices.

:func:`partition` returns a :class:`ShardedMatrix` — itself a registered
format (``"sharded"``), so sealing, ``.brx`` serialization and the
capability matrix all apply to sharded matrices with no special cases.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import registry as _registry
from ..errors import FormatError, ValidationError
from ..formats.base import SparseFormat, register_format
from ..formats.coo import COOMatrix
from ..registry import TunerProfile

__all__ = [
    "PARTITIONERS",
    "ShardedMatrix",
    "partition",
    "partition_bounds",
    "recover_conversion_kwargs",
]

#: Default BRO-ELL slice height used by ``"slice-aligned"`` when the
#: matrix does not expose one.
_DEFAULT_SLICE_H = 256


# ---------------------------------------------------------------------------
# Boundary computation
# ---------------------------------------------------------------------------


def _bounds_contiguous(m: int, nnz_per_row: np.ndarray, devices: int) -> np.ndarray:
    return np.linspace(0, m, devices + 1).round().astype(np.int64)


def _bounds_greedy_nnz(m: int, nnz_per_row: np.ndarray, devices: int) -> np.ndarray:
    """Boundaries on the nnz prefix sum: shard ``d`` ends where the
    cumulative nnz first reaches ``(d+1)/N`` of the total."""
    prefix = np.concatenate(([0], np.cumsum(nnz_per_row, dtype=np.int64)))
    total = int(prefix[-1])
    if total == 0:
        return _bounds_contiguous(m, nnz_per_row, devices)
    targets = np.arange(1, devices, dtype=np.float64) * total / devices
    inner = np.searchsorted(prefix, targets, side="left").astype(np.int64)
    return np.concatenate(([0], inner, [m]))


def _snap_to_slices(bounds: np.ndarray, m: int, h: int) -> np.ndarray:
    """Round inner boundaries to the nearest slice edge (multiple of ``h``)."""
    inner = (np.asarray(bounds[1:-1], dtype=np.float64) / h).round() * h
    snapped = np.clip(inner, 0, m).astype(np.int64)
    return np.concatenate(([0], snapped, [m]))


def _dedupe_bounds(bounds: np.ndarray, m: int) -> np.ndarray:
    """Force strict monotonicity so no shard ends up with zero rows."""
    out = list(np.asarray(bounds, dtype=np.int64))
    for i in range(1, len(out)):
        if out[i] <= out[i - 1]:
            out[i] = out[i - 1] + 1
    # A forward sweep can push the tail past m; walk back from the end.
    out[-1] = m
    for i in range(len(out) - 2, 0, -1):
        if out[i] >= out[i + 1]:
            out[i] = out[i + 1] - 1
    return np.asarray(out, dtype=np.int64)


#: Registered partitioner names (kept in sync with ExecutionPolicy).
PARTITIONERS = ("contiguous", "greedy-nnz", "slice-aligned")


def partition_bounds(
    matrix: SparseFormat,
    devices: int,
    partitioner: str = "greedy-nnz",
) -> np.ndarray:
    """Row boundaries of every shard: ``devices + 1`` strictly increasing
    values from ``0`` to ``m`` — shard ``d`` owns rows
    ``[bounds[d], bounds[d+1])`` and every shard has at least one row."""
    if partitioner not in PARTITIONERS:
        raise ValidationError(
            f"partitioner must be one of {PARTITIONERS}, got {partitioner!r}"
        )
    if not isinstance(devices, int) or devices < 1:
        raise ValidationError(f"devices must be a positive integer, got {devices!r}")
    m = matrix.shape[0]
    if devices > m:
        raise ValidationError(
            f"cannot split {m} rows across {devices} devices "
            f"(every shard needs at least one row)"
        )
    nnz_per_row = matrix.to_coo().row_lengths()
    if partitioner == "contiguous":
        bounds = _bounds_contiguous(m, nnz_per_row, devices)
    else:
        bounds = _bounds_greedy_nnz(m, nnz_per_row, devices)
        if partitioner == "slice-aligned":
            h = int(getattr(matrix, "h", None)
                    or getattr(getattr(matrix, "ell", None), "h", None)
                    or _DEFAULT_SLICE_H)
            bounds = _snap_to_slices(bounds, m, h)
    return _dedupe_bounds(bounds, m)


# ---------------------------------------------------------------------------
# Conversion-kwarg recovery
# ---------------------------------------------------------------------------


def recover_conversion_kwargs(matrix: SparseFormat) -> Dict[str, Any]:
    """Reconstruct the ``from_coo`` keywords that (re-)encode shards
    identically to the source container.

    The generic path reads each registry-declared keyword straight off
    the container (``h``, ``sym_len``, ...). Two formats need care:

    * ``bro_coo`` keeps ``sym_len`` on its packed stream;
    * ``bro_hyb`` must *pin* the ELL/COO split column ``k`` globally —
      re-running the Bell–Garland heuristic per shard would split rows
      differently and break bit-identity. The ELL part's maximum row
      length recovers an equivalent ``k``: any row the split truncated
      has exactly ``k`` ELL entries, and when no row was truncated the
      maximum itself reproduces the same partition.
    """
    spec = _registry.get_spec(matrix.format_name)
    kwargs: Dict[str, Any] = {}
    for key, default in spec.default_kwargs.items():
        kwargs[key] = getattr(matrix, key, default)
    if matrix.format_name == "bro_coo":
        kwargs["sym_len"] = matrix.stream.sym_len  # type: ignore[attr-defined]
    elif matrix.format_name == "bro_hyb":
        ell, coo = matrix.ell, matrix.coo  # type: ignore[attr-defined]
        lengths = ell.row_lengths
        kwargs.update(
            k=int(lengths.max()) if lengths.size else 0,
            h=ell.h,
            sym_len=ell.sym_len,
            warp_size=coo.warp_size,
            interval_size=coo.interval_size if coo.nnz else None,
        )
    return kwargs


# ---------------------------------------------------------------------------
# The sharded container
# ---------------------------------------------------------------------------


@register_format(tuner=TunerProfile(candidate=False))
class ShardedMatrix(SparseFormat):
    """A matrix split into contiguous row blocks, one per device.

    Each shard is a complete container of the *inner* format covering
    rows ``[row_starts[d], row_starts[d+1])`` with shard-local row
    numbering and the full column width, so any registered kernel runs a
    shard unmodified. The container is itself a registered format:
    sealing works through the generic COO-projection extractor, and
    ``.brx`` serialization nests the shard states under ``shard<d>.``
    array prefixes (see :meth:`to_state`).
    """

    format_name = "sharded"

    def __init__(
        self,
        shards: Tuple[SparseFormat, ...],
        bounds: np.ndarray,
        shape: Tuple[int, int],
        *,
        partitioner: str = "greedy-nnz",
    ) -> None:
        shards = tuple(shards)
        if not shards:
            raise ValidationError("ShardedMatrix needs at least one shard")
        bounds = np.asarray(bounds, dtype=np.int64)
        m, n = int(shape[0]), int(shape[1])
        if bounds.shape != (len(shards) + 1,):
            raise ValidationError(
                f"bounds must have {len(shards) + 1} entries, got {bounds.shape}"
            )
        if bounds[0] != 0 or bounds[-1] != m or np.any(np.diff(bounds) <= 0):
            raise ValidationError(
                "bounds must increase strictly from 0 to the row count"
            )
        inner = {s.format_name for s in shards}
        if len(inner) != 1:
            raise ValidationError(f"shards mix formats: {sorted(inner)}")
        for d, shard in enumerate(shards):
            rows = int(bounds[d + 1] - bounds[d])
            if shard.shape != (rows, n):
                raise ValidationError(
                    f"shard {d} has shape {shard.shape}, expected ({rows}, {n})"
                )
        self._shards = shards
        self._bounds = bounds
        self._shape = (m, n)
        self._partitioner = str(partitioner)

    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[SparseFormat, ...]:
        """The per-device containers, in row order."""
        return self._shards

    @property
    def bounds(self) -> np.ndarray:
        """Row boundaries; shard ``d`` owns rows ``[bounds[d], bounds[d+1])``."""
        return self._bounds

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def inner_format(self) -> str:
        """Format name of the per-device containers."""
        return self._shards[0].format_name

    @property
    def partitioner(self) -> str:
        """Balancer that chose the boundaries (manifest metadata)."""
        return self._partitioner

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(sum(s.nnz for s in self._shards))

    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        """JSON-able shard manifest (also stored in ``.brx`` headers)."""
        return {
            "inner_format": self.inner_format,
            "partitioner": self._partitioner,
            "devices": self.n_shards,
            "shape": list(self._shape),
            "nnz": self.nnz,
            "shards": [
                {
                    "index": d,
                    "row_start": int(self._bounds[d]),
                    "row_end": int(self._bounds[d + 1]),
                    "rows": int(self._bounds[d + 1] - self._bounds[d]),
                    "nnz": int(shard.nnz),
                }
                for d, shard in enumerate(self._shards)
            ],
        }

    # ------------------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        for d, shard in enumerate(self._shards):
            c = shard.to_coo()
            rows.append(c.row_idx.astype(np.int64) + int(self._bounds[d]))
            cols.append(c.col_idx)
            vals.append(c.vals)
        return COOMatrix(
            np.concatenate(rows) if rows else np.zeros(0, np.int64),
            np.concatenate(cols) if cols else np.zeros(0, np.int64),
            np.concatenate(vals) if vals else np.zeros(0),
            self._shape,
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "ShardedMatrix":
        raise FormatError(
            "sharded matrices are built with repro.exec.partition(), "
            "not from_coo()"
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = self.check_x(x)
        return np.concatenate([s.spmv(x) for s in self._shards])

    def device_bytes(self) -> Dict[str, int]:
        total: Dict[str, int] = {"index": 0, "values": 0}
        for shard in self._shards:
            for key, nbytes in shard.device_bytes().items():
                total[key] = total.get(key, 0) + int(nbytes)
        # The manifest itself (bounds) lives on every device.
        total["aux"] = total.get("aux", 0) + int(self._bounds.nbytes)
        return total

    # -- container serialization (.brx) --------------------------------
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        shard_meta: List[Dict[str, Any]] = []
        arrays: Dict[str, np.ndarray] = {}
        for d, shard in enumerate(self._shards):
            meta_d, arrays_d = shard.to_state()
            shard_meta.append(meta_d)
            for name, arr in arrays_d.items():
                arrays[f"shard{d}.{name}"] = arr
        meta = {
            "shape": list(self._shape),
            "bounds": [int(b) for b in self._bounds],
            "inner_format": self.inner_format,
            "partitioner": self._partitioner,
            "shard_meta": shard_meta,
            "manifest": self.manifest(),
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "ShardedMatrix":
        inner = _registry.get_spec(meta["inner_format"]).container
        shards: List[SparseFormat] = []
        for d, meta_d in enumerate(meta["shard_meta"]):
            prefix = f"shard{d}."
            arrays_d = {
                name[len(prefix):]: arr
                for name, arr in arrays.items()
                if name.startswith(prefix)
            }
            shards.append(inner.from_state(meta_d, arrays_d))
        return cls(
            tuple(shards),
            np.asarray(meta["bounds"], dtype=np.int64),
            tuple(meta["shape"]),
            partitioner=meta.get("partitioner", "greedy-nnz"),
        )


# ---------------------------------------------------------------------------
# The partitioner entry point
# ---------------------------------------------------------------------------


def _sub_coo(coo: COOMatrix, start: int, end: int) -> COOMatrix:
    """Rows ``[start, end)`` of a sorted COO with shard-local numbering."""
    lo = int(np.searchsorted(coo.row_idx, start, side="left"))
    hi = int(np.searchsorted(coo.row_idx, end, side="left"))
    return COOMatrix(
        coo.row_idx[lo:hi].astype(np.int64) - start,
        coo.col_idx[lo:hi],
        coo.vals[lo:hi],
        (end - start, coo.shape[1]),
    )


def partition(
    matrix: SparseFormat,
    devices: int,
    partitioner: str = "greedy-nnz",
    *,
    conversion_kwargs: Optional[Dict[str, Any]] = None,
) -> ShardedMatrix:
    """Split ``matrix`` into ``devices`` contiguous row shards.

    Every shard is re-encoded in the matrix's own format with the
    conversion parameters recovered from the source container
    (:func:`recover_conversion_kwargs`), so the per-shard kernels decode
    exactly the same bit layout and the concatenated result is
    bit-identical to the single-device run. ``conversion_kwargs``
    overrides the recovered parameters.

    A ``devices == 1`` partition is valid (one shard, whole matrix) and
    useful for testing; passing a :class:`ShardedMatrix` re-partitions
    its gathered COO in the *inner* format.
    """
    if isinstance(matrix, ShardedMatrix):
        inner = _registry.get_spec(matrix.inner_format).container
        source = matrix.to_coo()
        kwargs = conversion_kwargs or {}
        matrix = inner.from_coo(source, **kwargs) if kwargs else inner.from_coo(source)
        return partition(matrix, devices, partitioner,
                         conversion_kwargs=conversion_kwargs)

    bounds = partition_bounds(matrix, devices, partitioner)
    kwargs = recover_conversion_kwargs(matrix)
    if conversion_kwargs:
        kwargs.update(conversion_kwargs)
    container = type(matrix)
    coo = matrix.to_coo()
    shards = tuple(
        container.from_coo(
            _sub_coo(coo, int(bounds[d]), int(bounds[d + 1])), **kwargs
        )
        for d in range(devices)
    )
    return ShardedMatrix(shards, bounds, matrix.shape, partitioner=partitioner)
