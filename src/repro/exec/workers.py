"""Process-backed sharded execution: elastic workers with shard failover.

``ExecutionPolicy(backend="process")`` routes the sharded engine through
a :class:`WorkerPool`: a coordinator that writes every shard to its own
sealed ``.brx`` container and spawns one ``multiprocessing`` worker per
shard. Workers mmap their shard containers (zero-copy via the aligned
array table of :mod:`repro.serialize`), receive the broadcast ``x`` with
each task, and return the shard's ``y`` block and
:class:`~repro.gpu.counters.KernelCounters` tagged with a CRC32 of the
result bytes.

The robustness core is the coordinator's recovery loop. Every task
carries a ``(call, shard, attempt)`` tag, and three detectors feed one
failover path:

* **death** — the worker process is gone (``is_alive()`` false) or its
  heartbeat went silent;
* **stall** — the shard missed its ``policy.shard_timeout_s`` deadline;
  the wedged worker is fenced (terminated) so a late result can never
  race a retry — stale tags are rejected on arrival;
* **corruption** — the returned ``y`` fails its transport CRC, or the
  worker reported a typed error (e.g. its shard container failed the
  stored seal).

Failover re-enqueues the shard on the least-loaded surviving worker with
an exponential deadline backoff, bounded by ``policy.max_retries``; with
``policy.elastic`` (default) a replacement worker is respawned into the
vacated slot. Exhausting the budget raises a typed
:class:`~repro.errors.ShardTimeoutError` or
:class:`~repro.errors.WorkerFailureError` — the caller never sees wrong
numbers. Every recovery action is counted (worker deaths, shard
reassignments, retries, respawns) for
:func:`repro.telemetry.metrics.record_worker_event` and the
``ShardedSpMVResult`` recovery fields.

Chaos injection (:mod:`repro.exec.chaos`) rides the task channel: the
coordinator plans at most one fault per call and the executing worker
applies it on the shard's first attempt only, so recovery always has a
clean retry to converge to.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue as _queue
import shutil
import tempfile
import time
import weakref
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError, ShardTimeoutError, ValidationError, WorkerFailureError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from .chaos import PROCESS_FAULT_KINDS, ChaosEvent, ChaosState
from .partition import ShardedMatrix
from .policy import ExecutionPolicy

__all__ = ["WorkerPool", "worker_pool", "shutdown_matrix_pools", "shutdown_pools"]

#: Coordinator poll interval while waiting on shard results (seconds).
_POLL_S = 0.02
#: Worker heartbeat write interval (seconds).
_HEARTBEAT_INTERVAL_S = 0.05
#: Heartbeat age past which a live-looking worker is declared lost.
_HEARTBEAT_TIMEOUT_S = 5.0
#: Deadline multiplier applied per retry attempt.
_BACKOFF = 1.5
#: Exit code used by the kill-worker chaos injector.
_CHAOS_EXIT = 117


def _crc(y: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(y).tobytes())


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _apply_container_fault(
    matrix: SparseFormat, kind: str, seed: int
) -> SparseFormat:
    """A corrupted copy of ``matrix`` (or raise when construction rejects)."""
    from ..integrity.faults import inject_fault

    injected = inject_fault(matrix, np.random.default_rng(seed), kind=kind)
    if injected.matrix is None:
        raise injected.build_error  # construction-time detection
    return injected.matrix


def _worker_main(
    slot: int,
    shard_paths: List[str],
    device_name: str,
    engine: str,
    compute_backend: str,
    task_queue: Any,
    result_queue: Any,
    telemetry_queue: Any,
    heartbeats: Any,
) -> None:
    """Worker loop: mmap shards on demand, run tasks, report results.

    Runs in a child process. The final text protocol is tuples on
    ``result_queue``: ``("done", call, shard, attempt, slot, y, counters,
    crc)`` or ``("error", call, shard, attempt, slot, errname, errmsg)``.

    When a task carries a trace context (``telem = (trace_id,
    parent_span_id)``), the task body runs under a private worker tracer +
    registry (:class:`repro.telemetry.remote.capture`) and one batch dict
    is put on ``telemetry_queue`` *before* the result message. Tasks with
    ``telem=None`` (telemetry disabled on the coordinator) skip capture
    entirely — no allocation, no queue traffic. Failed attempts ship no
    batch, so the coordinator only ever merges accepted work.
    """
    import threading

    from ..kernels.dispatch import run_spmv
    from ..kernels.plancache import PLAN_CACHE
    from ..serialize import load_container

    def _beat() -> None:
        while True:
            heartbeats[slot] = time.time()
            time.sleep(_HEARTBEAT_INTERVAL_S)

    threading.Thread(target=_beat, daemon=True).start()

    if engine == "reference":
        policy = ExecutionPolicy(engine="reference")
    else:
        # Each worker resolves the backend request against its *own*
        # environment (Numba may be importable here but not on the
        # coordinator, or vice versa) — the result is bit-identical
        # either way, so mixed fleets stay correct.
        policy = ExecutionPolicy(
            engine=engine,
            plan_cache=PLAN_CACHE,
            compute_backend=compute_backend,
        )
    verify_policy = policy.with_(verify="checksum")
    shards: Dict[int, SparseFormat] = {}

    while True:
        task = task_queue.get()
        if task[0] == "stop":
            return
        _, call, shard_idx, attempt, x, chaos, telem = task
        try:
            matrix = shards.get(shard_idx)
            if matrix is None:
                matrix = load_container(
                    shard_paths[shard_idx], mmap_arrays=True, verify=True
                )
                shards[shard_idx] = matrix
            kind = chaos[0] if chaos is not None else None
            if kind == "kill-worker":
                os._exit(_CHAOS_EXIT)
            if kind == "stall-worker":
                time.sleep(float(chaos[1]))
                kind = None

            def _run(kind: Any = kind, matrix: SparseFormat = matrix) -> Any:
                if kind is not None and kind not in PROCESS_FAULT_KINDS:
                    # Container-level fault: corrupt a copy and execute it
                    # under checksum verification — detection raises typed.
                    victim = _apply_container_fault(
                        matrix, kind, int(chaos[2])
                    )
                    return run_spmv(
                        victim, x, device_name, policy=verify_policy
                    )
                return run_spmv(matrix, x, device_name, policy=policy)

            if telem is None:
                result = _run()
            else:
                from ..telemetry import remote as _remote

                t_begin = time.perf_counter()
                with _remote.capture(telem[0]) as cap:
                    cap.root.set(shard=shard_idx, attempt=attempt, slot=slot)
                    result = _run()
                telemetry_queue.put(
                    _remote.build_batch(
                        cap,
                        worker=slot,
                        shard=shard_idx,
                        attempt=attempt,
                        parent_span_id=telem[1],
                        elapsed_s=time.perf_counter() - t_begin,
                    )
                )
            y = np.ascontiguousarray(result.y)
            crc = _crc(y)
            if kind == "corrupt-shard-result":
                # Transport corruption: flip a bit AFTER the CRC was
                # computed, so the coordinator's end-to-end check fires.
                y = y.copy()
                y.view(np.uint64)[0] ^= np.uint64(1) << np.uint64(40)
            result_queue.put(
                ("done", call, shard_idx, attempt, slot, y, result.counters, crc)
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to coordinator
            result_queue.put(
                ("error", call, shard_idx, attempt, slot,
                 type(exc).__name__, str(exc))
            )


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    """One worker slot: the live process and its private task queue."""

    slot: int
    process: Any
    task_queue: Any
    busy: set = field(default_factory=set)  #: shard indices in flight


@dataclass
class _ShardCall:
    """Per-call recovery state of one shard."""

    shard: int
    attempt: int = 0
    slot: int = -1
    deadline: Optional[float] = None
    failures: List[str] = field(default_factory=list)


@dataclass
class CallStats:
    """Recovery accounting of one :meth:`WorkerPool.execute` call."""

    worker_deaths: int = 0
    shard_reassignments: int = 0
    retries: int = 0
    respawns: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Worker telemetry batches for the accepted attempt of each shard
    #: (see :mod:`repro.telemetry.remote`); empty when telemetry is off.
    telemetry: List[Dict[str, Any]] = field(default_factory=list)

    def note(self, event: str, **info: Any) -> None:
        self.events.append({"event": event, **info})


class WorkerPool:
    """A pool of shard workers with failover, bound to one ShardedMatrix.

    The pool owns a temp directory of per-shard ``.brx`` containers and
    one worker process per shard. It is cached on the sharded container
    (:func:`worker_pool`) so iterative solvers pay the spawn and shard
    serialization cost once; :meth:`shutdown` (or garbage collection of
    the matrix) terminates the workers and removes the directory.
    """

    def __init__(
        self,
        sharded: ShardedMatrix,
        device: DeviceSpec,
        policy: ExecutionPolicy,
    ) -> None:
        self.device = device
        self.engine = policy.engine
        self.compute_backend = policy.compute_backend
        self.shard_timeout_s = policy.shard_timeout_s
        self.max_retries = policy.max_retries
        self.elastic = policy.elastic
        self.n_shards = sharded.n_shards
        self.chaos_state = (
            ChaosState(policy.chaos) if policy.chaos is not None else None
        )
        # Lifetime recovery totals (across calls).
        self.total = CallStats()

        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._tmpdir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
        self._paths = self._save_shards(sharded)
        self._heartbeats = self._ctx.Array("d", self.n_shards)
        self._results = self._ctx.Queue()
        # Dedicated channel for worker span/metric batches, created
        # unconditionally (it must be inherited at fork/spawn time) but
        # only ever written to when a call carries a trace context.
        self._telemetry = self._ctx.Queue()
        self._call = 0
        self._closed = False
        self._telem_ctx: Optional[Tuple[str, Optional[int]]] = None
        self._workers: List[Optional[_Worker]] = [
            self._spawn(slot) for slot in range(self.n_shards)
        ]
        self._finalizer = weakref.finalize(
            self, WorkerPool._cleanup, self._workers, self._results,
            self._telemetry, str(self._tmpdir),
        )
        _LIVE_POOLS.add(self)

    # -- setup ----------------------------------------------------------
    def _save_shards(self, sharded: ShardedMatrix) -> List[str]:
        from ..integrity.checksums import is_sealed, seal
        from ..serialize import save_container

        paths = []
        for d, shard in enumerate(sharded.shards):
            if not is_sealed(shard):
                try:
                    seal(shard)
                except ReproError:
                    pass  # unsupported extractor: save unsealed
            path = self._tmpdir / f"shard{d}.brx"
            save_container(shard, path)
            paths.append(str(path))
        return paths

    def _spawn(self, slot: int) -> _Worker:
        task_queue = self._ctx.Queue()
        self._heartbeats[slot] = time.time()
        process = self._ctx.Process(
            target=_worker_main,
            args=(slot, self._paths, self.device.name, self.engine,
                  self.compute_backend, task_queue, self._results,
                  self._telemetry, self._heartbeats),
            daemon=True,
            name=f"repro-shard-worker-{slot}",
        )
        process.start()
        return _Worker(slot=slot, process=process, task_queue=task_queue)

    # -- liveness -------------------------------------------------------
    def _alive(self, worker: Optional[_Worker]) -> bool:
        if worker is None or not worker.process.is_alive():
            return False
        age = time.time() - self._heartbeats[worker.slot]
        return age <= _HEARTBEAT_TIMEOUT_S

    def live_workers(self) -> List[_Worker]:
        return [w for w in self._workers if self._alive(w)]

    def _fence(self, worker: _Worker, stats: CallStats, reason: str) -> None:
        """Remove a dead or wedged worker; respawn its slot when elastic."""
        slot = worker.slot
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        stats.worker_deaths += 1
        self.total.worker_deaths += 1
        stats.note("worker_lost", slot=slot, reason=reason)
        if self.elastic:
            self._workers[slot] = self._spawn(slot)
            stats.respawns += 1
            self.total.respawns += 1
            stats.note("worker_respawned", slot=slot)
        else:
            self._workers[slot] = None

    # -- task routing ---------------------------------------------------
    def _pick_slot(self, avoid: int) -> _Worker:
        live = self.live_workers()
        if not live:
            raise WorkerFailureError(
                "no live workers remain to take reassigned shards "
                "(elastic respawn disabled?)"
            )
        preferred = [w for w in live if w.slot != avoid] or live
        return min(preferred, key=lambda w: (len(w.busy), w.slot))

    def _dispatch(
        self,
        state: _ShardCall,
        worker: _Worker,
        x: np.ndarray,
        event: Optional[ChaosEvent],
    ) -> None:
        chaos = None
        if (event is not None and state.attempt == 0
                and event.shard == state.shard):
            chaos = (event.kind, event.stall_s, event.call * 8191 + state.shard)
        state.slot = worker.slot
        if self.shard_timeout_s is not None:
            budget = self.shard_timeout_s * (_BACKOFF ** state.attempt)
            state.deadline = time.monotonic() + budget
        worker.busy.add(state.shard)
        worker.task_queue.put(
            ("spmv", self._call, state.shard, state.attempt, x, chaos,
             self._telem_ctx)
        )

    def _fail(
        self,
        state: _ShardCall,
        x: np.ndarray,
        stats: CallStats,
        reason: str,
        *,
        stalled: bool = False,
    ) -> None:
        """Retry a failed shard on another worker, or exhaust typed."""
        state.failures.append(f"attempt {state.attempt}: {reason}")
        worker = self._workers[state.slot]
        if worker is not None:
            worker.busy.discard(state.shard)
        previous = state.slot
        state.attempt += 1
        stats.retries += 1
        self.total.retries += 1
        if state.attempt > self.max_retries:
            if stalled:
                raise ShardTimeoutError(
                    f"shard {state.shard} missed its "
                    f"{self.shard_timeout_s}s deadline "
                    f"{state.attempt} time(s): {'; '.join(state.failures)}",
                    shard=state.shard,
                    timeout_s=self.shard_timeout_s or 0.0,
                )
            raise WorkerFailureError(
                f"shard {state.shard} failed after {state.attempt} "
                f"attempt(s): {'; '.join(state.failures)}",
                shard=state.shard,
                attempts=tuple(state.failures),
            )
        target = self._pick_slot(avoid=previous)
        if target.slot != previous:
            stats.shard_reassignments += 1
            self.total.shard_reassignments += 1
            stats.note(
                "shard_reassigned", shard=state.shard,
                from_slot=previous, to_slot=target.slot, reason=reason,
            )
        self._dispatch(state, target, x, event=None)

    # -- the recovery loop ---------------------------------------------
    def execute(
        self,
        x: np.ndarray,
        telem: Optional[Tuple[str, Optional[int]]] = None,
    ) -> Tuple[List[Tuple[np.ndarray, KernelCounters]], CallStats]:
        """Run one SpMV across the pool; returns per-shard results + stats.

        ``telem`` is the trace context ``(trace_id, parent_span_id)`` to
        propagate to the workers; when given, each shard's telemetry
        batch (for its *accepted* attempt only) is drained into
        ``stats.telemetry``. ``None`` (telemetry disabled) sends no
        context and touches the telemetry queue not at all.

        Raises a typed :class:`~repro.errors.ShardTimeoutError` /
        :class:`~repro.errors.WorkerFailureError` when a shard exhausts
        its retry budget — by construction the returned blocks all passed
        their transport CRC, so the caller either gets verified bytes or
        a typed error.
        """
        if self._closed:
            raise ValidationError("worker pool is already shut down")
        call = self._call
        event = (
            self.chaos_state.plan_call(self.n_shards)
            if self.chaos_state is not None else None
        )
        x = np.ascontiguousarray(x)
        stats = CallStats()
        states = [_ShardCall(shard=d) for d in range(self.n_shards)]
        done: Dict[int, Tuple[np.ndarray, KernelCounters]] = {}
        self._telem_ctx = telem
        try:
            for state in states:
                worker = self._workers[state.shard % len(self._workers)]
                if not self._alive(worker):
                    worker = self._pick_slot(avoid=-1)
                self._dispatch(state, worker, x, event)

            while len(done) < self.n_shards:
                try:
                    msg = self._results.get(timeout=_POLL_S)
                except _queue.Empty:
                    msg = None
                if msg is not None:
                    self._handle(msg, call, states, done, x, stats)
                self._check_liveness(states, done, x, stats)
                self._check_deadlines(states, done, x, stats)
            if telem is not None:
                self._drain_telemetry(telem, states, stats)
        finally:
            self._telem_ctx = None
            for worker in self._workers:
                if worker is not None:
                    worker.busy.clear()
            self._call += 1
        return [done[d] for d in range(self.n_shards)], stats

    def _drain_telemetry(
        self,
        telem: Tuple[str, Optional[int]],
        states: List[_ShardCall],
        stats: CallStats,
    ) -> None:
        """Collect one batch per shard's accepted attempt (bounded wait).

        The worker puts its batch *before* the result message, but the
        two queues are independent pipes with no cross-queue ordering
        guarantee, so wait up to a short deadline. Batches from retried
        attempts, chaos-corrupted attempts or earlier calls carry
        non-matching ``(shard, attempt)`` / trace-context tags and are
        dropped, so the merged view only ever contains accepted work.
        """
        trace_id, parent_span_id = telem
        pending = {(s.shard, s.attempt) for s in states}
        deadline = time.monotonic() + 2.0
        while pending and time.monotonic() < deadline:
            try:
                batch = self._telemetry.get(timeout=_POLL_S)
            except _queue.Empty:
                continue
            if (
                batch.get("trace_id") != trace_id
                or batch.get("parent_span_id") != parent_span_id
            ):
                continue  # stale: a previous call's leftover batch
            key = (batch["shard"], batch["attempt"])
            if key in pending:
                pending.discard(key)
                stats.telemetry.append(batch)
        if pending:
            stats.note(
                "telemetry_batches_missing",
                shards=sorted(shard for shard, _ in pending),
            )

    def heartbeat_ages(self) -> List[float]:
        """Seconds since each worker slot's last heartbeat write."""
        now = time.time()
        return [
            max(0.0, now - self._heartbeats[slot])
            for slot in range(self.n_shards)
        ]

    def _handle(
        self,
        msg: Tuple,
        call: int,
        states: List[_ShardCall],
        done: Dict[int, Tuple[np.ndarray, KernelCounters]],
        x: np.ndarray,
        stats: CallStats,
    ) -> None:
        tag, msg_call, shard, attempt = msg[0], msg[1], msg[2], msg[3]
        state = states[shard]
        if msg_call != call or shard in done or attempt != state.attempt:
            stats.note("stale_result_dropped", shard=shard, attempt=attempt)
            return
        if tag == "error":
            errname, errmsg = msg[5], msg[6]
            self._fail(state, x, stats, f"worker error {errname}: {errmsg}")
            return
        _, _, _, _, slot, y, counters, crc = msg
        if _crc(y) != crc:
            stats.note("shard_crc_mismatch", shard=shard, slot=slot)
            self._fail(state, x, stats, "shard result failed its CRC check")
            return
        done[shard] = (y, counters)
        worker = self._workers[state.slot]
        if worker is not None:
            worker.busy.discard(shard)

    def _check_liveness(
        self,
        states: List[_ShardCall],
        done: Dict[int, Tuple[np.ndarray, KernelCounters]],
        x: np.ndarray,
        stats: CallStats,
    ) -> None:
        for worker in list(self._workers):
            if worker is None or self._alive(worker):
                continue
            pending = [s for s in states
                       if s.shard not in done and s.slot == worker.slot]
            if not pending and not worker.busy:
                continue
            self._fence(worker, stats, reason="process died")
            for state in pending:
                self._fail(state, x, stats, "worker died mid-shard")

    def _check_deadlines(
        self,
        states: List[_ShardCall],
        done: Dict[int, Tuple[np.ndarray, KernelCounters]],
        x: np.ndarray,
        stats: CallStats,
    ) -> None:
        if self.shard_timeout_s is None:
            return
        now = time.monotonic()
        for state in states:
            if state.shard in done or state.deadline is None:
                continue
            if now < state.deadline:
                continue
            # Fence the wedged worker first so its late result can never
            # be confused with the retry (stale tags are dropped anyway).
            worker = self._workers[state.slot]
            if worker is not None:
                self._fence(worker, stats, reason="missed shard deadline")
            self._fail(
                state, x, stats,
                f"missed {self.shard_timeout_s}s deadline", stalled=True,
            )

    # -- teardown -------------------------------------------------------
    @staticmethod
    def _cleanup(
        workers: List[Optional[_Worker]], results: Any, telemetry: Any,
        tmpdir: str,
    ) -> None:
        for worker in workers:
            if worker is None:
                continue
            try:
                if worker.process.is_alive():
                    worker.task_queue.put(("stop",))
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + 1.0
        for worker in workers:
            if worker is None:
                continue
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        results.close()
        telemetry.close()
        shutil.rmtree(tmpdir, ignore_errors=True)

    def shutdown(self) -> None:
        """Stop every worker and remove the shard directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()


# ---------------------------------------------------------------------------
# Pool caching on the sharded container
# ---------------------------------------------------------------------------


def _pool_key(device: DeviceSpec, policy: ExecutionPolicy) -> Tuple:
    return (
        device.name,
        policy.engine,
        policy.compute_backend,
        policy.shard_timeout_s,
        policy.max_retries,
        policy.elastic,
        id(policy.chaos) if policy.chaos is not None else None,
    )


def worker_pool(
    sharded: ShardedMatrix,
    device: DeviceSpec,
    policy: ExecutionPolicy,
) -> WorkerPool:
    """The :class:`WorkerPool` for this container/device/policy, cached.

    Cached on the :class:`~repro.exec.partition.ShardedMatrix` so a
    solver loop reuses one pool (and its warm per-worker plan caches)
    across iterations. Distinct chaos policies get distinct pools, so a
    chaos campaign's fault sequences never leak between trials.
    """
    pools = getattr(sharded, "_repro_worker_pools", None)
    if pools is None:
        pools = {}
        sharded._repro_worker_pools = pools  # type: ignore[attr-defined]
    key = _pool_key(device, policy)
    pool = pools.get(key)
    if pool is None or pool._closed:
        pool = pools[key] = WorkerPool(sharded, device, policy)
    return pool


def shutdown_matrix_pools(matrix: SparseFormat) -> int:
    """Shut down every worker pool cached on ``matrix`` (or its shards).

    Returns the number of pools closed. Accepts either a
    :class:`ShardedMatrix` or an unsharded container whose cached
    sharded views own pools.
    """
    closed = 0
    views: List[ShardedMatrix] = []
    if isinstance(matrix, ShardedMatrix):
        views.append(matrix)
    views.extend(getattr(matrix, "_repro_shard_cache", {}).values())
    for view in views:
        pools = getattr(view, "_repro_worker_pools", None)
        if not pools:
            continue
        for pool in pools.values():
            if not pool._closed:
                pool.shutdown()
                closed += 1
        pools.clear()
    return closed


#: Weak registry of every live pool in the process. Pools normally die
#: with their matrix (weakref.finalize), but a matrix held alive in a
#: module global or an interactive session would otherwise keep its
#: worker processes running past interpreter shutdown intent.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def shutdown_pools() -> int:
    """Shut down every live :class:`WorkerPool` in the process.

    Returns the number of pools closed. Registered with :mod:`atexit`
    so cached process pools (and their shard temp directories) never
    outlive the interpreter; the serving layer also calls it explicitly
    at the end of a graceful drain. Idempotent — already-closed pools
    are skipped, and pools created later are tracked independently.
    """
    closed = 0
    for pool in list(_LIVE_POOLS):
        if not pool._closed:
            pool.shutdown()
            closed += 1
    return closed


atexit.register(shutdown_pools)
