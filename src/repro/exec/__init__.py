"""Multi-device sharded execution and the first-class execution API.

This package turns the single-device simulator into a (simulated)
multi-GPU one, and owns the configuration object every execution entry
point now shares:

* :class:`~repro.exec.policy.ExecutionPolicy` — one frozen dataclass for
  engine/verify/fallback/plan-cache/devices/partitioner plus the
  fault-tolerance knobs (backend/shard_timeout_s/max_retries/elastic/
  chaos), accepted by ``run_spmv``/``run_spmm``,
  :class:`~repro.pipeline.Session` and
  :class:`~repro.solvers.operators.SimulatedOperator`;
* :func:`~repro.exec.partition.partition` and the registered
  ``"sharded"`` container — contiguous row blocks re-encoded per device,
  serializable to ``.brx`` with a shard manifest;
* :func:`~repro.exec.comms.model_comms` — broadcast vs halo-exchange
  x-distribution accounting at interconnect-cacheline granularity;
* :func:`~repro.exec.engine.execute_sharded` — the shard executor
  producing bit-identical results and merged counters, on a thread pool
  or on the fault-tolerant :mod:`~repro.exec.workers` process pool
  (heartbeats, shard failover, elastic respawn);
* :class:`~repro.exec.chaos.ChaosPolicy` and
  :func:`~repro.exec.chaos.run_chaos_campaign` — seeded fault injection
  into the sharded engines and the zero-silent-corruption campaign
  behind ``repro chaos``;
* :func:`~repro.exec.scaling.strong_scaling` /
  :func:`~repro.exec.scaling.weak_scaling` — the 1..N device sweeps
  behind ``repro scale``.

Exports resolve lazily (PEP 562): the kernel dispatcher imports
:mod:`repro.exec.policy` at module scope, and an eager ``__init__``
would close the ``kernels ↔ exec`` cycle before either side finished
initializing. See docs/scaling.md for the model and the experiment.
"""

import importlib
from typing import Any

__all__ = [
    "ExecutionPolicy",
    "PARTITIONERS",
    "ShardedMatrix",
    "partition",
    "partition_bounds",
    "recover_conversion_kwargs",
    "CommsReport",
    "model_comms",
    "ShardedSpMVResult",
    "execute_sharded",
    "sharded_view",
    "shutdown_pools",
    "ChaosPolicy",
    "ChaosCampaignReport",
    "PROCESS_FAULT_KINDS",
    "run_chaos_campaign",
    "WorkerPool",
    "worker_pool",
    "strong_scaling",
    "weak_scaling",
]

#: export name -> submodule that defines it.
_EXPORTS = {
    "ExecutionPolicy": ".policy",
    "PARTITIONERS": ".partition",
    "ShardedMatrix": ".partition",
    "partition": ".partition",
    "partition_bounds": ".partition",
    "recover_conversion_kwargs": ".partition",
    "CommsReport": ".comms",
    "model_comms": ".comms",
    "ShardedSpMVResult": ".engine",
    "execute_sharded": ".engine",
    "sharded_view": ".engine",
    "shutdown_pools": ".engine",
    "ChaosPolicy": ".chaos",
    "ChaosCampaignReport": ".chaos",
    "PROCESS_FAULT_KINDS": ".chaos",
    "run_chaos_campaign": ".chaos",
    "WorkerPool": ".workers",
    "worker_pool": ".workers",
    "strong_scaling": ".scaling",
    "weak_scaling": ".scaling",
}


def __getattr__(name: str) -> Any:
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(submodule, __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list:
    return sorted(set(globals()) | set(__all__))
