"""Scaling experiments: one matrix (or a growing family), 1..N devices.

Two reportable experiments back ``repro scale``:

* :func:`strong_scaling` — fix the matrix and format, sweep the device
  count, and compare the sharded timing model against the single-device
  baseline. Because the kernel phase is the slowest shard while
  communication grows with the device count, the rows expose the classic
  strong-scaling shape — near-linear speedup while the shards stay
  bandwidth-bound, flattening when the interconnect term or load
  imbalance dominates.
* :func:`weak_scaling` — fix the *work per device* and grow the matrix
  with the device count, the complementary question ("can N devices hold
  an N× problem at constant time?"). Ideal weak scaling keeps ``t_total``
  flat; the reported ``efficiency`` is ``t(1) / t(n)``.

Both sweeps run on either sharded backend (``backend="thread"`` or the
fault-tolerant ``"process"`` worker pool) and every row is checked for
bit-identity against the single-device reference product before it is
reported, so a scaling table is also an end-to-end correctness
assertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ValidationError
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from .engine import execute_sharded, shutdown_pools
from .policy import ExecutionPolicy

__all__ = ["strong_scaling", "weak_scaling"]


def _check_counts(devices: Sequence[int]) -> List[int]:
    counts = sorted({int(d) for d in devices})
    if not counts or counts[0] < 1:
        raise ValidationError(
            f"devices must be positive integers, got {devices!r}"
        )
    return counts


def strong_scaling(
    matrix: SparseFormat,
    device: Union[DeviceSpec, str] = "k20",
    devices: Sequence[int] = (1, 2, 4, 8),
    *,
    partitioner: str = "greedy-nnz",
    comms: str = "auto",
    engine: str = "auto",
    backend: str = "thread",
    x: Optional[np.ndarray] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Sweep the device count and report modeled speedup/efficiency.

    Returns one dict per entry of ``devices`` with the modeled times
    (``t_total``, ``t_kernel``, ``t_comm``), the achieved GFlop/s, the
    communication volume and ``speedup``/``efficiency`` relative to the
    single-device baseline (always computed, even when ``1`` is not in
    ``devices``). ``backend`` selects the sharded execution backend; the
    process pool is shut down before returning. Raises
    :class:`~repro.errors.ValidationError` if any sharded product
    deviates from the single-device result by a single bit.
    """
    if isinstance(device, str):
        device = get_device(device)
    counts = _check_counts(devices)
    if x is None:
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(matrix.shape[1])

    # Single-device baseline through the ordinary dispatch path.
    from ..kernels.dispatch import run_spmv

    base = run_spmv(matrix, x, device,
                    policy=ExecutionPolicy(engine=engine))
    t_base = base.timing.time

    rows: List[Dict[str, object]] = []
    try:
        for n in counts:
            if n == 1:
                rows.append({
                    "devices": 1,
                    "partitioner": partitioner,
                    "comms": None,
                    "backend": backend,
                    "t_total": t_base,
                    "t_kernel": t_base,
                    "t_comm": 0.0,
                    "gflops": base.timing.gflops,
                    "interconnect_bytes": 0,
                    "messages": 0,
                    "speedup": 1.0,
                    "efficiency": 1.0,
                    "bound": base.timing.bound,
                })
                continue
            result = execute_sharded(
                matrix, x, device,
                ExecutionPolicy(engine=engine, devices=n,
                                partitioner=partitioner, comms=comms,
                                backend=backend),
            )
            if not np.array_equal(result.y, base.y):
                raise ValidationError(
                    f"sharded product on {n} devices deviates from the "
                    f"single-device reference"
                )
            timing = result.timing
            speedup = t_base / timing.time
            rows.append({
                "devices": n,
                "partitioner": partitioner,
                "comms": result.comms.strategy if result.comms else comms,
                "backend": backend,
                "t_total": timing.time,
                "t_kernel": timing.t_kernel,
                "t_comm": timing.t_comm,
                "gflops": timing.gflops,
                "interconnect_bytes": int(result.counters.interconnect_bytes),
                "messages": timing.messages,
                "speedup": speedup,
                "efficiency": speedup / n,
                "bound": timing.bound,
            })
    finally:
        if backend == "process":
            shutdown_pools(matrix)
    return rows


def weak_scaling(
    format_name: str = "bro_ell",
    device: Union[DeviceSpec, str] = "k20",
    devices: Sequence[int] = (1, 2, 4, 8),
    *,
    rows_per_device: int = 256,
    partitioner: str = "greedy-nnz",
    comms: str = "auto",
    engine: str = "auto",
    backend: str = "thread",
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Grow the matrix with the device count at fixed work per device.

    For each ``n`` in ``devices`` a banded random matrix with
    ``rows_per_device * n`` rows (constant row density, so nnz also
    scales ~linearly) is generated, converted to ``format_name`` and
    executed on ``n`` simulated devices. Each product is checked
    bit-identical against its own single-device reference run.

    Returns one dict per count with the matrix size, the modeled times,
    and ``efficiency = t_total(1) / t_total(n)`` — 1.0 is ideal weak
    scaling (N devices hold an N× problem at constant wall-clock).
    """
    if isinstance(device, str):
        device = get_device(device)
    if not isinstance(rows_per_device, int) or rows_per_device < 1:
        raise ValidationError(
            f"rows_per_device must be a positive integer, "
            f"got {rows_per_device!r}"
        )
    counts = _check_counts(devices)

    from ..formats.conversion import convert
    from ..kernels.dispatch import run_spmv
    from ..matrices.generators import banded_random

    rows: List[Dict[str, object]] = []
    t_one: Optional[float] = None
    for n in counts:
        m = rows_per_device * n
        coo = banded_random(m, 8.0, 3.0, bandwidth=min(m, 64), seed=seed)
        matrix = convert(coo, format_name)
        x = np.random.default_rng(seed + n).standard_normal(m)
        base = run_spmv(matrix, x, device,
                        policy=ExecutionPolicy(engine=engine))
        if n == 1:
            timing = base.timing
            interconnect = 0
            messages = 0
            strategy = None
        else:
            try:
                result = execute_sharded(
                    matrix, x, device,
                    ExecutionPolicy(engine=engine, devices=n,
                                    partitioner=partitioner, comms=comms,
                                    backend=backend),
                )
            finally:
                if backend == "process":
                    shutdown_pools(matrix)
            if not np.array_equal(result.y, base.y):
                raise ValidationError(
                    f"weak-scaling product on {n} devices deviates from "
                    f"its single-device reference"
                )
            timing = result.timing
            interconnect = int(result.counters.interconnect_bytes)
            messages = timing.messages
            strategy = result.comms.strategy if result.comms else comms
        if t_one is None:
            # The smallest count anchors the efficiency baseline (it is
            # n == 1 whenever 1 is swept, matching the classic plot).
            t_one = timing.time
        rows.append({
            "devices": n,
            "rows": m,
            "nnz": int(matrix.nnz),
            "partitioner": partitioner,
            "comms": strategy,
            "backend": backend,
            "t_total": timing.time,
            "t_kernel": getattr(timing, "t_kernel", timing.time),
            "t_comm": getattr(timing, "t_comm", 0.0),
            "gflops": timing.gflops,
            "interconnect_bytes": interconnect,
            "messages": messages,
            "efficiency": t_one / timing.time,
            "bound": timing.bound,
        })
    return rows
