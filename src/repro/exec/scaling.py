"""Strong-scaling experiment: one matrix, 1..N simulated devices.

The reportable experiment behind ``repro scale``: fix the matrix and
format, sweep the device count, and compare the sharded timing model
against the single-device baseline. Because the kernel phase is the
slowest shard while communication grows with the device count, the rows
expose the classic strong-scaling shape — near-linear speedup while the
shards stay bandwidth-bound, flattening when the interconnect term or
load imbalance dominates.

Every sweep row is checked for bit-identity against the single-device
reference product before it is reported, so a scaling table is also an
end-to-end correctness assertion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ValidationError
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from .engine import execute_sharded
from .policy import ExecutionPolicy

__all__ = ["strong_scaling"]


def strong_scaling(
    matrix: SparseFormat,
    device: Union[DeviceSpec, str] = "k20",
    devices: Sequence[int] = (1, 2, 4, 8),
    *,
    partitioner: str = "greedy-nnz",
    comms: str = "auto",
    engine: str = "auto",
    x: Optional[np.ndarray] = None,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Sweep the device count and report modeled speedup/efficiency.

    Returns one dict per entry of ``devices`` with the modeled times
    (``t_total``, ``t_kernel``, ``t_comm``), the achieved GFlop/s, the
    communication volume and ``speedup``/``efficiency`` relative to the
    single-device baseline (always computed, even when ``1`` is not in
    ``devices``). Raises :class:`~repro.errors.ValidationError` if any
    sharded product deviates from the single-device result by a single
    bit.
    """
    if isinstance(device, str):
        device = get_device(device)
    counts = sorted({int(d) for d in devices})
    if not counts or counts[0] < 1:
        raise ValidationError(f"devices must be positive integers, got {devices!r}")
    if x is None:
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(matrix.shape[1])

    # Single-device baseline through the ordinary dispatch path.
    from ..kernels.dispatch import run_spmv

    base = run_spmv(matrix, x, device,
                    policy=ExecutionPolicy(engine=engine))
    t_base = base.timing.time

    rows: List[Dict[str, object]] = []
    for n in counts:
        if n == 1:
            rows.append({
                "devices": 1,
                "partitioner": partitioner,
                "comms": None,
                "t_total": t_base,
                "t_kernel": t_base,
                "t_comm": 0.0,
                "gflops": base.timing.gflops,
                "interconnect_bytes": 0,
                "messages": 0,
                "speedup": 1.0,
                "efficiency": 1.0,
                "bound": base.timing.bound,
            })
            continue
        result = execute_sharded(
            matrix, x, device,
            ExecutionPolicy(engine=engine, devices=n,
                            partitioner=partitioner, comms=comms),
        )
        if not np.array_equal(result.y, base.y):
            raise ValidationError(
                f"sharded product on {n} devices deviates from the "
                f"single-device reference"
            )
        timing = result.timing
        speedup = t_base / timing.time
        rows.append({
            "devices": n,
            "partitioner": partitioner,
            "comms": result.comms.strategy if result.comms else comms,
            "t_total": timing.time,
            "t_kernel": timing.t_kernel,
            "t_comm": timing.t_comm,
            "gflops": timing.gflops,
            "interconnect_bytes": int(result.counters.interconnect_bytes),
            "messages": timing.messages,
            "speedup": speedup,
            "efficiency": speedup / n,
            "bound": timing.bound,
        })
    return rows
