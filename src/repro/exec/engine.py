"""The sharded execution engine: N shards, N simulated devices.

:func:`execute_sharded` is where a ``devices > 1``
:class:`~repro.exec.policy.ExecutionPolicy` lands after
:func:`repro.kernels.run_spmv` has done its verify/fallback work. The
engine

1. partitions the matrix (or accepts a pre-built
   :class:`~repro.exec.partition.ShardedMatrix`), caching the partition
   on the container so solver loops pay for it once;
2. prepares and runs every shard's kernel concurrently — on a
   ``ThreadPoolExecutor`` (``policy.backend="thread"``, default) or on a
   fault-tolerant ``multiprocessing`` :class:`~repro.exec.workers.WorkerPool`
   (``policy.backend="process"``) where each worker mmaps its own sealed
   ``.brx`` shard container and shard failures fail over to surviving
   workers;
3. concatenates the per-shard ``y`` blocks (bit-identical to the
   single-device result, because shards are contiguous row blocks and
   every kernel accumulates rows in ascending-column order);
4. merges the per-shard :class:`~repro.gpu.counters.KernelCounters` and
   adds the modeled interconnect traffic
   (:func:`~repro.exec.comms.model_comms`), so
   ``merged == sum(shard counters)`` in every DRAM field while
   ``interconnect_bytes`` carries the communication volume.

Both backends honor ``policy.shard_timeout_s``: the thread engine raises
a typed :class:`~repro.errors.ShardTimeoutError` when a shard future
misses its deadline, and the process engine treats the miss as a stalled
worker — fence, retry elsewhere, and only raise once
``policy.max_retries`` is exhausted. Recovery actions surface on the
returned :class:`ShardedSpMVResult` (``worker_deaths``,
``shard_reassignments``, ``retries``) and in the metrics registry
(``exec.worker_deaths`` etc.).

Thread-safety note: the telemetry tracer keeps one global span stack,
so when a tracer is active the thread backend runs shards sequentially
(same results and counters, deterministic span tree); the pool is used
only for untraced runs. NumPy releases the GIL on the large kernels, so
the pool gives real overlap in the common case.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError, ShardTimeoutError, ValidationError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec, get_device
from ..gpu.timing import MultiDeviceBreakdown, predict_sharded
from ..kernels.base import SpMVResult
from ..telemetry import metrics as _metrics
from ..telemetry.tracer import get_tracer
from ..telemetry.tracer import span as _span
from .chaos import PROCESS_FAULT_KINDS, ChaosEvent, chaos_state
from .comms import CommsReport, model_comms
from .partition import ShardedMatrix, partition
from .policy import ExecutionPolicy

__all__ = [
    "ShardedSpMVResult",
    "execute_sharded",
    "sharded_view",
    "shutdown_pools",
]


@dataclass
class ShardedSpMVResult(SpMVResult):
    """Result of a multi-device SpMV.

    ``y``/``counters`` behave exactly like the single-device record
    (``counters`` is the merged view, carrying the modeled
    ``interconnect_bytes``); the extra fields expose the per-shard
    results, the communication accounting, the sharded timing model and
    — on the process backend — the recovery accounting of the call.
    """

    shard_results: Tuple[SpMVResult, ...] = ()
    comms: Optional[CommsReport] = None
    partitioner: str = "greedy-nnz"
    backend: str = "thread"
    worker_deaths: int = 0  #: workers lost (crashed or fenced) this call
    shard_reassignments: int = 0  #: shards moved to a different worker
    retries: int = 0  #: shard re-executions after a failure
    recovery_events: Tuple[Dict[str, object], ...] = ()

    @property
    def timing(self) -> MultiDeviceBreakdown:  # type: ignore[override]
        """Sharded timing: parallel kernel phase + interconnect term."""
        return predict_sharded(
            self.counters,
            tuple(r.counters for r in self.shard_results),
            self.device,
            messages=self.comms.messages if self.comms is not None else 0,
        )

    @property
    def n_devices(self) -> int:
        return len(self.shard_results)


def sharded_view(
    matrix: SparseFormat,
    devices: int,
    partitioner: str = "greedy-nnz",
) -> ShardedMatrix:
    """The matrix partitioned for ``devices``, cached on the container.

    Re-invoking with the same ``(devices, partitioner)`` returns the
    cached :class:`ShardedMatrix`, so iterative solvers re-encode shards
    once per operator, not once per multiplication.
    """
    if isinstance(matrix, ShardedMatrix):
        # devices == 1 means "no explicit request": use the container as-is.
        if devices > 1 and matrix.n_shards != devices:
            raise ValidationError(
                f"matrix is already sharded for {matrix.n_shards} devices, "
                f"policy asks for {devices}; re-partition explicitly"
            )
        return matrix
    cache = getattr(matrix, "_repro_shard_cache", None)
    if cache is None:
        cache = {}
        matrix._repro_shard_cache = cache  # type: ignore[attr-defined]
    key = (devices, partitioner)
    if key not in cache:
        cache[key] = partition(matrix, devices, partitioner)
    return cache[key]


def shutdown_pools(matrix: SparseFormat) -> int:
    """Close every process-worker pool cached on ``matrix``; returns count."""
    from .workers import shutdown_matrix_pools

    return shutdown_matrix_pools(matrix)


def _merge(
    shard_results: List[SpMVResult], comms: CommsReport
) -> KernelCounters:
    merged = KernelCounters.sum(r.counters for r in shard_results)
    return replace(
        merged,
        interconnect_bytes=merged.interconnect_bytes + comms.total_bytes,
    )


def _plan_thread_chaos(
    sharded: ShardedMatrix, policy: ExecutionPolicy
) -> Optional[ChaosEvent]:
    """The thread backend's chaos event for this call, if any.

    The thread pool shares one address space, so only stalls and
    container-level faults are expressible; process-only kinds are a
    configuration error rather than a silent no-op.
    """
    if policy.chaos is None:
        return None
    event = chaos_state(sharded, policy.chaos).plan_call(sharded.n_shards)
    if event is None:
        return None
    if event.kind in PROCESS_FAULT_KINDS and event.kind != "stall-worker":
        raise ValidationError(
            f"chaos kind {event.kind!r} requires backend='process'"
        )
    return event


def _execute_thread(
    sharded: ShardedMatrix,
    x: np.ndarray,
    device: DeviceSpec,
    policy: ExecutionPolicy,
) -> Tuple[List[SpMVResult], Dict[str, object]]:
    """The in-process thread backend (with per-shard deadlines)."""
    from ..kernels.dispatch import run_spmv  # late: dispatch imports us

    shard_policy = policy.with_(
        devices=1, verify=False, fallback=None, plan=None,
        backend="thread", shard_timeout_s=None, chaos=None,
    )
    event = _plan_thread_chaos(sharded, policy)
    timeout = policy.shard_timeout_s

    def run_one(d: int, shard: SparseFormat) -> SpMVResult:
        if not _metrics.collecting():  # keep the disabled path clock-free
            return _run_one_inner(d, shard)
        t_begin = time.perf_counter()
        try:
            return _run_one_inner(d, shard)
        finally:
            _metrics.record_shard_latency(str(d), time.perf_counter() - t_begin)

    def _run_one_inner(d: int, shard: SparseFormat) -> SpMVResult:
        if event is not None and event.shard == d:
            if event.kind == "stall-worker":
                time.sleep(event.stall_s)
            else:
                from ..integrity.checksums import is_sealed, seal
                from .workers import _apply_container_fault

                # The checksum verify below can only catch the injected
                # corruption against a pristine seal; unsealed shards
                # must be sealed first (the process backend gets this
                # for free from its sealed .brx shard containers).
                if not is_sealed(shard):
                    try:
                        seal(shard)
                    except ReproError as exc:
                        raise ValidationError(
                            f"chaos kind {event.kind!r} needs a sealable "
                            f"shard format, got {shard.format_name!r}"
                        ) from exc
                victim = _apply_container_fault(
                    shard, event.kind, event.call * 8191 + d
                )
                return run_spmv(
                    victim, x, device,
                    policy=shard_policy.with_(verify="checksum"),
                )
        return run_spmv(shard, x, device, policy=shard_policy)

    if get_tracer() is not None or sharded.n_shards == 1:
        # The tracer's span stack is global: keep the tree deterministic.
        # Deadlines are enforced post-hoc (a shard cannot be preempted).
        results = []
        for d, shard in enumerate(sharded.shards):
            t0 = time.monotonic()
            results.append(run_one(d, shard))
            if timeout is not None and time.monotonic() - t0 > timeout:
                raise ShardTimeoutError(
                    f"shard {d} exceeded its {timeout}s deadline",
                    shard=d, timeout_s=timeout,
                )
        return results, {}

    with ThreadPoolExecutor(max_workers=sharded.n_shards) as pool:
        futures = [
            pool.submit(run_one, d, shard)
            for d, shard in enumerate(sharded.shards)
        ]
        results = []
        for d, future in enumerate(futures):
            try:
                results.append(future.result(timeout=timeout))
            except _FutureTimeout:
                for pending in futures[d:]:
                    pending.cancel()
                raise ShardTimeoutError(
                    f"shard {d} missed its {timeout}s deadline on the "
                    f"thread backend",
                    shard=d, timeout_s=timeout or 0.0,
                ) from None
    return results, {}


def _execute_process(
    sharded: ShardedMatrix,
    x: np.ndarray,
    device: DeviceSpec,
    policy: ExecutionPolicy,
) -> Tuple[List[SpMVResult], Dict[str, object]]:
    """The fault-tolerant multiprocessing backend."""
    from .workers import worker_pool

    tracer = get_tracer()
    telem: Optional[Tuple[str, Optional[int]]] = None
    if tracer is not None:
        parent = tracer.current_span()
        telem = (
            tracer.trace_id,
            parent.span_id if parent is not None else None,
        )
    elif _metrics.collecting():
        # Metrics-only mode still wants worker registry snapshots; a
        # fresh trace id tags the call so stale batches can't mix in.
        telem = (uuid.uuid4().hex, None)

    pool = worker_pool(sharded, device, policy)
    blocks, stats = pool.execute(x, telem=telem)
    results = [
        SpMVResult(y=y, counters=counters, device=device)
        for y, counters in blocks
    ]
    if _metrics.collecting():
        # Worker processes record into their own registries (shipped back
        # as worker-labelled series below); fold the shard kernel
        # counters in here unlabelled so both backends meter bit-alike.
        for r in results:
            _metrics.record_kernel(sharded.inner_format, device.name, r.counters)
    if stats.telemetry:
        from ..telemetry import remote as _remote

        batches = sorted(stats.telemetry, key=lambda b: b["worker"])
        if tracer is not None:
            for batch in batches:
                _remote.graft_spans(tracer, batch)
        if _metrics.collecting():
            _remote.merge_batches(
                _metrics.registry(), batches,
                device_names=[device.name] * sharded.n_shards,
            )
            for batch in batches:
                _metrics.record_shard_latency(
                    str(batch["worker"]), batch["elapsed_s"]
                )
    recovery = {
        "worker_deaths": stats.worker_deaths,
        "shard_reassignments": stats.shard_reassignments,
        "retries": stats.retries,
        "respawns": stats.respawns,
        "events": tuple(stats.events),
    }
    return results, recovery


def execute_sharded(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec | str,
    policy: ExecutionPolicy,
) -> ShardedSpMVResult:
    """Run ``y = A @ x`` across ``policy.devices`` simulated devices.

    Integrity (verify/fallback) is the caller's concern —
    :func:`repro.kernels.run_spmv` wraps this call in its guarded
    region, so corruption inside any shard degrades exactly like a
    single-device failure. Each shard runs with a single-device variant
    of ``policy`` (same engine selection and plan cache); the backend —
    thread pool or failover-capable worker processes — is selected by
    ``policy.backend``.
    """
    if isinstance(device, str):
        device = get_device(device)
    if not policy.sharded and not isinstance(matrix, ShardedMatrix):
        raise ValidationError("execute_sharded needs policy.devices > 1")

    sharded = sharded_view(matrix, policy.devices, policy.partitioner)
    comms = model_comms(sharded, device, policy.comms)
    x = sharded.check_x(x)

    with _span(
        "exec.sharded",
        "pipeline",
        format=sharded.inner_format,
        devices=sharded.n_shards,
        partitioner=sharded.partitioner,
        comms=comms.strategy,
        backend=policy.backend,
    ):
        if policy.backend == "process":
            results, recovery = _execute_process(sharded, x, device, policy)
        else:
            results, recovery = _execute_thread(sharded, x, device, policy)

    y = np.concatenate([r.y for r in results])
    merged = _merge(results, comms)
    _metrics.record_exec(
        sharded.inner_format, device.name, sharded.n_shards, merged, comms
    )
    for name in ("worker_deaths", "shard_reassignments", "retries", "respawns"):
        count = int(recovery.get(name, 0) or 0)
        if count:
            _metrics.record_worker_event(name, count)
    return ShardedSpMVResult(
        y=y,
        counters=merged,
        device=device,
        shard_results=tuple(results),
        comms=comms,
        partitioner=sharded.partitioner,
        backend=policy.backend,
        worker_deaths=int(recovery.get("worker_deaths", 0) or 0),
        shard_reassignments=int(recovery.get("shard_reassignments", 0) or 0),
        retries=int(recovery.get("retries", 0) or 0),
        recovery_events=tuple(recovery.get("events", ()) or ()),
    )
