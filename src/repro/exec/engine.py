"""The sharded execution engine: N shards, N simulated devices.

:func:`execute_sharded` is where a ``devices > 1``
:class:`~repro.exec.policy.ExecutionPolicy` lands after
:func:`repro.kernels.run_spmv` has done its verify/fallback work. The
engine

1. partitions the matrix (or accepts a pre-built
   :class:`~repro.exec.partition.ShardedMatrix`), caching the partition
   on the container so solver loops pay for it once;
2. prepares and runs every shard's kernel concurrently on a
   ``ThreadPoolExecutor`` — each shard goes through the same
   single-device engine selection (reference kernels or prepared-plan
   replay) the unsharded path uses;
3. concatenates the per-shard ``y`` blocks (bit-identical to the
   single-device result, because shards are contiguous row blocks and
   every kernel accumulates rows in ascending-column order);
4. merges the per-shard :class:`~repro.gpu.counters.KernelCounters` and
   adds the modeled interconnect traffic
   (:func:`~repro.exec.comms.model_comms`), so
   ``merged == sum(shard counters)`` in every DRAM field while
   ``interconnect_bytes`` carries the communication volume.

Thread-safety note: the telemetry tracer keeps one global span stack,
so when a tracer is active the shards run sequentially (same results
and counters, deterministic span tree); the pool is used only for
untraced runs. NumPy releases the GIL on the large kernels, so the pool
gives real overlap in the common case.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ValidationError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec, get_device
from ..gpu.timing import MultiDeviceBreakdown, predict_sharded
from ..kernels.base import SpMVResult
from ..telemetry import metrics as _metrics
from ..telemetry.tracer import get_tracer
from ..telemetry.tracer import span as _span
from .comms import CommsReport, model_comms
from .partition import ShardedMatrix, partition
from .policy import ExecutionPolicy

__all__ = ["ShardedSpMVResult", "execute_sharded", "sharded_view"]


@dataclass
class ShardedSpMVResult(SpMVResult):
    """Result of a multi-device SpMV.

    ``y``/``counters`` behave exactly like the single-device record
    (``counters`` is the merged view, carrying the modeled
    ``interconnect_bytes``); the extra fields expose the per-shard
    results, the communication accounting and the sharded timing model.
    """

    shard_results: Tuple[SpMVResult, ...] = ()
    comms: Optional[CommsReport] = None
    partitioner: str = "greedy-nnz"

    @property
    def timing(self) -> MultiDeviceBreakdown:  # type: ignore[override]
        """Sharded timing: parallel kernel phase + interconnect term."""
        return predict_sharded(
            self.counters,
            tuple(r.counters for r in self.shard_results),
            self.device,
            messages=self.comms.messages if self.comms is not None else 0,
        )

    @property
    def n_devices(self) -> int:
        return len(self.shard_results)


def sharded_view(
    matrix: SparseFormat,
    devices: int,
    partitioner: str = "greedy-nnz",
) -> ShardedMatrix:
    """The matrix partitioned for ``devices``, cached on the container.

    Re-invoking with the same ``(devices, partitioner)`` returns the
    cached :class:`ShardedMatrix`, so iterative solvers re-encode shards
    once per operator, not once per multiplication.
    """
    if isinstance(matrix, ShardedMatrix):
        # devices == 1 means "no explicit request": use the container as-is.
        if devices > 1 and matrix.n_shards != devices:
            raise ValidationError(
                f"matrix is already sharded for {matrix.n_shards} devices, "
                f"policy asks for {devices}; re-partition explicitly"
            )
        return matrix
    cache = getattr(matrix, "_repro_shard_cache", None)
    if cache is None:
        cache = {}
        matrix._repro_shard_cache = cache  # type: ignore[attr-defined]
    key = (devices, partitioner)
    if key not in cache:
        cache[key] = partition(matrix, devices, partitioner)
    return cache[key]


def _merge(
    shard_results: List[SpMVResult], comms: CommsReport
) -> KernelCounters:
    merged = KernelCounters.sum(r.counters for r in shard_results)
    return replace(
        merged,
        interconnect_bytes=merged.interconnect_bytes + comms.total_bytes,
    )


def execute_sharded(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec | str,
    policy: ExecutionPolicy,
) -> ShardedSpMVResult:
    """Run ``y = A @ x`` across ``policy.devices`` simulated devices.

    Integrity (verify/fallback) is the caller's concern —
    :func:`repro.kernels.run_spmv` wraps this call in its guarded
    region, so corruption inside any shard degrades exactly like a
    single-device failure. Each shard runs with a single-device variant
    of ``policy`` (same engine selection and plan cache).
    """
    from ..kernels.dispatch import run_spmv  # late: dispatch imports us

    if isinstance(device, str):
        device = get_device(device)
    if not policy.sharded and not isinstance(matrix, ShardedMatrix):
        raise ValidationError("execute_sharded needs policy.devices > 1")

    sharded = sharded_view(matrix, policy.devices, policy.partitioner)
    comms = model_comms(sharded, device, policy.comms)
    x = sharded.check_x(x)
    shard_policy = policy.with_(
        devices=1, verify=False, fallback=None, plan=None
    )

    def run_one(shard: SparseFormat) -> SpMVResult:
        return run_spmv(shard, x, device, policy=shard_policy)

    with _span(
        "exec.sharded",
        "pipeline",
        format=sharded.inner_format,
        devices=sharded.n_shards,
        partitioner=sharded.partitioner,
        comms=comms.strategy,
    ):
        if get_tracer() is not None or sharded.n_shards == 1:
            # The tracer's span stack is global: keep the tree deterministic.
            results = [run_one(s) for s in sharded.shards]
        else:
            with ThreadPoolExecutor(max_workers=sharded.n_shards) as pool:
                results = list(pool.map(run_one, sharded.shards))

    y = np.concatenate([r.y for r in results])
    merged = _merge(results, comms)
    _metrics.record_exec(
        sharded.inner_format, device.name, sharded.n_shards, merged, comms
    )
    return ShardedSpMVResult(
        y=y,
        counters=merged,
        device=device,
        shard_results=tuple(results),
        comms=comms,
        partitioner=sharded.partitioner,
    )
