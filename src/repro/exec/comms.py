"""Interconnect traffic model for sharded SpMV.

The only data that must cross devices in a row-partitioned SpMV is the
input vector ``x``: ownership is modeled the usual way — device ``d``
holds the contiguous slice of ``x`` matching an equal column split and
keeps the ``y`` rows of its shard resident (in an iterative solver
those rows *are* the next iteration's local x chunk, so no gather is
charged; :attr:`CommsReport.gather_bytes` reports what one would cost).
Two distribution strategies are accounted, at cacheline granularity
(``DeviceSpec.interconnect_line_bytes``):

* ``"broadcast"`` — every owner sends its full ``x`` slice to all other
  devices; traffic is independent of the sparsity pattern.
* ``"halo"`` — each device fetches only the remote cachelines its
  shard's column reach actually touches (Kreutzer et al.'s "ghost"
  elements). Cheap for banded/local patterns, can exceed broadcast for
  scattered ones because a line is re-sent to every device needing it.

``"auto"`` picks whichever moves fewer x-bytes. The ``y`` gather is
charged identically under both strategies. The resulting byte total
feeds :attr:`KernelCounters.interconnect_bytes` and, with the message
count, the ``t_comm`` term of
:func:`repro.gpu.timing.predict_sharded`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ValidationError
from ..gpu.device import DeviceSpec
from ..types import VALUE_DTYPE
from .partition import ShardedMatrix

__all__ = ["CommsReport", "model_comms"]

#: Bytes per ``x``/``y`` element (float64 everywhere in the library).
_ELEM_BYTES = np.dtype(VALUE_DTYPE).itemsize


@dataclass(frozen=True)
class CommsReport:
    """Modeled device-to-device traffic of one sharded SpMV."""

    strategy: str  #: x-distribution actually charged ("broadcast"/"halo")
    devices: int
    line_bytes: int
    #: x-traffic under each strategy (the cheaper one is charged).
    broadcast_bytes: int
    halo_bytes: int
    #: per-device inbound x-bytes under the charged strategy.
    x_bytes_per_device: Tuple[int, ...]
    #: informational: bytes a full y-gather to one device would move.
    #: NOT charged — like distributed-memory solvers, the engine keeps
    #: ``y`` resident per device (the next iteration's x chunks).
    gather_bytes: int
    #: critical-path messages: serialized transfers on the busiest
    #: device's link during the x distribution. Feeds the latency term
    #: of the timing model; links run in parallel, so this is NOT the
    #: total transfer count.
    messages: int

    @property
    def x_bytes(self) -> int:
        """Charged x-distribution bytes."""
        return self.broadcast_bytes if self.strategy == "broadcast" else self.halo_bytes

    @property
    def total_bytes(self) -> int:
        """Charged interconnect bytes for one SpMV (the x distribution)."""
        return self.x_bytes

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "devices": self.devices,
            "line_bytes": self.line_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "halo_bytes": self.halo_bytes,
            "x_bytes": self.x_bytes,
            "x_bytes_per_device": list(self.x_bytes_per_device),
            "gather_bytes": self.gather_bytes,
            "total_bytes": self.total_bytes,
            "messages": self.messages,
        }


def _lines(nbytes: int, line: int) -> int:
    """Whole transfer lines needed for ``nbytes``."""
    return -(-int(nbytes) // line) if nbytes else 0


def model_comms(
    sharded: ShardedMatrix,
    device: DeviceSpec,
    strategy: str = "auto",
) -> CommsReport:
    """Account the interconnect traffic of one SpMV over ``sharded``.

    Results are cached on the matrix per ``(line size, strategy)`` —
    solver loops re-running the same sharded operator pay the column
    scan once.
    """
    if strategy not in ("auto", "broadcast", "halo"):
        raise ValidationError(
            f"comms strategy must be 'auto', 'broadcast' or 'halo', "
            f"got {strategy!r}"
        )
    cache = getattr(sharded, "_comms_cache", None)
    if cache is None:
        cache = {}
        sharded._comms_cache = cache  # type: ignore[attr-defined]
    key = (device.interconnect_line_bytes, strategy)
    if key in cache:
        return cache[key]

    n_dev = sharded.n_shards
    n = sharded.shape[1]
    line = device.interconnect_line_bytes
    per_line = max(1, line // _ELEM_BYTES)

    if n_dev == 1:
        # Everything lives on the one device: nothing crosses a link.
        report = CommsReport(
            strategy="broadcast" if strategy == "broadcast" else "halo",
            devices=1, line_bytes=line, broadcast_bytes=0, halo_bytes=0,
            x_bytes_per_device=(0,), gather_bytes=0, messages=0,
        )
        cache[key] = report
        return report

    # Column ownership: equal contiguous split of x across devices.
    col_bounds = np.linspace(0, n, n_dev + 1).round().astype(np.int64)
    total_x_lines = _lines(n * _ELEM_BYTES, line)

    # Broadcast: each device receives the x-lines it does not own.
    bcast_per_dev = []
    for d in range(n_dev):
        own = _lines(int(col_bounds[d + 1] - col_bounds[d]) * _ELEM_BYTES, line)
        bcast_per_dev.append((total_x_lines - own) * line)
    broadcast_bytes = int(sum(bcast_per_dev))
    # Critical path: each device receives the other owners' chunks on its
    # own link, so the slowest link sees n-1 inbound transfers.
    bcast_messages = n_dev - 1

    # Halo: per device, the distinct remote cachelines its columns reach.
    halo_per_dev = []
    halo_messages = 0
    for d, shard in enumerate(sharded.shards):
        cols = shard.to_coo().col_idx
        remote = cols[(cols < col_bounds[d]) | (cols >= col_bounds[d + 1])]
        if remote.size == 0:
            halo_per_dev.append(0)
            continue
        lines_needed = np.unique(remote.astype(np.int64) // per_line)
        halo_per_dev.append(int(lines_needed.size) * line)
        # One inbound transfer per remote owner this device pulls lines
        # from; the critical path is the device talking to the most peers.
        owners = np.unique(
            np.searchsorted(col_bounds, lines_needed * per_line, side="right") - 1
        )
        halo_messages = max(halo_messages, int(owners.size))
    halo_bytes = int(sum(halo_per_dev))

    if strategy == "auto":
        chosen = "halo" if halo_bytes <= broadcast_bytes else "broadcast"
    else:
        chosen = strategy
    per_dev = halo_per_dev if chosen == "halo" else bcast_per_dev
    x_messages = halo_messages if chosen == "halo" else bcast_messages

    # Informational only: what a full y-gather to one device would cost.
    gather_bytes = sum(
        _lines(int(b1 - b0) * _ELEM_BYTES, line) * line
        for b0, b1 in zip(sharded.bounds[:-1], sharded.bounds[1:])
    )
    report = CommsReport(
        strategy=chosen,
        devices=n_dev,
        line_bytes=line,
        broadcast_bytes=broadcast_bytes,
        halo_bytes=halo_bytes,
        x_bytes_per_device=tuple(int(b) for b in per_dev),
        gather_bytes=int(gather_bytes),
        messages=int(x_messages),
    )
    cache[key] = report
    return report
