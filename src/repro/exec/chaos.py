"""Seeded chaos injection for the sharded execution engines.

A :class:`ChaosPolicy` describes *which* faults to inject into a sharded
run and *how often*; attaching one to an
:class:`~repro.exec.policy.ExecutionPolicy` (``policy.chaos``) makes the
engine inject at most one fault per call, always on a shard's first
attempt, so the recovery machinery — retry, failover, elastic respawn —
is what determines the outcome. Three process-level injectors target the
:mod:`repro.exec.workers` pool:

* ``"kill-worker"`` — the worker owning the target shard exits hard
  (``os._exit``) before computing it, as a crashed rank would;
* ``"stall-worker"`` — the worker sleeps past the shard deadline; the
  coordinator fails the shard over and drops the late result as stale;
* ``"corrupt-shard-result"`` — the worker flips a bit in its ``y`` block
  *after* computing the transport CRC, so the coordinator's checksum
  verification catches the corruption and retries.

Any :func:`repro.integrity.faults.fault_kinds` name (``stream_bit_flip``,
``value_nan``, ...) is also accepted: the executing side injects that
fault into a copy of the shard container and runs it under checksum
verification, so container corruption surfaces as a typed error and the
shard retries against the pristine container.

:func:`run_chaos_campaign` sweeps formats × fault kinds and asserts the
zero-silent-corruption contract end-to-end: every trial must return the
bit-identical product (recovered) or raise a typed
:class:`~repro.errors.ReproError` (detected) — never wrong numbers, and
never an untyped crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError, ValidationError

__all__ = [
    "PROCESS_FAULT_KINDS",
    "ChaosPolicy",
    "ChaosEvent",
    "ChaosState",
    "ChaosTrial",
    "ChaosCampaignReport",
    "run_chaos_campaign",
]

#: Fault kinds injected at the worker-pool level (not into containers).
PROCESS_FAULT_KINDS = ("kill-worker", "stall-worker", "corrupt-shard-result")

#: Default fault matrix of :func:`run_chaos_campaign`.
DEFAULT_CAMPAIGN_KINDS = PROCESS_FAULT_KINDS + ("stream_bit_flip",)


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault: what to inject, into which shard, on which call."""

    kind: str
    shard: int
    call: int  #: 0-based index of the engine call the event fires on
    stall_s: float = 2.5


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded description of the faults to inject into sharded runs.

    Parameters
    ----------
    seed:
        Drives every random choice; equal seeds replay the same faults.
    kinds:
        Candidate fault kinds: any of :data:`PROCESS_FAULT_KINDS` and/or
        any :func:`repro.integrity.faults.fault_kinds` name applicable to
        the inner format.
    rate:
        Probability (0, 1] that a given engine call receives a fault.
    max_faults:
        Total faults over the policy's lifetime (``None`` = unlimited).
        The engine keeps one :class:`ChaosState` per cached pool, so a
        ``max_faults=1`` policy faults only the first call of a solve.
    stall_s:
        How long a ``"stall-worker"`` injection sleeps; must exceed the
        policy's ``shard_timeout_s`` for the stall to be detected.
    shard:
        Pin every fault to one shard index (default: seeded choice).
    """

    seed: int = 0
    kinds: Tuple[str, ...] = PROCESS_FAULT_KINDS
    rate: float = 1.0
    max_faults: Optional[int] = None
    stall_s: float = 2.5
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        kinds = tuple(self.kinds)
        object.__setattr__(self, "kinds", kinds)
        if not kinds or not all(isinstance(k, str) and k for k in kinds):
            raise ValidationError(
                f"chaos kinds must be a non-empty tuple of names, got {kinds!r}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValidationError(
                f"chaos rate must be in (0, 1], got {self.rate!r}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValidationError(
                f"max_faults must be >= 0 or None, got {self.max_faults!r}"
            )
        if self.stall_s <= 0:
            raise ValidationError(
                f"stall_s must be positive, got {self.stall_s!r}"
            )


class ChaosState:
    """Mutable per-pool injection state: the RNG stream and fault budget.

    The engine keeps one state per cached executor so a solver loop sees
    a single deterministic fault sequence across its calls instead of
    re-seeding on every multiplication.
    """

    def __init__(self, policy: ChaosPolicy) -> None:
        self.policy = policy
        self._rng = np.random.default_rng(policy.seed)
        self.calls = 0
        self.injected = 0

    def plan_call(self, n_shards: int) -> Optional[ChaosEvent]:
        """The fault for the next engine call, or ``None`` for a clean one.

        At most one fault per call; it always lands on a shard's first
        attempt, so the retry path re-executes clean and deterministic.
        """
        call = self.calls
        self.calls += 1
        budget = self.policy.max_faults
        if budget is not None and self.injected >= budget:
            return None
        if float(self._rng.random()) >= self.policy.rate:
            return None
        kind = self.policy.kinds[int(self._rng.integers(len(self.policy.kinds)))]
        if self.policy.shard is not None:
            shard = int(self.policy.shard) % n_shards
        else:
            shard = int(self._rng.integers(n_shards))
        self.injected += 1
        return ChaosEvent(
            kind=kind, shard=shard, call=call, stall_s=self.policy.stall_s
        )


def chaos_state(owner: object, policy: ChaosPolicy) -> ChaosState:
    """The :class:`ChaosState` for ``policy`` cached on ``owner``."""
    cache = getattr(owner, "_repro_chaos_states", None)
    if cache is None:
        cache = {}
        owner._repro_chaos_states = cache  # type: ignore[attr-defined]
    key = id(policy)
    state = cache.get(key)
    if state is None:
        state = cache[key] = ChaosState(policy)
    return state


# ---------------------------------------------------------------------------
# The chaos campaign
# ---------------------------------------------------------------------------


@dataclass
class ChaosTrial:
    """Outcome of one fault injected into one sharded call."""

    format_name: str
    kind: str
    repeat: int
    outcome: str  #: "recovered" | "unaffected" | "detected" | "silent" | "untyped"
    detail: Optional[str] = None
    worker_deaths: int = 0
    shard_reassignments: int = 0
    retries: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": self.format_name,
            "kind": self.kind,
            "repeat": self.repeat,
            "outcome": self.outcome,
            "detail": self.detail,
            "worker_deaths": self.worker_deaths,
            "shard_reassignments": self.shard_reassignments,
            "retries": self.retries,
        }


@dataclass
class ChaosCampaignReport:
    """Aggregated chaos-campaign outcome; ``clean`` is the contract gate."""

    trials: List[ChaosTrial] = field(default_factory=list)
    workers: int = 0
    backend: str = "process"
    seed: int = 0

    @property
    def injected(self) -> int:
        return len(self.trials)

    @property
    def recovered(self) -> int:
        return sum(t.outcome == "recovered" for t in self.trials)

    @property
    def unaffected(self) -> int:
        return sum(t.outcome == "unaffected" for t in self.trials)

    @property
    def detected(self) -> int:
        return sum(t.outcome == "detected" for t in self.trials)

    @property
    def silent(self) -> int:
        return sum(t.outcome == "silent" for t in self.trials)

    @property
    def untyped(self) -> int:
        return sum(t.outcome == "untyped" for t in self.trials)

    @property
    def clean(self) -> bool:
        """Zero silent corruptions and zero untyped crashes."""
        return self.silent == 0 and self.untyped == 0

    def rows(self) -> List[Dict[str, object]]:
        """Per-(format, kind) aggregate rows for table rendering."""
        agg: Dict[Tuple[str, str], Dict[str, int]] = {}
        for t in self.trials:
            row = agg.setdefault(
                (t.format_name, t.kind),
                {"injected": 0, "recovered": 0, "unaffected": 0,
                 "detected": 0, "silent": 0, "untyped": 0},
            )
            row["injected"] += 1
            row[t.outcome] += 1
        return [
            {"format": fmt, "fault": kind, **counts}
            for (fmt, kind), counts in sorted(agg.items())
        ]

    def to_dict(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "backend": self.backend,
            "seed": self.seed,
            "injected": self.injected,
            "recovered": self.recovered,
            "unaffected": self.unaffected,
            "detected": self.detected,
            "silent": self.silent,
            "untyped": self.untyped,
            "clean": self.clean,
            "rows": self.rows(),
            "trials": [t.to_dict() for t in self.trials],
        }


def _campaign_fixture(format_name: str, seed: int):
    """A sealed campaign container plus a seeded input vector."""
    from ..integrity.campaign import build_campaign_matrix
    from ..integrity.checksums import seal
    from ..matrices.generators import banded_random

    if format_name in ("bro_ell", "bro_coo", "bro_hyb"):
        sealed, coo = build_campaign_matrix(format_name, seed=seed)
    else:
        from ..formats.conversion import convert

        coo = banded_random(96, 8.0, 3.0, bandwidth=32, seed=seed)
        sealed = seal(convert(coo, format_name))
    x = np.random.default_rng(seed + 101).standard_normal(coo.shape[1])
    return sealed, x


def run_chaos_campaign(
    formats: Sequence[str] = ("bro_ell", "csr"),
    kinds: Sequence[str] = DEFAULT_CAMPAIGN_KINDS,
    workers: int = 4,
    repeats: int = 1,
    seed: int = 0,
    device: str = "k20",
    backend: str = "process",
    shard_timeout_s: float = 1.0,
    max_retries: int = 3,
    partitioner: str = "greedy-nnz",
) -> ChaosCampaignReport:
    """Sweep ``formats`` × ``kinds`` × ``repeats`` single-fault trials.

    Each trial runs one sharded ``run_spmv`` with exactly one injected
    fault (on the first attempt of the targeted shard) and classifies the
    outcome against the pristine single-device product:

    * ``recovered`` — bit-identical ``y`` with the recovery path visible
      (``worker_deaths``/``shard_reassignments``/``retries`` > 0);
    * ``unaffected`` — bit-identical ``y``, fault absorbed without any
      recovery action (e.g. a stall completing before its deadline);
    * ``detected`` — a typed :class:`~repro.errors.ReproError`;
    * ``silent`` — wrong numbers with no error (contract violation);
    * ``untyped`` — a non-Repro exception escaped (contract violation).

    Process-level kinds require ``backend="process"``; container kinds
    run on either backend. A fresh worker pool is created and shut down
    per trial so every trial replays deterministically from the seed.
    """
    from ..kernels.dispatch import run_spmv
    from .engine import shutdown_pools
    from .policy import ExecutionPolicy

    if backend == "thread":
        bad = [k for k in kinds
               if k in PROCESS_FAULT_KINDS and k != "stall-worker"]
        if bad:
            raise ValidationError(
                f"fault kind(s) {bad} need backend='process'"
            )
    report = ChaosCampaignReport(workers=workers, backend=backend, seed=seed)
    for f_idx, fmt in enumerate(formats):
        sealed, x = _campaign_fixture(fmt, seed + 17 * f_idx)
        y_ref = run_spmv(sealed, x, device).y
        for k_idx, kind in enumerate(kinds):
            for rep in range(int(repeats)):
                trial_seed = seed + 1009 * f_idx + 101 * k_idx + rep
                chaos = ChaosPolicy(
                    seed=trial_seed, kinds=(kind,), rate=1.0, max_faults=1,
                    stall_s=2.5 * shard_timeout_s,
                )
                policy = ExecutionPolicy(
                    devices=workers, backend=backend,
                    partitioner=partitioner,
                    shard_timeout_s=shard_timeout_s,
                    max_retries=max_retries, chaos=chaos,
                )
                trial = ChaosTrial(fmt, kind, rep, outcome="untyped")
                try:
                    result = run_spmv(sealed, x, device, policy=policy)
                except ReproError as exc:
                    trial.outcome = "detected"
                    trial.detail = f"{type(exc).__name__}: {exc}"
                except Exception as exc:  # noqa: BLE001 - contract check
                    trial.outcome = "untyped"
                    trial.detail = f"{type(exc).__name__}: {exc}"
                else:
                    trial.worker_deaths = getattr(result, "worker_deaths", 0)
                    trial.shard_reassignments = getattr(
                        result, "shard_reassignments", 0
                    )
                    trial.retries = getattr(result, "retries", 0)
                    recovery = (trial.worker_deaths
                                + trial.shard_reassignments + trial.retries)
                    if np.array_equal(result.y, y_ref):
                        trial.outcome = (
                            "recovered" if recovery > 0 else "unaffected"
                        )
                    else:
                        trial.outcome = "silent"
                        trial.detail = "product deviates from reference"
                finally:
                    shutdown_pools(sealed)
                report.trials.append(trial)
    return report
