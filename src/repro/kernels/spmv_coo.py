"""Simulated COO SpMV kernel (CUSP-style segmented reduction).

One warp per interval of the sorted entry list. Per iteration the warp
streams 32 row indices, 32 column indices and 32 values (all coalesced),
multiplies, and runs an intra-warp segmented scan; per-row partial sums are
committed with atomics, and a small second kernel reduces the per-warp
carries (paper Section 2.1.1 / [5]).
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.coo import COOMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..gpu.warp import warp_reduce_flops
from ..telemetry.tracer import span as _span
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["COOKernel", "coo_segmented_counters"]


def coo_segmented_counters(
    row_idx: np.ndarray,
    col_idx: np.ndarray,
    n_entries_padded: int,
    device: DeviceSpec,
    interval_size: int,
) -> KernelCounters:
    """Shared traffic/flop accounting of the segmented-reduction machinery.

    Counts everything except the *row-index* traffic (4 B/entry for plain
    COO, the packed stream for BRO-COO) so both kernels reuse it.
    """
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)

    n = n_entries_padded
    col_tx = contiguous_transactions(n, 4, ws, tb)
    val_tx = contiguous_transactions(n, 8, ws, tb)

    # x reads: each interval (warp) walks its lane arrangement.
    x_bytes = 0
    n_int = ceil_div(n, interval_size) if n else 0
    for i in range(n_int):
        lo = i * interval_size
        hi = min(lo + interval_size, n)
        L = ceil_div(hi - lo, ws)
        block = np.zeros(L * ws, dtype=np.int64)
        block[: hi - lo] = col_idx[lo:hi]
        valid = np.zeros(L * ws, dtype=bool)
        valid[: hi - lo] = True
        x_bytes += tex.warp_sequence_fetches(
            block.reshape(L, ws).T, valid.reshape(L, ws).T
        ) * device.tex_line_bytes

    # y commits: one atomic read-modify-write (16 B) per distinct row per
    # warp, plus the carry array (12 B per warp) handled by launch #2.
    warp_iters = ceil_div(n, ws) if n else 0
    y_updates = 0
    for i in range(n_int):
        lo = i * interval_size
        hi = min(lo + interval_size, n)
        y_updates += int(np.unique(row_idx[lo:hi]).shape[0])
    y_bytes = 16 * y_updates + 12 * n_int

    scan_flops = warp_reduce_flops(ws) * warp_iters
    nnz_real = int(row_idx.shape[0]) if row_idx.shape[0] < n else n
    return KernelCounters(
        index_bytes=col_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=y_bytes,
        useful_flops=0,  # caller sets; padding-dependent
        issued_flops=2 * n + scan_flops,
        launches=2,  # main kernel + carry reduction
        threads=max(ws, n_int * ws),
    )


@register_kernel
class COOKernel(SpMVKernel):
    """CUSP-style COO kernel with warp-level segmented reduction.

    The interval size defaults to CUSP's adaptive sizing (work divided
    over enough warps to fill the device) so small matrices — e.g. the
    COO tail of a HYB split — do not starve the occupancy model.
    """

    format_name = "coo"

    def __init__(self, interval_size: int | None = None) -> None:
        self.interval_size = interval_size

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, COOMatrix)
        assert isinstance(matrix, COOMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        # ---- functional execution ------------------------------------
        y = np.zeros(m, dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, matrix.row_idx, matrix.vals * x[matrix.col_idx])

        # ---- traffic accounting --------------------------------------
        ws = device.warp_size
        n = ceil_div(matrix.nnz, ws) * ws if matrix.nnz else 0
        row = np.zeros(n, dtype=np.int64)
        col = np.zeros(n, dtype=np.int64)
        row[: matrix.nnz] = matrix.row_idx
        col[: matrix.nnz] = matrix.col_idx
        if matrix.nnz:
            row[matrix.nnz :] = int(matrix.row_idx[-1])
        from ..core.bro_coo import adaptive_interval_size

        interval = self.interval_size or adaptive_interval_size(n, ws)
        counters = coo_segmented_counters(row, col, n, device, interval)
        # Row indices: one coalesced int32 stream (what BRO-COO compresses).
        counters.index_bytes += (
            contiguous_transactions(n, 4, ws, device.transaction_bytes)
            * device.transaction_bytes
        )
        counters.useful_flops = 2 * matrix.nnz
        if n == 0:
            counters.threads = ws
        return SpMVResult(y=y, counters=counters, device=device)
