"""Simulated Sliced-ELLPACK SpMV kernel (Monakov et al.).

One thread block per slice; every thread of the block runs the slice's
``num_col`` iterations (there is no per-row early exit — that is what the
``num_col`` array already provides at slice granularity).
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.sliced_ellpack import SlicedELLPACKMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["SlicedELLKernel"]


@register_kernel
class SlicedELLKernel(SpMVKernel):
    """Sliced-ELLPACK kernel: one block per slice, per-slice widths."""

    format_name = "sliced_ellpack"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, SlicedELLPACKMatrix)
        assert isinstance(matrix, SlicedELLPACKMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        launch = LaunchConfig(matrix.h, matrix.num_slices)
        tb = device.transaction_bytes
        ws = device.warp_size
        tex = TextureCacheModel(device)

        y = np.zeros(m, dtype=VALUE_DTYPE)
        idx_tx = val_tx = 0
        x_bytes = 0
        issued = 0
        for r0, r1, col_block, val_block in matrix.iter_slices():
            h_i, l_i = col_block.shape
            if l_i == 0:
                continue
            y[r0:r1] = np.einsum("ij,ij->i", val_block, x[col_block])
            idx_tx += l_i * contiguous_transactions(h_i, 4, ws, tb)
            val_tx += l_i * contiguous_transactions(h_i, 8, ws, tb)
            x_bytes += tex.block_x_bytes(
                col_block, np.ones(col_block.shape, dtype=bool)
            )
            issued += 2 * h_i * l_i
        y_tx = contiguous_transactions(m, 8, ws, tb)

        counters = KernelCounters(
            index_bytes=idx_tx * tb,
            value_bytes=val_tx * tb,
            x_bytes=x_bytes,
            y_bytes=y_tx * tb,
            aux_bytes=4 * matrix.num_slices,  # num_col reads (int32)
            useful_flops=2 * matrix.nnz,
            issued_flops=issued,
            launches=1,
            threads=launch.total_threads,
        )
        return SpMVResult(y=y, counters=counters, device=device)
