"""Simulated Sliced-ELLPACK SpMV kernel (Monakov et al.).

One thread block per slice; every thread of the block runs the slice's
``num_col`` iterations (there is no per-row early exit — that is what the
``num_col`` array already provides at slice granularity).

:func:`sliced_ell_counters` is shared with the prepared-plan planner so
replay counters are equal by construction.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.sliced_ellpack import SlicedELLPACKMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["SlicedELLKernel", "sliced_ell_counters"]


def sliced_ell_counters(
    matrix: SlicedELLPACKMatrix, device: DeviceSpec
) -> KernelCounters:
    """Traffic/flop accounting of the Sliced-ELLPACK kernel."""
    m, _ = matrix.shape
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)

    idx_tx = val_tx = 0
    x_bytes = 0
    issued = 0
    for _r0, _r1, col_block, _val_block in matrix.iter_slices():
        h_i, l_i = col_block.shape
        if l_i == 0:
            continue
        idx_tx += l_i * contiguous_transactions(h_i, 4, ws, tb)
        val_tx += l_i * contiguous_transactions(h_i, 8, ws, tb)
        x_bytes += tex.block_x_bytes(
            col_block, np.ones(col_block.shape, dtype=bool)
        )
        issued += 2 * h_i * l_i

    launch = LaunchConfig(matrix.h, matrix.num_slices)
    return KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
        aux_bytes=4 * matrix.num_slices,  # num_col reads (int32)
        useful_flops=2 * matrix.nnz,
        issued_flops=issued,
        launches=1,
        threads=launch.total_threads,
    )


@register_kernel
class SlicedELLKernel(SpMVKernel):
    """Sliced-ELLPACK kernel: one block per slice, per-slice widths."""

    format_name = "sliced_ellpack"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, SlicedELLPACKMatrix)
        assert isinstance(matrix, SlicedELLPACKMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        y = np.zeros(m, dtype=VALUE_DTYPE)
        for r0, r1, col_block, val_block in matrix.iter_slices():
            if col_block.shape[1] == 0:
                continue
            # Unmasked column-sequential accumulation (padding multiplies
            # a stored 0.0 by x[0]) — the device loop order the prepared
            # plan replays bit-for-bit.
            prod = val_block * x[col_block]
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[1]):
                acc += prod[:, c]
            y[r0:r1] = acc

        return SpMVResult(
            y=y, counters=sliced_ell_counters(matrix, device), device=device
        )
