"""One-call SpMV entry point: pick the kernel from the matrix's format.

Beyond plain dispatch, :func:`run_spmv` is the integrity boundary of the
library: with ``verify`` enabled it structurally validates the container
(and checks its CRC32 header when the matrix was sealed with
:func:`repro.integrity.seal`) before running the kernel, and with a
``fallback`` matrix supplied it degrades gracefully — any typed
:class:`~repro.errors.ReproError` raised during verification or decode
reroutes the request to the fallback's reference kernel (typically CSR)
instead of failing, recording the event in the per-process integrity
counters and on the returned :class:`~repro.kernels.base.SpMVResult`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import ReproError, ValidationError
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..integrity.checksums import is_sealed, verify_integrity
from ..integrity.counters import COUNTERS
from ..integrity.validators import validate_structure
from ..telemetry.tracer import NULL_SPAN, get_tracer
from ..telemetry.tracer import span as _span
from .base import SpMVResult, get_kernel

__all__ = ["run_spmv"]

#: Accepted ``verify`` levels, in increasing strictness.
_VERIFY_LEVELS = (False, "structure", "checksum", "full")

#: Exceptions treated as container-corruption symptoms on the guarded path.
#: A corrupted container does not always fail with a typed ReproError —
#: out-of-range decoded indices surface from NumPy as IndexError, and
#: garbage widths can trip ValueError/OverflowError inside the decoder.
_CORRUPTION_ERRORS = (ReproError, IndexError, ValueError, OverflowError)


def _normalize_verify(verify: Union[bool, str, None]) -> Union[bool, str]:
    if verify is None or verify is False:
        return False
    if verify is True:
        return "checksum"
    if verify in ("structure", "checksum", "full"):
        return verify
    raise ValidationError(
        f"verify must be one of {_VERIFY_LEVELS}, got {verify!r}"
    )


def _verify_matrix(matrix: SparseFormat, level: str) -> None:
    validate_structure(matrix, deep=(level == "full"))
    if level in ("checksum", "full") and is_sealed(matrix):
        verify_integrity(matrix)


def run_spmv(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec | str = "k20",
    *,
    verify: Union[bool, str, None] = False,
    fallback: Optional[SparseFormat] = None,
) -> SpMVResult:
    """Execute ``y = A @ x`` on the simulated device with the format's kernel.

    Parameters
    ----------
    matrix:
        Any registered sparse format with a simulated kernel.
    x:
        Dense input vector of length ``matrix.shape[1]``.
    device:
        A :class:`~repro.gpu.device.DeviceSpec` or a registry key
        (``"c2070"``, ``"gtx680"``, ``"k20"``).
    verify:
        ``False`` (default) — dispatch as before; ``"structure"`` — fast
        structural validation of the container; ``True`` / ``"checksum"``
        — structural validation plus CRC32 verification when the matrix is
        sealed; ``"full"`` — deep validation (decode and bounds-check every
        packed stream) plus checksums.
    fallback:
        A trusted matrix (typically the pristine
        :class:`~repro.formats.csr.CSRMatrix`) to serve the request with
        when ``matrix`` fails verification or its kernel raises a typed
        :class:`~repro.errors.ReproError` (or a NumPy-level corruption
        symptom: ``IndexError``, ``ValueError``, ``OverflowError``).
        Without a fallback the error propagates.

    Returns
    -------
    SpMVResult
        The product vector, the instrumentation counters, (lazily) the
        predicted timing and — on the verified path — the integrity flags
        and the per-process counter snapshot.
    """
    if isinstance(device, str):
        device = get_device(device)
    level = _normalize_verify(verify)

    if level is False and fallback is None:
        # The historical fast path: no verification, failures propagate.
        # Telemetry-free unless a tracer is active (the kernel's own span
        # still fires inside run() when one is).
        if get_tracer() is None:
            return get_kernel(matrix.format_name).run(matrix, x, device)
        with _span(
            "spmv.dispatch",
            "pipeline",
            format=matrix.format_name,
            device=device.name,
            verify="off",
        ):
            return get_kernel(matrix.format_name).run(matrix, x, device)

    with _span(
        "spmv.dispatch",
        "pipeline",
        format=matrix.format_name,
        device=device.name,
        verify=level if level is not False else "off",
        fallback=fallback.format_name if fallback is not None else None,
    ) as sp:
        COUNTERS.record_verification()
        try:
            if level is not False:
                _verify_matrix(matrix, level)
            result = get_kernel(matrix.format_name).run(matrix, x, device)
        except _CORRUPTION_ERRORS as exc:
            COUNTERS.record_detection()
            if sp is not NULL_SPAN:
                sp.event(
                    "integrity.detected",
                    error=f"{type(exc).__name__}: {exc}",
                )
            if fallback is None:
                COUNTERS.record_raised()
                raise
            result = get_kernel(fallback.format_name).run(fallback, x, device)
            COUNTERS.record_fallback()
            if sp is not NULL_SPAN:
                sp.event("integrity.fallback", format=fallback.format_name)
            result.fault_detected = True
            result.fallback_used = True
            result.integrity_error = f"{type(exc).__name__}: {exc}"
        result.integrity_counters = COUNTERS.snapshot()
        return result
