"""One-call SpMV entry point: pick the kernel from the matrix's format.

Beyond plain dispatch, :func:`run_spmv` is the integrity boundary of the
library: with ``verify`` enabled it structurally validates the container
(and checks its CRC32 header when the matrix was sealed with
:func:`repro.integrity.seal`) before running the kernel, and with a
``fallback`` matrix supplied it degrades gracefully — any typed
:class:`~repro.errors.ReproError` raised during verification or decode
reroutes the request to the fallback's reference kernel (typically CSR)
instead of failing, recording the event in the per-process integrity
counters and on the returned :class:`~repro.kernels.base.SpMVResult`.

It is also the engine selector. Two execution engines produce identical
results (same ``y`` bits, equal :class:`KernelCounters`):

* ``"reference"`` — the stepwise simulated kernels, re-decoding every
  packed stream on each call (Algorithm 1 as written).
* ``"fast"`` — a prepared :class:`~repro.kernels.plan.SpMVPlan` that
  decoded once and replays cached gather tables; plans come from the
  ``plan=`` argument or an LRU :class:`~repro.kernels.plancache.PlanCache`.

``engine="auto"`` (the default) keeps historical behavior: it uses the
fast engine only when a plan source was supplied (``plan=`` or
``plan_cache=``), so existing callers see the exact error types and span
trees they always did, while solvers and benchmarks opt in by passing a
cache. :func:`run_spmm` is the multi-RHS variant (``X`` of shape
``(n, k)``), where ``"auto"`` prefers the fast engine outright because
amortizing one decode across ``k`` vectors is the point of batching.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..errors import KernelError, ReproError, ValidationError
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..integrity.checksums import is_sealed, verify_integrity
from ..integrity.counters import COUNTERS
from ..integrity.validators import validate_structure
from ..registry import has_planner, kernel_for
from ..telemetry.tracer import NULL_SPAN, get_tracer
from ..telemetry.tracer import span as _span
from .base import SpMVResult
from .plan import SpMVPlan, check_multi_x
from .plancache import PLAN_CACHE, PlanCache

__all__ = ["run_spmv", "run_spmm"]

#: Accepted ``verify`` levels, in increasing strictness.
_VERIFY_LEVELS = (False, "structure", "checksum", "full")

#: Accepted ``engine`` selectors.
_ENGINES = ("auto", "fast", "reference")

#: Exceptions treated as container-corruption symptoms on the guarded path.
#: A corrupted container does not always fail with a typed ReproError —
#: out-of-range decoded indices surface from NumPy as IndexError, and
#: garbage widths can trip ValueError/OverflowError inside the decoder.
_CORRUPTION_ERRORS = (ReproError, IndexError, ValueError, OverflowError)


def _normalize_verify(verify: Union[bool, str, None]) -> Union[bool, str]:
    if verify is None or verify is False:
        return False
    if verify is True:
        return "checksum"
    if verify in ("structure", "checksum", "full"):
        return verify
    raise ValidationError(
        f"verify must be one of {_VERIFY_LEVELS}, got {verify!r}"
    )


def _verify_matrix(matrix: SparseFormat, level: str) -> None:
    validate_structure(matrix, deep=(level == "full"))
    if level in ("checksum", "full") and is_sealed(matrix):
        verify_integrity(matrix)


def _resolve_engine(
    matrix: SparseFormat,
    engine: str,
    plan: Optional[SpMVPlan],
    plan_cache: Optional[PlanCache],
    *,
    prefer_fast: bool,
) -> str:
    """Pick the engine for this call; validate the selector combination."""
    if engine not in _ENGINES:
        raise ValidationError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if plan is not None:
        if engine == "reference":
            raise ValidationError("plan= cannot be combined with engine='reference'")
        return "fast"
    if engine == "fast":
        if not has_planner(matrix.format_name):
            raise KernelError(
                f"engine='fast' has no plan builder for format "
                f"{matrix.format_name!r}; use engine='auto' or 'reference'"
            )
        return "fast"
    if engine == "auto" and has_planner(matrix.format_name):
        if prefer_fast or plan_cache is not None:
            return "fast"
    return "reference"


def _check_plan(plan: SpMVPlan, matrix: SparseFormat, device: DeviceSpec) -> None:
    if plan.matrix is not matrix:
        raise ValidationError(
            "plan was prepared for a different matrix object; re-run "
            "prepare() (or use a PlanCache) after replacing the container"
        )
    if plan.device.name != device.name:
        raise ValidationError(
            f"plan was prepared for device {plan.device.name!r}, "
            f"cannot execute on {device.name!r}"
        )


def _primary_spmv(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec,
    engine: str,
    plan: Optional[SpMVPlan],
    plan_cache: Optional[PlanCache],
) -> SpMVResult:
    """Run the selected engine for one vector (no integrity handling)."""
    if engine == "fast":
        if plan is None:
            cache = plan_cache if plan_cache is not None else PLAN_CACHE
            plan = cache.get_or_build(matrix, device)
        else:
            _check_plan(plan, matrix, device)
        return plan.execute(x)
    return kernel_for(matrix.format_name).run(matrix, x, device)


def _primary_spmm(
    matrix: SparseFormat,
    X: np.ndarray,
    device: DeviceSpec,
    engine: str,
    plan: Optional[SpMVPlan],
    plan_cache: Optional[PlanCache],
) -> SpMVResult:
    """Run the selected engine for a multi-RHS block (no integrity handling)."""
    if engine == "fast":
        if plan is None:
            cache = plan_cache if plan_cache is not None else PLAN_CACHE
            plan = cache.get_or_build(matrix, device)
        else:
            _check_plan(plan, matrix, device)
        return plan.execute_many(X)
    # Reference SpMM: k independent kernel runs, one per column. The
    # summed counters equal the fast engine's scaled prototype because
    # the accounting is x-independent (k identical records).
    X = check_multi_x(matrix, X)
    kernel = kernel_for(matrix.format_name)
    results = [kernel.run(matrix, X[:, j], device) for j in range(X.shape[1])]
    return SpMVResult(
        y=np.stack([r.y for r in results], axis=1),
        counters=sum(r.counters for r in results),
        device=device,
    )


def run_spmv(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec | str = "k20",
    *,
    verify: Union[bool, str, None] = False,
    fallback: Optional[SparseFormat] = None,
    engine: str = "auto",
    plan: Optional[SpMVPlan] = None,
    plan_cache: Optional[PlanCache] = None,
) -> SpMVResult:
    """Execute ``y = A @ x`` on the simulated device with the format's kernel.

    Parameters
    ----------
    matrix:
        Any registered sparse format with a simulated kernel.
    x:
        Dense input vector of length ``matrix.shape[1]``.
    device:
        A :class:`~repro.gpu.device.DeviceSpec` or a registry key
        (``"c2070"``, ``"gtx680"``, ``"k20"``).
    verify:
        ``False`` (default) — dispatch as before; ``"structure"`` — fast
        structural validation of the container; ``True`` / ``"checksum"``
        — structural validation plus CRC32 verification when the matrix is
        sealed; ``"full"`` — deep validation (decode and bounds-check every
        packed stream) plus checksums.
    fallback:
        A trusted matrix (typically the pristine
        :class:`~repro.formats.csr.CSRMatrix`) to serve the request with
        when ``matrix`` fails verification or its kernel raises a typed
        :class:`~repro.errors.ReproError` (or a NumPy-level corruption
        symptom: ``IndexError``, ``ValueError``, ``OverflowError``).
        Without a fallback the error propagates.
    engine:
        ``"auto"`` (default) — fast engine when a ``plan`` or
        ``plan_cache`` was supplied and the format has a plan builder,
        reference otherwise; ``"fast"`` — prepared-plan replay (raises
        :class:`~repro.errors.KernelError` for formats without a
        builder); ``"reference"`` — always the stepwise kernel.
    plan:
        A plan from :func:`repro.kernels.plan.prepare` to replay. Must
        have been prepared for this exact ``matrix`` object and device.
    plan_cache:
        A :class:`~repro.kernels.plancache.PlanCache` to build/reuse the
        plan from; defaults to the process-wide ``PLAN_CACHE`` when the
        fast engine is selected without an explicit plan.

    Returns
    -------
    SpMVResult
        The product vector, the instrumentation counters, (lazily) the
        predicted timing and — on the verified path — the integrity flags
        and the per-process counter snapshot.
    """
    if isinstance(device, str):
        device = get_device(device)
    level = _normalize_verify(verify)
    engine = _resolve_engine(matrix, engine, plan, plan_cache, prefer_fast=False)

    if level is False and fallback is None:
        # The historical fast path: no verification, failures propagate.
        # Telemetry-free unless a tracer is active (the kernel's own span
        # still fires inside run() when one is).
        if get_tracer() is None:
            return _primary_spmv(matrix, x, device, engine, plan, plan_cache)
        with _span(
            "spmv.dispatch",
            "pipeline",
            format=matrix.format_name,
            device=device.name,
            verify="off",
            engine=engine,
        ):
            return _primary_spmv(matrix, x, device, engine, plan, plan_cache)

    with _span(
        "spmv.dispatch",
        "pipeline",
        format=matrix.format_name,
        device=device.name,
        verify=level if level is not False else "off",
        fallback=fallback.format_name if fallback is not None else None,
        engine=engine,
    ) as sp:
        COUNTERS.record_verification()
        try:
            if level is not False:
                _verify_matrix(matrix, level)
            # Plan building happens inside the guarded region: a corrupted
            # stream fails the vectorized decode with the same typed
            # errors the stepwise decoder raises, and degrades identically.
            result = _primary_spmv(matrix, x, device, engine, plan, plan_cache)
        except _CORRUPTION_ERRORS as exc:
            COUNTERS.record_detection()
            if sp is not NULL_SPAN:
                sp.event(
                    "integrity.detected",
                    error=f"{type(exc).__name__}: {exc}",
                )
            if fallback is None:
                COUNTERS.record_raised()
                raise
            result = kernel_for(fallback.format_name).run(fallback, x, device)
            COUNTERS.record_fallback()
            if sp is not NULL_SPAN:
                sp.event("integrity.fallback", format=fallback.format_name)
            result.fault_detected = True
            result.fallback_used = True
            result.integrity_error = f"{type(exc).__name__}: {exc}"
        result.integrity_counters = COUNTERS.snapshot()
        return result


def run_spmm(
    matrix: SparseFormat,
    X: np.ndarray,
    device: DeviceSpec | str = "k20",
    *,
    verify: Union[bool, str, None] = False,
    fallback: Optional[SparseFormat] = None,
    engine: str = "auto",
    plan: Optional[SpMVPlan] = None,
    plan_cache: Optional[PlanCache] = None,
) -> SpMVResult:
    """Execute ``Y = A @ X`` for a multi-RHS block ``X`` of shape ``(n, k)``.

    Column ``j`` of the result is bit-identical to ``run_spmv(matrix,
    X[:, j], ...)``, and the counters equal the sum of the ``k``
    single-vector records. ``engine="auto"`` prefers the fast engine for
    every plannable format (one decode amortized over ``k`` vectors);
    other parameters behave exactly as in :func:`run_spmv`.
    """
    if isinstance(device, str):
        device = get_device(device)
    level = _normalize_verify(verify)
    engine = _resolve_engine(matrix, engine, plan, plan_cache, prefer_fast=True)

    if level is False and fallback is None:
        if get_tracer() is None:
            return _primary_spmm(matrix, X, device, engine, plan, plan_cache)
        with _span(
            "spmm.dispatch",
            "pipeline",
            format=matrix.format_name,
            device=device.name,
            verify="off",
            engine=engine,
        ):
            return _primary_spmm(matrix, X, device, engine, plan, plan_cache)

    with _span(
        "spmm.dispatch",
        "pipeline",
        format=matrix.format_name,
        device=device.name,
        verify=level if level is not False else "off",
        fallback=fallback.format_name if fallback is not None else None,
        engine=engine,
    ) as sp:
        COUNTERS.record_verification()
        try:
            if level is not False:
                _verify_matrix(matrix, level)
            result = _primary_spmm(matrix, X, device, engine, plan, plan_cache)
        except _CORRUPTION_ERRORS as exc:
            COUNTERS.record_detection()
            if sp is not NULL_SPAN:
                sp.event(
                    "integrity.detected",
                    error=f"{type(exc).__name__}: {exc}",
                )
            if fallback is None:
                COUNTERS.record_raised()
                raise
            result = _primary_spmm(
                fallback, X, device, "reference", None, None
            )
            COUNTERS.record_fallback()
            if sp is not NULL_SPAN:
                sp.event("integrity.fallback", format=fallback.format_name)
            result.fault_detected = True
            result.fallback_used = True
            result.integrity_error = f"{type(exc).__name__}: {exc}"
        result.integrity_counters = COUNTERS.snapshot()
        return result
