"""One-call SpMV entry point: pick the kernel from the matrix's format.

Beyond plain dispatch, :func:`run_spmv` is the integrity boundary of the
library: with verification enabled it structurally validates the
container (and checks its CRC32 header when the matrix was sealed with
:func:`repro.integrity.seal`) before running the kernel, and with a
fallback matrix supplied it degrades gracefully — any typed
:class:`~repro.errors.ReproError` raised during verification or decode
reroutes the request to the fallback's reference kernel (typically CSR)
instead of failing, recording the event in the per-process integrity
counters and on the returned :class:`~repro.kernels.base.SpMVResult`.

Execution is configured by one object — an
:class:`~repro.exec.policy.ExecutionPolicy`::

    run_spmv(matrix, x, "k20", policy=ExecutionPolicy(verify="checksum",
                                                      devices=4))

The policy selects between two single-device engines that produce
identical results (same ``y`` bits, equal :class:`KernelCounters`):

* ``"reference"`` — the stepwise simulated kernels, re-decoding every
  packed stream on each call (Algorithm 1 as written);
* ``"fast"`` — a prepared :class:`~repro.kernels.plan.SpMVPlan` that
  decoded once and replays cached gather tables; plans come from
  ``policy.plan`` or an LRU :class:`~repro.kernels.plancache.PlanCache`.

``engine="auto"`` keeps historical behavior: the fast engine is used
only when a plan source was supplied, so existing callers see the exact
error types and span trees they always did. :func:`run_spmm` (multi-RHS,
``X`` of shape ``(n, k)``) prefers the fast engine outright because
amortizing one decode across ``k`` vectors is the point of batching.

With ``policy.devices > 1`` (or a pre-built
:class:`~repro.exec.partition.ShardedMatrix`) the primary execution
routes through the sharded engine (:mod:`repro.exec.engine`) *inside*
the guarded region, so verification and graceful degradation apply to
multi-device runs unchanged.

The pre-policy loose keywords (``verify=``, ``fallback=``, ``engine=``,
``plan=``, ``plan_cache=``) went through one deprecation release and are
now gone; ``policy=`` is the only spelling.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import KernelError, ReproError, ValidationError
from ..exec.policy import ExecutionPolicy
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..integrity.checksums import is_sealed, verify_integrity
from ..integrity.counters import COUNTERS
from ..integrity.validators import validate_structure
from ..registry import has_planner, kernel_for
from ..telemetry.tracer import NULL_SPAN, get_tracer
from ..telemetry.tracer import span as _span
from .base import SpMVResult
from .plan import SpMVPlan, check_multi_x
from .plancache import PLAN_CACHE

__all__ = ["run_spmv", "run_spmm"]

#: Exceptions treated as container-corruption symptoms on the guarded path.
#: A corrupted container does not always fail with a typed ReproError —
#: out-of-range decoded indices surface from NumPy as IndexError, and
#: garbage widths can trip ValueError/OverflowError inside the decoder.
_CORRUPTION_ERRORS = (ReproError, IndexError, ValueError, OverflowError)


def _verify_matrix(matrix: SparseFormat, level: str) -> None:
    validate_structure(matrix, deep=(level == "full"))
    if level in ("checksum", "full") and is_sealed(matrix):
        verify_integrity(matrix)


def _is_sharded_run(matrix: SparseFormat, policy: ExecutionPolicy) -> bool:
    """Whether this call routes through the multi-device engine."""
    return policy.sharded or matrix.format_name == "sharded"


def _resolve_engine(
    matrix: SparseFormat,
    policy: ExecutionPolicy,
    *,
    prefer_fast: bool,
) -> str:
    """Pick the single-device engine; validate the selector combination.

    Sharded runs keep the policy's selector verbatim — each shard
    re-resolves it against the *inner* format inside the engine.
    """
    if _is_sharded_run(matrix, policy):
        return policy.engine
    engine, plan, plan_cache = policy.engine, policy.plan, policy.plan_cache
    if plan is not None:
        if engine == "reference":
            raise ValidationError("plan= cannot be combined with engine='reference'")
        return "fast"
    if engine == "fast":
        if not has_planner(matrix.format_name):
            raise KernelError(
                f"engine='fast' has no plan builder for format "
                f"{matrix.format_name!r}; use engine='auto' or 'reference'"
            )
        return "fast"
    if engine == "auto" and has_planner(matrix.format_name):
        if prefer_fast or plan_cache is not None:
            return "fast"
    return "reference"


def _check_plan(plan: SpMVPlan, matrix: SparseFormat, device: DeviceSpec) -> None:
    if plan.matrix is not matrix:
        raise ValidationError(
            "plan was prepared for a different matrix object; re-run "
            "prepare() (or use a PlanCache) after replacing the container"
        )
    if plan.device.name != device.name:
        raise ValidationError(
            f"plan was prepared for device {plan.device.name!r}, "
            f"cannot execute on {device.name!r}"
        )


def _primary_spmv(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec,
    engine: str,
    policy: ExecutionPolicy,
) -> SpMVResult:
    """Run the selected engine for one vector (no integrity handling)."""
    if _is_sharded_run(matrix, policy):
        from ..exec.engine import execute_sharded  # lazy: engine imports us

        return execute_sharded(matrix, x, device, policy)
    if engine == "fast":
        plan = policy.plan
        if plan is None:
            cache = policy.plan_cache if policy.plan_cache is not None else PLAN_CACHE
            plan = cache.get_or_build(
                matrix, device, backend=policy.compute_backend
            )
        else:
            _check_plan(plan, matrix, device)
        return plan.execute(x)
    return kernel_for(matrix.format_name).run(matrix, x, device)


def _primary_spmm(
    matrix: SparseFormat,
    X: np.ndarray,
    device: DeviceSpec,
    engine: str,
    policy: ExecutionPolicy,
) -> SpMVResult:
    """Run the selected engine for a multi-RHS block (no integrity handling)."""
    if _is_sharded_run(matrix, policy):
        from ..exec.engine import execute_sharded  # lazy: engine imports us

        X = check_multi_x(matrix, X)
        results = [
            execute_sharded(matrix, X[:, j], device, policy)
            for j in range(X.shape[1])
        ]
        return SpMVResult(
            y=np.stack([r.y for r in results], axis=1),
            counters=sum(r.counters for r in results),
            device=device,
        )
    if engine == "fast":
        plan = policy.plan
        if plan is None:
            cache = policy.plan_cache if policy.plan_cache is not None else PLAN_CACHE
            plan = cache.get_or_build(
                matrix, device, backend=policy.compute_backend
            )
        else:
            _check_plan(plan, matrix, device)
        return plan.execute_many(X)
    # Reference SpMM: k independent kernel runs, one per column. The
    # summed counters equal the fast engine's scaled prototype because
    # the accounting is x-independent (k identical records).
    X = check_multi_x(matrix, X)
    kernel = kernel_for(matrix.format_name)
    results = [kernel.run(matrix, X[:, j], device) for j in range(X.shape[1])]
    return SpMVResult(
        y=np.stack([r.y for r in results], axis=1),
        counters=sum(r.counters for r in results),
        device=device,
    )


def run_spmv(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec | str = "k20",
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> SpMVResult:
    """Execute ``y = A @ x`` on the simulated device with the format's kernel.

    Parameters
    ----------
    matrix:
        Any registered sparse format with a simulated kernel, including a
        :class:`~repro.exec.partition.ShardedMatrix` (which always runs
        through the multi-device engine).
    x:
        Dense input vector of length ``matrix.shape[1]``.
    device:
        A :class:`~repro.gpu.device.DeviceSpec` or a registry key
        (``"c2070"``, ``"gtx680"``, ``"k20"``). With ``policy.devices >
        1`` every simulated device uses this spec.
    policy:
        The :class:`~repro.exec.policy.ExecutionPolicy` configuring
        verification, fallback, engine selection, plan caching and
        multi-device sharding. ``None`` means the default policy.

    Returns
    -------
    SpMVResult
        The product vector, the instrumentation counters, (lazily) the
        predicted timing and — on the verified path — the integrity flags
        and the per-process counter snapshot. Multi-device runs return a
        :class:`~repro.exec.engine.ShardedSpMVResult` carrying per-shard
        results and the communication report.
    """
    pol = policy if policy is not None else ExecutionPolicy()
    if isinstance(device, str):
        device = get_device(device)
    level = pol.verify
    eng = _resolve_engine(matrix, pol, prefer_fast=False)

    if level is False and pol.fallback is None:
        # The historical fast path: no verification, failures propagate.
        # Telemetry-free unless a tracer is active (the kernel's own span
        # still fires inside run() when one is).
        if get_tracer() is None:
            return _primary_spmv(matrix, x, device, eng, pol)
        with _span(
            "spmv.dispatch",
            "pipeline",
            format=matrix.format_name,
            device=device.name,
            verify="off",
            engine=eng,
            devices=pol.devices,
        ):
            return _primary_spmv(matrix, x, device, eng, pol)

    with _span(
        "spmv.dispatch",
        "pipeline",
        format=matrix.format_name,
        device=device.name,
        verify=level if level is not False else "off",
        fallback=pol.fallback.format_name if pol.fallback is not None else None,
        engine=eng,
        devices=pol.devices,
    ) as sp:
        COUNTERS.record_verification()
        try:
            if level is not False:
                _verify_matrix(matrix, level)
            # Plan building (and shard re-encoding on the multi-device
            # path) happens inside the guarded region: a corrupted
            # stream fails the vectorized decode with the same typed
            # errors the stepwise decoder raises, and degrades identically.
            result = _primary_spmv(matrix, x, device, eng, pol)
        except _CORRUPTION_ERRORS as exc:
            COUNTERS.record_detection()
            if sp is not NULL_SPAN:
                sp.event(
                    "integrity.detected",
                    error=f"{type(exc).__name__}: {exc}",
                )
            if pol.fallback is None:
                COUNTERS.record_raised()
                raise
            result = kernel_for(pol.fallback.format_name).run(
                pol.fallback, x, device
            )
            COUNTERS.record_fallback()
            if sp is not NULL_SPAN:
                sp.event("integrity.fallback", format=pol.fallback.format_name)
            result.fault_detected = True
            result.fallback_used = True
            result.integrity_error = f"{type(exc).__name__}: {exc}"
        result.integrity_counters = COUNTERS.snapshot()
        return result


def run_spmm(
    matrix: SparseFormat,
    X: np.ndarray,
    device: DeviceSpec | str = "k20",
    *,
    policy: Optional[ExecutionPolicy] = None,
) -> SpMVResult:
    """Execute ``Y = A @ X`` for a multi-RHS block ``X`` of shape ``(n, k)``.

    Column ``j`` of the result is bit-identical to ``run_spmv(matrix,
    X[:, j], ...)``, and the counters equal the sum of the ``k``
    single-vector records. ``engine="auto"`` prefers the fast engine for
    every plannable format (one decode amortized over ``k`` vectors);
    ``policy`` behaves exactly as in :func:`run_spmv`.
    """
    pol = policy if policy is not None else ExecutionPolicy()
    if isinstance(device, str):
        device = get_device(device)
    level = pol.verify
    eng = _resolve_engine(matrix, pol, prefer_fast=True)

    if level is False and pol.fallback is None:
        if get_tracer() is None:
            return _primary_spmm(matrix, X, device, eng, pol)
        with _span(
            "spmm.dispatch",
            "pipeline",
            format=matrix.format_name,
            device=device.name,
            verify="off",
            engine=eng,
            devices=pol.devices,
        ):
            return _primary_spmm(matrix, X, device, eng, pol)

    with _span(
        "spmm.dispatch",
        "pipeline",
        format=matrix.format_name,
        device=device.name,
        verify=level if level is not False else "off",
        fallback=pol.fallback.format_name if pol.fallback is not None else None,
        engine=eng,
        devices=pol.devices,
    ) as sp:
        COUNTERS.record_verification()
        try:
            if level is not False:
                _verify_matrix(matrix, level)
            result = _primary_spmm(matrix, X, device, eng, pol)
        except _CORRUPTION_ERRORS as exc:
            COUNTERS.record_detection()
            if sp is not NULL_SPAN:
                sp.event(
                    "integrity.detected",
                    error=f"{type(exc).__name__}: {exc}",
                )
            if pol.fallback is None:
                COUNTERS.record_raised()
                raise
            result = _primary_spmm(
                pol.fallback, X, device, "reference", ExecutionPolicy()
            )
            COUNTERS.record_fallback()
            if sp is not NULL_SPAN:
                sp.event("integrity.fallback", format=pol.fallback.format_name)
            result.fault_detected = True
            result.fallback_used = True
            result.integrity_error = f"{type(exc).__name__}: {exc}"
        result.integrity_counters = COUNTERS.snapshot()
        return result
