"""One-call SpMV entry point: pick the kernel from the matrix's format."""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from .base import SpMVResult, get_kernel

__all__ = ["run_spmv"]


def run_spmv(
    matrix: SparseFormat,
    x: np.ndarray,
    device: DeviceSpec | str = "k20",
) -> SpMVResult:
    """Execute ``y = A @ x`` on the simulated device with the format's kernel.

    Parameters
    ----------
    matrix:
        Any registered sparse format with a simulated kernel.
    x:
        Dense input vector of length ``matrix.shape[1]``.
    device:
        A :class:`~repro.gpu.device.DeviceSpec` or a registry key
        (``"c2070"``, ``"gtx680"``, ``"k20"``).

    Returns
    -------
    SpMVResult
        The product vector, the instrumentation counters and (lazily) the
        predicted timing.
    """
    if isinstance(device, str):
        device = get_device(device)
    kernel = get_kernel(matrix.format_name)
    return kernel.run(matrix, x, device)
