"""Simulated GPU SpMV kernels.

Each kernel executes the product *functionally* (bit-exact decode of real
packed streams, vectorized over the threads of a block — legal because the
BRO design gives all threads of a slice identical control flow) and emits a
:class:`repro.gpu.counters.KernelCounters` record of the DRAM transactions,
flops and decode instructions a CUDA profiler would report. The timing
model (:mod:`repro.gpu.timing`) turns those counters into predicted time.
"""

from .backends import (
    COMPUTE_BACKENDS,
    JIT_FORMATS,
    compiled_formats,
    jit_available,
    resolve_backend,
)
from .base import SpMVKernel, SpMVResult, available_kernels, get_kernel
from .dispatch import run_spmm, run_spmv
from .plan import SpMVPlan, has_planner, plannable_formats, prepare
from .plancache import PLAN_CACHE, PlanCache
from .spmv_bellpack import BELLPACKKernel
from .spmv_cmrs import CMRSKernel
from .spmv_coo import COOKernel
from .spmv_csr import CSRVectorKernel
from .spmv_ellpack import ELLPACKKernel
from .spmv_ellpack_r import ELLPACKRKernel
from .spmv_hyb import HYBKernel
from .spmv_sell_c_sigma import SELLCSigmaKernel
from .spmv_sliced_ell import SlicedELLKernel
from .spmv_bro_coo import BROCOOKernel
from .spmv_bro_ell import BROELLKernel
from .spmv_bro_ell_mt import MultiRowBROELLKernel
from .spmv_bro_ell_vc import BROELLVCKernel
from .spmv_bro_hyb import BROHYBKernel
from .spmv_bro_sell import BROSELLKernel

__all__ = [
    "SpMVKernel",
    "SpMVResult",
    "available_kernels",
    "get_kernel",
    "run_spmv",
    "run_spmm",
    "SpMVPlan",
    "prepare",
    "has_planner",
    "plannable_formats",
    "PlanCache",
    "PLAN_CACHE",
    "COMPUTE_BACKENDS",
    "JIT_FORMATS",
    "compiled_formats",
    "jit_available",
    "resolve_backend",
    "BELLPACKKernel",
    "CMRSKernel",
    "COOKernel",
    "CSRVectorKernel",
    "ELLPACKKernel",
    "ELLPACKRKernel",
    "SELLCSigmaKernel",
    "SlicedELLKernel",
    "HYBKernel",
    "BROELLKernel",
    "BROELLVCKernel",
    "MultiRowBROELLKernel",
    "BROCOOKernel",
    "BROHYBKernel",
    "BROSELLKernel",
]
