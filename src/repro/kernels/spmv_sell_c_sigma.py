"""Simulated SELL-C-σ SpMV kernel (Kreutzer et al.).

One thread block per chunk (C threads); every thread runs its chunk's
``num_col`` iterations over fully coalesced index/value columns, then
scatters its row sum through the ``row_ids`` permutation table. The sort
shows up in the counters as smaller per-chunk widths — fewer padded
iterations and fewer index/value transactions than Sliced ELLPACK at the
same chunk height — at the cost of streaming the 4-byte permutation
entry per row and the permuted (scattered) ``y`` store.

:func:`sell_counters` is shared with the prepared-plan planner so replay
counters are equal by construction.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.sell_c_sigma import SELLCSigmaMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["SELLCSigmaKernel", "sell_counters"]


def sell_counters(matrix: SELLCSigmaMatrix, device: DeviceSpec) -> KernelCounters:
    """Traffic/flop accounting of the SELL-C-σ kernel (shared with plans)."""
    m, _ = matrix.shape
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)

    idx_tx = val_tx = 0
    x_bytes = 0
    issued = 0
    for _r0, _r1, col_block, _val_block in matrix.iter_chunks():
        h_i, l_i = col_block.shape
        if l_i == 0:
            continue
        idx_tx += l_i * contiguous_transactions(h_i, 4, ws, tb)
        val_tx += l_i * contiguous_transactions(h_i, 8, ws, tb)
        # Padding slots gather x[0] inside the unmasked loop, so every
        # lane of the block hits the texture cache.
        x_bytes += tex.block_x_bytes(
            col_block, np.ones(col_block.shape, dtype=bool)
        )
        issued += 2 * h_i * l_i

    launch = LaunchConfig(matrix.c, max(1, matrix.num_chunks))
    return KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        # The scatter through row_ids commits one 8 B word per row; the
        # permutation keeps chunk-local stores contiguous in permuted
        # order, so the transaction count matches a straight store.
        y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
        # row_ids is streamed once (int32 per row), plus the int32
        # num_col and chunk block pointers.
        aux_bytes=contiguous_transactions(m, 4, ws, tb) * tb
        + 4 * (2 * matrix.num_chunks + 1),
        useful_flops=2 * matrix.nnz,
        issued_flops=issued,
        launches=1,
        threads=launch.total_threads,
    )


@register_kernel
class SELLCSigmaKernel(SpMVKernel):
    """SELL-C-σ kernel: one block per sorted chunk, scattered ``y``."""

    format_name = "sell_c_sigma"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, SELLCSigmaMatrix)
        assert isinstance(matrix, SELLCSigmaMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        y = np.zeros(m, dtype=VALUE_DTYPE)
        for r0, r1, col_block, val_block in matrix.iter_chunks():
            if col_block.shape[1] == 0:
                continue
            # Unmasked column-sequential accumulation (padding multiplies
            # a stored 0.0 by x[0]), then the chunk's partial sums land on
            # their original rows through the permutation — the loop order
            # the prepared plan replays bit-for-bit.
            prod = val_block * x[col_block]
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[1]):
                acc += prod[:, c]
            y[matrix.row_ids[r0:r1]] = acc

        return SpMVResult(
            y=y, counters=sell_counters(matrix, device), device=device
        )
