"""Simulated BRO-SELL SpMV kernel — Algorithm 1 on SELL-C-σ chunks.

Identical decode loop to :class:`~repro.kernels.spmv_bro_ell.BROELLKernel`
(one block per chunk, shared scalar decoder state, one width lookup per
column, masked multiply-add), with two SELL-specific additions: each
thread finally scatters its row sum through the ``row_ids`` permutation
table, and the 4-byte permutation entry per row joins the auxiliary
traffic. The sort pays for those bytes by shrinking the packed stream —
tighter chunks mean fewer padded zeros to encode and fewer symbol loads.
"""

from __future__ import annotations

import numpy as np

from ..bitstream.reader import SliceDecoder
from ..core.bro_sell import BROSELLMatrix
from ..errors import DecompressionError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DECODE_OPS_PER_ITER, DECODE_OPS_PER_LOAD, DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["BROSELLKernel"]


@register_kernel
class BROSELLKernel(SpMVKernel):
    """Algorithm-1 decompress-and-multiply over sorted SELL chunks."""

    format_name = "bro_sell"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, BROSELLMatrix)
        assert isinstance(matrix, BROSELLMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        launch = LaunchConfig(matrix.c, max(1, matrix.num_chunks))
        tb = device.transaction_bytes
        ws = device.warp_size
        sym_bytes = matrix.sym_len // 8
        tex = TextureCacheModel(device)

        y = np.zeros(m, dtype=VALUE_DTYPE)
        idx_tx = 0
        val_tx = 0
        x_bytes = 0
        decode_ops = 0
        for r0, r1, bit_alloc, stream_view, val_block in matrix.iter_chunks():
            h_i, l_i = val_block.shape
            if l_i == 0:
                continue
            dec = SliceDecoder(stream_view, h=h_i, sym_len=matrix.sym_len)
            col_idx = np.zeros(h_i, dtype=np.int64)
            acc = np.zeros(h_i, dtype=VALUE_DTYPE)
            cols_hist = np.zeros((h_i, l_i), dtype=np.int64)
            valid_hist = np.zeros((h_i, l_i), dtype=bool)
            warps = ceil_div(h_i, ws)
            for c in range(l_i):
                b = int(bit_alloc[c])
                decoded = dec.decode(b)
                valid = decoded != 0
                col_idx = col_idx + decoded
                gather = x[np.where(valid, col_idx - 1, 0)]
                acc += np.where(valid, val_block[:, c] * gather, 0.0)
                cols_hist[:, c] = col_idx - 1
                valid_hist[:, c] = valid
            y[matrix.row_ids[r0:r1]] = acc

            idx_tx += dec.symbol_loads * contiguous_transactions(
                h_i, sym_bytes, ws, tb
            )
            val_per_iter = ceil_div(ws * 8, tb)
            pad_rows = ceil_div(h_i, ws) * ws - h_i
            warp_valid = np.any(
                np.vstack([valid_hist, np.zeros((pad_rows, l_i), dtype=bool)])
                .reshape(warps, ws, l_i),
                axis=1,
            )
            val_tx += int(warp_valid.sum()) * val_per_iter
            x_bytes += tex.block_x_bytes(cols_hist, valid_hist)
            decode_ops += DECODE_OPS_PER_ITER * h_i * l_i
            decode_ops += DECODE_OPS_PER_LOAD * dec.symbol_loads * h_i
            if dec.remaining_symbols:
                raise DecompressionError("stream not fully consumed")

        counters = KernelCounters(
            index_bytes=idx_tx * tb,
            value_bytes=val_tx * tb,
            x_bytes=x_bytes,
            y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
            # bit_alloc table (1 B per width) + int32 num_col per chunk,
            # plus the streamed int32 row_ids permutation table.
            aux_bytes=int(matrix.num_col.sum())
            + 4 * matrix.num_chunks
            + contiguous_transactions(m, 4, ws, tb) * tb,
            useful_flops=2 * matrix.nnz,
            issued_flops=2 * matrix.nnz,
            decode_ops=decode_ops,
            launches=1,
            threads=launch.total_threads,
        )
        return SpMVResult(y=y, counters=counters, device=device)
