"""Pluggable executor backends for prepared-plan replay.

The prepared-plan engine (:mod:`repro.kernels.plan`) replays cached
gather/validity/value tables with vectorized NumPy — fast, but every hot
inner loop (gather + mask + segmented reduce) still round-trips through
interpreter-dispatched array ops. This module makes the replay loop
itself pluggable:

* ``"numpy"`` — the existing interpreted replay. Always available; the
  reference point every other backend must match bit-for-bit.
* ``"jit"`` — the same loops compiled with Numba when it is importable.
  Numba is **never** a hard dependency: without it the functions below
  stay plain Python (still bit-identical, used by the test suite to pin
  the loop order) and :func:`resolve_backend` falls back to ``"numpy"``.

Bit-identity contract
---------------------
Every kernel here performs the *same floating-point operations in the
same order* as the NumPy replay it replaces: sequential per-column
accumulation from a zero accumulator for the ELL family, the
element-ordered ``np.add.at`` scatter for the COO family, zero-initialised
sequential row sums for CSR and column-sequential accumulation for
ELLPACK. No ``fastmath`` is ever enabled — reassociation would break the
contract. ``tests/kernels/test_backends.py`` enforces equality of ``y``
bits and :class:`KernelCounters` across backends.

Selection
---------
Callers request a backend through
:attr:`repro.exec.policy.ExecutionPolicy.compute_backend`
(``"auto"``/``"numpy"``/``"jit"``); :func:`resolve_backend` maps the
request to a concrete backend per format. An explicit ``"jit"`` request
that cannot be honoured (Numba missing, or the format has no compiled
loops) degrades to ``"numpy"`` and emits an ``exec.backend_fallback``
counter instead of raising.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import registry as _registry
from ..errors import ValidationError
from ..telemetry import metrics as _metrics

__all__ = [
    "COMPUTE_BACKENDS",
    "EXECUTOR_BACKENDS",
    "JIT_FORMATS",
    "jit_available",
    "numba_version",
    "resolve_backend",
    "supports_jit",
    "compiled_formats",
    "csr_column_schedule",
    "csr_spmv_columns",
]

#: Backends a policy may request.
COMPUTE_BACKENDS = ("auto", "numpy", "jit")

#: Concrete backends a plan can execute with (what "auto" resolves to).
EXECUTOR_BACKENDS = ("numpy", "jit")

#: Formats whose prepared-plan replay has compiled inner loops. The
#: composite formats (bro_hyb, bro_ell_mt, hyb) compile through their
#: part plans; everything else gets a fused loop below. The ELL-style
#: families share loops: sliced_ellpack and sell_c_sigma chunks replay
#: through ``ellpack_spmv`` (unmasked), ellpack_r and bro_sell through
#: ``ell_slice_spmv`` (masked), cmrs and coo through ``coo_scatter_spmv``.
JIT_FORMATS = frozenset(
    {"bro_ell", "bro_ell_mt", "bro_ell_vc", "bro_coo", "bro_hyb", "bro_sell",
     "csr", "ellpack", "ellpack_r", "sliced_ellpack", "sell_c_sigma",
     "coo", "cmrs", "hyb", "bellpack"}
)

# ----------------------------------------------------------------------
# Numba availability (optional import, probed once)
# ----------------------------------------------------------------------
_NUMBA: Optional[object] = None
_NUMBA_PROBED = False


def _load_numba():
    global _NUMBA, _NUMBA_PROBED
    if not _NUMBA_PROBED:
        _NUMBA_PROBED = True
        try:
            import numba  # type: ignore[import-not-found]

            _NUMBA = numba
        except Exception:  # pragma: no cover - import-time environment
            _NUMBA = None
    return _NUMBA


def jit_available() -> bool:
    """Whether the Numba-compiled executor backend can be used."""
    return _load_numba() is not None


def numba_version() -> Optional[str]:
    """The importable Numba's version string, or ``None``."""
    numba = _load_numba()
    return getattr(numba, "__version__", None) if numba is not None else None


def supports_jit(format_name: str) -> bool:
    """Whether the format's plan replay has compiled inner loops."""
    return format_name in JIT_FORMATS


def compiled_formats() -> Tuple[str, ...]:
    """Format names with a compiled replay path, sorted."""
    return tuple(sorted(JIT_FORMATS))


def resolve_backend(
    requested: str, format_name: Optional[str] = None
) -> str:
    """Map a policy's ``compute_backend`` request to a concrete backend.

    ``"auto"`` resolves to ``"jit"`` when Numba is importable and the
    format has compiled loops, else ``"numpy"``. An explicit ``"jit"``
    that cannot be honoured falls back to ``"numpy"`` and records an
    ``exec.backend_fallback`` counter — never an exception, so a policy
    written for a Numba-equipped host runs unchanged everywhere.
    """
    if requested not in COMPUTE_BACKENDS:
        raise ValidationError(
            f"compute_backend must be one of {COMPUTE_BACKENDS}, "
            f"got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    format_ok = format_name is None or supports_jit(format_name)
    if jit_available() and format_ok:
        return "jit"
    if requested == "jit":
        reason = "numba-missing" if not jit_available() else "format-unsupported"
        _metrics.record_backend_fallback(format_name or "*", reason)
    return "numpy"


# ----------------------------------------------------------------------
# Inner-loop kernels. Plain Python definitions first — these pin the
# floating-point operation order and are what the local test suite runs —
# then compiled in place with numba.njit when it is importable.
# ----------------------------------------------------------------------
def _ell_slice_spmv(vals_t, gather_t, valid_t, x, out):
    # Matches BROELLPlan._replay_numpy: per row, a zero accumulator takes
    # one masked product per column in column order (invalid lanes add a
    # literal +0.0, exactly like the np.where path).
    L, H = vals_t.shape
    for r in range(H):
        acc = 0.0
        for c in range(L):
            if valid_t[c, r]:
                acc += vals_t[c, r] * x[gather_t[c, r]]
            else:
                acc += 0.0
        out[r] = acc


def _ell_slice_spmm(vals_t, gather_t, valid_t, X, out):
    L, H = vals_t.shape
    K = X.shape[1]
    for r in range(H):
        for j in range(K):
            acc = 0.0
            for c in range(L):
                if valid_t[c, r]:
                    acc += vals_t[c, r] * X[gather_t[c, r], j]
                else:
                    acc += 0.0
            out[r, j] = acc


def _coo_scatter_spmv(rows, cols, vals, x, y):
    # Matches np.add.at(y, rows, vals * x[cols]): element-ordered scatter.
    for i in range(rows.shape[0]):
        y[rows[i]] += vals[i] * x[cols[i]]


def _coo_scatter_spmm(rows, cols, vals, X, Y):
    K = X.shape[1]
    for i in range(rows.shape[0]):
        r = rows[i]
        v = vals[i]
        c = cols[i]
        for j in range(K):
            Y[r, j] += v * X[c, j]


def _csr_spmv(indptr, indices, vals, x, y):
    # Matches csr_spmv_columns: zero-initialised sequential row sums.
    m = indptr.shape[0] - 1
    for r in range(m):
        acc = 0.0
        for p in range(indptr[r], indptr[r + 1]):
            acc += vals[p] * x[indices[p]]
        y[r] = acc


def _csr_spmm(indptr, indices, vals, X, Y):
    m = indptr.shape[0] - 1
    K = X.shape[1]
    for r in range(m):
        for j in range(K):
            acc = 0.0
            for p in range(indptr[r], indptr[r + 1]):
                acc += vals[p] * X[indices[p], j]
            Y[r, j] = acc


def _ellpack_spmv(col_idx_t, vals_t, x, y):
    # Matches the CUSP loop: every row accumulates its k column slots in
    # order, padded slots included (0.0 * x[0], like the real kernel).
    k, m = vals_t.shape
    for r in range(m):
        acc = 0.0
        for c in range(k):
            acc += vals_t[c, r] * x[col_idx_t[c, r]]
        y[r] = acc


def _ellpack_spmm(col_idx_t, vals_t, X, Y):
    k, m = vals_t.shape
    K = X.shape[1]
    for r in range(m):
        for j in range(K):
            acc = 0.0
            for c in range(k):
                acc += vals_t[c, r] * X[col_idx_t[c, r], j]
            Y[r, j] = acc


def _bellpack_spmv(bcol, bvals, x_pad, y_blocks):
    # Matches BELLPACKMatrix.spmv: each thread (block row b, local row rr)
    # walks its K block slots left to right, c entry columns each, from a
    # zero accumulator. Padded slots multiply stored 0.0 by x_pad[0..c-1].
    mb, K, r, c = bvals.shape
    for b in range(mb):
        for rr in range(r):
            acc = 0.0
            for k in range(K):
                base = bcol[b, k] * c
                for cc in range(c):
                    acc += bvals[b, k, rr, cc] * x_pad[base + cc]
            y_blocks[b, rr] = acc


def _bellpack_spmm(bcol, bvals, X_pad, Y_blocks):
    mb, K, r, c = bvals.shape
    n_rhs = X_pad.shape[1]
    for b in range(mb):
        for rr in range(r):
            for j in range(n_rhs):
                acc = 0.0
                for k in range(K):
                    base = bcol[b, k] * c
                    for cc in range(c):
                        acc += bvals[b, k, rr, cc] * X_pad[base + cc, j]
                Y_blocks[b, rr, j] = acc


#: The interpreted (pure-Python) kernel set, kept un-compiled for the
#: bit-identity tests — Numba or not, these define the loop order.
PY_KERNELS: Dict[str, Callable] = {
    "ell_slice_spmv": _ell_slice_spmv,
    "ell_slice_spmm": _ell_slice_spmm,
    "coo_scatter_spmv": _coo_scatter_spmv,
    "coo_scatter_spmm": _coo_scatter_spmm,
    "csr_spmv": _csr_spmv,
    "csr_spmm": _csr_spmm,
    "ellpack_spmv": _ellpack_spmv,
    "ellpack_spmm": _ellpack_spmm,
    "bellpack_spmv": _bellpack_spmv,
    "bellpack_spmm": _bellpack_spmm,
}


def _compile(fn: Callable) -> Callable:
    """``numba.njit`` without fastmath (bit-identity), or the plain fn."""
    numba = _load_numba()
    if numba is None:
        return fn
    return numba.njit(cache=False, fastmath=False)(fn)


ell_slice_spmv = _compile(_ell_slice_spmv)
ell_slice_spmm = _compile(_ell_slice_spmm)
coo_scatter_spmv = _compile(_coo_scatter_spmv)
coo_scatter_spmm = _compile(_coo_scatter_spmm)
csr_spmv = _compile(_csr_spmv)
csr_spmm = _compile(_csr_spmm)
ellpack_spmv = _compile(_ellpack_spmv)
ellpack_spmm = _compile(_ellpack_spmm)
bellpack_spmv = _compile(_bellpack_spmv)
bellpack_spmm = _compile(_bellpack_spmm)


# ----------------------------------------------------------------------
# CSR column-stepped NumPy replay — the vectorized twin of ``_csr_spmv``.
# Iterating over row *positions* (all rows' entry 0, then entry 1, ...)
# keeps every row's sum sequential and zero-initialised, so the compiled
# loop above reproduces it bit-for-bit; ``np.add.reduceat`` (used by
# ``CSRMatrix.spmv``) does not — its pairwise blocking reassociates.
# ----------------------------------------------------------------------
#: schedule = [(rows_with_len>j, their j-th entry positions), ...]
CsrSchedule = List[Tuple[np.ndarray, np.ndarray]]


def csr_column_schedule(indptr: np.ndarray) -> CsrSchedule:
    """Precompute the per-position gather schedule for a CSR container."""
    lengths = np.diff(indptr)
    schedule: CsrSchedule = []
    max_len = int(lengths.max()) if lengths.size else 0
    for j in range(max_len):
        rows_j = np.flatnonzero(lengths > j)
        schedule.append((rows_j, indptr[rows_j] + j))
    return schedule


def csr_spmv_columns(
    indices: np.ndarray,
    vals: np.ndarray,
    x: np.ndarray,
    schedule: CsrSchedule,
    m: int,
) -> np.ndarray:
    """Row-sequential CSR SpMV, vectorized across rows per position."""
    y = np.zeros(m, dtype=vals.dtype)
    for rows_j, pos_j in schedule:
        y[rows_j] += vals[pos_j] * x[indices[pos_j]]
    return y


# Surface the compiled capability on the registry so `repro formats`
# (and its --json consumers) report per-format compiled support.
for _fmt in sorted(JIT_FORMATS):
    _registry.bind_compiled(_fmt)
