"""Simulated ELLPACK-R SpMV kernel (Vázquez et al.).

Identical layout to ELLPACK, but each thread stops after its own
``row_length`` iterations; a warp therefore runs only as long as its
longest row, and padded slots beyond that warp maximum cost neither loads
nor flops (paper Section 2.1.4).

:func:`ellpack_r_counters` is shared with the prepared-plan planner so
replay counters are equal by construction.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.ellpack_r import ELLPACKRMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["ELLPACKRKernel", "ellpack_r_counters"]


def ellpack_r_counters(
    matrix: ELLPACKRMatrix, device: DeviceSpec, threads_per_block: int = 256
) -> KernelCounters:
    """Traffic/flop accounting of the ELLPACK-R kernel.

    A warp issues loads for ``warp_iterations`` columns only; each
    iteration is one 32x4B and one 32x8B coalesced access (lanes past
    their own row length are predicated off but the line is fetched).
    """
    m, _ = matrix.shape
    launch = LaunchConfig.for_rows(m, threads_per_block)
    tb = device.transaction_bytes
    ws = device.warp_size

    mask = matrix.valid_mask()
    warp_iters = matrix.warp_iterations(ws)  # per-warp max row length
    idx_per_iter = ceil_div(ws * 4, tb)
    val_per_iter = ceil_div(ws * 8, tb)
    total_warp_iters = int(warp_iters.sum())
    idx_tx = total_warp_iters * idx_per_iter
    val_tx = total_warp_iters * val_per_iter
    y_tx = contiguous_transactions(m, 8, ws, tb)
    # row_length array: one coalesced int32 read per thread.
    aux_tx = contiguous_transactions(m, 4, ws, tb)

    tex = TextureCacheModel(device)
    x_bytes = 0
    for r0 in range(0, m, threads_per_block):
        block_cols = matrix.col_idx[r0 : r0 + threads_per_block]
        x_bytes += tex.block_x_bytes(block_cols, mask[r0 : r0 + threads_per_block])

    return KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=y_tx * tb,
        aux_bytes=aux_tx * tb,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * matrix.nnz,
        launches=1,
        threads=launch.total_threads,
    )


@register_kernel
class ELLPACKRKernel(SpMVKernel):
    """ELLPACK-R kernel with per-warp early exit."""

    format_name = "ellpack_r"

    def __init__(self, threads_per_block: int = 256) -> None:
        self.threads_per_block = int(threads_per_block)

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, ELLPACKRMatrix)
        assert isinstance(matrix, ELLPACKRMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        # Masked column-sequential accumulation — each thread walks its
        # row left to right, skipping slots past its row length; matches
        # the prepared plan's replay order bit-for-bit.
        y = np.zeros(m, dtype=VALUE_DTYPE)
        if matrix.k:
            mask = matrix.valid_mask()
            cols = matrix.col_idx
            vals = matrix.vals
            for c in range(matrix.k):
                y += np.where(mask[:, c], vals[:, c] * x[cols[:, c]], 0.0)

        return SpMVResult(
            y=y,
            counters=ellpack_r_counters(matrix, device, self.threads_per_block),
            device=device,
        )
