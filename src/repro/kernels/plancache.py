"""Bounded LRU cache of prepared SpMV plans, keyed by container identity.

A plan is valid only for the exact bytes it decoded, so cache entries are
keyed by ``(id(matrix), format_name, device)`` and guarded by the
integrity layer's CRC32 fingerprint: each entry remembers the header
token the container carried when its plan was built, and a lookup whose
current token differs — the container was re-sealed after mutation —
invalidates the stale plan and rebuilds. Entries hold a strong reference
to their matrix (via the plan), so a cached ``id`` can never be recycled
to a different object while the entry lives.

Validation levels per lookup:

* ``"none"`` — trust the key; no fingerprint comparison.
* ``"header"`` (default) — compare the *attached* header token; catches
  every mutate-then-reseal cycle at the cost of one attribute read.
* ``"full"`` — recompute the CRC32 header from the current array bytes
  and compare; also catches silent (unsealed) mutation, at O(bytes) cost.

Unsealed containers cache fine (token ``None``) but then only ``"full"``
can detect mutation — seal containers you intend to mutate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..integrity.checksums import IntegrityHeader, compute_header, get_header
from ..telemetry import metrics as _metrics
from .plan import SpMVPlan, prepare

__all__ = ["PlanCache", "PLAN_CACHE", "fingerprint_token"]

_Key = Tuple[int, str, str]
_Token = Optional[Tuple[str, int, Tuple[Tuple[str, int], ...]]]


def fingerprint_token(header: Optional[IntegrityHeader]) -> _Token:
    """Hashable identity token of an integrity header (``None`` if unsealed)."""
    if header is None:
        return None
    return (
        header.format_name,
        header.meta_crc,
        tuple(sorted(header.field_crcs.items())),
    )


class PlanCache:
    """Thread-safe bounded LRU cache of :class:`SpMVPlan` objects."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[_Key, Tuple[SpMVPlan, _Token]]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = {
            "hits": 0,
            "misses": 0,
            "builds": 0,
            "evictions": 0,
            "invalidations": 0,
        }

    # -- internal -------------------------------------------------------
    @staticmethod
    def _key(matrix: SparseFormat, device: DeviceSpec) -> _Key:
        return (id(matrix), matrix.format_name, device.name)

    def _current_token(self, matrix: SparseFormat, validate: str) -> _Token:
        if validate == "full":
            return fingerprint_token(compute_header(matrix))
        return fingerprint_token(get_header(matrix))

    def _bump(self, event: str, count: int = 1) -> None:
        self._stats[event] += count
        _metrics.record_plan_cache(event, count)

    # -- public API -----------------------------------------------------
    def get_or_build(
        self,
        matrix: SparseFormat,
        device: Union[DeviceSpec, str] = "k20",
        *,
        validate: str = "header",
    ) -> SpMVPlan:
        """Return a cached plan for ``(matrix, device)``, building on miss.

        ``validate`` selects the staleness check (see module docstring).
        """
        if validate not in ("none", "header", "full"):
            raise ValueError(f"unknown validate level {validate!r}")
        if isinstance(device, str):
            device = get_device(device)
        key = self._key(matrix, device)

        token: _Token = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                plan, cached_token = entry
                if validate == "none":
                    self._entries.move_to_end(key)
                    self._bump("hits")
                    return plan
                token = self._current_token(matrix, validate)
                if cached_token == token:
                    self._entries.move_to_end(key)
                    self._bump("hits")
                    return plan
                # Fingerprint changed under us: the container was mutated
                # (and re-sealed, for "header"); the plan is stale.
                del self._entries[key]
                self._bump("invalidations")
            else:
                if validate != "none":
                    token = self._current_token(matrix, validate)
            self._bump("misses")

        # Build outside the lock — builds are the expensive part and must
        # not serialize unrelated lookups. A concurrent duplicate build of
        # the same key is possible; the last insert wins, which is safe
        # because equal inputs produce equivalent plans.
        plan = prepare(matrix, device)
        with self._lock:
            self._bump("builds")
            self._entries[key] = (plan, token)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._bump("evictions")
        return plan

    def invalidate(self, matrix: SparseFormat) -> int:
        """Drop every cached plan for ``matrix`` (all devices); return count."""
        mid = id(matrix)
        with self._lock:
            doomed = [k for k in self._entries if k[0] == mid]
            for k in doomed:
                del self._entries[k]
            if doomed:
                self._bump("invalidations", len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry and reset the LRU order (stats are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Copy of the lifetime hit/miss/build/eviction/invalidation counts."""
        with self._lock:
            return dict(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, matrix: object) -> bool:
        if not isinstance(matrix, SparseFormat):
            return False
        mid = id(matrix)
        with self._lock:
            return any(k[0] == mid for k in self._entries)


#: Process-wide default cache used by ``run_spmv(engine="auto"|"fast")``
#: and :class:`~repro.solvers.operators.SimulatedOperator`.
PLAN_CACHE = PlanCache()
