"""Bounded LRU cache of prepared SpMV plans, keyed by container identity.

A plan is valid only for the exact bytes it decoded, so cache entries are
keyed by ``(id(matrix), format_name, device, backend)`` and guarded by the
integrity layer's CRC32 fingerprint: each entry remembers the header
token the container carried when its plan was built, and a lookup whose
current token differs — the container was re-sealed after mutation —
invalidates the stale plan and rebuilds. Entries hold a strong reference
to their matrix, so a cached ``id`` can never be recycled to a different
object while the entry lives.

Sealed containers also participate in a **content index**: the
fingerprint token doubles as a content address, so a *different* object
with the same sealed bytes — typically a container just loaded from a
``.brx`` file (:mod:`repro.serialize`) — warm-hits the cache instead of
rebuilding the plan. Content hits count as ``hits`` (plus a separate
``content_hits`` stat) and alias the plan under the new object's
identity key, so subsequent lookups are ordinary identity hits.

Validation levels per lookup:

* ``"none"`` — trust the key; no fingerprint comparison.
* ``"header"`` (default) — compare the *attached* header token; catches
  every mutate-then-reseal cycle at the cost of one attribute read.
* ``"full"`` — recompute the CRC32 header from the current array bytes
  and compare; also catches silent (unsealed) mutation, at O(bytes) cost.

Unsealed containers cache fine (token ``None``) but then only ``"full"``
can detect mutation — seal containers you intend to mutate.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec, get_device
from ..integrity.checksums import IntegrityHeader, compute_header, get_header
from ..telemetry import metrics as _metrics
from . import backends as _backends
from .plan import SpMVPlan, prepare

__all__ = ["PlanCache", "PLAN_CACHE", "fingerprint_token"]

#: (id(matrix), format_name, device_name, executor backend). The backend
#: is part of the key so a numpy-built plan is never served to a jit
#: call (and vice versa) — the two replay with different machinery even
#: though their results are bit-identical.
_Key = Tuple[int, str, str, str]
_Token = Optional[Tuple[str, int, Tuple[Tuple[str, int], ...]]]
#: entry = (plan, fingerprint token, anchor matrix keeping id(key) alive)
_Entry = Tuple[SpMVPlan, _Token, SparseFormat]


def fingerprint_token(header: Optional[IntegrityHeader]) -> _Token:
    """Hashable identity token of an integrity header (``None`` if unsealed)."""
    if header is None:
        return None
    return (
        header.format_name,
        header.meta_crc,
        tuple(sorted(header.field_crcs.items())),
    )


class PlanCache:
    """Thread-safe bounded LRU cache of :class:`SpMVPlan` objects."""

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._entries: "OrderedDict[_Key, _Entry]" = OrderedDict()
        #: content index: fingerprint + device + backend -> newest identity key
        self._by_token: Dict[Tuple[_Token, str, str], _Key] = {}
        self._lock = threading.Lock()
        #: single-flight latches: key -> Event set when its build finishes
        self._building: Dict[_Key, threading.Event] = {}
        self._stats = {
            "hits": 0,
            "misses": 0,
            "builds": 0,
            "evictions": 0,
            "invalidations": 0,
            "content_hits": 0,
            "single_flight_waits": 0,
        }

    # -- internal -------------------------------------------------------
    @staticmethod
    def _key(matrix: SparseFormat, device: DeviceSpec, backend: str) -> _Key:
        return (id(matrix), matrix.format_name, device.name, backend)

    def _current_token(self, matrix: SparseFormat, validate: str) -> _Token:
        if validate == "full":
            return fingerprint_token(compute_header(matrix))
        return fingerprint_token(get_header(matrix))

    def _bump(self, event: str, count: int = 1) -> None:
        self._stats[event] += count
        _metrics.record_plan_cache(event, count)

    def _insert(self, key: _Key, entry: _Entry) -> None:
        """Insert/refresh an entry, index its token, enforce the bound."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        token = entry[1]
        if token is not None:
            self._by_token[(token, key[2], key[3])] = key
        while len(self._entries) > self.maxsize:
            old_key, _ = self._entries.popitem(last=False)
            self._unindex(old_key)
            self._bump("evictions")

    def _remove(self, key: _Key) -> None:
        del self._entries[key]
        self._unindex(key)

    def _unindex(self, key: _Key) -> None:
        """Drop content-index pointers at ``key`` (if still pointing there)."""
        for tkey, k in list(self._by_token.items()):
            if k == key:
                del self._by_token[tkey]

    def _content_lookup(
        self, token: _Token, device_name: str, backend: str
    ) -> Optional[_Entry]:
        if token is None:
            return None
        key = self._by_token.get((token, device_name, backend))
        if key is None:
            return None
        return self._entries.get(key)

    # -- public API -----------------------------------------------------
    def get_or_build(
        self,
        matrix: SparseFormat,
        device: Union[DeviceSpec, str] = "k20",
        *,
        validate: str = "header",
        backend: str = "auto",
    ) -> SpMVPlan:
        """Return a cached plan for ``(matrix, device)``, building on miss.

        ``validate`` selects the staleness check (see module docstring).
        ``backend`` is a ``compute_backend`` request (``"auto"``,
        ``"numpy"`` or ``"jit"``), resolved to a concrete executor
        backend *once* here so ``"auto"`` and an honourable ``"jit"``
        share cache entries. An identity miss with a sealed container
        falls through to the content index before building: equal
        fingerprints mean equal bytes, so a plan built for a twin object
        replays bit-identically.
        """
        if validate not in ("none", "header", "full"):
            raise ValueError(f"unknown validate level {validate!r}")
        if isinstance(device, str):
            device = get_device(device)
        resolved = _backends.resolve_backend(backend, matrix.format_name)
        key = self._key(matrix, device, resolved)

        while True:
            token: _Token = None
            latch: Optional[threading.Event] = None
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    plan, cached_token, _anchor = entry
                    if validate == "none":
                        self._entries.move_to_end(key)
                        self._bump("hits")
                        return plan
                    token = self._current_token(matrix, validate)
                    if cached_token == token:
                        self._entries.move_to_end(key)
                        self._bump("hits")
                        return plan
                    # Fingerprint changed under us: the container was
                    # mutated (and re-sealed, for "header"); the plan is
                    # stale.
                    self._remove(key)
                    self._bump("invalidations")
                else:
                    if validate != "none":
                        token = self._current_token(matrix, validate)
                    twin = self._content_lookup(token, device.name, resolved)
                    if twin is not None:
                        # Same sealed bytes under a different object
                        # identity (e.g. freshly deserialized): alias the
                        # plan under this object's key so the next lookup
                        # is an identity hit, and anchor the new matrix
                        # so its id stays live.
                        plan = twin[0]
                        self._insert(key, (plan, token, matrix))
                        self._bump("hits")
                        self._bump("content_hits")
                        return plan
                # Miss. Single-flight: the first caller claims the build
                # latch; everyone else waits on it and re-resolves.
                latch = self._building.get(key)
                if latch is None:
                    self._building[key] = threading.Event()
                    self._bump("misses")
                else:
                    self._bump("single_flight_waits")
            if latch is not None:
                # Another thread is building this exact key. Wait for it,
                # then loop: the re-lookup is an ordinary hit, or — if
                # the builder failed — this thread claims the latch and
                # becomes the next builder.
                latch.wait()
                continue
            break

        # Build outside the lock — builds are the expensive part and must
        # not serialize unrelated lookups. The latch guarantees exactly
        # one build per key: concurrent same-key callers block above
        # until this build lands (or fails, releasing the claim).
        try:
            plan = prepare(matrix, device, backend=resolved)
            with self._lock:
                self._bump("builds")
                self._insert(key, (plan, token, matrix))
        finally:
            with self._lock:
                done = self._building.pop(key, None)
            if done is not None:
                done.set()
        return plan

    def invalidate(self, matrix: SparseFormat) -> int:
        """Drop every cached plan for ``matrix`` (all devices); return count."""
        mid = id(matrix)
        with self._lock:
            doomed = [k for k in self._entries if k[0] == mid]
            for k in doomed:
                self._remove(k)
            if doomed:
                self._bump("invalidations", len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry and reset the LRU order (stats are kept)."""
        with self._lock:
            self._entries.clear()
            self._by_token.clear()

    def stats(self) -> Dict[str, int]:
        """Copy of the lifetime hit/miss/build/eviction/invalidation counts."""
        with self._lock:
            return dict(self._stats)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, matrix: object) -> bool:
        if not isinstance(matrix, SparseFormat):
            return False
        mid = id(matrix)
        with self._lock:
            return any(k[0] == mid for k in self._entries)


#: Process-wide default cache used by ``run_spmv`` when the policy's
#: ``engine`` is ``"auto"``/``"fast"`` with no explicit cache, and by
#: :class:`~repro.solvers.operators.SimulatedOperator`.
PLAN_CACHE = PlanCache()
