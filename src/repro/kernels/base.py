"""Kernel interface, result record and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Type

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..integrity.counters import IntegritySnapshot

from ..errors import KernelError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingBreakdown, predict

__all__ = [
    "SpMVResult",
    "SpMVKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
]

_REGISTRY: Dict[str, Type["SpMVKernel"]] = {}


def register_kernel(cls: Type["SpMVKernel"]) -> Type["SpMVKernel"]:
    """Class decorator registering a kernel under its format name."""
    name = getattr(cls, "format_name", None)
    if not name:
        raise KernelError(f"{cls.__name__} does not define format_name")
    if name in _REGISTRY:
        raise KernelError(f"kernel for format {name!r} registered twice")
    _REGISTRY[name] = cls
    return cls


def get_kernel(format_name: str) -> "SpMVKernel":
    """Instantiate the kernel registered for a format name."""
    try:
        return _REGISTRY[format_name]()
    except KeyError as exc:
        raise KernelError(
            f"no kernel for format {format_name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def available_kernels() -> Tuple[str, ...]:
    """Format names that have a simulated kernel."""
    return tuple(sorted(_REGISTRY))


@dataclass
class SpMVResult:
    """Output of one simulated SpMV execution.

    The integrity fields are populated by the verified dispatch path
    (:func:`repro.kernels.dispatch.run_spmv` with ``verify``/``fallback``):
    ``fault_detected`` records that a typed integrity fault was caught,
    ``fallback_used`` that the result came from the reference fallback
    kernel instead of the requested format's kernel, and
    ``integrity_counters`` snapshots the per-process detection/fallback
    totals at the time the result was produced.
    """

    y: np.ndarray
    counters: KernelCounters
    device: DeviceSpec
    fault_detected: bool = False
    fallback_used: bool = False
    integrity_error: Optional[str] = None
    integrity_counters: Optional["IntegritySnapshot"] = None

    @property
    def timing(self) -> TimingBreakdown:
        """Predicted timing of the run (lazy; pure function of counters)."""
        return predict(self.counters, self.device)

    @property
    def gflops(self) -> float:
        """Predicted useful throughput in GFlop/s."""
        return self.timing.gflops


class SpMVKernel(ABC):
    """A simulated GPU SpMV kernel for one storage format."""

    #: format this kernel executes (matches ``SparseFormat.format_name``).
    format_name: str = ""

    @abstractmethod
    def run(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        """Execute ``y = A @ x`` on the simulated device."""

    def _check(self, matrix: SparseFormat, expected_type: type) -> None:
        if not isinstance(matrix, expected_type):
            raise KernelError(
                f"{type(self).__name__} needs a {expected_type.__name__}, "
                f"got {type(matrix).__name__}"
            )
