"""Kernel interface and result record.

Kernel registration lives in the unified capability registry
(:mod:`repro.registry`); :func:`register_kernel` binds a kernel class to
its format's :class:`~repro.registry.FormatSpec`. The module-level
:func:`get_kernel`/:func:`available_kernels` lookups are deprecated
shims over the registry, kept so pre-registry call sites keep working.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple, Type

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..integrity.counters import IntegritySnapshot

from .. import registry as _registry
from ..errors import KernelError, ValidationError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingBreakdown, predict
from ..telemetry import metrics as _metrics
from ..telemetry import tracer as _tracer

__all__ = [
    "SpMVResult",
    "SpMVKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
]


def register_kernel(cls: Type["SpMVKernel"]) -> Type["SpMVKernel"]:
    """Class decorator binding a kernel to its format's capability record."""
    name = getattr(cls, "format_name", None)
    if not name:
        raise KernelError(f"{cls.__name__} does not define format_name")
    _registry.bind_kernel(name, cls)
    return cls


def get_kernel(format_name: str) -> "SpMVKernel":
    """Instantiate the kernel registered for a format name.

    .. deprecated:: use :func:`repro.registry.kernel_for`.
    """
    warnings.warn(
        "repro.kernels.get_kernel is deprecated; use repro.registry.kernel_for",
        DeprecationWarning,
        stacklevel=2,
    )
    return _registry.kernel_for(format_name)


def available_kernels() -> Tuple[str, ...]:
    """Format names that have a simulated kernel.

    .. deprecated:: use :func:`repro.registry.kernel_formats`.
    """
    warnings.warn(
        "repro.kernels.available_kernels is deprecated; "
        "use repro.registry.kernel_formats",
        DeprecationWarning,
        stacklevel=2,
    )
    return _registry.kernel_formats()


@dataclass
class SpMVResult:
    """Output of one simulated SpMV execution.

    The integrity fields are populated by the verified dispatch path
    (:func:`repro.kernels.dispatch.run_spmv` with ``verify``/``fallback``):
    ``fault_detected`` records that a typed integrity fault was caught,
    ``fallback_used`` that the result came from the reference fallback
    kernel instead of the requested format's kernel, and
    ``integrity_counters`` snapshots the per-process detection/fallback
    totals at the time the result was produced.
    """

    y: np.ndarray
    counters: KernelCounters
    device: DeviceSpec
    fault_detected: bool = False
    fallback_used: bool = False
    integrity_error: Optional[str] = None
    integrity_counters: Optional["IntegritySnapshot"] = None

    @property
    def timing(self) -> TimingBreakdown:
        """Predicted timing of the run (lazy; pure function of counters)."""
        return predict(self.counters, self.device)

    @property
    def gflops(self) -> float:
        """Predicted useful throughput in GFlop/s."""
        return self.timing.gflops


class SpMVKernel(ABC):
    """A simulated GPU SpMV kernel for one storage format.

    Subclasses implement :meth:`_execute`; the public :meth:`run` wraps it
    with the telemetry layer — a ``kernel.<format>`` span carrying the
    launch's :class:`KernelCounters` and timing-model attribution, plus
    per-format metric emission into the active
    :class:`~repro.telemetry.metrics.MetricsRegistry`. With telemetry
    disabled (the default), ``run`` falls straight through to
    ``_execute`` without allocating anything, so results and performance
    are identical to an uninstrumented kernel.
    """

    #: format this kernel executes (matches ``SparseFormat.format_name``).
    format_name: str = ""

    def run(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        """Execute ``y = A @ x`` on the simulated device."""
        tracer = _tracer.get_tracer()
        if tracer is None and not _metrics.collecting():
            return self._execute(matrix, x, device)

        if tracer is not None:
            with tracer.start(
                f"kernel.{self.format_name}",
                "kernel",
                {"format": self.format_name, "device": device.name},
            ) as sp:
                result = self._execute(matrix, x, device)
                sp.attach_counters(result.counters)
                try:
                    sp.attach_timing(result.timing)
                except ValidationError:  # pragma: no cover - defensive
                    pass
        else:
            result = self._execute(matrix, x, device)
        _metrics.record_kernel(self.format_name, device.name, result.counters)
        return result

    @abstractmethod
    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        """Format-specific simulation; implemented by each kernel."""

    def _check(self, matrix: SparseFormat, expected_type: type) -> None:
        if not isinstance(matrix, expected_type):
            raise KernelError(
                f"{type(self).__name__} needs a {expected_type.__name__}, "
                f"got {type(matrix).__name__}"
            )
