"""Simulated BRO-ELL kernel with dictionary-compressed values.

Same Algorithm-1 loop as :class:`~repro.kernels.spmv_bro_ell.BROELLKernel`,
with the value channel traffic replaced by the packed code stream plus a
one-time dictionary load per slice (the dictionary is staged in shared
memory, so gathers from it cost no DRAM traffic), and extra decode ops for
the value-code extraction.
"""

from __future__ import annotations

import numpy as np

from ..bitstream.reader import SliceDecoder
from ..core.value_compression import BROELLVCMatrix
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DECODE_OPS_PER_ITER, DECODE_OPS_PER_LOAD, DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["BROELLVCKernel"]


@register_kernel
class BROELLVCKernel(SpMVKernel):
    """BRO-ELL + value-compression kernel (paper future work)."""

    format_name = "bro_ell_vc"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, BROELLVCMatrix)
        assert isinstance(matrix, BROELLVCMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        launch = LaunchConfig(matrix.h, max(1, matrix.num_slices))
        tb = device.transaction_bytes
        ws = device.warp_size
        sym_bytes = matrix.sym_len // 8
        tex = TextureCacheModel(device)

        y = np.zeros(m, dtype=VALUE_DTYPE)
        idx_tx = val_bytes = x_bytes = decode_ops = 0
        for i in range(matrix.num_slices):
            r0 = int(matrix.slice_edges[i])
            r1 = int(matrix.slice_edges[i + 1])
            h_i = r1 - r0
            L = int(matrix.num_col[i])
            if L == 0:
                continue
            bit_alloc = matrix.bit_allocs[i]
            dec = SliceDecoder(
                matrix.stream.slice_view(i), h=h_i, sym_len=matrix.sym_len
            )
            # Values decode through the compressed channel of this slice.
            val_block = matrix.decoded_val_block(i)
            col_idx = np.zeros(h_i, dtype=np.int64)
            acc = np.zeros(h_i, dtype=VALUE_DTYPE)
            cols_hist = np.zeros((h_i, L), dtype=np.int64)
            valid_hist = np.zeros((h_i, L), dtype=bool)
            for c in range(L):
                decoded = dec.decode(int(bit_alloc[c]))
                valid = decoded != 0
                col_idx = col_idx + decoded
                gather = x[np.where(valid, col_idx - 1, 0)]
                acc += np.where(valid, val_block[:, c] * gather, 0.0)
                cols_hist[:, c] = col_idx - 1
                valid_hist[:, c] = valid
            y[r0:r1] = acc

            idx_tx += dec.symbol_loads * contiguous_transactions(
                h_i, sym_bytes, ws, tb
            )
            vs = matrix.value_slices[i]
            if vs.raw is not None:
                # Uncompressed fallback slice: coalesced value reads only on
                # (warp, column) pairs with at least one valid lane — the
                # same predication the plain BRO-ELL kernel models.
                warps = ceil_div(h_i, ws)
                pad_rows = warps * ws - h_i
                warp_valid = np.any(
                    np.vstack([valid_hist, np.zeros((pad_rows, L), dtype=bool)])
                    .reshape(warps, ws, L),
                    axis=1,
                )
                val_bytes += int(warp_valid.sum()) * ceil_div(ws * 8, tb) * tb
            else:
                # Packed code stream (coalesced) + one dictionary stream-in.
                val_bytes += int(vs.codes.nbytes) + int(vs.dictionary.nbytes)
                decode_ops += DECODE_OPS_PER_ITER * h_i * L  # code extraction
            x_bytes += tex.block_x_bytes(cols_hist, valid_hist)
            decode_ops += DECODE_OPS_PER_ITER * h_i * L
            decode_ops += DECODE_OPS_PER_LOAD * dec.symbol_loads * h_i

        counters = KernelCounters(
            index_bytes=idx_tx * tb,
            value_bytes=int(val_bytes),
            x_bytes=x_bytes,
            y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
            aux_bytes=int(matrix.num_col.sum()) + 4 * matrix.num_slices,
            useful_flops=2 * matrix.nnz,
            issued_flops=2 * matrix.nnz,
            decode_ops=decode_ops,
            launches=1,
            threads=launch.total_threads,
        )
        return SpMVResult(y=y, counters=counters, device=device)
