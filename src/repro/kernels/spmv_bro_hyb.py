"""Simulated BRO-HYB SpMV kernel: BRO-ELL launch + BRO-COO launch."""

from __future__ import annotations

import numpy as np

from ..core.bro_hyb import BROHYBMatrix
from ..formats.base import SparseFormat
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from .base import SpMVKernel, SpMVResult, register_kernel
from .spmv_bro_coo import BROCOOKernel
from .spmv_bro_ell import BROELLKernel

__all__ = ["BROHYBKernel"]


@register_kernel
class BROHYBKernel(SpMVKernel):
    """Two-launch BRO-HYB kernel (paper Section 3.3)."""

    format_name = "bro_hyb"

    def __init__(self) -> None:
        self.ell_kernel = BROELLKernel()
        self.coo_kernel = BROCOOKernel()

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, BROHYBMatrix)
        assert isinstance(matrix, BROHYBMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        if matrix.ell.nnz:
            ell_res = self.ell_kernel.run(matrix.ell, x, device)
            y = ell_res.y
            counters = ell_res.counters
        else:
            y = np.zeros(m)
            counters = KernelCounters(launches=0, threads=device.warp_size)

        if matrix.coo.padded_nnz:
            coo_res = self.coo_kernel.run(matrix.coo, x, device)
            y = y + coo_res.y
            counters = counters + coo_res.counters
        return SpMVResult(y=y, counters=counters, device=device)
