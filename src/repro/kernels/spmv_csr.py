"""Simulated CSR SpMV kernel (vector variant: one warp per row).

Included as a baseline substrate: each warp strides its row's entries
32-at-a-time (coalesced within the row, but each row's first transaction is
generally unaligned), then reduces lane partials with a warp tree. Short
rows under-utilize the warp — the classic CSR-vector weakness the ELL
family avoids.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.csr import CSRMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..gpu.warp import warp_reduce_flops
from ..utils.bits import ceil_div
from . import backends as _backends
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["CSRVectorKernel"]


@register_kernel
class CSRVectorKernel(SpMVKernel):
    """CSR-vector kernel (one warp per row, warp-tree reduction)."""

    format_name = "csr"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, CSRMatrix)
        assert isinstance(matrix, CSRMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        ws = device.warp_size
        tb = device.transaction_bytes
        launch = LaunchConfig.for_warps(m, ws)

        # ---- functional execution ------------------------------------
        # Row-sequential accumulation (matches the prepared-plan replay
        # and the compiled executor bit-for-bit; matrix.spmv's reduceat
        # would reassociate long rows).
        schedule = _backends.csr_column_schedule(matrix.indptr)
        y = _backends.csr_spmv_columns(
            matrix.indices, matrix.vals, x, schedule, m
        )

        # ---- traffic accounting --------------------------------------
        lengths = matrix.row_lengths()
        # Unaligned row starts: each non-empty row pays ceil(len*b/128) + 1
        # transactions in the worst case; model the +1 misalignment on rows
        # that do not start on a transaction boundary.
        starts = matrix.indptr[:-1]
        misaligned_idx = ((starts * 4) % tb != 0) & (lengths > 0)
        misaligned_val = ((starts * 8) % tb != 0) & (lengths > 0)
        idx_tx = int(
            np.ceil(lengths * 4 / tb).sum() + misaligned_idx.sum()
        )
        val_tx = int(
            np.ceil(lengths * 8 / tb).sum() + misaligned_val.sum()
        )
        y_tx = contiguous_transactions(m, 8, ws, tb)
        aux_tx = contiguous_transactions(m + 1, 4, ws, tb)

        # x reads: each warp walks its own row; arrange the row's columns
        # as a (ws, iters) lane grid for the cache model.
        tex = TextureCacheModel(device)
        x_bytes = 0
        for r in range(m):
            lo, hi = int(matrix.indptr[r]), int(matrix.indptr[r + 1])
            if lo == hi:
                continue
            L = ceil_div(hi - lo, ws)
            block = np.zeros(L * ws, dtype=np.int64)
            block[: hi - lo] = matrix.indices[lo:hi]
            valid = np.zeros(L * ws, dtype=bool)
            valid[: hi - lo] = True
            x_bytes += (
                tex.warp_sequence_fetches(
                    block.reshape(L, ws).T, valid.reshape(L, ws).T
                )
                * device.tex_line_bytes
            )

        counters = KernelCounters(
            index_bytes=idx_tx * tb,
            value_bytes=val_tx * tb,
            x_bytes=x_bytes,
            y_bytes=y_tx * tb,
            aux_bytes=aux_tx * tb,
            useful_flops=2 * matrix.nnz,
            issued_flops=2 * matrix.nnz + warp_reduce_flops(ws) * m,
            launches=1,
            threads=launch.total_threads,
        )
        return SpMVResult(y=y, counters=counters, device=device)
