"""Simulated BELLPACK SpMV kernel (one thread per block row, r-wide MADs).

Per iteration a thread reads one block-column index (4 B) and an ``r x c``
dense block (coalesced across the block-row's threads in the transposed
device layout Choi et al. use), gathers ``c`` consecutive x values through
the texture cache — blocked formats's x accesses are naturally vectorized
— and accumulates ``r`` partial sums in registers.

:func:`bellpack_counters` is shared with the prepared-plan planner so
replay counters are equal by construction.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.bellpack import BELLPACKMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["BELLPACKKernel", "bellpack_counters"]


def bellpack_counters(
    matrix: BELLPACKMatrix, device: DeviceSpec, threads_per_block: int = 256
) -> KernelCounters:
    """Traffic/flop accounting of the BELLPACK kernel."""
    r, c = matrix.block_shape
    mb, K = matrix.block_col_idx.shape
    # One thread per *matrix* row (Choi et al.): the r threads of a
    # block row share its block-column indices and each computes one
    # of the block's rows.
    launch = LaunchConfig.for_rows(matrix.shape[0], threads_per_block)
    tb = device.transaction_bytes
    ws = device.warp_size

    # Per iteration the grid streams one int32 block index and r*c
    # float64 per block row, both coalesced.
    idx_tx = K * contiguous_transactions(mb, 4, ws, tb)
    val_tx = K * contiguous_transactions(mb, 8 * r * c, ws, tb)
    y_tx = contiguous_transactions(matrix.shape[0], 8, ws, tb)

    # x reads: block columns expand to c consecutive elements; model
    # them through the texture cache at the first element of each
    # block (the remaining c-1 share the line or the next one).
    tex = TextureCacheModel(device)
    x_bytes = 0
    mask = np.arange(K)[np.newaxis, :] < matrix.block_row_lengths[:, np.newaxis]
    cols0 = matrix.block_col_idx.astype(np.int64) * c
    for b0 in range(0, mb, threads_per_block):
        block = cols0[b0 : b0 + threads_per_block]
        valid = mask[b0 : b0 + threads_per_block]
        # Each block touches ceil(c*8/line) lines starting at cols0;
        # approximate by charging the first line through the cache
        # model and the spill lines unconditionally.
        x_bytes += tex.block_x_bytes(block, valid)
    spill_lines_per_block = max(
        0, -(-c * 8 // device.tex_line_bytes) - 1
    )
    x_bytes += (
        int(mask.sum()) * spill_lines_per_block * device.tex_line_bytes
    )

    return KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=y_tx * tb,
        aux_bytes=4 * mb,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * mb * K * r * c,
        launches=1,
        threads=launch.total_threads,
    )


@register_kernel
class BELLPACKKernel(SpMVKernel):
    """Blocked-ELLPACK kernel."""

    format_name = "bellpack"

    def __init__(self, threads_per_block: int = 256) -> None:
        self.threads_per_block = int(threads_per_block)

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, BELLPACKMatrix)
        assert isinstance(matrix, BELLPACKMatrix)
        x = matrix.check_x(x)
        y = matrix.spmv(x)
        return SpMVResult(
            y=y,
            counters=bellpack_counters(matrix, device, self.threads_per_block),
            device=device,
        )
