"""Simulated ELLPACK SpMV kernel (one thread per row, column-major data).

The CUSP-style kernel maps thread ``i`` to row ``i``; in iteration ``c``
the whole grid reads column ``c`` of the column-major ``col_idx`` and
``vals`` arrays — perfectly coalesced — multiplies, and accumulates.
Every thread runs the full ``k`` iterations: padded slots are read,
multiplied (by 0.0) and accumulated just like real entries, which is
exactly the inefficiency ELLPACK-R and the BRO formats attack.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.ellpack import ELLPACKMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["ELLPACKKernel"]


@register_kernel
class ELLPACKKernel(SpMVKernel):
    """Bell–Garland ELLPACK kernel."""

    format_name = "ellpack"

    def __init__(self, threads_per_block: int = 256) -> None:
        self.threads_per_block = int(threads_per_block)

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, ELLPACKMatrix)
        assert isinstance(matrix, ELLPACKMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        k = matrix.k
        launch = LaunchConfig.for_rows(m, self.threads_per_block)
        tb = device.transaction_bytes
        ws = device.warp_size

        # ---- functional execution (identical math to the GPU loop) ----
        # Column-sequential accumulation, exactly the kernel's iteration
        # order (and the compiled executor's); an einsum dot would block
        # the sum differently and break cross-backend bit-identity.
        y = np.zeros(m, VALUE_DTYPE)
        for c in range(k):
            y += matrix.vals[:, c] * x[matrix.col_idx[:, c]]

        # ---- traffic accounting -------------------------------------
        # Column-major reads: every iteration the grid streams one int32
        # and one float64 column of length m, fully coalesced.
        idx_tx = k * contiguous_transactions(m, 4, ws, tb)
        val_tx = k * contiguous_transactions(m, 8, ws, tb)
        y_tx = contiguous_transactions(m, 8, ws, tb)

        # x reads go through the texture cache, one block at a time.
        # Padding lanes read x[0] (their stored index) just like the real
        # kernel, so they participate in the access pattern.
        tex = TextureCacheModel(device)
        x_bytes = 0
        tpb = self.threads_per_block
        for r0 in range(0, m, tpb):
            block_cols = matrix.col_idx[r0 : r0 + tpb]
            x_bytes += tex.block_x_bytes(
                block_cols, np.ones(block_cols.shape, dtype=bool)
            )

        counters = KernelCounters(
            index_bytes=idx_tx * tb,
            value_bytes=val_tx * tb,
            x_bytes=x_bytes,
            y_bytes=y_tx * tb,
            useful_flops=2 * matrix.nnz,
            issued_flops=2 * m * k,
            launches=1,
            threads=launch.total_threads,
        )
        return SpMVResult(y=y, counters=counters, device=device)
