"""Simulated HYB SpMV kernel: ELLPACK launch + COO launch (Bell & Garland)."""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.hyb import HYBMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from .base import SpMVKernel, SpMVResult, register_kernel
from .spmv_coo import COOKernel
from .spmv_ellpack import ELLPACKKernel

__all__ = ["HYBKernel"]


@register_kernel
class HYBKernel(SpMVKernel):
    """Two-launch HYB kernel; the COO part accumulates into the ELL result."""

    format_name = "hyb"

    def __init__(self, threads_per_block: int = 256, interval_size: int | None = None):
        self.ell_kernel = ELLPACKKernel(threads_per_block)
        self.coo_kernel = COOKernel(interval_size)

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, HYBMatrix)
        assert isinstance(matrix, HYBMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        if matrix.ell.k:
            ell_res = self.ell_kernel.run(matrix.ell, x, device)
            y = ell_res.y
            counters = ell_res.counters
        else:
            y = np.zeros(m)
            counters = KernelCounters(launches=0, threads=device.warp_size)

        if matrix.coo.nnz:
            coo_res = self.coo_kernel.run(matrix.coo, x, device)
            y = y + coo_res.y
            counters = counters + coo_res.counters
        return SpMVResult(y=y, counters=counters, device=device)
