"""Prepared-plan SpMV execution: decode once, replay for every ``x``.

The simulated kernels re-derive everything on every call — the stepwise
:class:`~repro.bitstream.reader.SliceDecoder` walk, the texture-cache
model, the transaction counting — even though none of it depends on the
input vector. Iterative solvers and the benchmark sweeps call SpMV with
the *same* matrix hundreds of times, so this module separates the two
phases the way SMASH-style schemes separate setup from multiply:

* :func:`prepare` runs the decode exactly once per (matrix, device) using
  the vectorized :func:`~repro.bitstream.packing.unpack_slice` instead of
  the per-column decoder loop, and caches everything that is independent
  of ``x``: per-slice gather indices, validity masks, transposed value
  blocks, and the *entire* traffic accounting as a
  :class:`~repro.gpu.counters.KernelCounters` prototype.
* :meth:`SpMVPlan.execute` replays the plan for one ``x`` — a handful of
  NumPy gathers/FMAs plus a counter copy.
* :meth:`SpMVPlan.execute_many` batches a multi-RHS ``X`` of shape
  ``(n, k)`` through one plan (SpMM), amortizing the single decode across
  ``k`` vectors.

Equivalence contract
--------------------
A plan replay is **bit-identical** to the reference kernel — same ``y``
to the last ulp and an equal :class:`KernelCounters` record — because the
replay performs the same floating-point operations in the same order
(sequential per-column accumulation, the same ``np.where`` masking, the
same element-ordered ``np.add.at`` scatter) and the counters prototype
reproduces the reference accounting term by term
(``symbol_loads == row_stream_symbols`` for a fully-consumed stream, and
the texture-cache model depends only on the decoded access pattern).
``tests/kernels/test_plan_equivalence.py`` enforces this for every suite
matrix, every BRO format and both symbol lengths.

Telemetry
---------
Replays emit the same ``kernel.<format>`` span and per-format
:func:`~repro.telemetry.metrics.record_kernel` metrics as the reference
engine (with an ``engine="fast"`` attribute); plan builds emit a
``spmv.plan`` span and ``plan.builds`` / ``plan.build_seconds`` counters.
Texture-cache and bitstream-decode metrics are emitted once at build time
rather than per call — they are properties of the structure, not the run.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from .. import registry as _registry
from ..bitstream.packing import row_stream_symbols, unpack_slice
from ..core.bro_coo import BROCOOMatrix, adaptive_interval_size
from ..core.bro_ell import BROELLMatrix
from ..core.bro_hyb import BROHYBMatrix
from ..core.bro_sell import BROSELLMatrix
from ..core.multirow import MultiRowBROELL
from ..core.value_compression import BROELLVCMatrix
from ..errors import KernelError, ValidationError
from ..formats.base import SparseFormat
from ..formats.bellpack import BELLPACKMatrix
from ..formats.cmrs import CMRSMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.ellpack import ELLPACKMatrix
from ..formats.ellpack_r import ELLPACKRMatrix
from ..formats.hyb import HYBMatrix
from ..formats.sell_c_sigma import SELLCSigmaMatrix
from ..formats.sliced_ellpack import SlicedELLPACKMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import (
    DECODE_OPS_PER_ITER,
    DECODE_OPS_PER_LOAD,
    DeviceSpec,
    get_device,
)
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..gpu.warp import warp_reduce_flops
from ..telemetry import metrics as _metrics
from ..telemetry import tracer as _tracer
from ..telemetry.tracer import span as _span
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div

from . import backends as _backends
from .base import SpMVResult
from .spmv_bellpack import bellpack_counters
from .spmv_cmrs import cmrs_counters
from .spmv_coo import coo_segmented_counters
from .spmv_ellpack_r import ellpack_r_counters
from .spmv_sell_c_sigma import sell_counters
from .spmv_sliced_ell import sliced_ell_counters

__all__ = [
    "SpMVPlan",
    "prepare",
    "register_planner",
    "has_planner",
    "plannable_formats",
    "check_multi_x",
]


def check_multi_x(matrix: SparseFormat, X: np.ndarray) -> np.ndarray:
    """Validate a multi-RHS block ``X`` of shape ``(n, k)`` for SpMM."""
    X = np.asarray(X, dtype=VALUE_DTYPE)
    if X.ndim != 2 or X.shape[0] != matrix.shape[1] or X.shape[1] < 1:
        raise ValidationError(
            f"X must have shape ({matrix.shape[1]}, k) with k >= 1, "
            f"got shape {X.shape}"
        )
    return X


class SpMVPlan(ABC):
    """A prepared, x-independent execution plan for one (matrix, device).

    Holds a strong reference to its matrix (so a cached plan can never be
    confused with a new object reusing the same ``id``), the device spec,
    and a :class:`KernelCounters` prototype that every replay copies.
    """

    #: format this plan executes (matches ``SparseFormat.format_name``).
    format_name: str = ""

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
    ) -> None:
        self.matrix = matrix
        self.device = device
        self._counters = counters
        #: scaled counters prototypes per k, derived once instead of on
        #: every replay (the prototype is x-independent, so a warm plan
        #: never re-derives it).
        self._counters_memo: dict = {}
        #: wall-clock seconds the one-time build took (set by prepare()).
        self.build_seconds = 0.0
        #: executor backend replays dispatch to ("numpy" or "jit").
        self.backend = "numpy"
        #: seconds the JIT warm-compile pass took (0.0 on the numpy path).
        self.jit_compile_seconds = 0.0

    @property
    def shape(self) -> Tuple[int, int]:
        return self.matrix.shape

    def counters(self, k: int = 1) -> KernelCounters:
        """A fresh counters record for a ``k``-vector replay.

        ``k`` sequential products scale every traffic/flop/launch counter
        linearly; ``threads`` stays the per-launch grid size (the
        occupancy model sees the same grid ``k`` times, not a bigger one).
        The scaled prototype is memoized per ``k``; callers get a copy.
        """
        proto = self._counters_memo.get(k)
        if proto is None:
            c = self._counters
            if k == 1:
                proto = c
            else:
                proto = KernelCounters(
                    index_bytes=c.index_bytes * k,
                    value_bytes=c.value_bytes * k,
                    x_bytes=c.x_bytes * k,
                    y_bytes=c.y_bytes * k,
                    aux_bytes=c.aux_bytes * k,
                    useful_flops=c.useful_flops * k,
                    issued_flops=c.issued_flops * k,
                    decode_ops=c.decode_ops * k,
                    launches=c.launches * k,
                    threads=c.threads,
                )
            self._counters_memo[k] = proto
        return replace(proto)

    # -- executor backend ----------------------------------------------
    def _children(self) -> Tuple["SpMVPlan", ...]:
        """Part plans a composite plan delegates to (backend recursion)."""
        return ()

    def set_backend(self, backend: str) -> None:
        """Select the executor backend for this plan (and its parts).

        Accepts a *concrete* backend name; resolve policy requests with
        :func:`repro.kernels.backends.resolve_backend` first.
        """
        if backend not in _backends.EXECUTOR_BACKENDS:
            raise ValidationError(
                f"executor backend must be one of "
                f"{_backends.EXECUTOR_BACKENDS}, got {backend!r}"
            )
        for child in self._children():
            child.set_backend(backend)
        self.backend = backend

    def warm_compile(self) -> float:
        """Trigger JIT compilation of the replay loops on a zeros input.

        Called by :func:`prepare` so compilation cost lands in the build
        phase (recorded as ``plan.jit_compile_seconds``), not the first
        ``execute``. A no-op on the numpy backend.
        """
        if self.backend != "jit":
            return 0.0
        t0 = time.perf_counter()
        zeros = np.zeros(self.matrix.shape[1], dtype=VALUE_DTYPE)
        self._replay(zeros)
        self._replay_many(zeros[:, None])
        self.jit_compile_seconds = time.perf_counter() - t0
        return self.jit_compile_seconds

    # -- execution ------------------------------------------------------
    def execute(self, x: np.ndarray) -> SpMVResult:
        """Replay the plan for one input vector."""
        x = self.matrix.check_x(x)
        tracer = _tracer.get_tracer()
        if tracer is None and not _metrics.collecting():
            return SpMVResult(
                y=self._replay(x), counters=self.counters(), device=self.device
            )
        return self._instrumented(tracer, lambda: self._replay(x), 1)

    def execute_many(self, X: np.ndarray) -> SpMVResult:
        """Replay the plan for a multi-RHS block ``X`` of shape ``(n, k)``.

        Returns an :class:`SpMVResult` whose ``y`` has shape ``(m, k)``;
        column ``j`` is bit-identical to ``execute(X[:, j]).y``.
        """
        X = check_multi_x(self.matrix, X)
        k = X.shape[1]
        tracer = _tracer.get_tracer()
        if tracer is None and not _metrics.collecting():
            return SpMVResult(
                y=self._replay_many(X), counters=self.counters(k),
                device=self.device,
            )
        return self._instrumented(tracer, lambda: self._replay_many(X), k)

    def _instrumented(
        self, tracer, fn: Callable[[], np.ndarray], k: int
    ) -> SpMVResult:
        """Replay under the same span/metric protocol as ``SpMVKernel.run``."""
        if tracer is not None:
            attrs = {
                "format": self.format_name,
                "device": self.device.name,
                "engine": "fast",
            }
            if k != 1:
                attrs["k"] = k
            with tracer.start(f"kernel.{self.format_name}", "kernel", attrs) as sp:
                result = SpMVResult(
                    y=fn(), counters=self.counters(k), device=self.device
                )
                sp.attach_counters(result.counters)
                try:
                    sp.attach_timing(result.timing)
                except ValidationError:  # pragma: no cover - defensive
                    pass
        else:
            result = SpMVResult(
                y=fn(), counters=self.counters(k), device=self.device
            )
        _metrics.record_kernel(self.format_name, self.device.name, result.counters)
        return result

    # -- format-specific replay -----------------------------------------
    # The public replay entry points dispatch on the executor backend;
    # both implementations of each are bit-identical by construction
    # (same floating-point operations, same order — see
    # repro.kernels.backends), enforced by tests/kernels/test_backends.py.
    def _replay(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y`` for one validated ``x`` on the active backend."""
        if self.backend == "jit":
            return self._replay_jit(x)
        return self._replay_numpy(x)

    def _replay_many(self, X: np.ndarray) -> np.ndarray:
        if self.backend == "jit":
            return self._replay_many_jit(X)
        return self._replay_many_numpy(X)

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        """The interpreted (NumPy) replay — every plan has one.

        Not an abstractmethod: plan subclasses that predate the backend
        layer (or external plugins) may override ``_replay`` directly and
        opt out of backend dispatch entirely.
        """
        raise NotImplementedError(
            f"{type(self).__name__} defines neither _replay_numpy nor a "
            f"_replay override"
        )

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        # Plans without compiled loops of their own run the numpy replay
        # (composite plans compile through their _children instead).
        return self._replay_numpy(x)

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        # Generic fallback: one replay per column. Formats whose replay
        # vectorizes across columns without changing the per-column
        # floating-point order override this.
        return np.stack(
            [self._replay(X[:, j]) for j in range(X.shape[1])], axis=1
        )

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        # The generic stack dispatches per column, so compiled singles
        # compose into a bit-identical multi-RHS replay.
        return self._replay_many_numpy(X)


# ----------------------------------------------------------------------
# Planner registration — delegates to the unified capability registry
# ----------------------------------------------------------------------
def register_planner(format_name: str):
    """Decorator binding a plan builder to its format's capability record."""

    def deco(fn: Callable[[SparseFormat, DeviceSpec], SpMVPlan]):
        _registry.bind_planner(format_name, fn)
        return fn

    return deco


def has_planner(format_name: str) -> bool:
    """Whether :func:`prepare` supports the format."""
    return _registry.has_planner(format_name)


def plannable_formats() -> Tuple[str, ...]:
    """Format names with a prepared-plan builder."""
    return _registry.plannable_formats()


def prepare(
    matrix: SparseFormat,
    device: DeviceSpec | str = "k20",
    backend: str = "numpy",
) -> SpMVPlan:
    """Build an :class:`SpMVPlan` — the one-time decode + accounting pass.

    ``backend`` selects the executor the plan replays with: ``"numpy"``
    (default), ``"jit"`` or ``"auto"``, resolved per format by
    :func:`repro.kernels.backends.resolve_backend`. A JIT plan
    warm-compiles its loops here so compilation cost is part of the
    build, recorded on the plan as ``jit_compile_seconds``.

    Raises :class:`~repro.errors.KernelError` for formats without a plan
    builder (they stay on the reference engine) and propagates the same
    typed errors a reference run would raise on a corrupted container.
    """
    if isinstance(device, str):
        device = get_device(device)
    builder = _registry.planner_for(matrix.format_name)
    if builder is None:
        raise KernelError(
            f"no prepared-plan builder for format {matrix.format_name!r}; "
            f"plannable formats: {plannable_formats()}"
        )
    resolved = _backends.resolve_backend(backend, matrix.format_name)
    t0 = time.perf_counter()
    with _span(
        "spmv.plan", "pipeline", format=matrix.format_name, device=device.name
    ):
        plan = builder(matrix, device)
    plan.build_seconds = time.perf_counter() - t0
    _metrics.record_plan_build(matrix.format_name, device.name, plan.build_seconds)
    if resolved != "numpy":
        plan.set_backend(resolved)
        seconds = plan.warm_compile()
        _metrics.record_jit_compile(matrix.format_name, device.name, seconds)
    return plan


def _check_plan_type(matrix: SparseFormat, expected: type) -> None:
    if not isinstance(matrix, expected):
        raise KernelError(
            f"planner needs a {expected.__name__}, got {type(matrix).__name__}"
        )


# ----------------------------------------------------------------------
# BRO-ELL (and the value-compressed variant, which shares the replay)
# ----------------------------------------------------------------------
def _decode_ell_slice(
    stream_view: np.ndarray, bit_alloc: np.ndarray, h_i: int, sym_len: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized decode of one slice: ``(cols, valid, gather)`` blocks.

    ``cols`` is the running column index (``col_idx - 1`` of Algorithm 1,
    cumulative over deltas), ``valid`` the non-zero-delta mask, and
    ``gather`` the x-gather index with invalid lanes parked on 0 — exactly
    the values the stepwise kernel computes column by column.
    """
    deltas = unpack_slice(stream_view, bit_alloc, h_i, sym_len)
    valid = deltas != 0
    cols = np.cumsum(deltas, axis=1) - 1
    gather = np.where(valid, cols, 0)
    return cols, valid, gather


def _ell_slice_traffic(
    cols: np.ndarray,
    valid: np.ndarray,
    bit_alloc: np.ndarray,
    h_i: int,
    sym_len: int,
    device: DeviceSpec,
    tex: TextureCacheModel,
) -> Tuple[int, int, int, int]:
    """Per-slice traffic terms shared by the BRO-ELL and VC planners.

    Returns ``(idx_tx, warp_valid_cols, x_bytes, decode_ops)``. A fully
    consumed stream costs exactly ``row_stream_symbols`` coalesced loads —
    the stepwise decoder's ``symbol_loads`` equals ``ceil(total_bits /
    sym_len)`` because it loads lazily and the packer emits no spare
    symbols — so the prototype needs no decoder walk.
    """
    ws = device.warp_size
    tb = device.transaction_bytes
    l_i = valid.shape[1]
    n_sym = row_stream_symbols(bit_alloc, sym_len)
    idx_tx = n_sym * contiguous_transactions(h_i, sym_len // 8, ws, tb)
    warps = ceil_div(h_i, ws)
    pad_rows = warps * ws - h_i
    warp_valid = np.any(
        np.vstack([valid, np.zeros((pad_rows, l_i), dtype=bool)])
        .reshape(warps, ws, l_i),
        axis=1,
    )
    x_bytes = tex.block_x_bytes(cols, valid)
    decode_ops = DECODE_OPS_PER_ITER * h_i * l_i + DECODE_OPS_PER_LOAD * n_sym * h_i
    return idx_tx, int(warp_valid.sum()), x_bytes, decode_ops


#: One prepared slice: (r0, r1, vals_T, gather_T, valid_T), all (l_i, h_i)
#: C-contiguous so the replay's per-column accumulation reads rows.
_EllSlice = Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]


class BROELLPlan(SpMVPlan):
    """Replay plan for Algorithm 1: gather, mask, accumulate per column."""

    format_name = "bro_ell"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        slices: List[_EllSlice],
    ) -> None:
        super().__init__(matrix, device, counters)
        self._slices = slices

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t in self._slices:
            # Same ops, same order as the stepwise kernel: a masked FMA
            # per column, accumulated sequentially (not pairwise), so the
            # result is bit-identical — including the -0.0 and 0*inf
            # corner cases the np.where masking preserves.
            prod = np.where(valid_t, vals_t * x[gather_t], 0.0)
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[r0:r1] = acc
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        k = X.shape[1]
        y = np.zeros((self.matrix.shape[0], k), dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t in self._slices:
            prod = np.where(
                valid_t[:, :, None], vals_t[:, :, None] * X[gather_t], 0.0
            )
            acc = np.zeros((r1 - r0, k), dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[r0:r1] = acc
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t in self._slices:
            _backends.ell_slice_spmv(vals_t, gather_t, valid_t, x, y[r0:r1])
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t in self._slices:
            _backends.ell_slice_spmm(vals_t, gather_t, valid_t, X, y[r0:r1])
        return y


@register_planner("bro_ell")
def _plan_bro_ell(matrix: SparseFormat, device: DeviceSpec) -> BROELLPlan:
    _check_plan_type(matrix, BROELLMatrix)
    assert isinstance(matrix, BROELLMatrix)
    m, _ = matrix.shape
    launch = LaunchConfig(matrix.h, max(1, matrix.num_slices))
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)
    val_per_iter = ceil_div(ws * 8, tb)

    idx_tx = val_tx = x_bytes = decode_ops = 0
    slices: List[_EllSlice] = []
    for r0, r1, bit_alloc, stream_view, val_block in matrix.iter_slices():
        h_i, l_i = val_block.shape
        if l_i == 0:
            continue
        cols, valid, gather = _decode_ell_slice(
            stream_view, bit_alloc, h_i, matrix.sym_len
        )
        s_idx_tx, warp_cols, s_x_bytes, s_decode = _ell_slice_traffic(
            cols, valid, bit_alloc, h_i, matrix.sym_len, device, tex
        )
        idx_tx += s_idx_tx
        val_tx += warp_cols * val_per_iter
        x_bytes += s_x_bytes
        decode_ops += s_decode
        slices.append(
            (
                r0,
                r1,
                np.ascontiguousarray(val_block.T),
                np.ascontiguousarray(gather.T),
                np.ascontiguousarray(valid.T),
            )
        )

    counters = KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
        aux_bytes=int(matrix.num_col.sum()) + 4 * matrix.num_slices,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * matrix.nnz,
        decode_ops=decode_ops,
        launches=1,
        threads=launch.total_threads,
    )
    return BROELLPlan(matrix, device, counters, slices)


class BROELLVCPlan(BROELLPlan):
    """Same replay as BRO-ELL; values were decoded once at build time."""

    format_name = "bro_ell_vc"


@register_planner("bro_ell_vc")
def _plan_bro_ell_vc(matrix: SparseFormat, device: DeviceSpec) -> BROELLVCPlan:
    _check_plan_type(matrix, BROELLVCMatrix)
    assert isinstance(matrix, BROELLVCMatrix)
    m, _ = matrix.shape
    launch = LaunchConfig(matrix.h, max(1, matrix.num_slices))
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)

    idx_tx = val_bytes = x_bytes = decode_ops = 0
    slices: List[_EllSlice] = []
    for i in range(matrix.num_slices):
        r0 = int(matrix.slice_edges[i])
        r1 = int(matrix.slice_edges[i + 1])
        h_i = r1 - r0
        l_i = int(matrix.num_col[i])
        if l_i == 0:
            continue
        bit_alloc = matrix.bit_allocs[i]
        cols, valid, gather = _decode_ell_slice(
            matrix.stream.slice_view(i), bit_alloc, h_i, matrix.sym_len
        )
        val_block = matrix.decoded_val_block(i)
        s_idx_tx, warp_cols, s_x_bytes, s_decode = _ell_slice_traffic(
            cols, valid, bit_alloc, h_i, matrix.sym_len, device, tex
        )
        idx_tx += s_idx_tx
        vs = matrix.value_slices[i]
        if vs.raw is not None:
            val_bytes += warp_cols * ceil_div(ws * 8, tb) * tb
        else:
            val_bytes += int(vs.codes.nbytes) + int(vs.dictionary.nbytes)
            decode_ops += DECODE_OPS_PER_ITER * h_i * l_i
        x_bytes += s_x_bytes
        decode_ops += s_decode
        slices.append(
            (
                r0,
                r1,
                np.ascontiguousarray(val_block.T),
                np.ascontiguousarray(gather.T),
                np.ascontiguousarray(valid.T),
            )
        )

    counters = KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=int(val_bytes),
        x_bytes=x_bytes,
        y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
        aux_bytes=int(matrix.num_col.sum()) + 4 * matrix.num_slices,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * matrix.nnz,
        decode_ops=decode_ops,
        launches=1,
        threads=launch.total_threads,
    )
    return BROELLVCPlan(matrix, device, counters, slices)


# ----------------------------------------------------------------------
# BRO-ELL multi-thread-per-row: inner plan + fold
# ----------------------------------------------------------------------
class MultiRowBROELLPlan(SpMVPlan):
    """Inner BRO-ELL plan over the row-split storage plus the fold."""

    format_name = "bro_ell_mt"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        inner_plan: BROELLPlan,
    ) -> None:
        super().__init__(matrix, device, counters)
        self._inner_plan = inner_plan

    def _children(self) -> Tuple[SpMVPlan, ...]:
        return (self._inner_plan,)

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        inner = self._inner_plan.execute(x)
        return self.matrix.fold(inner.y)

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        partial = self._inner_plan.execute_many(X).y
        m = self.matrix.shape[0]
        t = self.matrix.threads_per_row
        return partial.reshape(m, t, X.shape[1]).sum(axis=1)


@register_planner("bro_ell_mt")
def _plan_bro_ell_mt(matrix: SparseFormat, device: DeviceSpec) -> MultiRowBROELLPlan:
    _check_plan_type(matrix, MultiRowBROELL)
    assert isinstance(matrix, MultiRowBROELL)
    inner_plan = _plan_bro_ell(matrix.inner, device)
    counters = inner_plan.counters()
    m = matrix.shape[0]
    t = matrix.threads_per_row
    counters.y_bytes = (
        contiguous_transactions(m, 8, device.warp_size, device.transaction_bytes)
        * device.transaction_bytes
    )
    counters.issued_flops += m * (t - 1)
    return MultiRowBROELLPlan(matrix, device, counters, inner_plan)


# ----------------------------------------------------------------------
# BRO-COO: cached decoded rows + vectorized segmented reduction
# ----------------------------------------------------------------------
class BROCOOPlan(SpMVPlan):
    """Replay: multiply against the cached decoded (padded) row indices."""

    format_name = "bro_coo"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        rows: np.ndarray,
    ) -> None:
        super().__init__(matrix, device, counters)
        self._rows = rows

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        products = self.matrix.vals * x[self.matrix.col_idx]
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, self._rows, products)
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        products = self.matrix.vals[:, None] * X[self.matrix.col_idx]
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, self._rows, products)
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros(mat.shape[0], dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            _backends.coo_scatter_spmv(self._rows, mat.col_idx, mat.vals, x, y)
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros((mat.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            _backends.coo_scatter_spmm(self._rows, mat.col_idx, mat.vals, X, y)
        return y


@register_planner("bro_coo")
def _plan_bro_coo(matrix: SparseFormat, device: DeviceSpec) -> BROCOOPlan:
    _check_plan_type(matrix, BROCOOMatrix)
    assert isinstance(matrix, BROCOOMatrix)
    ws_fmt = matrix.warp_size
    tb = device.transaction_bytes
    sym_len = matrix.stream.sym_len

    rows = np.zeros(matrix.padded_nnz, dtype=np.int64)
    decode_ops = 0
    idx_stream_tx = 0
    for i, lo, hi, _stream_view in matrix.iter_intervals():
        L = matrix.interval_lanes(i)
        block = matrix.decode_interval_rows(i)  # (w, L), cumulative - 1
        rows[lo:hi] = block.T.reshape(-1)[: hi - lo]
        bits = L * int(matrix.bit_alloc[i])
        n_sym = ceil_div(bits, sym_len) if bits else 0
        idx_stream_tx += n_sym * contiguous_transactions(
            ws_fmt, sym_len // 8, device.warp_size, tb
        )
        decode_ops += DECODE_OPS_PER_ITER * ws_fmt * L
        decode_ops += DECODE_OPS_PER_LOAD * n_sym * ws_fmt

    counters = coo_segmented_counters(
        rows,
        matrix.col_idx.astype(np.int64),
        matrix.padded_nnz,
        device,
        matrix.interval_size,
    )
    counters.index_bytes += idx_stream_tx * tb
    counters.aux_bytes += matrix.num_intervals
    counters.decode_ops = decode_ops
    counters.useful_flops = 2 * matrix.nnz
    if matrix.padded_nnz == 0:
        counters.threads = device.warp_size
    return BROCOOPlan(matrix, device, counters, rows)


# ----------------------------------------------------------------------
# BRO-HYB: composed ELL + COO sub-plans (two launches, like the kernel)
# ----------------------------------------------------------------------
class BROHYBPlan(SpMVPlan):
    """Composition of the part plans, mirroring the two-launch kernel."""

    format_name = "bro_hyb"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        ell_plan: Optional[BROELLPlan],
        coo_plan: Optional[BROCOOPlan],
    ) -> None:
        super().__init__(matrix, device, counters)
        self._ell_plan = ell_plan
        self._coo_plan = coo_plan

    def _children(self) -> Tuple[SpMVPlan, ...]:
        return tuple(
            p for p in (self._ell_plan, self._coo_plan) if p is not None
        )

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        if self._ell_plan is not None:
            y = self._ell_plan.execute(x).y
        else:
            y = np.zeros(m)
        if self._coo_plan is not None:
            y = y + self._coo_plan.execute(x).y
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        if self._ell_plan is not None:
            y = self._ell_plan.execute_many(X).y
        else:
            y = np.zeros((m, X.shape[1]))
        if self._coo_plan is not None:
            y = y + self._coo_plan.execute_many(X).y
        return y


@register_planner("bro_hyb")
def _plan_bro_hyb(matrix: SparseFormat, device: DeviceSpec) -> BROHYBPlan:
    _check_plan_type(matrix, BROHYBMatrix)
    assert isinstance(matrix, BROHYBMatrix)
    ell_plan = _plan_bro_ell(matrix.ell, device) if matrix.ell.nnz else None
    coo_plan = (
        _plan_bro_coo(matrix.coo, device) if matrix.coo.padded_nnz else None
    )
    if ell_plan is not None:
        counters = ell_plan.counters()
    else:
        counters = KernelCounters(launches=0, threads=device.warp_size)
    if coo_plan is not None:
        counters = counters + coo_plan.counters()
    return BROHYBPlan(matrix, device, counters, ell_plan, coo_plan)


# ----------------------------------------------------------------------
# Uncompressed baselines: the functional replay is already one gather
# away, but the traffic accounting (texture-cache walks over every block
# or row) dominates the reference call — caching it is the whole win.
# ----------------------------------------------------------------------
class ELLPACKPlan(SpMVPlan):
    format_name = "ellpack"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        col_idx_t: np.ndarray,
        vals_t: np.ndarray,
    ) -> None:
        super().__init__(matrix, device, counters)
        #: (k, m) C-contiguous transposes: the replay walks columns, like
        #: the CUSP kernel's iteration-c grid reads.
        self._col_idx_t = col_idx_t
        self._vals_t = vals_t

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        # Column-sequential accumulation — the kernel's loop order (and
        # the compiled backend's); einsum's SIMD-blocked dot would
        # reassociate the sum and break backend bit-identity.
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for c in range(self._vals_t.shape[0]):
            y += self._vals_t[c] * x[self._col_idx_t[c]]
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        _backends.ellpack_spmv(self._col_idx_t, self._vals_t, x, y)
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        Y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        _backends.ellpack_spmm(self._col_idx_t, self._vals_t, X, Y)
        return Y


@register_planner("ellpack")
def _plan_ellpack(matrix: SparseFormat, device: DeviceSpec) -> ELLPACKPlan:
    _check_plan_type(matrix, ELLPACKMatrix)
    assert isinstance(matrix, ELLPACKMatrix)
    m, _ = matrix.shape
    k = matrix.k
    threads_per_block = 256  # ELLPACKKernel's default launch shape
    launch = LaunchConfig.for_rows(m, threads_per_block)
    tb = device.transaction_bytes
    ws = device.warp_size

    idx_tx = k * contiguous_transactions(m, 4, ws, tb)
    val_tx = k * contiguous_transactions(m, 8, ws, tb)
    y_tx = contiguous_transactions(m, 8, ws, tb)

    tex = TextureCacheModel(device)
    x_bytes = 0
    for r0 in range(0, m, threads_per_block):
        block_cols = matrix.col_idx[r0 : r0 + threads_per_block]
        x_bytes += tex.block_x_bytes(
            block_cols, np.ones(block_cols.shape, dtype=bool)
        )

    counters = KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=y_tx * tb,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * m * k,
        launches=1,
        threads=launch.total_threads,
    )
    return ELLPACKPlan(
        matrix,
        device,
        counters,
        np.ascontiguousarray(matrix.col_idx.T),
        np.ascontiguousarray(matrix.vals.T),
    )


class COOPlan(SpMVPlan):
    format_name = "coo"

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros(mat.shape[0], dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, mat.row_idx, mat.vals * x[mat.col_idx])
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros((mat.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, mat.row_idx, mat.vals[:, None] * X[mat.col_idx])
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros(mat.shape[0], dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            _backends.coo_scatter_spmv(mat.row_idx, mat.col_idx, mat.vals, x, y)
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros((mat.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            _backends.coo_scatter_spmm(mat.row_idx, mat.col_idx, mat.vals, X, y)
        return y


@register_planner("coo")
def _plan_coo(matrix: SparseFormat, device: DeviceSpec) -> COOPlan:
    _check_plan_type(matrix, COOMatrix)
    assert isinstance(matrix, COOMatrix)
    ws = device.warp_size
    tb = device.transaction_bytes
    n = ceil_div(matrix.nnz, ws) * ws if matrix.nnz else 0
    row = np.zeros(n, dtype=np.int64)
    col = np.zeros(n, dtype=np.int64)
    row[: matrix.nnz] = matrix.row_idx
    col[: matrix.nnz] = matrix.col_idx
    if matrix.nnz:
        row[matrix.nnz :] = int(matrix.row_idx[-1])

    interval = adaptive_interval_size(n, ws)
    counters = coo_segmented_counters(row, col, n, device, interval)
    counters.index_bytes += contiguous_transactions(n, 4, ws, tb) * tb
    counters.useful_flops = 2 * matrix.nnz
    if n == 0:
        counters.threads = ws
    return COOPlan(matrix, device, counters)


class CSRPlan(SpMVPlan):
    format_name = "csr"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        schedule,
    ) -> None:
        super().__init__(matrix, device, counters)
        #: per-position gather schedule for the column-stepped replay.
        self._schedule = schedule

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        # Row-sequential sums via the column-stepped schedule (matches
        # the reference kernel and the compiled loop bit-for-bit;
        # CSRMatrix.spmv's reduceat would reassociate long rows).
        mat = self.matrix
        return _backends.csr_spmv_columns(
            mat.indices, mat.vals, x, self._schedule, mat.shape[0]
        )

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.empty(mat.shape[0], dtype=VALUE_DTYPE)
        _backends.csr_spmv(mat.indptr, mat.indices, mat.vals, x, y)
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        mat = self.matrix
        Y = np.empty((mat.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        _backends.csr_spmm(mat.indptr, mat.indices, mat.vals, X, Y)
        return Y


@register_planner("csr")
def _plan_csr(matrix: SparseFormat, device: DeviceSpec) -> CSRPlan:
    _check_plan_type(matrix, CSRMatrix)
    assert isinstance(matrix, CSRMatrix)
    m, _ = matrix.shape
    ws = device.warp_size
    tb = device.transaction_bytes
    launch = LaunchConfig.for_warps(m, ws)

    lengths = matrix.row_lengths()
    starts = matrix.indptr[:-1]
    misaligned_idx = ((starts * 4) % tb != 0) & (lengths > 0)
    misaligned_val = ((starts * 8) % tb != 0) & (lengths > 0)
    idx_tx = int(np.ceil(lengths * 4 / tb).sum() + misaligned_idx.sum())
    val_tx = int(np.ceil(lengths * 8 / tb).sum() + misaligned_val.sum())
    y_tx = contiguous_transactions(m, 8, ws, tb)
    aux_tx = contiguous_transactions(m + 1, 4, ws, tb)

    tex = TextureCacheModel(device)
    x_bytes = 0
    for r in range(m):
        lo, hi = int(matrix.indptr[r]), int(matrix.indptr[r + 1])
        if lo == hi:
            continue
        L = ceil_div(hi - lo, ws)
        block = np.zeros(L * ws, dtype=np.int64)
        block[: hi - lo] = matrix.indices[lo:hi]
        valid = np.zeros(L * ws, dtype=bool)
        valid[: hi - lo] = True
        x_bytes += (
            tex.warp_sequence_fetches(
                block.reshape(L, ws).T, valid.reshape(L, ws).T
            )
            * device.tex_line_bytes
        )

    counters = KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=y_tx * tb,
        aux_bytes=aux_tx * tb,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * matrix.nnz + warp_reduce_flops(ws) * m,
        launches=1,
        threads=launch.total_threads,
    )
    return CSRPlan(
        matrix, device, counters, _backends.csr_column_schedule(matrix.indptr)
    )


# ----------------------------------------------------------------------
# Sliced ELLPACK / ELLPACK-R: ELL-style replays over cached transposes.
# The counters helpers live next to the reference kernels
# (sliced_ell_counters, ellpack_r_counters, ...) so plan and kernel
# accounting can never drift apart.
# ----------------------------------------------------------------------
class SlicedELLPlan(SpMVPlan):
    """Per-slice unmasked column accumulation over cached transposes."""

    format_name = "sliced_ellpack"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        slices: List[Tuple[int, int, np.ndarray, np.ndarray]],
    ) -> None:
        super().__init__(matrix, device, counters)
        #: (r0, r1, cols_T, vals_T) with (l_i, h_i) C-contiguous blocks.
        self._slices = slices

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t in self._slices:
            prod = vals_t * x[cols_t]
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[r0:r1] = acc
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        k = X.shape[1]
        y = np.zeros((self.matrix.shape[0], k), dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t in self._slices:
            prod = vals_t[:, :, None] * X[cols_t]
            acc = np.zeros((r1 - r0, k), dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[r0:r1] = acc
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t in self._slices:
            _backends.ellpack_spmv(cols_t, vals_t, x, y[r0:r1])
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t in self._slices:
            _backends.ellpack_spmm(cols_t, vals_t, X, y[r0:r1])
        return y


@register_planner("sliced_ellpack")
def _plan_sliced_ell(matrix: SparseFormat, device: DeviceSpec) -> SlicedELLPlan:
    _check_plan_type(matrix, SlicedELLPACKMatrix)
    assert isinstance(matrix, SlicedELLPACKMatrix)
    slices: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
    for r0, r1, col_block, val_block in matrix.iter_slices():
        if col_block.shape[1] == 0:
            continue
        slices.append(
            (
                r0,
                r1,
                np.ascontiguousarray(col_block.T),
                np.ascontiguousarray(val_block.T),
            )
        )
    return SlicedELLPlan(
        matrix, device, sliced_ell_counters(matrix, device), slices
    )


class ELLPACKRPlan(SpMVPlan):
    """Masked column accumulation over cached (k, m) transposes."""

    format_name = "ellpack_r"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        col_idx_t: np.ndarray,
        vals_t: np.ndarray,
        mask_t: np.ndarray,
    ) -> None:
        super().__init__(matrix, device, counters)
        self._col_idx_t = col_idx_t
        self._vals_t = vals_t
        self._mask_t = mask_t

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for c in range(self._vals_t.shape[0]):
            y += np.where(
                self._mask_t[c], self._vals_t[c] * x[self._col_idx_t[c]], 0.0
            )
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        if self._vals_t.shape[0]:
            _backends.ell_slice_spmv(
                self._vals_t, self._col_idx_t, self._mask_t, x, y
            )
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        Y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        if self._vals_t.shape[0]:
            _backends.ell_slice_spmm(
                self._vals_t, self._col_idx_t, self._mask_t, X, Y
            )
        return Y


@register_planner("ellpack_r")
def _plan_ellpack_r(matrix: SparseFormat, device: DeviceSpec) -> ELLPACKRPlan:
    _check_plan_type(matrix, ELLPACKRMatrix)
    assert isinstance(matrix, ELLPACKRMatrix)
    return ELLPACKRPlan(
        matrix,
        device,
        ellpack_r_counters(matrix, device),
        np.ascontiguousarray(matrix.col_idx.T),
        np.ascontiguousarray(matrix.vals.T),
        np.ascontiguousarray(matrix.valid_mask().T),
    )


# ----------------------------------------------------------------------
# HYB: composed ELLPACK + COO sub-plans (two launches, like the kernel)
# ----------------------------------------------------------------------
class HYBPlan(SpMVPlan):
    """Composition of the part plans, mirroring the two-launch kernel."""

    format_name = "hyb"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        ell_plan: Optional[ELLPACKPlan],
        coo_plan: Optional[COOPlan],
    ) -> None:
        super().__init__(matrix, device, counters)
        self._ell_plan = ell_plan
        self._coo_plan = coo_plan

    def _children(self) -> Tuple[SpMVPlan, ...]:
        return tuple(
            p for p in (self._ell_plan, self._coo_plan) if p is not None
        )

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        if self._ell_plan is not None:
            y = self._ell_plan.execute(x).y
        else:
            y = np.zeros(m)
        if self._coo_plan is not None:
            y = y + self._coo_plan.execute(x).y
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        if self._ell_plan is not None:
            y = self._ell_plan.execute_many(X).y
        else:
            y = np.zeros((m, X.shape[1]))
        if self._coo_plan is not None:
            y = y + self._coo_plan.execute_many(X).y
        return y


@register_planner("hyb")
def _plan_hyb(matrix: SparseFormat, device: DeviceSpec) -> HYBPlan:
    _check_plan_type(matrix, HYBMatrix)
    assert isinstance(matrix, HYBMatrix)
    ell_plan = _plan_ellpack(matrix.ell, device) if matrix.ell.k else None
    coo_plan = _plan_coo(matrix.coo, device) if matrix.coo.nnz else None
    if ell_plan is not None:
        counters = ell_plan.counters()
    else:
        counters = KernelCounters(launches=0, threads=device.warp_size)
    if coo_plan is not None:
        counters = counters + coo_plan.counters()
    return HYBPlan(matrix, device, counters, ell_plan, coo_plan)


# ----------------------------------------------------------------------
# BELLPACK: cached block tables + padded-x register accumulation
# ----------------------------------------------------------------------
class BELLPACKPlan(SpMVPlan):
    format_name = "bellpack"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        bcol: np.ndarray,
        bvals: np.ndarray,
        n_pad: int,
    ) -> None:
        super().__init__(matrix, device, counters)
        #: (mb, K) int64 block columns and (mb, K, r, c) values.
        self._bcol = bcol
        self._bvals = bvals
        self._n_pad = n_pad

    def _pad_x(self, x: np.ndarray) -> np.ndarray:
        x_pad = np.zeros(self._n_pad, dtype=VALUE_DTYPE)
        x_pad[: x.shape[0]] = x
        return x_pad

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        mb, K, r, c = self._bvals.shape
        x_pad = self._pad_x(x)
        acc = np.zeros((mb, r), dtype=VALUE_DTYPE)
        for k in range(K):
            base = self._bcol[:, k] * c
            for cc in range(c):
                acc += self._bvals[:, k, :, cc] * x_pad[base + cc][:, None]
        return acc.reshape(-1)[:m]

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        mb, K, r, c = self._bvals.shape
        X_pad = np.zeros((self._n_pad, X.shape[1]), dtype=VALUE_DTYPE)
        X_pad[: X.shape[0]] = X
        acc = np.zeros((mb, r, X.shape[1]), dtype=VALUE_DTYPE)
        for k in range(K):
            base = self._bcol[:, k] * c
            for cc in range(c):
                acc += (
                    self._bvals[:, k, :, cc][:, :, None]
                    * X_pad[base + cc][:, None, :]
                )
        return acc.reshape(mb * r, -1)[:m]

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        mb, _K, r, _c = self._bvals.shape
        y_blocks = np.empty((mb, r), dtype=VALUE_DTYPE)
        _backends.bellpack_spmv(self._bcol, self._bvals, self._pad_x(x), y_blocks)
        return y_blocks.reshape(-1)[:m]

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        m = self.matrix.shape[0]
        mb, _K, r, _c = self._bvals.shape
        X_pad = np.zeros((self._n_pad, X.shape[1]), dtype=VALUE_DTYPE)
        X_pad[: X.shape[0]] = X
        Y_blocks = np.empty((mb, r, X.shape[1]), dtype=VALUE_DTYPE)
        _backends.bellpack_spmm(self._bcol, self._bvals, X_pad, Y_blocks)
        return Y_blocks.reshape(mb * r, -1)[:m]


@register_planner("bellpack")
def _plan_bellpack(matrix: SparseFormat, device: DeviceSpec) -> BELLPACKPlan:
    _check_plan_type(matrix, BELLPACKMatrix)
    assert isinstance(matrix, BELLPACKMatrix)
    _r, c = matrix.block_shape
    n_pad = ceil_div(matrix.shape[1], c) * c
    return BELLPACKPlan(
        matrix,
        device,
        bellpack_counters(matrix, device),
        np.ascontiguousarray(matrix.block_col_idx.astype(np.int64)),
        np.ascontiguousarray(matrix.block_vals),
        n_pad,
    )


# ----------------------------------------------------------------------
# SELL-C-σ family: chunked ELL replays + permutation scatter
# ----------------------------------------------------------------------
class SELLCSigmaPlan(SpMVPlan):
    """Unmasked chunk accumulation scattered through ``row_ids``."""

    format_name = "sell_c_sigma"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        chunks: List[Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        super().__init__(matrix, device, counters)
        #: (r0, r1, cols_T, vals_T, ids) per non-empty chunk.
        self._chunks = chunks

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t, ids in self._chunks:
            prod = vals_t * x[cols_t]
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[ids] = acc
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        k = X.shape[1]
        y = np.zeros((self.matrix.shape[0], k), dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t, ids in self._chunks:
            prod = vals_t[:, :, None] * X[cols_t]
            acc = np.zeros((r1 - r0, k), dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[ids] = acc
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t, ids in self._chunks:
            tmp = np.empty(r1 - r0, dtype=VALUE_DTYPE)
            _backends.ellpack_spmv(cols_t, vals_t, x, tmp)
            y[ids] = tmp
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        for r0, r1, cols_t, vals_t, ids in self._chunks:
            tmp = np.empty((r1 - r0, X.shape[1]), dtype=VALUE_DTYPE)
            _backends.ellpack_spmm(cols_t, vals_t, X, tmp)
            y[ids] = tmp
        return y


@register_planner("sell_c_sigma")
def _plan_sell_c_sigma(matrix: SparseFormat, device: DeviceSpec) -> SELLCSigmaPlan:
    _check_plan_type(matrix, SELLCSigmaMatrix)
    assert isinstance(matrix, SELLCSigmaMatrix)
    chunks: List[Tuple[int, int, np.ndarray, np.ndarray, np.ndarray]] = []
    for r0, r1, col_block, val_block in matrix.iter_chunks():
        if col_block.shape[1] == 0:
            continue
        chunks.append(
            (
                r0,
                r1,
                np.ascontiguousarray(col_block.T),
                np.ascontiguousarray(val_block.T),
                np.ascontiguousarray(matrix.row_ids[r0:r1]),
            )
        )
    return SELLCSigmaPlan(matrix, device, sell_counters(matrix, device), chunks)


class BROSELLPlan(SpMVPlan):
    """BRO-ELL's masked replay over sorted chunks + permutation scatter."""

    format_name = "bro_sell"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        chunks: List[Tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        super().__init__(matrix, device, counters)
        #: (r0, r1, vals_T, gather_T, valid_T, ids) per non-empty chunk.
        self._chunks = chunks

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t, ids in self._chunks:
            prod = np.where(valid_t, vals_t * x[gather_t], 0.0)
            acc = np.zeros(r1 - r0, dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[ids] = acc
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        k = X.shape[1]
        y = np.zeros((self.matrix.shape[0], k), dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t, ids in self._chunks:
            prod = np.where(
                valid_t[:, :, None], vals_t[:, :, None] * X[gather_t], 0.0
            )
            acc = np.zeros((r1 - r0, k), dtype=VALUE_DTYPE)
            for c in range(prod.shape[0]):
                acc += prod[c]
            y[ids] = acc
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        y = np.zeros(self.matrix.shape[0], dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t, ids in self._chunks:
            tmp = np.empty(r1 - r0, dtype=VALUE_DTYPE)
            _backends.ell_slice_spmv(vals_t, gather_t, valid_t, x, tmp)
            y[ids] = tmp
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        y = np.zeros((self.matrix.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        for r0, r1, vals_t, gather_t, valid_t, ids in self._chunks:
            tmp = np.empty((r1 - r0, X.shape[1]), dtype=VALUE_DTYPE)
            _backends.ell_slice_spmm(vals_t, gather_t, valid_t, X, tmp)
            y[ids] = tmp
        return y


@register_planner("bro_sell")
def _plan_bro_sell(matrix: SparseFormat, device: DeviceSpec) -> BROSELLPlan:
    _check_plan_type(matrix, BROSELLMatrix)
    assert isinstance(matrix, BROSELLMatrix)
    m, _ = matrix.shape
    launch = LaunchConfig(matrix.c, max(1, matrix.num_chunks))
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)
    val_per_iter = ceil_div(ws * 8, tb)

    idx_tx = val_tx = x_bytes = decode_ops = 0
    chunks: List[Tuple[int, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    for r0, r1, bit_alloc, stream_view, val_block in matrix.iter_chunks():
        h_i, l_i = val_block.shape
        if l_i == 0:
            continue
        cols, valid, gather = _decode_ell_slice(
            stream_view, bit_alloc, h_i, matrix.sym_len
        )
        s_idx_tx, warp_cols, s_x_bytes, s_decode = _ell_slice_traffic(
            cols, valid, bit_alloc, h_i, matrix.sym_len, device, tex
        )
        idx_tx += s_idx_tx
        val_tx += warp_cols * val_per_iter
        x_bytes += s_x_bytes
        decode_ops += s_decode
        chunks.append(
            (
                r0,
                r1,
                np.ascontiguousarray(val_block.T),
                np.ascontiguousarray(gather.T),
                np.ascontiguousarray(valid.T),
                np.ascontiguousarray(matrix.row_ids[r0:r1]),
            )
        )

    counters = KernelCounters(
        index_bytes=idx_tx * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=contiguous_transactions(m, 8, ws, tb) * tb,
        aux_bytes=int(matrix.num_col.sum())
        + 4 * matrix.num_chunks
        + contiguous_transactions(m, 4, ws, tb) * tb,
        useful_flops=2 * matrix.nnz,
        issued_flops=2 * matrix.nnz,
        decode_ops=decode_ops,
        launches=1,
        threads=launch.total_threads,
    )
    return BROSELLPlan(matrix, device, counters, chunks)


# ----------------------------------------------------------------------
# CMRS: cached reconstructed rows + segmented scatter
# ----------------------------------------------------------------------
class CMRSPlan(SpMVPlan):
    """Entry-ordered scatter against the cached reconstructed rows."""

    format_name = "cmrs"

    def __init__(
        self,
        matrix: SparseFormat,
        device: DeviceSpec,
        counters: KernelCounters,
        rows: np.ndarray,
    ) -> None:
        super().__init__(matrix, device, counters)
        self._rows = rows

    def _replay_numpy(self, x: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros(mat.shape[0], dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, self._rows, mat.vals * x[mat.col_idx])
        return y

    def _replay_many_numpy(self, X: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros((mat.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, self._rows, mat.vals[:, None] * X[mat.col_idx])
        return y

    def _replay_jit(self, x: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros(mat.shape[0], dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            _backends.coo_scatter_spmv(self._rows, mat.col_idx, mat.vals, x, y)
        return y

    def _replay_many_jit(self, X: np.ndarray) -> np.ndarray:
        mat = self.matrix
        y = np.zeros((mat.shape[0], X.shape[1]), dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            _backends.coo_scatter_spmm(self._rows, mat.col_idx, mat.vals, X, y)
        return y


@register_planner("cmrs")
def _plan_cmrs(matrix: SparseFormat, device: DeviceSpec) -> CMRSPlan:
    _check_plan_type(matrix, CMRSMatrix)
    assert isinstance(matrix, CMRSMatrix)
    return CMRSPlan(
        matrix, device, cmrs_counters(matrix, device), matrix.entry_rows()
    )
