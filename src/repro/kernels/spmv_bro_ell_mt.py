"""Simulated multi-thread-per-row BRO-ELL kernel (paper future work).

Runs the plain Algorithm-1 kernel over the row-split storage, then folds
each group of ``t`` partial sums. On a real GPU the fold is an intra-warp
shuffle tree when ``t`` divides the warp (the layout guarantees the
``t`` sub-rows of a row are adjacent threads), so it costs flops but no
extra DRAM round-trip; the model charges the y-write at logical-row
granularity plus the fold flops.
"""

from __future__ import annotations

import numpy as np

from ..core.multirow import MultiRowBROELL
from ..formats.base import SparseFormat
from ..gpu.device import DeviceSpec
from ..gpu.memory import contiguous_transactions
from .base import SpMVKernel, SpMVResult, register_kernel
from .spmv_bro_ell import BROELLKernel

__all__ = ["MultiRowBROELLKernel"]


@register_kernel
class MultiRowBROELLKernel(SpMVKernel):
    """Algorithm 1 over split rows + intra-warp fold."""

    format_name = "bro_ell_mt"

    def __init__(self) -> None:
        self._inner_kernel = BROELLKernel()

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, MultiRowBROELL)
        assert isinstance(matrix, MultiRowBROELL)
        x = matrix.check_x(x)
        inner_res = self._inner_kernel.run(matrix.inner, x, device)
        y = matrix.fold(inner_res.y)

        counters = inner_res.counters
        m = matrix.shape[0]
        t = matrix.threads_per_row
        ws = device.warp_size
        tb = device.transaction_bytes
        # The inner kernel charged a y-write per *sub*-row; replace it with
        # the logical-row write and charge the shuffle-tree fold flops.
        counters.y_bytes = contiguous_transactions(m, 8, ws, tb) * tb
        counters.issued_flops += m * (t - 1)
        return SpMVResult(y=y, counters=counters, device=device)
