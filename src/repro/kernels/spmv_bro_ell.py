"""Simulated BRO-ELL SpMV kernel — Algorithm 1 of the paper.

One thread block per slice, one thread per row. Each loop iteration reads
the next column width from the (constant-memory) ``bit_alloc`` table,
decodes one delta per thread from the per-thread symbol buffer — loading
the next multiplexed symbol coalescedly when the buffer runs dry — and,
when the decoded delta is valid (non-zero), accumulates the running column
index and performs the multiply-add.

The simulation uses :class:`repro.bitstream.reader.SliceDecoder`, whose
scalar control state (remaining-bit count, symbol counter) is shared by all
threads of the slice exactly as the real kernel's is — the property that
makes the scheme divergence-free and lets us vectorize across threads.
"""

from __future__ import annotations

import numpy as np

from ..bitstream.reader import SliceDecoder
from ..errors import DecompressionError
from ..formats.base import SparseFormat
from ..core.bro_ell import BROELLMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DECODE_OPS_PER_ITER, DECODE_OPS_PER_LOAD, DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["BROELLKernel"]


@register_kernel
class BROELLKernel(SpMVKernel):
    """Algorithm-1 decompress-and-multiply kernel."""

    format_name = "bro_ell"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, BROELLMatrix)
        assert isinstance(matrix, BROELLMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        launch = LaunchConfig(matrix.h, max(1, matrix.num_slices))
        tb = device.transaction_bytes
        ws = device.warp_size
        sym_bytes = matrix.sym_len // 8
        tex = TextureCacheModel(device)

        y = np.zeros(m, dtype=VALUE_DTYPE)
        idx_tx = 0
        val_tx = 0
        x_bytes = 0
        decode_ops = 0
        iterations = 0
        for r0, r1, bit_alloc, stream_view, val_block in matrix.iter_slices():
            h_i, l_i = val_block.shape
            if l_i == 0:
                continue
            dec = SliceDecoder(stream_view, h=h_i, sym_len=matrix.sym_len)
            col_idx = np.zeros(h_i, dtype=np.int64)
            acc = np.zeros(h_i, dtype=VALUE_DTYPE)
            cols_hist = np.zeros((h_i, l_i), dtype=np.int64)
            valid_hist = np.zeros((h_i, l_i), dtype=bool)
            warps = ceil_div(h_i, ws)
            for c in range(l_i):
                b = int(bit_alloc[c])
                decoded = dec.decode(b)  # Algorithm 1 lines 5-16
                valid = decoded != 0  # line 17 (0 = invalid marker)
                col_idx = col_idx + decoded  # line 18 (padding adds 0)
                gather = x[np.where(valid, col_idx - 1, 0)]  # 1-based -> 0-based
                acc += np.where(valid, val_block[:, c] * gather, 0.0)  # line 19
                cols_hist[:, c] = col_idx - 1
                valid_hist[:, c] = valid
            y[r0:r1] = acc

            # ---- traffic accounting per slice -------------------------
            # Symbol loads: dec.symbol_loads coalesced h_i-wide loads.
            idx_tx += dec.symbol_loads * contiguous_transactions(
                h_i, sym_bytes, ws, tb
            )
            # Values: a warp touches vals[:, c] only if one of its lanes is
            # valid at column c (the multiply-add sits inside the branch).
            val_per_iter = ceil_div(ws * 8, tb)
            pad_rows = ceil_div(h_i, ws) * ws - h_i
            warp_valid = np.any(
                np.vstack([valid_hist, np.zeros((pad_rows, l_i), dtype=bool)])
                .reshape(warps, ws, l_i),
                axis=1,
            )
            val_tx += int(warp_valid.sum()) * val_per_iter
            x_bytes += tex.block_x_bytes(cols_hist, valid_hist)
            decode_ops += DECODE_OPS_PER_ITER * h_i * l_i
            decode_ops += DECODE_OPS_PER_LOAD * dec.symbol_loads * h_i
            iterations += h_i * l_i
            if dec.remaining_symbols:
                raise DecompressionError("stream not fully consumed")

        y_tx = contiguous_transactions(m, 8, ws, tb)
        counters = KernelCounters(
            index_bytes=idx_tx * tb,
            value_bytes=val_tx * tb,
            x_bytes=x_bytes,
            y_bytes=y_tx * tb,
            # bit_alloc lives in constant memory; each block streams its
            # table once (1 byte per width) plus the int32 num_col entry.
            aux_bytes=int(matrix.num_col.sum()) + 4 * matrix.num_slices,
            useful_flops=2 * matrix.nnz,
            issued_flops=2 * matrix.nnz,
            decode_ops=decode_ops,
            launches=1,
            threads=launch.total_threads,
        )
        return SpMVResult(y=y, counters=counters, device=device)
