"""Simulated CMRS SpMV kernel (Koza et al.).

One warp per strip. Lanes stream the strip's entries — 4 B column index,
1 B row-in-strip offset, 8 B value per entry, all coalesced — multiply,
reconstruct each entry's absolute row with one multiply-add
(``strip * height + row_in_strip``), and run an intra-warp segmented
reduction keyed on the reconstructed row before committing per-row
partials with atomics. Compared to plain COO the format replaces the
4-byte absolute row stream with 1 byte per entry; compared to BRO-COO it
reaches a fixed 4× row-index shrink with byte-aligned loads and a
2-op/entry decode instead of bit-stream arithmetic.

:func:`cmrs_counters` is shared with the prepared-plan planner so replay
counters are equal by construction.
"""

from __future__ import annotations

import numpy as np

from ..formats.base import SparseFormat
from ..formats.cmrs import CMRSMatrix
from ..gpu.counters import KernelCounters
from ..gpu.device import DeviceSpec
from ..gpu.launch import LaunchConfig
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..gpu.warp import warp_reduce_flops
from ..telemetry.tracer import span as _span
from ..types import VALUE_DTYPE
from ..utils.bits import ceil_div
from .base import SpMVKernel, SpMVResult, register_kernel

__all__ = ["CMRSKernel", "cmrs_counters"]


def cmrs_counters(matrix: CMRSMatrix, device: DeviceSpec) -> KernelCounters:
    """Traffic/flop accounting of the CMRS kernel (shared with plans)."""
    tb = device.transaction_bytes
    ws = device.warp_size
    tex = TextureCacheModel(device)
    nnz = matrix.nnz
    ptr = matrix.strip_ptr
    n_strips = matrix.num_strips

    col_tx = contiguous_transactions(nnz, 4, ws, tb)
    ris_tx = contiguous_transactions(nnz, 1, ws, tb)
    val_tx = contiguous_transactions(nnz, 8, ws, tb)

    # x reads and y commits per strip: a warp walks its entries in
    # ws-wide iterations; one atomic (16 B) per distinct row per strip.
    x_bytes = 0
    y_updates = 0
    issued = 2 * nnz
    rows = matrix.entry_rows()
    col_idx = matrix.col_idx
    for i in range(n_strips):
        lo, hi = int(ptr[i]), int(ptr[i + 1])
        if hi == lo:
            continue
        L = ceil_div(hi - lo, ws)
        block = np.zeros(L * ws, dtype=np.int64)
        block[: hi - lo] = col_idx[lo:hi]
        valid = np.zeros(L * ws, dtype=bool)
        valid[: hi - lo] = True
        x_bytes += tex.warp_sequence_fetches(
            block.reshape(L, ws).T, valid.reshape(L, ws).T
        ) * device.tex_line_bytes
        y_updates += int(np.unique(rows[lo:hi]).shape[0])
        issued += warp_reduce_flops(ws) * L

    launch = LaunchConfig.for_warps(max(1, n_strips), ws)
    return KernelCounters(
        index_bytes=(col_tx + ris_tx) * tb,
        value_bytes=val_tx * tb,
        x_bytes=x_bytes,
        y_bytes=16 * y_updates,
        # Each warp reads its two strip_ptr entries (int32).
        aux_bytes=8 * n_strips,
        useful_flops=2 * nnz,
        issued_flops=issued,
        # Row reconstruction: one multiply-add per entry.
        decode_ops=2 * nnz,
        launches=1,
        threads=launch.total_threads,
    )


@register_kernel
class CMRSKernel(SpMVKernel):
    """CMRS kernel: one warp per strip, uint8 row offsets."""

    format_name = "cmrs"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, CMRSMatrix)
        assert isinstance(matrix, CMRSMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape

        y = np.zeros(m, dtype=VALUE_DTYPE)
        with _span("reduce.segmented", "kernel"):
            # Entry-ordered scatter accumulation — the commit order of the
            # per-strip segmented reduction.
            np.add.at(y, matrix.entry_rows(), matrix.vals * x[matrix.col_idx])

        return SpMVResult(
            y=y, counters=cmrs_counters(matrix, device), device=device
        )
