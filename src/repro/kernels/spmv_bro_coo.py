"""Simulated BRO-COO SpMV kernel (paper Section 3.2).

Identical to the COO kernel except that the row indices are decoded
on-the-fly from the packed per-interval stream: each lane keeps a running
row index accumulated from its decoded deltas, with the same shared-control
decode loop as BRO-ELL (a single bit width per interval, so all lanes stay
in lockstep).
"""

from __future__ import annotations

import numpy as np

from ..bitstream.reader import SliceDecoder
from ..core.bro_coo import BROCOOMatrix
from ..formats.base import SparseFormat
from ..gpu.device import DECODE_OPS_PER_ITER, DECODE_OPS_PER_LOAD, DeviceSpec
from ..gpu.memory import contiguous_transactions
from ..telemetry.tracer import span as _span
from ..types import VALUE_DTYPE
from .base import SpMVKernel, SpMVResult, register_kernel
from .spmv_coo import coo_segmented_counters

__all__ = ["BROCOOKernel"]


@register_kernel
class BROCOOKernel(SpMVKernel):
    """BRO-COO kernel: decode row deltas, then segmented reduction."""

    format_name = "bro_coo"

    def _execute(
        self, matrix: SparseFormat, x: np.ndarray, device: DeviceSpec
    ) -> SpMVResult:
        self._check(matrix, BROCOOMatrix)
        assert isinstance(matrix, BROCOOMatrix)
        x = matrix.check_x(x)
        m, _ = matrix.shape
        ws_fmt = matrix.warp_size
        tb = device.transaction_bytes
        sym_bytes = matrix.stream.sym_len // 8

        # ---- functional execution: decode each interval, then scatter ----
        y = np.zeros(m, dtype=VALUE_DTYPE)
        rows = np.zeros(matrix.padded_nnz, dtype=np.int64)
        decode_ops = 0
        idx_stream_tx = 0
        for i, lo, hi, stream_view in matrix.iter_intervals():
            L = matrix.interval_lanes(i)
            b = int(matrix.bit_alloc[i])
            dec = SliceDecoder(stream_view, h=ws_fmt, sym_len=matrix.stream.sym_len)
            lane_rows = np.zeros(ws_fmt, dtype=np.int64)
            block = np.empty((ws_fmt, L), dtype=np.int64)
            for c in range(L):
                lane_rows = lane_rows + dec.decode(b)  # 1-based accumulate
                block[:, c] = lane_rows - 1
            rows[lo:hi] = block.T.reshape(-1)[: hi - lo]
            idx_stream_tx += dec.symbol_loads * contiguous_transactions(
                ws_fmt, sym_bytes, device.warp_size, tb
            )
            decode_ops += DECODE_OPS_PER_ITER * ws_fmt * L
            decode_ops += DECODE_OPS_PER_LOAD * dec.symbol_loads * ws_fmt
        products = matrix.vals * x[matrix.col_idx]
        with _span("reduce.segmented", "kernel"):
            np.add.at(y, rows, products)  # phantom padding carries value 0.0

        # ---- traffic accounting --------------------------------------
        counters = coo_segmented_counters(
            rows,
            matrix.col_idx.astype(np.int64),
            matrix.padded_nnz,
            device,
            matrix.interval_size,
        )
        counters.index_bytes += idx_stream_tx * tb
        counters.aux_bytes += matrix.num_intervals  # 1-byte widths (const mem)
        counters.decode_ops = decode_ops
        counters.useful_flops = 2 * matrix.nnz
        if matrix.padded_nnz == 0:
            counters.threads = device.warp_size
        return SpMVResult(y=y, counters=counters, device=device)
