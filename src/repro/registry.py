"""Unified format-capability registry — the single source of truth.

Every per-format capability of the library hangs off one
:class:`FormatSpec` record here: the container class and its
``from_coo`` conversion defaults, the reference simulated kernel, the
prepared-plan builder, the per-block tracer, the tuner cost profile, the
structural validator and the integrity field extractor, plus (implied by
the container) the ``.brx`` serializer. The dispatchers
(:mod:`repro.kernels.dispatch`), the plan engine, the CLI, the bench
harness and the profiler all resolve formats through this module instead
of keeping their own dicts or ``if``/``elif`` chains.

A format can declare everything at its definition site::

    @register_format(
        default_kwargs={"h": 256},
        kernel=MyKernel,
        planner=plan_my_format,
        validator=validate_my_format,
        integrity_fields=fields_my_format,
        tuner=TunerProfile(candidate=True, sweep_h=True),
    )
    class MyMatrix(SparseFormat):
        format_name = "my_format"

or — as the built-in formats do, because the kernels live in modules
that import the formats — attach capabilities later with the ``bind_*``
hooks. Both paths land on the same record; lookups are identical.

This module imports only :mod:`repro.errors`, so every layer of the
library can import it without cycles. Capability providers that live in
optional layers (kernels, tracers) are imported lazily on first lookup.
"""

from __future__ import annotations

import importlib
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import FormatError, KernelError

__all__ = [
    "FormatSpec",
    "TunerProfile",
    "BlockTracer",
    "register_format",
    "unregister_format",
    "get_spec",
    "find_spec",
    "iter_specs",
    "available_formats",
    "bind_kernel",
    "bind_planner",
    "bind_validator",
    "bind_integrity_fields",
    "bind_tracer",
    "bind_tuner",
    "bind_compiled",
    "kernel_for",
    "kernel_formats",
    "planner_for",
    "has_planner",
    "plannable_formats",
    "validator_for",
    "integrity_fields_for",
    "tracer_for",
    "tuner_profile_for",
    "serializable_formats",
    "conversion_kwargs",
    "capability_matrix",
]


@dataclass(frozen=True)
class TunerProfile:
    """How the tuner/advisor treats a format.

    ``candidate`` puts the format in the advisor's default candidate set;
    ``sweep_h`` makes the advisor sweep the slice height ``h``;
    ``dense_family`` marks dense-padded ELL-family storage that is
    skipped outright when the matrix's max/mean row-length ratio makes
    the padded arrays absurd.
    """

    candidate: bool = True
    sweep_h: bool = False
    dense_family: bool = False


@dataclass(frozen=True)
class BlockTracer:
    """Per-block profile capability (``spmv --trace`` / ``profile``).

    ``header()`` returns the column-header line; ``rows(matrix, device)``
    returns trace records each exposing ``.row()``.
    """

    title: str
    header: Callable[[], str]
    rows: Callable[[Any, Any], List[Any]]


@dataclass
class FormatSpec:
    """One format's complete capability record."""

    name: str
    container: Optional[type] = None
    default_kwargs: Dict[str, Any] = field(default_factory=dict)
    kernel: Optional[type] = None
    planner: Optional[Callable[[Any, Any], Any]] = None
    validator: Optional[Callable[[Any, bool], None]] = None
    integrity_fields: Optional[Callable[[Any], Tuple[Dict[str, Any], Tuple]]] = None
    tracer: Optional[BlockTracer] = None
    tuner: Optional[TunerProfile] = None
    #: whether the prepared-plan replay has a compiled (JIT) executor path
    #: (see :mod:`repro.kernels.backends`); independent of whether Numba
    #: is importable in this process.
    compiled: bool = False
    #: BROCodec delta policy the container's index stream runs through
    #: ("columns", "lanes", "columns+lanes"), or ``None`` for formats that
    #: store indices uncompressed.
    codec: Optional[str] = None

    # -- conversion ----------------------------------------------------
    def accepts(self, key: str) -> bool:
        """Whether ``from_coo`` takes keyword ``key`` (per the declaration)."""
        return key in self.default_kwargs

    def conversion_kwargs(self, **overrides: Any) -> Dict[str, Any]:
        """Declared defaults merged with ``overrides``.

        Raises :class:`FormatError` on keywords the format did not
        declare — the registry, not each call site, knows what a
        converter takes.
        """
        unknown = sorted(set(overrides) - set(self.default_kwargs))
        if unknown:
            raise FormatError(
                f"format {self.name!r} does not accept conversion "
                f"keyword(s) {unknown}; declared: "
                f"{sorted(self.default_kwargs)}"
            )
        merged = dict(self.default_kwargs)
        merged.update(overrides)
        return merged

    # -- capability predicates -----------------------------------------
    @property
    def has_serializer(self) -> bool:
        """Whether the container implements ``to_state``/``from_state``."""
        if self.container is None:
            return False
        fn = getattr(self.container, "to_state", None)
        return fn is not None and not getattr(fn, "__serializer_stub__", False)

    def capabilities(self) -> Dict[str, bool]:
        """Boolean capability map (the ``repro formats`` matrix row)."""
        return {
            "container": self.container is not None,
            "kernel": self.kernel is not None,
            "planner": self.planner is not None,
            "tracer": self.tracer is not None,
            "tuner": self.tuner is not None,
            "validator": self.validator is not None,
            "integrity": self.integrity_fields is not None,
            "serializer": self.has_serializer,
            "compiled": self.compiled,
            "codec": self.codec is not None,
        }


# ---------------------------------------------------------------------------
# Registry state
# ---------------------------------------------------------------------------

_SPECS: Dict[str, FormatSpec] = {}
_LOCK = threading.RLock()

#: Modules that provide late-bound capabilities, imported on first miss.
_CAPABILITY_MODULES = {
    "kernel": "repro.kernels",
    "planner": "repro.kernels",
    "tracer": "repro.gpu.trace",
    "validator": "repro.integrity.validators",
    "integrity_fields": "repro.integrity.checksums",
    "compiled": "repro.kernels.backends",
}
_LOADED_MODULES: set = set()


def _slot(name: str) -> FormatSpec:
    """Get or create the (possibly container-less) spec for ``name``."""
    spec = _SPECS.get(name)
    if spec is None:
        spec = FormatSpec(name=name)
        _SPECS[name] = spec
    return spec


def _ensure_loaded(capability: str) -> None:
    """Import the module that late-binds ``capability`` providers."""
    module = _CAPABILITY_MODULES.get(capability)
    if module is None or module in _LOADED_MODULES:
        return
    _LOADED_MODULES.add(module)
    try:
        importlib.import_module(module)
    except ImportError:  # pragma: no cover - partial installs
        pass


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


def register_format(
    cls: Optional[type] = None,
    *,
    default_kwargs: Optional[Dict[str, Any]] = None,
    kernel: Optional[type] = None,
    planner: Optional[Callable] = None,
    validator: Optional[Callable] = None,
    integrity_fields: Optional[Callable] = None,
    tracer: Optional[BlockTracer] = None,
    tuner: Optional[TunerProfile] = None,
    compiled: bool = False,
    codec: Optional[str] = None,
):
    """Class decorator registering a format and its capabilities.

    Usable bare (``@register_format``) or with keywords declaring every
    capability at the definition site. The class must define a non-empty
    ``format_name``; registering the same name twice is an error.
    """

    def decorate(klass: type) -> type:
        name = getattr(klass, "format_name", None)
        if not name:
            raise FormatError(f"{klass.__name__} does not define format_name")
        with _LOCK:
            spec = _SPECS.get(name)
            if spec is not None and spec.container is not None:
                raise FormatError(f"format {name!r} registered twice")
            spec = _slot(name)
            spec.container = klass
            if default_kwargs:
                spec.default_kwargs = dict(default_kwargs)
            if kernel is not None:
                _bind(name, "kernel", kernel, KernelError)
            if planner is not None:
                _bind(name, "planner", planner, KernelError)
            if validator is not None:
                _bind(name, "validator", validator, FormatError)
            if integrity_fields is not None:
                _bind(name, "integrity_fields", integrity_fields, FormatError)
            if tracer is not None:
                _bind(name, "tracer", tracer, FormatError)
            if tuner is not None:
                _bind(name, "tuner", tuner, FormatError)
            if compiled:
                spec.compiled = True
            if codec is not None:
                spec.codec = codec
        return klass

    if cls is not None:
        return decorate(cls)
    return decorate


def unregister_format(name: str) -> None:
    """Remove a format's record entirely (test/plugin teardown hook)."""
    with _LOCK:
        _SPECS.pop(name, None)


def _bind(name: str, capability: str, value: Any, error: type) -> None:
    with _LOCK:
        spec = _slot(name)
        if getattr(spec, capability) is not None:
            what = "kernel for format" if capability == "kernel" else (
                f"{capability.replace('_', ' ')} for format"
            )
            raise error(f"{what} {name!r} registered twice")
        setattr(spec, capability, value)


def bind_kernel(name: str, kernel_cls: type) -> None:
    """Attach a simulated-kernel class to a format name."""
    _bind(name, "kernel", kernel_cls, KernelError)


def bind_planner(name: str, builder: Callable) -> None:
    """Attach a prepared-plan builder to a format name."""
    _bind(name, "planner", builder, KernelError)


def bind_validator(name: str, validator: Callable) -> None:
    """Attach a structural validator to a format name."""
    _bind(name, "validator", validator, FormatError)


def bind_integrity_fields(name: str, extractor: Callable) -> None:
    """Attach an integrity field extractor to a format name."""
    _bind(name, "integrity_fields", extractor, FormatError)


def bind_tracer(name: str, tracer: BlockTracer) -> None:
    """Attach a per-block tracer to a format name."""
    _bind(name, "tracer", tracer, FormatError)


def bind_tuner(name: str, profile: TunerProfile) -> None:
    """Attach a tuner cost profile to a format name."""
    _bind(name, "tuner", profile, FormatError)


def bind_compiled(name: str) -> None:
    """Mark a format's plan replay as having a compiled executor path.

    Idempotent (unlike the other ``bind_*`` hooks): the flag is declared
    once at the backend module's import site, which may run more than
    once across registry reload cycles.
    """
    with _LOCK:
        _slot(name).compiled = True


# ---------------------------------------------------------------------------
# Lookups
# ---------------------------------------------------------------------------


def find_spec(name: str) -> Optional[FormatSpec]:
    """The spec for ``name`` if a container is registered, else ``None``."""
    spec = _SPECS.get(name)
    if spec is None or spec.container is None:
        return None
    return spec


def get_spec(name: str) -> FormatSpec:
    """The spec for ``name``; raises :class:`FormatError` when unknown."""
    spec = find_spec(name)
    if spec is None:
        raise FormatError(
            f"unknown format {name!r}; available: {list(available_formats())}"
        )
    return spec


def iter_specs() -> Tuple[FormatSpec, ...]:
    """All container-backed specs, sorted by format name."""
    with _LOCK:
        return tuple(
            _SPECS[k] for k in sorted(_SPECS) if _SPECS[k].container is not None
        )


def available_formats() -> Tuple[str, ...]:
    """Names of all registered formats, sorted."""
    return tuple(s.name for s in iter_specs())


def kernel_for(name: str):
    """Instantiate the kernel registered for a format name."""
    spec = _SPECS.get(name)
    if spec is None or spec.kernel is None:
        _ensure_loaded("kernel")
        spec = _SPECS.get(name)
    if spec is None or spec.kernel is None:
        raise KernelError(
            f"no kernel for format {name!r}; available: {list(kernel_formats())}"
        )
    return spec.kernel()


def kernel_formats() -> Tuple[str, ...]:
    """Format names that have a simulated kernel."""
    _ensure_loaded("kernel")
    with _LOCK:
        return tuple(k for k in sorted(_SPECS) if _SPECS[k].kernel is not None)


def planner_for(name: str) -> Optional[Callable]:
    """The prepared-plan builder for a format name, or ``None``."""
    spec = _SPECS.get(name)
    if spec is None or spec.planner is None:
        _ensure_loaded("planner")
        spec = _SPECS.get(name)
    return spec.planner if spec is not None else None


def has_planner(name: str) -> bool:
    """Whether the prepared-plan engine supports the format."""
    return planner_for(name) is not None


def plannable_formats() -> Tuple[str, ...]:
    """Format names with a prepared-plan builder."""
    _ensure_loaded("planner")
    with _LOCK:
        return tuple(k for k in sorted(_SPECS) if _SPECS[k].planner is not None)


def validator_for(name: str) -> Optional[Callable]:
    """The structural validator for a format name, or ``None``."""
    spec = _SPECS.get(name)
    if spec is None or spec.validator is None:
        _ensure_loaded("validator")
        spec = _SPECS.get(name)
    return spec.validator if spec is not None else None


def integrity_fields_for(name: str) -> Optional[Callable]:
    """The integrity field extractor for a format name, or ``None``."""
    spec = _SPECS.get(name)
    if spec is None or spec.integrity_fields is None:
        _ensure_loaded("integrity_fields")
        spec = _SPECS.get(name)
    return spec.integrity_fields if spec is not None else None


def tracer_for(name: str) -> Optional[BlockTracer]:
    """The per-block tracer for a format name, or ``None``."""
    spec = _SPECS.get(name)
    if spec is None or spec.tracer is None:
        _ensure_loaded("tracer")
        spec = _SPECS.get(name)
    return spec.tracer if spec is not None else None


def tuner_profile_for(name: str) -> Optional[TunerProfile]:
    """The tuner cost profile for a format name, or ``None``."""
    spec = _SPECS.get(name)
    return spec.tuner if spec is not None else None


def serializable_formats() -> Tuple[str, ...]:
    """Format names whose containers round-trip through ``.brx`` files."""
    return tuple(s.name for s in iter_specs() if s.has_serializer)


def conversion_kwargs(name: str, **overrides: Any) -> Dict[str, Any]:
    """Registry-declared conversion defaults for ``name`` + overrides."""
    return get_spec(name).conversion_kwargs(**overrides)


def capability_matrix() -> List[Dict[str, Any]]:
    """One row per registered format with its capability flags.

    Backs the ``repro formats`` CLI subcommand; forces the lazy
    capability modules so the matrix is complete.
    """
    for capability in _CAPABILITY_MODULES:
        _ensure_loaded(capability)
    rows: List[Dict[str, Any]] = []
    for spec in iter_specs():
        row: Dict[str, Any] = {
            "format": spec.name,
            "container": spec.container.__name__ if spec.container else "",
        }
        caps = spec.capabilities()
        for key in ("kernel", "planner", "tracer", "tuner", "validator",
                    "integrity", "serializer", "compiled"):
            row[key] = caps[key]
        row["codec"] = spec.codec or ""
        row["default_kwargs"] = dict(spec.default_kwargs)
        rows.append(row)
    return rows
