"""Versioned on-disk BRO containers (``.brx`` files).

A ``.brx`` file stores one sparse container exactly as it sits in
(simulated) device memory: the format name, the scalar metadata, every
device array byte-for-byte, and — when the container was sealed — its
CRC32 :class:`~repro.integrity.checksums.IntegrityHeader`. Loading
reconstructs a bit-identical container, so SpMV products, kernel
counters and integrity verification all replay exactly.

Layout (version 1)::

    magic   b"REPROBRX"                       8 bytes
    version u32 little-endian                 4 bytes
    hlen    u32 little-endian                 4 bytes
    header  JSON (utf-8), hlen bytes:
            {"format": str,
             "meta": {...},                # format-specific scalars
             "arrays": [{"name", "dtype", "shape", "offset", "nbytes"}],
             "integrity": {"format_name", "meta_crc", "field_crcs"} | null}
    arrays  raw little-endian bytes, each 64-byte aligned

Array payloads are 64-byte aligned so :func:`load_container` can hand out
zero-copy views of a memory map — loading a multi-GB container touches no
array bytes until a kernel reads them. Writes are atomic (temp file +
fsync + ``os.replace``), mirroring :mod:`repro.matrices.cache`.

The integrity seal is stored, not recomputed, on load: the saved CRCs
keep guarding against on-disk corruption. :func:`load_container` verifies
the reattached header against the loaded bytes before returning, so a
flipped bit in the file surfaces as a typed
:class:`~repro.errors.IntegrityError` naming the corrupted field.

A loaded container also warm-starts the prepared-plan engine: its seal's
:func:`~repro.kernels.plancache.fingerprint_token` matches the one the
original object was cached under, so the first
``PLAN_CACHE.get_or_build(loaded, ...)`` is a content hit, not a rebuild.
"""

from __future__ import annotations

import json
import mmap
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from . import registry as _registry
from .errors import FormatError, IntegrityError, ReproError
from .formats.base import SparseFormat
from .integrity.checksums import (
    IntegrityHeader,
    attach_header,
    get_header,
)
from .telemetry.tracer import span as _span

__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "SerializationError",
    "save_container",
    "load_container",
    "read_header",
    "read_manifest",
    "content_fingerprint",
]

MAGIC = b"REPROBRX"
SCHEMA_VERSION = 1
_ALIGN = 64


class SerializationError(ReproError):
    """A ``.brx`` file is malformed, truncated or from an unknown schema."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _header_to_json(header: IntegrityHeader) -> Dict[str, Any]:
    return {
        "format_name": header.format_name,
        "meta_crc": header.meta_crc,
        "field_crcs": dict(header.field_crcs),
    }


def _header_from_json(obj: Dict[str, Any]) -> IntegrityHeader:
    try:
        return IntegrityHeader(
            format_name=str(obj["format_name"]),
            field_crcs={str(k): int(v) for k, v in obj["field_crcs"].items()},
            meta_crc=int(obj["meta_crc"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SerializationError(
            f"malformed integrity seal in .brx header: {exc}"
        ) from exc


def _check_array_entry(entry: Any, path: Path) -> Dict[str, Any]:
    """Validate one array-table entry; malformed tables must surface as
    :class:`SerializationError`, never as KeyError/TypeError or — worse —
    as silently mis-shaped arrays."""
    if not isinstance(entry, dict):
        raise SerializationError(
            f"{path} holds a malformed array table entry: {entry!r}"
        )
    for key in ("name", "dtype", "shape", "offset", "nbytes"):
        if key not in entry:
            raise SerializationError(
                f"{path} array table entry is missing {key!r}"
            )
    try:
        dtype = np.dtype(entry["dtype"])
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"{path} array {entry['name']!r} declares an invalid dtype "
            f"{entry['dtype']!r}"
        ) from exc
    shape = entry["shape"]
    if (
        not isinstance(shape, (list, tuple))
        or not all(isinstance(d, int) and d >= 0 for d in shape)
    ):
        raise SerializationError(
            f"{path} array {entry['name']!r} declares an invalid shape "
            f"{shape!r}"
        )
    offset, nbytes = entry["offset"], entry["nbytes"]
    if not isinstance(offset, int) or offset < 0:
        raise SerializationError(
            f"{path} array {entry['name']!r} declares an invalid offset "
            f"{offset!r}"
        )
    if not isinstance(nbytes, int) or nbytes < 0:
        raise SerializationError(
            f"{path} array {entry['name']!r} declares an invalid byte "
            f"count {nbytes!r}"
        )
    count = int(np.prod(shape, dtype=np.int64))
    if count * dtype.itemsize != nbytes:
        raise SerializationError(
            f"{path} array {entry['name']!r} is inconsistent: shape "
            f"{tuple(shape)} x {dtype.str} needs {count * dtype.itemsize} "
            f"bytes, table records {nbytes}"
        )
    return {
        "name": str(entry["name"]),
        "dtype": dtype,
        "shape": tuple(shape),
        "offset": offset,
        "nbytes": nbytes,
        "count": count,
    }


def save_container(
    matrix: SparseFormat, path: Union[str, os.PathLike]
) -> Path:
    """Atomically write ``matrix`` to a versioned ``.brx`` container.

    The container's integrity seal (if any) is stored alongside the
    arrays; unsealed containers save fine and load unsealed.

    Raises
    ------
    FormatError
        When the format does not declare a serializer
        (``to_state``/``from_state``).
    """
    spec = _registry.get_spec(matrix.format_name)
    if not spec.has_serializer:
        raise FormatError(
            f"format {matrix.format_name!r} does not support serialization; "
            f"serializable formats: {list(_registry.serializable_formats())}"
        )
    path = Path(path)
    with _span("serialize.save", "pipeline", format=matrix.format_name,
               path=str(path)):
        meta, arrays = matrix.to_state()
        table: List[Dict[str, Any]] = []
        offset = 0
        blobs: List[Tuple[int, bytes]] = []
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            offset = _align(offset)
            table.append({
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            })
            blobs.append((offset, arr.tobytes()))
            offset += arr.nbytes
        header = get_header(matrix)
        doc = {
            "format": matrix.format_name,
            "meta": meta,
            "arrays": table,
            "integrity": _header_to_json(header) if header else None,
        }
        header_bytes = json.dumps(doc, sort_keys=True).encode("utf-8")

        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(MAGIC)
                fh.write(SCHEMA_VERSION.to_bytes(4, "little"))
                fh.write(len(header_bytes).to_bytes(4, "little"))
                fh.write(header_bytes)
                base = fh.tell()
                for arr_offset, payload in blobs:
                    fh.seek(base + arr_offset)
                    fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    return path


def read_header(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read and validate a ``.brx`` file's JSON header without the arrays."""
    path = Path(path)
    with open(path, "rb") as fh:
        preamble = fh.read(16)
        if len(preamble) < 16 or preamble[:8] != MAGIC:
            raise SerializationError(
                f"{path} is not a .brx container (bad magic)"
            )
        version = int.from_bytes(preamble[8:12], "little")
        if version != SCHEMA_VERSION:
            raise SerializationError(
                f"{path} uses .brx schema version {version}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        hlen = int.from_bytes(preamble[12:16], "little")
        size = os.fstat(fh.fileno()).st_size
        if 16 + hlen > size:
            raise SerializationError(f"{path} is truncated mid-header")
        header_bytes = fh.read(hlen)
        if len(header_bytes) != hlen:
            raise SerializationError(f"{path} is truncated mid-header")
        try:
            doc = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"{path} holds a corrupt header") from exc
    if not isinstance(doc, dict):
        raise SerializationError(
            f"{path} header is not a JSON object"
        )
    for key in ("format", "meta", "arrays"):
        if key not in doc:
            raise SerializationError(f"{path} header is missing {key!r}")
    if not isinstance(doc["format"], str):
        raise SerializationError(
            f"{path} header declares a non-string format name"
        )
    if not isinstance(doc["meta"], dict):
        raise SerializationError(
            f"{path} header holds malformed format metadata"
        )
    if not isinstance(doc["arrays"], list):
        raise SerializationError(
            f"{path} header holds a malformed array table"
        )
    doc["_payload_base"] = 16 + hlen
    return doc


def read_manifest(path: Union[str, os.PathLike]) -> Optional[Dict[str, Any]]:
    """The shard manifest of a sharded ``.brx`` container, header-only.

    Reads just the JSON header — no array bytes are touched — and returns
    the manifest recorded by
    :meth:`~repro.exec.partition.ShardedMatrix.manifest`: the device
    count, partitioner, shape and per-shard ``{index, row_start, row_end,
    rows, nnz}`` rows. Returns ``None`` for single-device containers.
    """
    doc = read_header(path)
    if str(doc["format"]) != "sharded":
        return None
    manifest = doc["meta"].get("manifest")
    if manifest is None:
        raise SerializationError(
            f"{path} holds a sharded container without a shard manifest"
        )
    if not isinstance(manifest, dict) or not isinstance(
        manifest.get("shards"), list
    ):
        raise SerializationError(
            f"{path} holds a malformed shard manifest"
        )
    for row in manifest["shards"]:
        if not isinstance(row, dict) or not all(
            isinstance(row.get(k), int)
            for k in ("index", "row_start", "row_end", "rows", "nnz")
        ):
            raise SerializationError(
                f"{path} shard manifest holds a malformed shard row: {row!r}"
            )
    return manifest


def load_container(
    path: Union[str, os.PathLike],
    *,
    mmap_arrays: bool = True,
    verify: bool = True,
) -> SparseFormat:
    """Load a ``.brx`` container back into its registered format.

    Parameters
    ----------
    path:
        A file written by :func:`save_container`.
    mmap_arrays:
        Memory-map the file and hand the constructor zero-copy read-only
        views (default). ``False`` reads the arrays into private heap
        buffers — use it when the file will be deleted or rewritten while
        the container is alive.
    verify:
        When the file carries an integrity seal, recompute every CRC
        against the loaded bytes and raise
        :class:`~repro.errors.IntegrityError` on mismatch (default).

    The stored seal is *reattached*, not recomputed, so the returned
    container fingerprint-matches the original — and warm-hits any plan
    cached for the container that was saved.
    """
    path = Path(path)
    doc = read_header(path)
    name = str(doc["format"])
    spec = _registry.get_spec(name)
    if not spec.has_serializer:
        raise FormatError(
            f"format {name!r} has no serializer in this build; "
            f"cannot load {path}"
        )
    base = doc.pop("_payload_base")
    size = path.stat().st_size
    with _span("serialize.load", "pipeline", format=name, path=str(path),
               mmap=mmap_arrays):
        with open(path, "rb") as fh:
            if mmap_arrays:
                buf: Union[mmap.mmap, bytes] = mmap.mmap(
                    fh.fileno(), 0, access=mmap.ACCESS_READ
                )
            else:
                buf = fh.read()
        arrays: Dict[str, np.ndarray] = {}
        for raw_entry in doc["arrays"]:
            entry = _check_array_entry(raw_entry, path)
            lo = base + entry["offset"]
            nbytes = entry["nbytes"]
            # Zero-length arrays occupy no payload bytes; their aligned
            # offset may legitimately sit at (or past) end-of-file when
            # they trail the last non-empty blob.
            if nbytes and lo + nbytes > size:
                raise SerializationError(
                    f"{path} is truncated: array {entry['name']!r} "
                    f"extends past end of file"
                )
            if nbytes == 0:
                arr = np.zeros(entry["shape"], dtype=entry["dtype"])
            else:
                arr = np.frombuffer(
                    buf, dtype=entry["dtype"],
                    count=entry["count"],
                    offset=lo,
                ).reshape(entry["shape"])
            arrays[entry["name"]] = arr
        try:
            matrix = spec.container.from_state(doc["meta"], arrays)
        except ReproError:
            raise
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            raise SerializationError(
                f"{path} holds inconsistent {name!r} state: {exc}"
            ) from exc
        stored = doc.get("integrity")
        if stored is not None:
            header = _header_from_json(stored)
            attach_header(matrix, header)
            if verify:
                mismatched = header.mismatches(matrix)
                if mismatched:
                    raise IntegrityError(
                        f"{path} failed its stored checksum seal; corrupted "
                        f"fields: {', '.join(mismatched)}",
                        fields=mismatched,
                    )
    return matrix


def content_fingerprint(
    matrix: SparseFormat,
) -> Optional[Tuple[str, int, Tuple[Tuple[str, int], ...]]]:
    """The container's sealed content address (``None`` when unsealed).

    Equal fingerprints mean byte-identical device arrays — the token the
    :class:`~repro.kernels.plancache.PlanCache` content index keys on.
    """
    from .kernels.plancache import fingerprint_token

    return fingerprint_token(get_header(matrix))
