"""Simulated-GPU execution substrate.

The paper measures CUDA kernels on three Nvidia GPUs (Table 1). This
package replaces the hardware with a performance model that the simulated
kernels in :mod:`repro.kernels` feed with instrumentation counters:

* :mod:`~repro.gpu.device` — device specifications (Table 1) plus the
  measured bandwidths and calibrated decode throughputs (Section 4.1/4.2.1);
* :mod:`~repro.gpu.warp` / :mod:`~repro.gpu.launch` — thread geometry and
  occupancy (latency-hiding) factors;
* :mod:`~repro.gpu.memory` — coalesced-transaction counting at DRAM
  transaction granularity;
* :mod:`~repro.gpu.texcache` — the texture-cache model for ``x`` reads;
* :mod:`~repro.gpu.counters` — the counter record kernels emit;
* :mod:`~repro.gpu.timing` — the roofline-style timing model converting
  counters into predicted kernel time, GFlop/s and bandwidth utilization.

See DESIGN.md §2 for why this substitution preserves the paper's
conclusions and how the decode throughput is calibrated.
"""

from .counters import KernelCounters
from .device import (
    DEVICES,
    GTX680,
    TESLA_C2070,
    TESLA_K20,
    DeviceSpec,
    get_device,
)
from .launch import LaunchConfig, occupancy_factor
from .memory import contiguous_transactions, gather_transactions
from .texcache import TextureCacheModel
from .timing import (
    MultiDeviceBreakdown,
    TimingBreakdown,
    predict,
    predict_sharded,
)
from .trace import (
    IntervalTrace,
    PartTrace,
    SliceTrace,
    trace_bro_coo,
    trace_bro_ell,
    trace_hyb,
)

__all__ = [
    "DeviceSpec",
    "DEVICES",
    "get_device",
    "TESLA_C2070",
    "GTX680",
    "TESLA_K20",
    "KernelCounters",
    "LaunchConfig",
    "occupancy_factor",
    "contiguous_transactions",
    "gather_transactions",
    "TextureCacheModel",
    "TimingBreakdown",
    "MultiDeviceBreakdown",
    "predict",
    "predict_sharded",
    "SliceTrace",
    "IntervalTrace",
    "PartTrace",
    "trace_bro_ell",
    "trace_bro_coo",
    "trace_hyb",
]
