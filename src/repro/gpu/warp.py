"""Warp geometry helpers shared by the simulated kernels."""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.bits import ceil_div

__all__ = ["num_warps", "pad_to_warps", "warp_reduce_flops"]


def num_warps(n_threads: int, warp_size: int = 32) -> int:
    """Warps needed for ``n_threads`` threads."""
    if n_threads < 0 or warp_size <= 0:
        raise ValidationError("n_threads must be >= 0 and warp_size > 0")
    return ceil_div(n_threads, warp_size) if n_threads else 0


def pad_to_warps(values: np.ndarray, warp_size: int, fill=0) -> np.ndarray:
    """Pad a per-thread 1-D array up to a whole number of warps."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError("values must be 1-D")
    n = values.shape[0]
    target = num_warps(n, warp_size) * warp_size
    if target == n:
        return values
    out = np.full(target, fill, dtype=values.dtype)
    out[:n] = values
    return out


def warp_reduce_flops(warp_size: int = 32) -> int:
    """Flops of one tree-structured intra-warp segmented reduction.

    ``log2(warp_size)`` shuffle-add steps per lane.
    """
    if warp_size <= 0 or warp_size & (warp_size - 1):
        raise ValidationError("warp_size must be a positive power of two")
    return int(np.log2(warp_size)) * warp_size
