"""Texture-cache model for reads of the dense input vector ``x``.

Every SpMV kernel in the paper reads ``x`` through the texture cache
(Section 2 / Algorithm 1). The model here has two regimes, blended by how
much of a thread block's ``x`` footprint fits in the per-SM texture cache:

* **spatial-only** (paper Eqn. 3 granularity): each warp iteration costs one
  texture-line fetch per *distinct* line among its lanes — no reuse across
  iterations. This is the regime of a footprint far larger than the cache.
* **perfect temporal reuse**: each distinct line the block ever touches is
  fetched exactly once — the regime of a footprint that fits in cache.

With ``U`` the block footprint in lines, ``S`` the spatial-only count and
``f = min(1, cache_bytes / (U * line_bytes))`` the cached fraction, the
model charges ``U * f + S * (1 - f)`` line fetches. The paper itself notes
its cost model "takes into account spatial locality but not temporal
locality" (Section 3.4); passing ``temporal=False`` reproduces that
spatial-only behaviour and is what the BAR objective uses.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..telemetry import metrics as _metrics
from ..utils.bits import ceil_div
from .device import DeviceSpec

__all__ = ["TextureCacheModel", "distinct_lines_per_warp_iteration"]


def distinct_lines_per_warp_iteration(
    lines: np.ndarray, valid: np.ndarray, warp_size: int
) -> int:
    """Sum over warps and iterations of the distinct valid lines accessed.

    ``lines``/``valid`` are ``(h, L)`` blocks: row = thread, column =
    iteration. Threads are grouped into warps of ``warp_size`` consecutive
    rows; invalid lanes issue no read.
    """
    lines = np.asarray(lines, dtype=np.int64)
    valid = np.asarray(valid, dtype=bool)
    if lines.shape != valid.shape:
        raise ValidationError("lines and valid must have the same shape")
    h, L = lines.shape
    if h == 0 or L == 0:
        return 0
    n_warps = ceil_div(h, warp_size)
    padded = np.full((n_warps * warp_size, L), -1, dtype=np.int64)
    padded[:h] = np.where(valid, lines, -1)
    grid = padded.reshape(n_warps, warp_size, L)
    grid = np.sort(grid, axis=1)  # sort lanes within each (warp, iteration)
    distinct = (grid[:, 1:, :] != grid[:, :-1, :]).sum(axis=1) + 1
    # Invalid lanes sort to the front as a -1 group; drop that group. A
    # fully-invalid (warp, iteration) then counts 1 - 1 = 0 fetches.
    distinct -= (grid[:, 0, :] == -1).astype(np.int64)
    return int(distinct.sum())


class TextureCacheModel:
    """Per-device texture-cache traffic estimator for ``x`` reads."""

    def __init__(self, device: DeviceSpec, value_bytes: int = 8, temporal: bool = True):
        self.device = device
        self.value_bytes = int(value_bytes)
        if self.value_bytes <= 0:
            raise ValidationError("value_bytes must be positive")
        self.elems_per_line = max(1, device.tex_line_bytes // self.value_bytes)
        self.temporal = bool(temporal)

    # ------------------------------------------------------------------
    def lines_of(self, cols: np.ndarray) -> np.ndarray:
        """Texture line index of each column index."""
        return np.asarray(cols, dtype=np.int64) // self.elems_per_line

    def block_x_fetches(self, cols: np.ndarray, valid: np.ndarray) -> int:
        """Line fetches for one thread block's ``(h, L)`` access pattern."""
        cols = np.asarray(cols, dtype=np.int64)
        valid = np.asarray(valid, dtype=bool)
        if cols.shape != valid.shape:
            raise ValidationError("cols and valid must have the same shape")
        if cols.size == 0 or not valid.any():
            return 0
        lines = self.lines_of(cols)
        spatial = distinct_lines_per_warp_iteration(
            lines, valid, self.device.warp_size
        )
        if not self.temporal:
            fetches = spatial
        else:
            footprint = int(np.unique(lines[valid]).shape[0])
            cache_lines = (
                self.device.tex_cache_bytes_per_sm // self.device.tex_line_bytes
            )
            f = min(1.0, cache_lines / footprint) if footprint else 0.0
            fetches = int(round(footprint * f + spatial * (1.0 - f)))
        if _metrics.collecting():
            _metrics.record_texcache(
                int(valid.sum()), fetches, self.device.tex_line_bytes
            )
        return fetches

    def block_x_bytes(self, cols: np.ndarray, valid: np.ndarray) -> int:
        """DRAM bytes for one block's ``x`` reads."""
        return self.block_x_fetches(cols, valid) * self.device.tex_line_bytes

    # ------------------------------------------------------------------
    def warp_sequence_fetches(self, cols_2d: np.ndarray, valid: np.ndarray) -> int:
        """Line fetches for one warp walking a ``(w, L)`` lane arrangement.

        Used by the COO kernels, where a single warp owns an interval: the
        reuse unit is the warp rather than a block, but the arithmetic is
        identical.
        """
        return self.block_x_fetches(cols_2d, valid)
