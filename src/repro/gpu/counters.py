"""Instrumentation counters emitted by the simulated kernels.

A :class:`KernelCounters` record is the *only* interface between the
functional kernels and the timing model: the kernels count what a CUDA
profiler would count (DRAM bytes by source, flops, decode instructions,
launches) and :mod:`repro.gpu.timing` turns the record into predicted time.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Union

from ..errors import ValidationError

__all__ = ["KernelCounters"]


@dataclass
class KernelCounters:
    """Counter record of one (or several fused) kernel launches.

    All byte counters are DRAM traffic after coalescing, i.e. whole
    transactions, not requested bytes.
    """

    #: DRAM bytes of index data (column/row indices or packed streams).
    index_bytes: int = 0
    #: DRAM bytes of matrix values (including padded slots actually read).
    value_bytes: int = 0
    #: DRAM bytes of ``x``-vector reads (texture-cache misses x line size).
    x_bytes: int = 0
    #: DRAM bytes written to (and read-modify-written for atomics on) ``y``.
    y_bytes: int = 0
    #: DRAM bytes of auxiliary arrays (row lengths, pointers, bit tables).
    aux_bytes: int = 0
    #: Useful flops: 2 * nnz for SpMV.
    useful_flops: int = 0
    #: Flops actually issued, including padded slots and reduction trees.
    issued_flops: int = 0
    #: Bit-manipulation instructions of the BRO decode loop.
    decode_ops: int = 0
    #: Kernel launches performed.
    launches: int = 1
    #: Threads launched (for the occupancy model).
    threads: int = 0
    #: Device-to-device bytes moved over the interconnect (multi-device
    #: execution only; not DRAM traffic, so excluded from ``dram_bytes``).
    interconnect_bytes: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValidationError(f"counter {f.name} must be non-negative")

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic of the launch."""
        return int(
            self.index_bytes
            + self.value_bytes
            + self.x_bytes
            + self.y_bytes
            + self.aux_bytes
        )

    @property
    def effective_arithmetic_intensity(self) -> float:
        """The paper's EAI (Fig. 5): useful flops per DRAM byte.

        The paper defines EAI as F/B with F in flops/s and B the kernel
        memory throughput in bytes/s; the runtimes cancel, leaving
        flops-per-byte.
        """
        if self.dram_bytes == 0:
            return 0.0
        return self.useful_flops / self.dram_bytes

    def __add__(self, other: "KernelCounters") -> "KernelCounters":
        if not isinstance(other, KernelCounters):
            return NotImplemented
        return KernelCounters(
            index_bytes=self.index_bytes + other.index_bytes,
            value_bytes=self.value_bytes + other.value_bytes,
            x_bytes=self.x_bytes + other.x_bytes,
            y_bytes=self.y_bytes + other.y_bytes,
            aux_bytes=self.aux_bytes + other.aux_bytes,
            useful_flops=self.useful_flops + other.useful_flops,
            issued_flops=self.issued_flops + other.issued_flops,
            decode_ops=self.decode_ops + other.decode_ops,
            launches=self.launches + other.launches,
            # Sequential launches: the occupancy model should see the larger
            # of the two grids, not their sum.
            threads=max(self.threads, other.threads),
            interconnect_bytes=self.interconnect_bytes + other.interconnect_bytes,
        )

    def __radd__(self, other: Union[int, "KernelCounters"]) -> "KernelCounters":
        # `sum(counters_list)` starts from the int 0; absorbing it keeps the
        # total exact (a `KernelCounters()` start value would inject its
        # default launches=1 into the sum).
        if other == 0:
            return replace(self)
        if isinstance(other, KernelCounters):
            return other.__add__(self)
        return NotImplemented

    @classmethod
    def sum(cls, counters: Iterable["KernelCounters"]) -> "KernelCounters":
        """Exact aggregate of a multi-launch trace.

        Unlike ``sum(list, KernelCounters())``, an empty-input total has
        ``launches=0`` and no phantom launch is added by the start value.
        """
        total: Union[int, KernelCounters] = 0
        for c in counters:
            total = c if total == 0 else total + c
        return replace(total) if isinstance(total, KernelCounters) else cls(launches=0)

    def to_dict(self) -> Dict[str, int]:
        """Plain-int view of every counter field plus the derived totals."""
        out = {f.name: int(getattr(self, f.name)) for f in fields(self)}
        out["dram_bytes"] = self.dram_bytes
        return out
