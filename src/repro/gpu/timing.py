"""Roofline-style timing model turning kernel counters into predictions.

The model of one launch (or fused launch sequence):

.. code-block:: text

    t = max(t_mem, t_flop) + t_decode + t_launch

    t_mem    = dram_bytes  / (measured_bw * occupancy)
    t_flop   = issued_flops / dp_peak
    t_decode = decode_ops  / (decode_rate * occupancy)
    t_launch = launches * launch_overhead

Rationale:

* SpMV is bandwidth-bound (paper Section 3), so memory and arithmetic
  overlap — hence the ``max``;
* the BRO decode instructions sit on the critical path between a symbol
  load and the multiply-add that consumes the decoded index, so their
  *exposed* cost adds to the roofline term. The decode rate is the one
  calibrated parameter (see :mod:`repro.gpu.device`);
* ``occupancy`` models latency-hiding loss on grids too small for the
  device (:func:`repro.gpu.launch.occupancy_factor`).

Derived metrics match the paper's figures: GFlop/s uses *useful* flops
(2 x nnz), bandwidth utilization compares achieved DRAM throughput with the
pin bandwidth (Fig. 6), EAI is flops-per-byte (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ValidationError
from .counters import KernelCounters
from .device import DeviceSpec
from .launch import occupancy_factor

__all__ = ["TimingBreakdown", "MultiDeviceBreakdown", "predict", "predict_sharded"]


@dataclass(frozen=True)
class TimingBreakdown:
    """Predicted timing of one simulated kernel execution."""

    device: DeviceSpec
    counters: KernelCounters
    occupancy: float
    t_mem: float
    t_flop: float
    t_decode: float
    t_launch: float

    @property
    def time(self) -> float:
        """Predicted kernel time in seconds."""
        return max(self.t_mem, self.t_flop) + self.t_decode + self.t_launch

    @property
    def gflops(self) -> float:
        """Useful throughput in GFlop/s (the paper's reporting metric)."""
        return self.counters.useful_flops / self.time / 1e9

    @property
    def achieved_bw_gbps(self) -> float:
        """Achieved DRAM throughput in GB/s."""
        return self.counters.dram_bytes / self.time / 1e9

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of pin bandwidth sustained (Fig. 6's metric)."""
        return self.achieved_bw_gbps / self.device.peak_bw_gbps

    @property
    def bound(self) -> str:
        """Which roofline term dominates: ``"memory"`` or ``"compute"``."""
        return "memory" if self.t_mem >= self.t_flop else "compute"


@dataclass(frozen=True)
class MultiDeviceBreakdown:
    """Predicted timing of one sharded execution across ``n`` devices.

    The kernel phase runs in parallel — every device executes its shard
    concurrently, so the exposed kernel time is the *slowest* shard's
    roofline prediction — and the communication phase (the x broadcast
    or halo exchange) is charged on the interconnect beforehand:

    .. code-block:: text

        t = max_i(t_shard_i) + t_comm
        t_comm = interconnect_bytes / link_bw + messages * link_latency

    The per-shard terms reuse the single-device roofline model
    unchanged; the interconnect term is the only addition, parameterized
    by the :class:`~repro.gpu.device.DeviceSpec` interconnect fields.
    """

    device: DeviceSpec
    counters: KernelCounters  #: merged counters (includes interconnect bytes)
    shards: Tuple[TimingBreakdown, ...]
    t_comm: float
    messages: int

    @property
    def n_devices(self) -> int:
        return len(self.shards)

    @property
    def t_kernel(self) -> float:
        """Exposed kernel time: the slowest shard (devices run in parallel)."""
        return max(s.time for s in self.shards)

    @property
    def time(self) -> float:
        """Predicted end-to-end time in seconds."""
        return self.t_kernel + self.t_comm

    @property
    def occupancy(self) -> float:
        """Occupancy of the slowest shard (the exposed one)."""
        return max(self.shards, key=lambda s: s.time).occupancy

    @property
    def gflops(self) -> float:
        """Useful throughput in GFlop/s across the whole device group."""
        return self.counters.useful_flops / self.time / 1e9

    @property
    def achieved_bw_gbps(self) -> float:
        """Aggregate achieved DRAM throughput in GB/s."""
        return self.counters.dram_bytes / self.time / 1e9

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the group's total pin bandwidth sustained."""
        return self.achieved_bw_gbps / (
            self.device.peak_bw_gbps * self.n_devices
        )

    @property
    def bound(self) -> str:
        """Dominant term: ``"memory"``/``"compute"`` of the slowest shard,
        or ``"interconnect"`` when communication exceeds the kernel phase."""
        if self.t_comm > self.t_kernel:
            return "interconnect"
        return max(self.shards, key=lambda s: s.time).bound

    # Mirror TimingBreakdown's roofline terms so sharded results drop
    # into existing reporting code (exposed terms of the slowest shard).
    @property
    def t_mem(self) -> float:
        return max(self.shards, key=lambda s: s.time).t_mem

    @property
    def t_flop(self) -> float:
        return max(self.shards, key=lambda s: s.time).t_flop

    @property
    def t_decode(self) -> float:
        return max(self.shards, key=lambda s: s.time).t_decode

    @property
    def t_launch(self) -> float:
        return max(self.shards, key=lambda s: s.time).t_launch


def predict(counters: KernelCounters, device: DeviceSpec) -> TimingBreakdown:
    """Predict execution time of a kernel run described by ``counters``."""
    if counters.threads <= 0:
        raise ValidationError(
            "counters.threads must be set so the occupancy model can run"
        )
    occ = occupancy_factor(counters.threads, device)
    t_mem = counters.dram_bytes / (device.measured_bw * occ)
    t_flop = counters.issued_flops / device.dp_flops
    t_decode = counters.decode_ops / (device.decode_rate * occ)
    t_launch = counters.launches * device.launch_overhead_us * 1e-6
    return TimingBreakdown(
        device=device,
        counters=counters,
        occupancy=occ,
        t_mem=t_mem,
        t_flop=t_flop,
        t_decode=t_decode,
        t_launch=t_launch,
    )


def predict_sharded(
    merged: KernelCounters,
    shard_counters: Tuple[KernelCounters, ...],
    device: DeviceSpec,
    *,
    messages: int,
) -> MultiDeviceBreakdown:
    """Predict a multi-device execution from per-shard counter records.

    ``merged`` is the aggregate record (its ``interconnect_bytes`` drives
    the communication term); ``shard_counters`` are the per-device
    launches, each predicted with the unchanged single-device roofline.
    """
    if not shard_counters:
        raise ValidationError("predict_sharded needs at least one shard")
    shards = tuple(predict(c, device) for c in shard_counters)
    t_comm = (
        merged.interconnect_bytes / device.interconnect_bw
        + messages * device.interconnect_latency
    )
    return MultiDeviceBreakdown(
        device=device,
        counters=merged,
        shards=shards,
        t_comm=t_comm,
        messages=int(messages),
    )
