"""Roofline-style timing model turning kernel counters into predictions.

The model of one launch (or fused launch sequence):

.. code-block:: text

    t = max(t_mem, t_flop) + t_decode + t_launch

    t_mem    = dram_bytes  / (measured_bw * occupancy)
    t_flop   = issued_flops / dp_peak
    t_decode = decode_ops  / (decode_rate * occupancy)
    t_launch = launches * launch_overhead

Rationale:

* SpMV is bandwidth-bound (paper Section 3), so memory and arithmetic
  overlap — hence the ``max``;
* the BRO decode instructions sit on the critical path between a symbol
  load and the multiply-add that consumes the decoded index, so their
  *exposed* cost adds to the roofline term. The decode rate is the one
  calibrated parameter (see :mod:`repro.gpu.device`);
* ``occupancy`` models latency-hiding loss on grids too small for the
  device (:func:`repro.gpu.launch.occupancy_factor`).

Derived metrics match the paper's figures: GFlop/s uses *useful* flops
(2 x nnz), bandwidth utilization compares achieved DRAM throughput with the
pin bandwidth (Fig. 6), EAI is flops-per-byte (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from .counters import KernelCounters
from .device import DeviceSpec
from .launch import occupancy_factor

__all__ = ["TimingBreakdown", "predict"]


@dataclass(frozen=True)
class TimingBreakdown:
    """Predicted timing of one simulated kernel execution."""

    device: DeviceSpec
    counters: KernelCounters
    occupancy: float
    t_mem: float
    t_flop: float
    t_decode: float
    t_launch: float

    @property
    def time(self) -> float:
        """Predicted kernel time in seconds."""
        return max(self.t_mem, self.t_flop) + self.t_decode + self.t_launch

    @property
    def gflops(self) -> float:
        """Useful throughput in GFlop/s (the paper's reporting metric)."""
        return self.counters.useful_flops / self.time / 1e9

    @property
    def achieved_bw_gbps(self) -> float:
        """Achieved DRAM throughput in GB/s."""
        return self.counters.dram_bytes / self.time / 1e9

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of pin bandwidth sustained (Fig. 6's metric)."""
        return self.achieved_bw_gbps / self.device.peak_bw_gbps

    @property
    def bound(self) -> str:
        """Which roofline term dominates: ``"memory"`` or ``"compute"``."""
        return "memory" if self.t_mem >= self.t_flop else "compute"


def predict(counters: KernelCounters, device: DeviceSpec) -> TimingBreakdown:
    """Predict execution time of a kernel run described by ``counters``."""
    if counters.threads <= 0:
        raise ValidationError(
            "counters.threads must be set so the occupancy model can run"
        )
    occ = occupancy_factor(counters.threads, device)
    t_mem = counters.dram_bytes / (device.measured_bw * occ)
    t_flop = counters.issued_flops / device.dp_flops
    t_decode = counters.decode_ops / (device.decode_rate * occ)
    t_launch = counters.launches * device.launch_overhead_us * 1e-6
    return TimingBreakdown(
        device=device,
        counters=counters,
        occupancy=occ,
        t_mem=t_mem,
        t_flop=t_flop,
        t_decode=t_decode,
        t_launch=t_launch,
    )
