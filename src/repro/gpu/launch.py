"""Kernel launch geometry and the occupancy (latency-hiding) model.

SpMV kernels hide DRAM latency with thread-level parallelism. When a grid
is too small to populate the device — the paper's explanation for the
``e40r5000``/``rim`` results (Section 4.2.3: the matrix "does not have
enough rows to keep the higher number of cores ... busy") — achievable
bandwidth degrades. We model this with a single factor: full speed once
``saturation_warps_per_sm`` warps are resident per SM, proportionally less
below that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelError
from ..utils.bits import ceil_div
from .device import DeviceSpec

__all__ = ["LaunchConfig", "occupancy_factor"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid geometry of one simulated kernel launch."""

    threads_per_block: int
    num_blocks: int

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0 or self.num_blocks <= 0:
            raise KernelError(
                f"invalid launch geometry: {self.num_blocks} blocks x "
                f"{self.threads_per_block} threads"
            )

    @property
    def total_threads(self) -> int:
        return self.threads_per_block * self.num_blocks

    @classmethod
    def for_rows(cls, m: int, threads_per_block: int = 256) -> "LaunchConfig":
        """One thread per matrix row (ELL-family kernels)."""
        if m <= 0:
            raise KernelError("matrix must have at least one row")
        return cls(threads_per_block, ceil_div(m, threads_per_block))

    @classmethod
    def for_warps(
        cls, n_warps: int, warp_size: int = 32, warps_per_block: int = 8
    ) -> "LaunchConfig":
        """One warp per work interval (COO-family kernels)."""
        if n_warps <= 0:
            raise KernelError("at least one warp is required")
        return cls(warp_size * warps_per_block, ceil_div(n_warps, warps_per_block))


def occupancy_factor(total_threads: int, device: DeviceSpec) -> float:
    """Fraction of achievable bandwidth a grid of this size can sustain.

    Returns 1.0 once the grid supplies ``saturation_warps_per_sm`` resident
    warps to every SM, decaying linearly (floored at 5%) below that.
    """
    if total_threads <= 0:
        raise KernelError("total_threads must be positive")
    return max(0.05, min(1.0, total_threads / device.saturation_threads))
