"""Per-block execution traces for the BRO kernels.

A :class:`SliceTrace` row per thread block (BRO-ELL), an
:class:`IntervalTrace` row per warp interval (BRO-COO) or a
:class:`PartTrace` row per HYB part answers the questions a CUDA profiler
timeline would: which slices carry the bytes, where the decode overhead
concentrates, which intervals force atomic collisions. Used by the
``python -m repro spmv --trace`` and ``python -m repro profile`` commands
and by performance debugging in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .. import registry as _registry
from ..bitstream.reader import SliceDecoder
from ..core.bro_coo import BROCOOMatrix
from ..core.bro_ell import BROELLMatrix
from ..errors import ValidationError
from ..gpu.device import DECODE_OPS_PER_ITER, DECODE_OPS_PER_LOAD, DeviceSpec
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..utils.bits import ceil_div

__all__ = [
    "SliceTrace",
    "IntervalTrace",
    "PartTrace",
    "trace_bro_ell",
    "trace_bro_coo",
    "trace_hyb",
]


@dataclass(frozen=True)
class SliceTrace:
    """Profile of one slice (= one simulated thread block)."""

    slice_id: int
    rows: int
    num_col: int
    nnz: int  #: valid entries in the slice
    mean_bits: float  #: average bit_alloc width
    stream_bytes: int
    value_bytes: int
    x_bytes: int
    decode_ops: int
    padding_fraction: float  #: share of (row, col) iterations that are padding

    def row(self) -> str:
        """One formatted trace line."""
        return (
            f"{self.slice_id:>6d} {self.rows:>5d} {self.num_col:>5d} "
            f"{self.nnz:>8d} {self.mean_bits:>6.2f} "
            f"{self.stream_bytes:>9d} {self.value_bytes:>10d} "
            f"{self.x_bytes:>8d} {100 * self.padding_fraction:>6.1f}%"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'slice':>6s} {'rows':>5s} {'cols':>5s} {'nnz':>8s} "
            f"{'bits':>6s} {'idx B':>9s} {'val B':>10s} {'x B':>8s} "
            f"{'pad':>7s}"
        )


def trace_bro_ell(matrix: BROELLMatrix, device: DeviceSpec) -> List[SliceTrace]:
    """Profile every slice of a BRO-ELL matrix on a device.

    Decodes each slice (exactly as the kernel does) and reports where the
    traffic and decode work would land.
    """
    if not isinstance(matrix, BROELLMatrix):
        raise ValidationError("trace_bro_ell needs a BROELLMatrix")
    tex = TextureCacheModel(device)
    tb = device.transaction_bytes
    ws = device.warp_size
    sym_bytes = matrix.sym_len // 8
    traces: List[SliceTrace] = []
    for i in range(matrix.num_slices):
        r0 = int(matrix.slice_edges[i])
        r1 = int(matrix.slice_edges[i + 1])
        h_i = r1 - r0
        L = int(matrix.num_col[i])
        bit_alloc = matrix.bit_allocs[i]
        if L == 0:
            traces.append(
                SliceTrace(i, h_i, 0, 0, 0.0, 0, 0, 0, 0, 0.0)
            )
            continue
        dec = SliceDecoder(matrix.stream.slice_view(i), h=h_i,
                           sym_len=matrix.sym_len)
        cols, valid = matrix.decode_slice_cols(i)
        # Drain the decoder to count the loads a kernel would issue.
        for c in range(L):
            dec.decode(int(bit_alloc[c]))
        nnz = int(valid.sum())
        val_per_iter = ceil_div(ws * 8, tb)
        warps = ceil_div(h_i, ws)
        pad_rows = warps * ws - h_i
        warp_valid = np.any(
            np.vstack([valid, np.zeros((pad_rows, L), dtype=bool)])
            .reshape(warps, ws, L),
            axis=1,
        )
        traces.append(
            SliceTrace(
                slice_id=i,
                rows=h_i,
                num_col=L,
                nnz=nnz,
                mean_bits=float(bit_alloc.mean()),
                stream_bytes=dec.symbol_loads
                * contiguous_transactions(h_i, sym_bytes, ws, tb) * tb,
                value_bytes=int(warp_valid.sum()) * val_per_iter * tb,
                x_bytes=tex.block_x_bytes(np.where(valid, cols, 0), valid),
                decode_ops=DECODE_OPS_PER_ITER * h_i * L
                + DECODE_OPS_PER_LOAD * dec.symbol_loads * h_i,
                padding_fraction=1.0 - nnz / (h_i * L),
            )
        )
    return traces


# ---------------------------------------------------------------------------
# BRO-COO: one warp per interval
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntervalTrace:
    """Profile of one BRO-COO interval (= one simulated warp)."""

    interval_id: int
    entries: int  #: padded entries covered by the interval
    nnz: int  #: real (non-phantom) entries
    lanes: int  #: iterations per lane (``L``)
    bits: int  #: the interval's single delta bit width
    segments: int  #: distinct output rows touched
    atomics: int  #: atomic flushes (per-lane row changes + final flush)
    stream_bytes: int
    value_bytes: int
    x_bytes: int
    decode_ops: int

    def row(self) -> str:
        """One formatted trace line."""
        return (
            f"{self.interval_id:>6d} {self.entries:>8d} {self.nnz:>8d} "
            f"{self.lanes:>5d} {self.bits:>4d} {self.segments:>7d} "
            f"{self.atomics:>7d} {self.stream_bytes:>9d} "
            f"{self.value_bytes:>10d} {self.x_bytes:>8d}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'intvl':>6s} {'entries':>8s} {'nnz':>8s} {'iters':>5s} "
            f"{'bits':>4s} {'segs':>7s} {'atomic':>7s} {'idx B':>9s} "
            f"{'val B':>10s} {'x B':>8s}"
        )


def trace_bro_coo(matrix: BROCOOMatrix, device: DeviceSpec) -> List[IntervalTrace]:
    """Profile every interval of a BRO-COO matrix on a device.

    Decodes each interval's row stream (exactly as the kernel does) and
    reports where the traffic, decode work and atomic pressure would land.
    """
    if not isinstance(matrix, BROCOOMatrix):
        raise ValidationError("trace_bro_coo needs a BROCOOMatrix")
    tex = TextureCacheModel(device)
    tb = device.transaction_bytes
    w = matrix.warp_size
    sym_bytes = matrix.stream.sym_len // 8
    val_per_iter = ceil_div(w * 8, tb)
    traces: List[IntervalTrace] = []
    for i, lo, hi, stream_view in matrix.iter_intervals():
        L = matrix.interval_lanes(i)
        b = int(matrix.bit_alloc[i])
        dec = SliceDecoder(stream_view, h=w, sym_len=matrix.stream.sym_len)
        for _ in range(L):
            dec.decode(b)
        rows_2d = matrix.decode_interval_rows(i)  # (w, L)
        flat_rows = rows_2d.T.reshape(-1)[: hi - lo]
        # One atomic per row change down each lane, plus the final flush.
        atomics = int((rows_2d[:, 1:] != rows_2d[:, :-1]).sum()) + w if L else 0
        cols_2d = np.zeros((w, L), dtype=np.int64)
        cols_2d.T.reshape(-1)[: hi - lo] = matrix.col_idx[lo:hi]
        valid = np.ones((w, L), dtype=bool)  # phantom lanes still read x
        traces.append(
            IntervalTrace(
                interval_id=i,
                entries=hi - lo,
                nnz=max(0, min(hi, matrix.nnz) - lo),
                lanes=L,
                bits=b,
                segments=int(np.unique(flat_rows).shape[0]) if L else 0,
                atomics=atomics,
                stream_bytes=dec.symbol_loads
                * contiguous_transactions(w, sym_bytes, device.warp_size, tb) * tb,
                value_bytes=L * val_per_iter * tb,
                x_bytes=tex.warp_sequence_fetches(cols_2d, valid)
                * device.tex_line_bytes,
                decode_ops=DECODE_OPS_PER_ITER * w * L
                + DECODE_OPS_PER_LOAD * dec.symbol_loads * w,
            )
        )
    return traces


# ---------------------------------------------------------------------------
# HYB / BRO-HYB: one row per part
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartTrace:
    """Profile of one part (ELL or COO) of a hybrid matrix."""

    part: str  #: "ell" or "coo"
    format_name: str  #: storage format of the part
    nnz: int
    frac_nnz: float  #: share of the hybrid's non-zeros
    index_bytes: int
    value_bytes: int
    x_bytes: int
    dram_bytes: int
    decode_ops: int
    t_us: float  #: predicted part time (roofline model)

    def row(self) -> str:
        """One formatted trace line."""
        return (
            f"{self.part:>5s} {self.format_name:>10s} {self.nnz:>10d} "
            f"{100 * self.frac_nnz:>6.1f}% {self.index_bytes:>11d} "
            f"{self.value_bytes:>11d} {self.x_bytes:>10d} "
            f"{self.decode_ops:>10d} {self.t_us:>9.2f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'part':>5s} {'format':>10s} {'nnz':>10s} {'nnz %':>7s} "
            f"{'idx B':>11s} {'val B':>11s} {'x B':>10s} {'decode':>10s} "
            f"{'t us':>9s}"
        )


def trace_hyb(matrix, device: DeviceSpec) -> List[PartTrace]:
    """Profile the ELL and COO parts of a HYB or BRO-HYB matrix.

    Runs each part's kernel (counters only; the product is discarded) and
    attributes traffic and predicted time per part — the split-quality view
    behind Table 4.
    """
    # Imported here: repro.kernels imports this package at module scope.
    from ..core.bro_hyb import BROHYBMatrix
    from ..formats.hyb import HYBMatrix
    from ..registry import kernel_for
    from .timing import predict

    if not isinstance(matrix, (HYBMatrix, BROHYBMatrix)):
        raise ValidationError("trace_hyb needs a HYBMatrix or BROHYBMatrix")
    total = max(1, matrix.nnz)
    x = np.ones(matrix.shape[1], dtype=np.float64)
    traces: List[PartTrace] = []
    for part_name, part in (("ell", matrix.ell), ("coo", matrix.coo)):
        result = kernel_for(part.format_name).run(part, x, device)
        c = result.counters
        timing = predict(c, device)
        traces.append(
            PartTrace(
                part=part_name,
                format_name=part.format_name,
                nnz=part.nnz,
                frac_nnz=part.nnz / total,
                index_bytes=c.index_bytes,
                value_bytes=c.value_bytes,
                x_bytes=c.x_bytes,
                dram_bytes=c.dram_bytes,
                decode_ops=c.decode_ops,
                t_us=timing.time * 1e6,
            )
        )
    return traces


# ---------------------------------------------------------------------------
# Capability-registry bindings: one BlockTracer record per traceable format
# (the value-compressed BRO-ELL variant shares the slice tracer).
# ---------------------------------------------------------------------------
_registry.bind_tracer(
    "bro_ell",
    _registry.BlockTracer("per-slice profile", SliceTrace.header, trace_bro_ell),
)
_registry.bind_tracer(
    "bro_ell_vc",
    _registry.BlockTracer("per-slice profile", SliceTrace.header, trace_bro_ell),
)
_registry.bind_tracer(
    "bro_coo",
    _registry.BlockTracer("per-interval profile", IntervalTrace.header, trace_bro_coo),
)
_registry.bind_tracer(
    "hyb",
    _registry.BlockTracer("per-part profile", PartTrace.header, trace_hyb),
)
_registry.bind_tracer(
    "bro_hyb",
    _registry.BlockTracer("per-part profile", PartTrace.header, trace_hyb),
)
