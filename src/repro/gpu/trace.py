"""Per-slice execution traces for the BRO-ELL kernel.

A :class:`SliceTrace` row per thread block answers the questions a CUDA
profiler timeline would: which slices carry the bytes, where the decode
overhead concentrates, which slices have poor x locality. Used by the
``python -m repro spmv --trace`` flag and by performance debugging in the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..bitstream.reader import SliceDecoder
from ..core.bro_ell import BROELLMatrix
from ..errors import ValidationError
from ..gpu.device import DECODE_OPS_PER_ITER, DECODE_OPS_PER_LOAD, DeviceSpec
from ..gpu.memory import contiguous_transactions
from ..gpu.texcache import TextureCacheModel
from ..utils.bits import ceil_div

__all__ = ["SliceTrace", "trace_bro_ell"]


@dataclass(frozen=True)
class SliceTrace:
    """Profile of one slice (= one simulated thread block)."""

    slice_id: int
    rows: int
    num_col: int
    nnz: int  #: valid entries in the slice
    mean_bits: float  #: average bit_alloc width
    stream_bytes: int
    value_bytes: int
    x_bytes: int
    decode_ops: int
    padding_fraction: float  #: share of (row, col) iterations that are padding

    def row(self) -> str:
        """One formatted trace line."""
        return (
            f"{self.slice_id:>6d} {self.rows:>5d} {self.num_col:>5d} "
            f"{self.nnz:>8d} {self.mean_bits:>6.2f} "
            f"{self.stream_bytes:>9d} {self.value_bytes:>10d} "
            f"{self.x_bytes:>8d} {100 * self.padding_fraction:>6.1f}%"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'slice':>6s} {'rows':>5s} {'cols':>5s} {'nnz':>8s} "
            f"{'bits':>6s} {'idx B':>9s} {'val B':>10s} {'x B':>8s} "
            f"{'pad':>7s}"
        )


def trace_bro_ell(matrix: BROELLMatrix, device: DeviceSpec) -> List[SliceTrace]:
    """Profile every slice of a BRO-ELL matrix on a device.

    Decodes each slice (exactly as the kernel does) and reports where the
    traffic and decode work would land.
    """
    if not isinstance(matrix, BROELLMatrix):
        raise ValidationError("trace_bro_ell needs a BROELLMatrix")
    tex = TextureCacheModel(device)
    tb = device.transaction_bytes
    ws = device.warp_size
    sym_bytes = matrix.sym_len // 8
    traces: List[SliceTrace] = []
    for i in range(matrix.num_slices):
        r0 = int(matrix.slice_edges[i])
        r1 = int(matrix.slice_edges[i + 1])
        h_i = r1 - r0
        L = int(matrix.num_col[i])
        bit_alloc = matrix.bit_allocs[i]
        if L == 0:
            traces.append(
                SliceTrace(i, h_i, 0, 0, 0.0, 0, 0, 0, 0, 0.0)
            )
            continue
        dec = SliceDecoder(matrix.stream.slice_view(i), h=h_i,
                           sym_len=matrix.sym_len)
        cols, valid = matrix.decode_slice_cols(i)
        # Drain the decoder to count the loads a kernel would issue.
        for c in range(L):
            dec.decode(int(bit_alloc[c]))
        nnz = int(valid.sum())
        val_per_iter = ceil_div(ws * 8, tb)
        warps = ceil_div(h_i, ws)
        pad_rows = warps * ws - h_i
        warp_valid = np.any(
            np.vstack([valid, np.zeros((pad_rows, L), dtype=bool)])
            .reshape(warps, ws, L),
            axis=1,
        )
        traces.append(
            SliceTrace(
                slice_id=i,
                rows=h_i,
                num_col=L,
                nnz=nnz,
                mean_bits=float(bit_alloc.mean()),
                stream_bytes=dec.symbol_loads
                * contiguous_transactions(h_i, sym_bytes, ws, tb) * tb,
                value_bytes=int(warp_valid.sum()) * val_per_iter * tb,
                x_bytes=tex.block_x_bytes(np.where(valid, cols, 0), valid),
                decode_ops=DECODE_OPS_PER_ITER * h_i * L
                + DECODE_OPS_PER_LOAD * dec.symbol_loads * h_i,
                padding_fraction=1.0 - nnz / (h_i * L),
            )
        )
    return traces
