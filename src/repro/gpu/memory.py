"""Coalesced-transaction counting for simulated global-memory accesses.

The GPU services a warp's loads in fixed-size transactions (128 B on the
devices modelled here). These helpers count the transactions — and hence
the DRAM bytes — that access patterns generate:

* :func:`contiguous_transactions` — warp reads a contiguous, aligned run
  (the coalesced case every format here is designed for);
* :func:`gather_transactions` — warp gathers arbitrary addresses (used for
  uncached indirect accesses, e.g. the CSR-scalar anti-pattern).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.bits import ceil_div

__all__ = ["contiguous_transactions", "gather_transactions", "transaction_bytes"]


def contiguous_transactions(
    n_elems: int,
    elem_bytes: int,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> int:
    """Transactions for warps reading ``n_elems`` contiguous elements.

    Each warp touches ``warp_size * elem_bytes`` consecutive bytes; partial
    final warps still issue whole transactions. Alignment to transaction
    boundaries is assumed (allocators align device arrays).
    """
    if n_elems < 0 or elem_bytes <= 0:
        raise ValidationError("n_elems must be >= 0 and elem_bytes > 0")
    if n_elems == 0:
        return 0
    n_warps = ceil_div(n_elems, warp_size)
    full, rem = divmod(n_elems, warp_size)
    per_full_warp = ceil_div(warp_size * elem_bytes, transaction_bytes)
    total = full * per_full_warp
    if rem:
        total += ceil_div(rem * elem_bytes, transaction_bytes)
    assert n_warps >= full
    return total


def gather_transactions(
    indices: np.ndarray,
    elem_bytes: int,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> int:
    """Transactions for warps gathering ``array[indices]`` uncached.

    ``indices`` is the flat per-thread access sequence: thread ``t`` of warp
    ``w`` reads element ``indices[w * warp_size + t]``. Each warp needs one
    transaction per distinct transaction-line among its lanes.
    """
    indices = np.asarray(indices).reshape(-1)
    if indices.size == 0:
        return 0
    if elem_bytes <= 0 or transaction_bytes <= 0:
        raise ValidationError("sizes must be positive")
    per_line = max(1, transaction_bytes // elem_bytes)
    lines = indices.astype(np.int64) // per_line
    n = lines.shape[0]
    n_warps = ceil_div(n, warp_size)
    padded = np.full(n_warps * warp_size, -1, dtype=np.int64)
    padded[:n] = lines
    grid = np.sort(padded.reshape(n_warps, warp_size), axis=1)
    distinct = (grid[:, 1:] != grid[:, :-1]).sum(axis=1) + 1
    # Warps whose padding sentinel (-1) created a phantom line.
    has_pad = grid[:, 0] == -1
    partial = has_pad & (grid[:, -1] != -1)
    distinct = distinct - partial.astype(np.int64)
    # A warp of pure padding (cannot happen: n >= 1 implies last warp has
    # at least one real lane) would still count 1; guard anyway.
    return int(distinct.sum())


def transaction_bytes(n_transactions: int, size: int = 128) -> int:
    """DRAM bytes of ``n_transactions`` whole transactions."""
    if n_transactions < 0 or size <= 0:
        raise ValidationError("transaction count must be >= 0 and size > 0")
    return n_transactions * size
